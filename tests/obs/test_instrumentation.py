"""End-to-end instrumentation: solvers, runtime, membership, transport.

These tests pin the reconciliation guarantees the tracing subsystem
advertises: per-iteration event counts match reported iteration counts,
runtime counters match the `ExperimentResult.extras` bookkeeping that
predates the recorder, and transport counters match the network's own
statistics.
"""

import pytest

from repro.core import ProblemData, ReplicaSelectionProblem, solve
from repro.edr.membership import MembershipRing
from repro.edr.system import EDRSystem, RuntimeConfig
from repro.obs import TraceRecorder, iter_records, validate_record

from tests.edr.conftest import burst_trace


@pytest.fixture
def small_problem() -> ReplicaSelectionProblem:
    data = ProblemData.paper_defaults(
        demands=[30.0, 50.0, 20.0], prices=[2.0, 10.0, 4.0])
    return ReplicaSelectionProblem(data)


class TestSolverInstrumentation:
    @pytest.mark.parametrize("algorithm", ["lddm", "cdpsm"])
    def test_iteration_events_match_iteration_count(self, algorithm,
                                                    small_problem):
        rec = TraceRecorder()
        sol = solve(small_problem, algorithm, recorder=rec, max_iter=40)
        iters = rec.events_named(f"{algorithm}.iteration")
        assert len(iters) == sol.iterations
        assert [e["k"] for e in iters] == list(range(sol.iterations))

    def test_solver_solve_event_fields(self, small_problem):
        rec = TraceRecorder()
        sol = solve(small_problem, "lddm", recorder=rec, max_iter=40)
        (done,) = rec.events_named("solver.solve")
        assert done["method"] == "lddm"
        assert done["iterations"] == sol.iterations
        assert done["objective"] == pytest.approx(sol.objective)
        assert done["solve_time_s"] == pytest.approx(sol.solve_time_s)
        assert done["warm_started"] is False

    def test_objective_samples_when_tracked(self, small_problem):
        rec = TraceRecorder()
        sol = solve(small_problem, "lddm", recorder=rec, max_iter=30,
                    track_objective=True)
        samples = [r for r in rec.records if r["kind"] == "sample"
                   and r["name"] == "solver.objective"]
        assert len(samples) == sol.iterations
        assert samples[-1]["value"] == pytest.approx(
            sol.objective_history[-1])

    def test_reference_solve_event(self, small_problem):
        rec = TraceRecorder()
        sol = solve(small_problem, "reference", recorder=rec)
        (done,) = rec.events_named("solver.solve")
        assert done["method"] == "reference"
        assert done["objective"] == pytest.approx(sol.objective)


class TestRuntimeInstrumentation:
    @pytest.fixture(scope="class")
    def traced_run(self):
        rec = TraceRecorder()
        trace = burst_trace(count=16, n_clients=8)
        res = EDRSystem(trace, RuntimeConfig(
            algorithm="lddm", recorder=rec)).run(app="test")
        return rec, res

    def test_batch_events_match_extras(self, traced_run):
        rec, res = traced_run
        batches = rec.events_named("runtime.batch")
        assert len(batches) == res.extras["batches"]
        assert rec.counter_total("runtime.batches") == res.extras["batches"]
        assert sum(b["iterations"] for b in batches) \
            == res.extras["solve_iterations"]
        assert sum(b["solve_sim_s"] for b in batches) \
            == pytest.approx(res.extras["solve_time"])

    def test_warm_start_counters_match_extras(self, traced_run):
        rec, res = traced_run
        assert rec.counter_total("warmstart.hit") \
            == res.extras["warm_solves"]
        assert rec.counter_total("warmstart.miss") \
            == res.extras["cold_solves"]

    def test_session_events_match_solver_iterations(self, traced_run):
        rec, res = traced_run
        sessions = rec.events_named("session.solve")
        assert len(sessions) == res.extras["batches"]
        assert sum(s["iterations"] for s in sessions) \
            == res.extras["solve_iterations"]

    def test_network_counters_match_transport_stats(self, traced_run):
        rec, res = traced_run
        assert rec.counter_total("net.messages") == res.extras["messages"]
        assert rec.counter_total("net.mb") \
            == pytest.approx(res.extras["comm_mb"])

    def test_session_message_totals_reconcile_by_kind(self, traced_run):
        # The session's precomputed plan and the transport's per-kind
        # counters must agree on solver-coordination traffic.
        rec, _res = traced_run
        series = rec.counter_series("net.messages")
        solver_msgs = sum(
            v for labels, v in series.items()
            if dict(labels)["kind"] in ("SOLUTION", "MU_UPDATE"))
        sessions = rec.events_named("session.solve")
        assert solver_msgs == sum(s["messages"] for s in sessions)

    def test_flow_counters_match_extras(self, traced_run):
        rec, res = traced_run
        assert rec.counter_total("net.fair_recompute") \
            == res.extras["flow_recomputes"]
        assert rec.counter_total("net.flows_settled") \
            == res.extras["flows_settled"]
        assert rec.counter_total("net.flows_coalesced") \
            == res.extras["flows_coalesced"]

    def test_traffic_events_reconcile_with_flow_counters(self, traced_run):
        # Every coalesced download batch announces itself; with no
        # crashes every announced part settles, and the aggregation
        # saving (parts minus flows) is exactly the coalesce counter.
        rec, res = traced_run
        traffic = rec.events_named("runtime.traffic")
        assert traffic
        assert sum(e["n_requests"] for e in traffic) \
            == len(res.response_times) + res.extras["retries"]
        assert sum(e["n_parts"] for e in traffic) \
            == rec.counter_total("net.flows_settled")
        assert sum(e["n_parts"] - e["n_flows"] for e in traffic) \
            == rec.counter_total("net.flows_coalesced")
        assert sum(e["mb"] for e in traffic) \
            == pytest.approx(res.extras["delivered_mb"])

    def test_per_iteration_events_present(self, traced_run):
        rec, res = traced_run
        iters = rec.events_named("lddm.iteration")
        assert len(iters) == res.extras["solve_iterations"]

    def test_every_captured_record_validates(self, traced_run):
        rec, _res = traced_run
        for record in iter_records(rec):
            validate_record(record)

    def test_default_run_records_nothing(self):
        trace = burst_trace(count=8, n_clients=4)
        system = EDRSystem(trace, RuntimeConfig(algorithm="lddm"))
        system.run(app="test")
        assert system.recorder.enabled is False


class TestMembershipInstrumentation:
    def test_transitions_recorded(self):
        rec = TraceRecorder()
        ring = MembershipRing(["a", "b", "c"], recorder=rec)
        ring.mark_dead("b")
        ring.mark_dead("b")  # idempotent: no second event
        ring.mark_alive("b")
        events = rec.events_named("membership")
        assert [(e["change"], e["member"]) for e in events] \
            == [("dead", "b"), ("alive", "b")]

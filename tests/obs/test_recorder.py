"""Recorder protocol, trace capture, and exporter round-trips."""

import io
import json

import pytest

from repro.obs import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    TraceRecorder,
    from_jsonl,
    iter_records,
    summary,
    to_jsonl,
    to_prometheus_text,
    validate_record,
)


class FakeClock:
    """Deterministic clock: advances one second per call."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        t, self.t = self.t, self.t + 1.0
        return t


class TestNullRecorder:
    def test_satisfies_protocol(self):
        assert isinstance(NullRecorder(), Recorder)
        assert isinstance(TraceRecorder(), Recorder)

    def test_disabled(self):
        assert NULL_RECORDER.enabled is False

    def test_all_operations_are_noops(self):
        rec = NullRecorder()
        rec.count("net.messages")
        rec.count("net.mb", 0.5, kind="X")
        rec.sample("solver.objective", 1.0, k=0)
        rec.event("membership", change="dead", member="r1")
        with rec.span("solve", algo="lddm"):
            pass
        # Nothing to flush: the null recorder holds no state at all.
        assert not hasattr(rec, "records")

    def test_span_is_reentrant(self):
        rec = NullRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass


class TestTraceRecorder:
    def test_event_capture_order_and_timestamps(self):
        rec = TraceRecorder(clock=FakeClock())
        rec.event("membership", change="dead", member="r2")
        rec.sample("solver.objective", 42.0, k=3)
        assert [r["kind"] for r in rec.records] == ["event", "sample"]
        assert rec.records[0]["t"] == 1.0  # one tick after construction
        assert rec.records[1] == {"kind": "sample", "t": 2.0,
                                  "name": "solver.objective",
                                  "value": 42.0, "k": 3}

    def test_counters_aggregate_per_label_series(self):
        rec = TraceRecorder()
        rec.count("net.messages", kind="HEARTBEAT")
        rec.count("net.messages", kind="HEARTBEAT")
        rec.count("net.messages", kind="SOLVE_SYNC")
        rec.count("net.mb", 0.25, kind="SOLVE_SYNC")
        assert rec.records == []  # counters never append records
        assert rec.counter_total("net.messages") == 3
        assert rec.counter_series("net.messages") == {
            (("kind", "HEARTBEAT"),): 2.0,
            (("kind", "SOLVE_SYNC"),): 1.0}
        assert rec.counter_total("net.mb") == pytest.approx(0.25)

    def test_span_records_duration(self):
        rec = TraceRecorder(clock=FakeClock())
        with rec.span("solve", algo="lddm"):
            pass
        (span,) = rec.records
        assert span["kind"] == "span"
        assert span["name"] == "solve"
        assert span["algo"] == "lddm"
        assert span["duration"] == 1.0

    def test_events_named(self):
        rec = TraceRecorder()
        rec.event("membership", change="dead", member="a")
        rec.event("experiment.figure", figure="fig9")
        rec.event("membership", change="alive", member="a")
        assert [e["change"] for e in rec.events_named("membership")] \
            == ["dead", "alive"]


def populated_recorder() -> TraceRecorder:
    """A recorder holding one record of every kind/schema family."""
    rec = TraceRecorder(clock=FakeClock())
    rec.event("lddm.iteration", k=0, residual=1.5, step=0.1, mu_max=2.0)
    rec.event("cdpsm.iteration", k=0, change=0.3, step=0.05)
    rec.event("solver.solve", method="lddm", iterations=10, converged=True,
              objective=123.4, solve_time_s=0.01, warm_started=False)
    rec.event("session.solve", algorithm="lddm", rows=4, n_clients=4,
              n_replicas=3, iterations=7, converged=True, sim_start=0.0,
              sim_duration=0.2, messages=126, mb=0.001,
              msgs_per_round=18, mb_per_round=0.0001)
    rec.event("runtime.batch", sim_time=0.1, algorithm="lddm",
              n_requests=8, n_clients=4, n_classes=2, iterations=7,
              converged=True, warm_started=True, solve_sim_s=0.2)
    rec.event("membership", change="dead", member="replica2")
    rec.event("experiment.figure", figure="fig9")
    rec.sample("solver.objective", 123.4, k=9)
    with rec.span("batch", algo="lddm"):
        pass
    rec.count("net.messages", kind="HEARTBEAT")
    rec.count("net.mb", 0.5, kind="HEARTBEAT")
    rec.count("warmstart.hit")
    rec.count("warmstart.miss")
    rec.count("runtime.batches")
    return rec


class TestExportRoundTrip:
    def test_every_record_validates(self):
        for record in iter_records(populated_recorder()):
            validate_record(record)

    def test_jsonl_round_trip(self, tmp_path):
        rec = populated_recorder()
        path = tmp_path / "trace.jsonl"
        n = to_jsonl(rec, path)
        lines = path.read_text().strip().split("\n")
        assert len(lines) == n
        records = from_jsonl(path)  # validates every line
        assert len(records) == n
        # records + 5 counter series + trailing summary
        assert n == len(rec.records) + 5 + 1
        assert records[-1]["kind"] == "summary"

    def test_jsonl_accepts_file_handles(self):
        rec = populated_recorder()
        buf = io.StringIO()
        n = to_jsonl(rec, buf)
        buf.seek(0)
        assert len(from_jsonl(buf)) == n

    def test_summary_survives_round_trip(self, tmp_path):
        rec = populated_recorder()
        path = tmp_path / "trace.jsonl"
        to_jsonl(rec, path)
        tail = json.loads(path.read_text().strip().split("\n")[-1])
        s = summary(rec)
        assert tail["solves"] == s["solves"]
        assert tail["sessions"] == s["sessions"]
        assert tail["warm_start"] == s["warm_start"]
        assert tail["net"] == s["net"]

    def test_summary_contents(self):
        s = summary(populated_recorder())
        assert s["solves"] == {"count": 1, "iterations": 10, "converged": 1}
        assert s["sessions"]["messages"] == 126
        assert s["warm_start"]["hits"] == 1
        assert s["warm_start"]["hit_rate"] == pytest.approx(0.5)
        assert s["net"] == {"messages": 1, "mb": 0.5}
        assert s["aggregation"] == {"min_classes": 2, "max_classes": 2,
                                    "batches": 1}
        assert s["events"]["membership"] == 1

    def test_prometheus_text(self):
        text = to_prometheus_text(populated_recorder())
        assert '# TYPE repro_net_messages_total counter' in text
        assert 'repro_net_messages_total{kind="HEARTBEAT"} 1' in text
        assert 'repro_warmstart_hit_total 1' in text
        assert 'repro_events_total{name="membership"} 1' in text
        assert text.endswith("\n")


class TestValidateRecord:
    def test_rejects_non_dict(self):
        with pytest.raises(ValueError):
            validate_record(["not", "a", "dict"])

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            validate_record({"kind": "trace", "name": "x", "t": 0.0})

    def test_rejects_missing_name(self):
        with pytest.raises(ValueError, match="name"):
            validate_record({"kind": "event", "t": 0.0})

    def test_rejects_missing_timestamp(self):
        with pytest.raises(ValueError, match="t"):
            validate_record({"kind": "event", "name": "membership",
                             "change": "dead", "member": "x"})

    def test_rejects_missing_schema_fields(self):
        with pytest.raises(ValueError, match="missing fields"):
            validate_record({"kind": "event", "t": 0.0,
                             "name": "lddm.iteration", "k": 3})

    def test_rejects_counter_without_value(self):
        with pytest.raises(ValueError, match="value"):
            validate_record({"kind": "counter", "name": "net.messages"})

    def test_rejects_span_without_duration(self):
        with pytest.raises(ValueError, match="duration"):
            validate_record({"kind": "span", "name": "x", "t": 0.0})

    def test_unknown_event_names_allowed(self):
        validate_record({"kind": "event", "t": 0.0, "name": "custom.thing"})

"""Tests for energy accounting, response-time stats, and result containers."""

import numpy as np
import pytest

from repro.cluster.node import ReplicaNode
from repro.cluster.pdu import PowerSampler
from repro.cluster.datacenter import ReplicaSite
from repro.cluster.pricing import JOULES_PER_KWH
from repro.errors import ValidationError
from repro.metrics.energy import EnergyAccount
from repro.metrics.latency import ResponseTimeStats
from repro.metrics.report import ExperimentResult, compare_table
from repro.sim.engine import Simulator


def make_sites(prices=(1.0, 8.0), seconds=100.0):
    sim = Simulator()
    sites = []
    for i, p in enumerate(prices):
        node = ReplicaNode(f"r{i}")
        meter = PowerSampler(sim, node, rate_hz=10.0)
        sites.append(ReplicaSite(node=node, meter=meter,
                                 price_cents_per_kwh=p, index=i))
    sim.run(until=seconds)
    for s in sites:
        s.meter.stop()
    return sites


class TestEnergyAccount:
    def test_totals(self):
        sites = make_sites()
        acct = EnergyAccount(sites)
        j = acct.joules_by_replica()
        assert j.shape == (2,)
        assert acct.total_joules() == pytest.approx(j.sum())
        c = acct.cents_by_replica()
        # Same power, different prices: cost ratio == price ratio.
        assert c[1] / c[0] == pytest.approx(8.0)
        assert acct.total_cents() == pytest.approx(c.sum())

    def test_names_and_prices(self):
        acct = EnergyAccount(make_sites())
        assert acct.names == ["r0", "r1"]
        assert acct.prices().tolist() == [1.0, 8.0]

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            EnergyAccount([])

    def test_cents_from_joules(self):
        out = EnergyAccount.cents_from_joules(
            [JOULES_PER_KWH, 2 * JOULES_PER_KWH], [1.0, 3.0])
        assert out.tolist() == [1.0, 6.0]

    def test_cents_from_joules_mismatch(self):
        with pytest.raises(ValidationError):
            EnergyAccount.cents_from_joules([1.0], [1.0, 2.0])


class TestResponseTimeStats:
    def test_basic_flow(self):
        st = ResponseTimeStats()
        st.issued("a", 1.0)
        st.issued("b", 2.0)
        assert st.pending == 2
        st.answered("a", 1.5)
        st.answered("b", 2.25)
        assert st.pending == 0
        assert st.count == 2
        assert st.total() == pytest.approx(0.75)
        assert st.mean() == pytest.approx(0.375)

    def test_double_issue_rejected(self):
        st = ResponseTimeStats()
        st.issued("a", 0.0)
        with pytest.raises(ValidationError):
            st.issued("a", 1.0)

    def test_answer_unknown_rejected(self):
        with pytest.raises(ValidationError):
            ResponseTimeStats().answered("ghost", 1.0)

    def test_answer_before_issue_time(self):
        st = ResponseTimeStats()
        st.issued("a", 5.0)
        with pytest.raises(ValidationError):
            st.answered("a", 4.0)

    def test_mean_empty(self):
        with pytest.raises(ValidationError):
            ResponseTimeStats().mean()

    def test_summary(self):
        st = ResponseTimeStats()
        for i in range(10):
            st.issued(i, 0.0)
            st.answered(i, 0.1 * (i + 1))
        assert st.summary().n == 10


def make_result(method, cents, joules):
    return ExperimentResult(
        method=method, app="video",
        joules_by_replica=np.asarray(joules, dtype=float),
        cents_by_replica=np.asarray(cents, dtype=float),
        makespan=10.0, response_times=[0.05, 0.15])


class TestExperimentResult:
    def test_totals(self):
        r = make_result("lddm", [1.0, 2.0], [10.0, 20.0])
        assert r.total_cents == 3.0
        assert r.total_joules == 30.0
        assert r.mean_response == pytest.approx(0.1)

    def test_savings(self):
        lddm = make_result("lddm", [8.0], [100.0])
        rr = make_result("rr", [10.0], [90.0])
        assert lddm.savings_vs(rr, "cents") == pytest.approx(0.2)
        assert lddm.savings_vs(rr, "joules") == pytest.approx(1 - 100 / 90)

    def test_savings_validation(self):
        a = make_result("a", [1.0], [1.0])
        z = make_result("z", [0.0], [0.0])
        with pytest.raises(ValidationError):
            a.savings_vs(z, "cents")
        with pytest.raises(ValidationError):
            a.savings_vs(a, "bogus")

    def test_no_responses(self):
        r = make_result("x", [1.0], [1.0])
        r.response_times = []
        with pytest.raises(ValidationError):
            _ = r.mean_response


class TestCompareTable:
    def test_layout(self):
        results = {
            "lddm": make_result("lddm", [1.0, 2.0], [5.0, 6.0]),
            "rr": make_result("rr", [3.0, 4.0], [7.0, 8.0]),
        }
        out = compare_table(results, ["replica1", "replica2"],
                            quantity="cents", title="Fig. 6")
        assert "Fig. 6" in out
        assert "replica1" in out and "TOTAL" in out
        assert "lddm" in out and "rr" in out

    def test_joules_quantity(self):
        results = {"rr": make_result("rr", [1.0], [42.0])}
        out = compare_table(results, ["replica1"], quantity="joules")
        assert "42" in out

    def test_bad_quantity(self):
        with pytest.raises(ValidationError):
            compare_table({}, [], quantity="watts")

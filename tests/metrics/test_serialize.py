"""Tests for JSON result serialization."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.metrics.report import ExperimentResult
from repro.metrics.serialize import (
    dump_results,
    load_results,
    result_from_dict,
    result_to_dict,
)


def make_result():
    return ExperimentResult(
        method="lddm", app="video",
        joules_by_replica=np.array([1.0, 2.0]),
        cents_by_replica=np.array([0.5, 4.0]),
        makespan=12.5,
        response_times=[0.01, 0.02],
        extras={"messages": 42, "busy_end": {"replica1": 3.0},
                "wall_clock_joules": np.array([5.0, 6.0])})


class TestRoundTrip:
    def test_dict_round_trip(self):
        original = make_result()
        back = result_from_dict(result_to_dict(original))
        assert back.method == original.method
        assert back.app == original.app
        assert np.allclose(back.joules_by_replica,
                           original.joules_by_replica)
        assert np.allclose(back.cents_by_replica, original.cents_by_replica)
        assert back.makespan == original.makespan
        assert back.response_times == original.response_times
        assert back.extras["messages"] == 42

    def test_numpy_values_become_plain_json(self):
        import json
        text = dump_results({"a": make_result()})
        data = json.loads(text)  # must not raise
        assert data["a"]["extras"]["wall_clock_joules"] == [5.0, 6.0]

    def test_mapping_round_trip(self):
        results = {"lddm": make_result(), "rr": make_result()}
        back = load_results(dump_results(results))
        assert set(back) == {"lddm", "rr"}
        assert back["lddm"].total_cents == pytest.approx(4.5)

    def test_missing_keys_rejected(self):
        with pytest.raises(ValidationError):
            result_from_dict({"method": "x"})

    def test_non_object_rejected(self):
        with pytest.raises(ValidationError):
            load_results("[1, 2, 3]")

    def test_derived_metrics_survive(self):
        back = result_from_dict(result_to_dict(make_result()))
        assert back.total_joules == pytest.approx(3.0)
        assert back.mean_response == pytest.approx(0.015)

"""Tests for the exception hierarchy contract."""

import pytest

from repro.errors import (
    ConvergenceError,
    InfeasibleProblemError,
    MembershipError,
    ProcessKilled,
    ReproError,
    SimulationError,
    ValidationError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc_type", [
        ValidationError, InfeasibleProblemError, ConvergenceError,
        SimulationError, ProcessKilled, MembershipError,
    ])
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_validation_error_is_value_error(self):
        """Callers using stdlib idioms still catch validation failures."""
        assert issubclass(ValidationError, ValueError)
        with pytest.raises(ValueError):
            raise ValidationError("bad arg")

    def test_convergence_error_diagnostics(self):
        err = ConvergenceError("no luck", iterations=42, residual=0.5)
        assert err.iterations == 42
        assert err.residual == 0.5
        assert "no luck" in str(err)

    def test_convergence_error_defaults(self):
        err = ConvergenceError("plain")
        assert err.iterations is None and err.residual is None

    def test_library_raises_only_repro_errors(self):
        """A representative API misuse path raises inside the hierarchy."""
        from repro.core.params import ProblemData
        with pytest.raises(ReproError):
            ProblemData.paper_defaults([-5.0], prices=[1.0])

"""Tests for Store, Resource and PeriodicSampler."""

import pytest

from repro.errors import SimulationError, ValidationError
from repro.sim.engine import Simulator
from repro.sim.monitor import PeriodicSampler
from repro.sim.resources import Resource, Store


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("a")
        got = []

        def getter(sim):
            item = yield store.get()
            got.append(item)

        sim.process(getter(sim))
        sim.run()
        assert got == ["a"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def getter(sim):
            item = yield store.get()
            got.append((sim.now, item))

        def putter(sim):
            yield sim.timeout(7)
            store.put("late")

        sim.process(getter(sim))
        sim.process(putter(sim))
        sim.run()
        assert got == [(7.0, "late")]

    def test_fifo_items(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(5):
            store.put(i)
        got = []

        def getter(sim):
            for _ in range(5):
                got.append((yield store.get()))

        sim.process(getter(sim))
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_fifo_getters(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def getter(sim, name):
            item = yield store.get()
            got.append((name, item))

        sim.process(getter(sim, "first"))
        sim.process(getter(sim, "second"))

        def putter(sim):
            yield sim.timeout(1)
            store.put("x")
            store.put("y")

        sim.process(putter(sim))
        sim.run()
        assert got == [("first", "x"), ("second", "y")]

    def test_try_get(self):
        sim = Simulator()
        store = Store(sim)
        assert store.try_get() is None
        store.put(3)
        assert store.try_get() == 3
        assert len(store) == 0


class TestResource:
    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), 0)

    def test_grants_up_to_capacity(self):
        sim = Simulator()
        res = Resource(sim, 2)
        times = []

        def user(sim, hold):
            yield res.request()
            yield sim.timeout(hold)
            times.append(sim.now)
            res.release()

        for _ in range(3):
            sim.process(user(sim, 10))
        sim.run()
        # Two run concurrently finishing at t=10; the third waits then 10 more.
        assert times == [10.0, 10.0, 20.0]

    def test_release_without_request(self):
        sim = Simulator()
        res = Resource(sim, 1)
        with pytest.raises(SimulationError):
            res.release()

    def test_counters(self):
        sim = Simulator()
        res = Resource(sim, 3)
        res.request()
        assert res.in_use == 1 and res.available == 2


class TestPeriodicSampler:
    def test_sample_count_and_times(self):
        sim = Simulator()
        state = {"v": 0.0}
        sampler = PeriodicSampler(sim, lambda: state["v"], period=0.5)
        sim.timeout(2.0)
        sim.run(until=2.0)
        sampler.stop()
        # samples at t=0, .5, 1, 1.5, 2 => 5 samples
        assert len(sampler.series) == 5
        assert sampler.series.times.tolist() == [0.0, 0.5, 1.0, 1.5, 2.0]

    def test_probe_sees_state_changes(self):
        sim = Simulator()
        state = {"v": 1.0}
        sampler = PeriodicSampler(sim, lambda: state["v"], period=1.0)
        sim.call_at(1.5, lambda: state.__setitem__("v", 9.0))
        sim.run(until=3.0)
        sampler.stop()
        assert sampler.series.value_at(1.0) == 1.0
        assert sampler.series.value_at(2.0) == 9.0

    def test_delayed_start(self):
        sim = Simulator()
        sampler = PeriodicSampler(sim, lambda: 0.0, period=1.0, start=5.0)
        sim.run(until=7.0)
        sampler.stop()
        assert sampler.series.times[0] == 5.0

    def test_bad_period(self):
        with pytest.raises(ValidationError):
            PeriodicSampler(Simulator(), lambda: 0, period=0)

    def test_stop_idempotent(self):
        sim = Simulator()
        sampler = PeriodicSampler(sim, lambda: 0.0, period=1.0)
        sim.run(until=1.0)
        sampler.stop()
        sampler.stop()
        sim.run()
        n = len(sampler.series)
        assert n == 2  # t=0 and t=1

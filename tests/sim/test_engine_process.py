"""Tests for the simulator loop and process semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.process import Interrupt, Process


class TestClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start(self):
        assert Simulator(start_time=10.0).now == 10.0

    def test_run_until_time_sets_clock(self):
        sim = Simulator()
        sim.timeout(100)
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_run_until_past_raises(self):
        sim = Simulator(start_time=10)
        with pytest.raises(SimulationError):
            sim.run(until=5.0)

    def test_peek_inf_when_empty(self):
        import math
        assert Simulator().peek() == math.inf

    def test_call_at(self):
        sim = Simulator()
        hits = []
        sim.call_at(3.0, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [3.0]

    def test_call_at_past_raises(self):
        sim = Simulator(start_time=5)
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)


class TestProcess:
    def test_return_value(self):
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(1)
            return "result"

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == "result"

    def test_requires_generator(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Process(sim, lambda: None)

    def test_sequential_timeouts(self):
        sim = Simulator()
        ticks = []

        def proc(sim):
            for _ in range(3):
                yield sim.timeout(2)
                ticks.append(sim.now)

        sim.process(proc(sim))
        sim.run()
        assert ticks == [2.0, 4.0, 6.0]

    def test_join_other_process(self):
        sim = Simulator()

        def child(sim):
            yield sim.timeout(4)
            return 99

        def parent(sim):
            value = yield sim.process(child(sim))
            return value + 1

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == 100

    def test_join_already_finished_process(self):
        sim = Simulator()

        def child(sim):
            yield sim.timeout(1)
            return "early"

        c = sim.process(child(sim))

        def parent(sim):
            yield sim.timeout(10)
            value = yield c  # c finished long ago
            return value

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == "early"

    def test_yield_non_event_fails_process(self):
        sim = Simulator()

        def bad(sim):
            yield 42

        p = sim.process(bad(sim))
        p.defused = True
        sim.run()
        assert not p.ok
        assert isinstance(p.value, SimulationError)

    def test_exception_inside_process_fails_it(self):
        sim = Simulator()

        def boom(sim):
            yield sim.timeout(1)
            raise ValueError("inner")

        p = sim.process(boom(sim))
        p.defused = True
        sim.run()
        assert not p.ok and isinstance(p.value, ValueError)

    def test_uncaught_process_exception_surfaces(self):
        sim = Simulator()

        def boom(sim):
            yield sim.timeout(1)
            raise ValueError("inner")

        sim.process(boom(sim))
        with pytest.raises(ValueError, match="inner"):
            sim.run()


class TestInterrupt:
    def test_interrupt_carries_cause(self):
        sim = Simulator()

        def sleeper(sim):
            try:
                yield sim.timeout(100)
            except Interrupt as exc:
                return ("interrupted", exc.cause, sim.now)

        p = sim.process(sleeper(sim))
        sim.call_at(5.0, lambda: p.interrupt("power failure"))
        sim.run()
        assert p.value == ("interrupted", "power failure", 5.0)

    def test_unhandled_interrupt_kills_process(self):
        sim = Simulator()

        def sleeper(sim):
            yield sim.timeout(100)

        p = sim.process(sleeper(sim))
        p.defused = True
        sim.call_at(5.0, lambda: p.interrupt())
        sim.run()
        assert not p.ok and isinstance(p.value, Interrupt)

    def test_interrupt_finished_raises(self):
        sim = Simulator()

        def quick(sim):
            yield sim.timeout(1)

        p = sim.process(quick(sim))
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_interrupted_process_can_continue(self):
        sim = Simulator()

        def robust(sim):
            try:
                yield sim.timeout(100)
            except Interrupt:
                pass
            yield sim.timeout(1)
            return sim.now

        p = sim.process(robust(sim))
        sim.call_at(2.0, lambda: p.interrupt())
        sim.run()
        assert p.value == 3.0

    def test_is_alive(self):
        sim = Simulator()

        def quick(sim):
            yield sim.timeout(1)

        p = sim.process(quick(sim))
        assert p.is_alive
        sim.run()
        assert not p.is_alive


class TestDeterminism:
    @given(st.lists(st.floats(0.001, 100.0), min_size=1, max_size=30),
           st.integers(0, 2**30))
    def test_property_events_fire_in_time_order(self, delays, _seed):
        sim = Simulator()
        fired = []
        for d in delays:
            ev = sim.timeout(d)
            ev.add_callback(lambda e, d=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    def test_same_time_events_fifo(self):
        sim = Simulator()
        order = []
        for i in range(20):
            ev = sim.timeout(1.0)
            ev.add_callback(lambda e, i=i: order.append(i))
        sim.run()
        assert order == list(range(20))

    def test_run_until_event(self):
        sim = Simulator()
        target = sim.timeout(5)
        sim.timeout(100)
        sim.run(until=target)
        assert sim.now == 5.0

    def test_run_until_unfired_event_raises(self):
        sim = Simulator()
        ev = sim.event()  # never triggered
        sim.timeout(1)
        with pytest.raises(SimulationError):
            sim.run(until=ev)

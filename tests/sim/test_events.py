"""Tests for events and the event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.events import AllOf, AnyOf, Event, EventQueue


class TestEvent:
    def test_initial_state(self):
        sim = Simulator()
        ev = sim.event()
        assert not ev.triggered and not ev.processed

    def test_succeed_carries_value(self):
        sim = Simulator()
        ev = sim.event().succeed(42)
        assert ev.triggered and ev.ok and ev.value == 42

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event().succeed()
        with pytest.raises(SimulationError):
            ev.succeed()
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("x"))

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.event().fail("not an exception")

    def test_value_before_trigger_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_callback_after_processed_runs_inline(self):
        sim = Simulator()
        ev = sim.event().succeed("x")
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]

    def test_unwaited_failure_surfaces(self):
        sim = Simulator()
        sim.event().fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()

    def test_defused_failure_is_silent(self):
        sim = Simulator()
        ev = sim.event()
        ev.fail(RuntimeError("boom"))
        ev.defused = True
        sim.run()  # no raise


class TestTimeout:
    def test_fires_at_delay(self):
        sim = Simulator()
        ev = sim.timeout(2.5, value="done")
        sim.run()
        assert sim.now == 2.5 and ev.value == "done"

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1)


class TestConditions:
    def test_anyof_fires_on_first(self):
        sim = Simulator()
        t1, t2 = sim.timeout(1, "a"), sim.timeout(5, "b")
        cond = AnyOf(sim, [t1, t2])
        sim.run(until=cond)
        assert sim.now == 1.0
        assert cond.value == {t1: "a"}

    def test_allof_waits_for_all(self):
        sim = Simulator()
        t1, t2 = sim.timeout(1, "a"), sim.timeout(5, "b")
        cond = AllOf(sim, [t1, t2])
        sim.run(until=cond)
        assert sim.now == 5.0
        assert set(cond.value.values()) == {"a", "b"}

    def test_empty_condition_immediate(self):
        sim = Simulator()
        cond = AllOf(sim, [])
        assert cond.triggered and cond.value == {}

    def test_failure_propagates(self):
        sim = Simulator()
        bad = sim.event()
        cond = AllOf(sim, [bad, sim.timeout(1)])
        bad.fail(RuntimeError("child failed"))
        bad.defused = True
        cond.defused = True
        sim.run()
        assert not cond.ok


class TestEventQueue:
    def test_time_order(self):
        sim = Simulator()
        q = EventQueue()
        e1, e2 = Event(sim), Event(sim)
        q.push(5.0, e1)
        q.push(1.0, e2)
        assert q.pop() == (1.0, e2)
        assert q.pop() == (5.0, e1)

    def test_fifo_at_equal_time(self):
        sim = Simulator()
        q = EventQueue()
        events = [Event(sim) for _ in range(10)]
        for ev in events:
            q.push(3.0, ev)
        popped = [q.pop()[1] for _ in range(10)]
        assert popped == events

    def test_pop_empty(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek(self):
        sim = Simulator()
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.peek_time()
        q.push(2.0, Event(sim))
        assert q.peek_time() == 2.0
        assert len(q) == 1

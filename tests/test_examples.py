"""Smoke tests: every example script runs to completion.

The slower, sweep-style examples are exercised at reduced scale through
their underlying experiment modules elsewhere; here we run the fast ones
verbatim as a user would.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "convergence_comparison.py",
    "fault_tolerance.py",
    "agent_based_solvers.py",
    "service_quickstart.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path)], capture_output=True, text=True,
        timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_all_examples_have_docstrings_and_main():
    for path in EXAMPLES.glob("*.py"):
        text = path.read_text()
        assert text.lstrip().startswith(('#!', '"""')), path.name
        assert '__main__' in text, f"{path.name} is not runnable"

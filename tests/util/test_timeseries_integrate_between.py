"""Tests for the exact interval integral on TimeSeries."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ValidationError
from repro.util.timeseries import TimeSeries


class TestIntegrateBetween:
    def test_full_span_matches_step_plus_tail(self):
        ts = TimeSeries([0, 2, 5], [10, 20, 30])
        # step over samples: 10*2 + 20*3 = 80; integrate_between(0, 5)
        # ends exactly at the last sample => same value.
        assert ts.integrate_between(0, 5) == pytest.approx(80.0)

    def test_tail_beyond_last_sample_held(self):
        ts = TimeSeries([0, 2], [10, 20])
        # 10*2 + 20*(4-2) = 60.
        assert ts.integrate_between(0, 4) == pytest.approx(60.0)

    def test_partial_start(self):
        ts = TimeSeries([0, 2], [10, 20])
        # [1, 3]: 10*(2-1) + 20*(3-2) = 30.
        assert ts.integrate_between(1, 3) == pytest.approx(30.0)

    def test_before_first_sample_contributes_zero(self):
        ts = TimeSeries([5], [100.0])
        assert ts.integrate_between(0, 5) == 0.0
        assert ts.integrate_between(0, 6) == pytest.approx(100.0)

    def test_empty_series(self):
        assert TimeSeries().integrate_between(0, 10) == 0.0

    def test_zero_width(self):
        ts = TimeSeries([0], [5.0])
        assert ts.integrate_between(3, 3) == 0.0

    def test_invalid_order(self):
        with pytest.raises(ValidationError):
            TimeSeries([0], [1]).integrate_between(2, 1)

    def test_interval_inside_one_hold(self):
        ts = TimeSeries([0, 10], [7.0, 9.0])
        assert ts.integrate_between(2, 4) == pytest.approx(14.0)

    @given(st.lists(st.tuples(st.floats(0, 50), st.floats(0, 100)),
                    min_size=1, max_size=20),
           st.floats(0, 60), st.floats(0, 60))
    def test_property_additive_over_subintervals(self, samples, a, b):
        samples = sorted(samples, key=lambda p: p[0])
        ts = TimeSeries([p[0] for p in samples], [p[1] for p in samples])
        t0, t1 = min(a, b), max(a, b)
        mid = (t0 + t1) / 2
        whole = ts.integrate_between(t0, t1)
        parts = ts.integrate_between(t0, mid) + ts.integrate_between(mid, t1)
        assert whole == pytest.approx(parts, abs=1e-6)

    @given(st.floats(0.05, 5.0), st.floats(1.0, 50.0))
    def test_property_constant_signal_exact(self, period, t_end):
        t = np.arange(0, t_end + period, period)
        ts = TimeSeries(t, np.full(t.size, 42.0))
        assert ts.integrate_between(0, t_end) == pytest.approx(42.0 * t_end,
                                                               rel=1e-9)

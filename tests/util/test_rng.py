"""Tests for deterministic RNG streams."""

import numpy as np

from repro.util.rng import RngFactory, make_rng


class TestMakeRng:
    def test_same_seed_same_sequence(self):
        a = make_rng(7).random(10)
        b = make_rng(7).random(10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).random(10)
        b = make_rng(2).random(10)
        assert not np.array_equal(a, b)


class TestRngFactory:
    def test_same_name_same_stream(self):
        f = RngFactory(42)
        g = RngFactory(42)
        assert np.array_equal(f.stream("x").random(5), g.stream("x").random(5))

    def test_different_names_independent(self):
        f = RngFactory(42)
        a = f.stream("alpha").random(20)
        b = f.stream("beta").random(20)
        assert not np.array_equal(a, b)

    def test_creation_order_irrelevant(self):
        f = RngFactory(9)
        g = RngFactory(9)
        a1 = f.stream("a")
        _ = f.stream("b")
        _ = g.stream("b")
        a2 = g.stream("a")
        assert np.array_equal(a1.random(8), a2.random(8))

    def test_prefix_names_do_not_collide(self):
        f = RngFactory(3)
        a = f.stream("ab").random(10)
        b = f.stream("abc").random(10)
        assert not np.array_equal(a, b)

    def test_streams_bulk(self):
        f = RngFactory(0)
        d = f.streams(["u", "v"])
        assert set(d) == {"u", "v"}

    def test_child_namespacing(self):
        f = RngFactory(5)
        c1 = f.child("replica0").stream("noise").random(6)
        c2 = f.child("replica1").stream("noise").random(6)
        assert not np.array_equal(c1, c2)

    def test_child_reproducible(self):
        a = RngFactory(5).child("r").stream("s").random(4)
        b = RngFactory(5).child("r").stream("s").random(4)
        assert np.array_equal(a, b)

    def test_seed_property(self):
        assert RngFactory(11).seed == 11

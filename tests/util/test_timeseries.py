"""Tests (incl. property tests) for the TimeSeries container."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ValidationError
from repro.util.timeseries import TimeSeries


class TestConstruction:
    def test_empty(self):
        ts = TimeSeries()
        assert len(ts) == 0

    def test_initial_samples(self):
        ts = TimeSeries([0, 1, 2], [5, 6, 7])
        assert len(ts) == 3
        assert ts.values.tolist() == [5, 6, 7]

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValidationError):
            TimeSeries([0, 1], [1])

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValidationError):
            TimeSeries([1, 0], [1, 2])


class TestAppend:
    def test_append_grows(self):
        ts = TimeSeries()
        for i in range(200):  # force several buffer growths
            ts.append(float(i), float(i * i))
        assert len(ts) == 200
        assert ts.values[150] == 150.0 * 150.0

    def test_append_equal_time_ok(self):
        ts = TimeSeries([1.0], [2.0])
        ts.append(1.0, 3.0)
        assert len(ts) == 2

    def test_append_past_rejected(self):
        ts = TimeSeries([1.0], [2.0])
        with pytest.raises(ValidationError):
            ts.append(0.5, 0.0)

    def test_extend(self):
        ts = TimeSeries()
        ts.extend([0, 1], [10, 20])
        assert ts.times.tolist() == [0, 1]


class TestIntegrate:
    def test_step_integral(self):
        # 10 W for 2 s then 20 W for 3 s = 80 J; final sample contributes 0.
        ts = TimeSeries([0, 2, 5], [10, 20, 99])
        assert ts.integrate("step") == pytest.approx(80.0)

    def test_trapezoid(self):
        ts = TimeSeries([0, 2], [0, 2])
        assert ts.integrate("trapezoid") == pytest.approx(2.0)

    def test_single_sample_is_zero(self):
        assert TimeSeries([1], [5]).integrate() == 0.0

    def test_unknown_method(self):
        with pytest.raises(ValidationError):
            TimeSeries([0, 1], [1, 1]).integrate("simpson")

    def test_mean_time_weighted(self):
        ts = TimeSeries([0, 1, 3], [6, 3, 0])
        # step: 6 for 1s + 3 for 2s over 3s span = 12/3 = 4
        assert ts.mean() == pytest.approx(4.0)

    def test_mean_zero_span_falls_back(self):
        ts = TimeSeries([1, 1], [2, 4])
        assert ts.mean() == pytest.approx(3.0)

    def test_minmax(self):
        ts = TimeSeries([0, 1], [3, -2])
        assert ts.max() == 3 and ts.min() == -2

    def test_empty_stats_raise(self):
        for fn in ("mean", "max", "min"):
            with pytest.raises(ValidationError):
                getattr(TimeSeries(), fn)()


class TestLookup:
    def test_value_at_holds(self):
        ts = TimeSeries([0, 10], [1, 2])
        assert ts.value_at(5) == 1
        assert ts.value_at(10) == 2
        assert ts.value_at(11) == 2

    def test_value_at_before_start(self):
        with pytest.raises(ValidationError):
            TimeSeries([5], [1]).value_at(4)

    def test_window(self):
        ts = TimeSeries([0, 1, 2, 3], [9, 8, 7, 6])
        w = ts.window(1, 3)
        assert w.times.tolist() == [1, 2]

    def test_window_invalid(self):
        with pytest.raises(ValidationError):
            TimeSeries().window(3, 1)

    def test_resample(self):
        ts = TimeSeries([0, 1.0], [5, 7])
        rs = ts.resample(0.5)
        assert rs.values.tolist() == [5, 5, 7]

    def test_resample_bad_period(self):
        with pytest.raises(ValidationError):
            TimeSeries([0], [1]).resample(0)

    def test_resample_empty(self):
        assert len(TimeSeries().resample(1.0)) == 0


@given(st.lists(st.tuples(st.floats(0, 100), st.floats(-1e6, 1e6)),
                min_size=2, max_size=50))
def test_property_step_integral_bounded_by_extremes(samples):
    """step-integral lies within [min*span, max*span]."""
    samples = sorted(samples, key=lambda p: p[0])
    t = [p[0] for p in samples]
    v = [p[1] for p in samples]
    ts = TimeSeries(t, v)
    span = t[-1] - t[0]
    integral = ts.integrate("step")
    lo, hi = min(v) * span, max(v) * span
    assert lo - 1e-6 <= integral <= hi + 1e-6


@given(st.lists(st.floats(0, 1000), min_size=1, max_size=40),
       st.floats(-50, 50))
def test_property_value_at_returns_some_sample(times, shift):
    times = sorted(times)
    values = list(range(len(times)))
    ts = TimeSeries(times, values)
    q = times[0] + abs(shift)
    assert ts.value_at(q) in values

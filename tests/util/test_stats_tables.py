"""Tests for stats summaries and ASCII table rendering."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.util.stats import percentile, summarize
from repro.util.tables import render_series, render_table


class TestSummarize:
    def test_basic(self):
        s = summarize([1, 2, 3, 4])
        assert s.n == 4
        assert s.mean == pytest.approx(2.5)
        assert s.min == 1 and s.max == 4

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            summarize([])

    def test_str_roundtrip(self):
        s = summarize([1.0])
        assert "n=1" in str(s)

    def test_percentiles_ordered(self):
        s = summarize(np.arange(1000))
        assert s.p50 <= s.p95 <= s.p99 <= s.max


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_bounds(self):
        with pytest.raises(ValidationError):
            percentile([1], 101)
        with pytest.raises(ValidationError):
            percentile([1], -1)

    def test_empty(self):
        with pytest.raises(ValidationError):
            percentile([], 50)


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.5], [30, 4]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, sep, 2 rows
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_title(self):
        out = render_table(["x"], [[1]], title="Fig. 6")
        assert out.splitlines()[0] == "Fig. 6"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = render_table(["v"], [[1.23456789]], ndigits=3)
        assert "1.23" in out and "1.2345" not in out


class TestRenderSeries:
    def test_columns(self):
        out = render_series({"edr": [1, 2], "donar": [3, 4]}, x=[10, 20],
                            x_label="requests")
        assert "requests" in out and "edr" in out and "donar" in out

    def test_ragged_series_padded_with_nan(self):
        out = render_series({"a": [1]}, x=[1, 2])
        assert "nan" in out

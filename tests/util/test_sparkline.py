"""Tests for sparkline rendering."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.util.sparkline import profile_panel, sparkline
from repro.util.timeseries import TimeSeries


class TestSparkline:
    def test_fixed_width(self):
        assert len(sparkline(np.arange(1000), width=40)) == 40
        assert len(sparkline([1.0], width=10)) == 10

    def test_empty(self):
        assert sparkline([], width=5) == "     "

    def test_monotone_ramp_is_nondecreasing(self):
        s = sparkline(np.linspace(0, 1, 600), width=30)
        assert list(s) == sorted(s)

    def test_constant_flatline(self):
        s = sparkline(np.full(100, 7.0), width=20)
        assert len(set(s)) == 1

    def test_explicit_scale(self):
        # With a far-away hi, a small signal maps to the lowest bars.
        s = sparkline([1.0, 1.0], width=4, lo=0.0, hi=1000.0)
        assert set(s) <= {" ", "▁"}

    def test_width_validation(self):
        with pytest.raises(ValidationError):
            sparkline([1.0], width=0)

    def test_fewer_points_than_width(self):
        s = sparkline([0.0, 10.0], width=10)
        assert len(s) == 10
        assert s[0] != s[-1]


class TestProfilePanel:
    def test_shared_scale_and_alignment(self):
        profiles = {
            "replica1": TimeSeries([0, 1, 2], [215, 240, 215]),
            "r2": TimeSeries([0, 1, 2], [215, 215, 215]),
        }
        out = profile_panel(profiles, width=20)
        lines = out.splitlines()
        assert "scale: 215.0 .. 240.0" in lines[0]
        assert lines[1].startswith("replica1")
        # The busy replica's sparkline has a taller peak than the idle one.
        assert max(lines[1]) > max(lines[2])

    def test_title(self):
        profiles = {"a": TimeSeries([0, 1], [1, 2])}
        out = profile_panel(profiles, title="Fig. 4")
        assert out.splitlines()[0] == "Fig. 4"

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            profile_panel({})

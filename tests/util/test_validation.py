"""Tests for argument-validation helpers."""

import numpy as np
import pytest

from repro.errors import ReproError, ValidationError
from repro.util.validation import (
    as_float_array,
    check_finite,
    check_nonnegative,
    check_positive,
    check_probability,
    check_shape,
)


class TestCheckFinite:
    def test_passes_finite(self):
        out = check_finite([1.0, 2.0])
        assert out.tolist() == [1.0, 2.0]

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_finite([1.0, float("nan")])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            check_finite(np.inf)

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            check_finite(["a", "b"])

    def test_error_is_value_error_too(self):
        with pytest.raises(ValueError):
            check_finite(np.nan)

    def test_error_is_repro_error(self):
        with pytest.raises(ReproError):
            check_finite(np.nan)


class TestSignChecks:
    def test_nonnegative_accepts_zero(self):
        check_nonnegative([0.0, 1.0])

    def test_nonnegative_rejects_negative(self):
        with pytest.raises(ValidationError, match="nonnegative"):
            check_nonnegative([-1e-9])

    def test_positive_rejects_zero(self):
        with pytest.raises(ValidationError, match="positive"):
            check_positive([0.0])

    def test_positive_accepts(self):
        check_positive([1e-12, 5])


class TestProbability:
    @pytest.mark.parametrize("p", [0.0, 0.5, 1.0])
    def test_accepts(self, p):
        assert check_probability(p) == p

    @pytest.mark.parametrize("p", [-0.01, 1.01])
    def test_rejects(self, p):
        with pytest.raises(ValidationError):
            check_probability(p)


class TestCheckShape:
    def test_exact_match(self):
        out = check_shape(np.zeros((3, 4)), (3, 4))
        assert out.shape == (3, 4)

    def test_wildcard(self):
        check_shape(np.zeros((3, 4)), (-1, 4))

    def test_wrong_ndim(self):
        with pytest.raises(ValidationError, match="dimensions"):
            check_shape(np.zeros(3), (3, 1))

    def test_wrong_extent(self):
        with pytest.raises(ValidationError, match="extent"):
            check_shape(np.zeros((3, 4)), (3, 5))


class TestAsFloatArray:
    def test_converts_list(self):
        assert as_float_array([1, 2]).dtype == float

    def test_rejects_strings(self):
        with pytest.raises(ValidationError):
            as_float_array(["x"])

"""Public-surface lint guards.

Two contracts enforced repo-wide:

* ``__all__`` reconciliation — every name a package advertises must
  resolve, and the promoted top-level entry points must be re-exported
  consistently.
* keyword-only options — public functions take defaulted options
  keyword-only (the positional-``aggregate`` era is over).  A small
  allowlist grandfathers ergonomic positionals (``solve``'s
  ``algorithm``, ``solve_sharded``'s ``n_shards``, ...); additions to
  that list need a review, not an accident.
"""

import importlib
import inspect

import pytest

PACKAGES = ["repro", "repro.core", "repro.edr", "repro.obs",
            "repro.service"]

#: (module, function, parameter) triples allowed to keep a defaulted
#: positional-or-keyword parameter.  Grow this list deliberately.
KEYWORD_ONLY_ALLOWLIST = {
    ("repro.core.api", "solve", "algorithm"),
    ("repro.core.aggregate", "solve_aggregated", "method"),
    ("repro.edr.coordinator", "solve_sharded", "n_shards"),
    ("repro.service.server", "serve", "config"),
    ("repro.core.projection", "project_local_set", "max_iter"),
    ("repro.core.projection", "project_local_set", "tol"),
    ("repro.core.consensus", "ring_weights", "self_weight"),
    ("repro.core.consensus", "is_doubly_stochastic", "tol"),
    ("repro.core.warmstart", "project_warm_start", "repair_sweeps"),
}


def public_functions():
    """Every function any audited package advertises via ``__all__``."""
    seen = {}
    for package in PACKAGES:
        module = importlib.import_module(package)
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isfunction(obj):
                seen[(obj.__module__, obj.__qualname__)] = obj
    return sorted(seen.items())


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    missing = [n for n in module.__all__ if not hasattr(module, n)]
    assert not missing, f"{package}.__all__ names {missing} do not resolve"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_has_no_duplicates(package):
    names = importlib.import_module(package).__all__
    assert len(names) == len(set(names))


def test_promoted_entry_points_are_top_level():
    import repro

    for name in ("solve", "serve", "connect"):
        assert name in repro.__all__
        assert callable(getattr(repro, name))


def test_top_level_reexports_match_origins():
    """repro.<name> is the same object as its defining module's."""
    import repro
    import repro.core
    import repro.service

    assert repro.solve is repro.core.solve
    assert repro.serve is repro.service.serve
    assert repro.connect is repro.service.connect
    assert repro.EDRClient is repro.service.EDRClient


@pytest.mark.parametrize(
    "key,func", public_functions(),
    ids=[f"{m}.{q}" for (m, q), _ in public_functions()])
def test_public_function_options_are_keyword_only(key, func):
    """Defaulted parameters of public functions must be keyword-only."""
    module, qualname = key
    violations = []
    for param in inspect.signature(func).parameters.values():
        if (param.default is not inspect.Parameter.empty
                and param.kind is inspect.Parameter.POSITIONAL_OR_KEYWORD
                and (module, qualname, param.name)
                not in KEYWORD_ONLY_ALLOWLIST):
            violations.append(param.name)
    assert not violations, (
        f"{module}.{qualname} takes defaulted option(s) {violations} "
        f"positionally; make them keyword-only (add * before them) or — "
        f"deliberately — extend KEYWORD_ONLY_ALLOWLIST")


def test_allowlist_entries_still_exist():
    """Stale allowlist rows (renamed/removed functions) must be pruned."""
    live = {(m, q.split(".")[-1]) for (m, q), _ in public_functions()}
    for module, func, _param in KEYWORD_ONLY_ALLOWLIST:
        assert (module, func) in live, (
            f"allowlist entry {module}.{func} is no longer public")

"""Batched kernels vs the scalar reference oracles.

Every kernel in :mod:`repro.core.kernels` must reproduce its scalar
counterpart to 1e-9 on random masked and unmasked instances — the
batched solver paths are only trustworthy because these hold.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import kernels
from repro.core.cdpsm import CdpsmSolver
from repro.core.lddm import LddmSolver
from repro.core.projection import (
    _project_demands_reference,
    project_capped_simplex,
    project_demands,
    project_local_set,
)
from repro.core.subproblem import ReplicaSubproblem, solve_replica_subproblem
from repro.errors import ValidationError
from tests.core.conftest import random_instance

ORACLE_ATOL = 1e-9


def _random_mask(rng, C, N, density=0.7):
    mask = rng.random((C, N)) < density
    for c in range(C):
        if not mask[c].any():
            mask[c, int(rng.integers(N))] = True
    return mask


class TestGroupedDemandProjection:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 100000))
    def test_property_grouped_matches_per_row(self, seed):
        rng = np.random.default_rng(seed)
        C, N = int(rng.integers(1, 12)), int(rng.integers(1, 8))
        P = rng.uniform(-15, 30, size=(C, N))
        R = rng.uniform(0, 25, size=C)
        mask = _random_mask(rng, C, N) if rng.random() < 0.7 \
            else np.ones((C, N), dtype=bool)
        fast = project_demands(P, R, mask)
        slow = _project_demands_reference(P, R, mask)
        assert np.allclose(fast, slow, atol=ORACLE_ATOL)

    def test_empty_support_with_demand_rejected(self):
        mask = np.array([[True, False], [False, False]])
        with pytest.raises(ValidationError):
            project_demands(np.ones((2, 2)), np.array([1.0, 2.0]), mask)

    def test_empty_support_without_demand_allowed(self):
        mask = np.array([[True, False], [False, False]])
        out = project_demands(np.ones((2, 2)), np.array([1.0, 0.0]), mask)
        assert np.all(out[1] == 0.0)


class TestStackProjectDemands:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 100000))
    def test_property_stack_matches_per_slice(self, seed):
        rng = np.random.default_rng(seed)
        K = int(rng.integers(1, 6))
        C, N = int(rng.integers(1, 10)), int(rng.integers(1, 8))
        S = rng.uniform(-15, 30, size=(K, C, N))
        R = rng.uniform(0, 25, size=C)
        mask = _random_mask(rng, C, N) if rng.random() < 0.6 \
            else np.ones((C, N), dtype=bool)
        out = kernels.stack_project_demands(S, R, mask)
        for k in range(K):
            ref = _project_demands_reference(S[k], R, mask)
            assert np.allclose(out[k], ref, atol=ORACLE_ATOL), f"slice {k}"

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValidationError):
            kernels.stack_project_demands(
                np.ones((2, 3)), np.ones(2), np.ones((2, 3), dtype=bool))


class TestRowsCappedSimplex:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 100000))
    def test_property_rows_match_scalar_cap(self, seed):
        rng = np.random.default_rng(seed)
        K, C = int(rng.integers(1, 8)), int(rng.integers(1, 10))
        V = rng.uniform(-10, 30, size=(K, C))
        caps = rng.uniform(0.1, 40, size=K)
        out = kernels._rows_capped_simplex(V.copy(), caps)
        for k in range(K):
            ref = project_capped_simplex(V[k], float(caps[k]))
            assert np.allclose(out[k], ref, atol=ORACLE_ATOL), f"row {k}"


class TestStackedDykstra:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 100000))
    def test_property_stacked_matches_per_slice(self, seed):
        rng = np.random.default_rng(seed)
        K = int(rng.integers(1, 5))
        C, N = int(rng.integers(2, 8)), int(rng.integers(2, 6))
        S = rng.uniform(-5, 25, size=(K, C, N))
        R = rng.uniform(1, 20, size=C)
        mask = _random_mask(rng, C, N) if rng.random() < 0.5 \
            else np.ones((C, N), dtype=bool)
        columns = rng.integers(N, size=K)
        caps = rng.uniform(R.sum() / N + 1, R.sum() + 5, size=K)
        out = kernels.project_local_sets_stacked(
            S, R, mask, columns, caps, max_iter=60)
        for k in range(K):
            ref = project_local_set(S[k], R, mask, int(columns[k]),
                                    float(caps[k]), max_iter=60)
            assert np.allclose(out[k], ref, atol=ORACLE_ATOL), f"slice {k}"


class TestLddmColumns:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 100000))
    def test_property_columns_match_scalar_subproblems(self, seed):
        rng = np.random.default_rng(seed)
        masked = bool(rng.random() < 0.6)
        problem = random_instance(seed, n_clients=int(rng.integers(2, 8)),
                                  n_replicas=int(rng.integers(2, 6)),
                                  masked=masked)
        data = problem.data
        mu = rng.uniform(-80, 10, size=data.n_clients)
        prev = problem.uniform_allocation() \
            * rng.uniform(0, 2, size=data.shape)
        epsilon = float(rng.choice([0.0, 0.05, 0.5, 5.0]))
        out = kernels.lddm_solve_columns(data, mu, prev, epsilon)
        ref = np.zeros(data.shape)
        for n in range(data.n_replicas):
            eligible = data.mask[:, n]
            if not eligible.any():
                continue
            sub = ReplicaSubproblem(
                price=float(data.u[n]), alpha=float(data.alpha[n]),
                beta=float(data.beta[n]), gamma=float(data.gamma[n]),
                bandwidth=float(data.B[n]), mu=mu[eligible],
                ref=prev[eligible, n], epsilon=epsilon)
            ref[eligible, n] = solve_replica_subproblem(sub)
        assert np.allclose(out, ref, atol=ORACLE_ATOL)

    def test_validation(self):
        problem = random_instance(0)
        data = problem.data
        prev = problem.uniform_allocation()
        with pytest.raises(ValidationError):
            kernels.lddm_solve_columns(data, np.zeros(3), prev, 0.5)
        with pytest.raises(ValidationError):
            kernels.lddm_solve_columns(
                data, np.zeros(data.n_clients), prev, -1.0)


class TestCdpsmGradientStep:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 100000))
    def test_property_step_matches_scalar_loop(self, seed):
        from repro.core import model
        rng = np.random.default_rng(seed)
        problem = random_instance(seed, n_clients=int(rng.integers(2, 8)),
                                  n_replicas=int(rng.integers(2, 6)),
                                  masked=bool(rng.random() < 0.5))
        data = problem.data
        N = data.n_replicas
        V = rng.uniform(0, 20, size=(N, data.n_clients, N))
        d_k = float(rng.uniform(0.01, 2.0))
        out = kernels.cdpsm_gradient_step(data, V, d_k)
        for i in range(N):
            marginal = model.load_marginal_cost(data, V[i].sum(axis=0))[i]
            ref = V[i].copy()
            ref[:, i] -= d_k * marginal * data.mask[:, i]
            assert np.allclose(out[i], ref, atol=ORACLE_ATOL), f"replica {i}"


class TestRepairAndObjectiveStacks:
    @pytest.mark.parametrize("seed", range(8))
    def test_repair_stack_matches_scalar_repair(self, seed):
        rng = np.random.default_rng(seed)
        problem = random_instance(seed, masked=(seed % 2 == 0),
                                  tight=(seed % 3 == 0))
        data = problem.data
        K = 5
        # Mix of feasible-ish and strongly violating iterates.
        stack = np.stack([problem.uniform_allocation()
                          * rng.uniform(0, 3, size=data.shape)
                          for _ in range(K)])
        out = kernels.repair_stack(data, stack, sweeps=10)
        for k in range(K):
            ref = problem.repair(stack[k], sweeps=10)
            assert np.allclose(out[k], ref, atol=ORACLE_ATOL), f"slice {k}"

    @pytest.mark.parametrize("seed", range(4))
    def test_objective_history_matches_scalar(self, seed):
        rng = np.random.default_rng(seed)
        problem = random_instance(seed, masked=(seed % 2 == 0))
        data = problem.data
        candidates = [problem.uniform_allocation()
                      * rng.uniform(0, 2, size=data.shape)
                      for _ in range(7)]
        got = kernels.objective_history(data, candidates, sweeps=10, chunk=3)
        want = [problem.objective(problem.repair(c, sweeps=10))
                for c in candidates]
        assert len(got) == len(want)
        assert np.allclose(got, want, atol=ORACLE_ATOL)


class TestBatchedSolversMatchScalar:
    """End-to-end: batched solver runs reproduce the scalar oracles."""

    def _check(self, problem, cls, **kw):
        batched = cls(problem, batched=True, **kw).solve()
        scalar = cls(problem, batched=False, **kw).solve()
        assert batched.iterations == scalar.iterations
        assert abs(batched.objective - scalar.objective) < 1e-6
        assert np.allclose(batched.allocation, scalar.allocation, atol=1e-6)
        assert len(batched.objective_history) == len(scalar.objective_history)
        assert np.allclose(batched.objective_history,
                           scalar.objective_history, atol=1e-6)

    def test_cdpsm_paper_instance(self, paper_instance):
        self._check(paper_instance, CdpsmSolver, max_iter=60)

    def test_lddm_paper_instance(self, paper_instance):
        self._check(paper_instance, LddmSolver, max_iter=150)

    def test_cdpsm_tiny_instance(self, tiny_instance):
        self._check(tiny_instance, CdpsmSolver, max_iter=60)

    def test_lddm_tiny_instance(self, tiny_instance):
        self._check(tiny_instance, LddmSolver, max_iter=150)

    @pytest.mark.parametrize("seed", range(4))
    def test_cdpsm_random_masked(self, seed):
        self._check(random_instance(seed, masked=True), CdpsmSolver,
                    max_iter=40)

    @pytest.mark.parametrize("seed", range(4))
    def test_lddm_random_masked(self, seed):
        self._check(random_instance(seed, masked=True), LddmSolver,
                    max_iter=80)

    def test_lddm_exact_subproblem_path(self, tiny_instance):
        self._check(tiny_instance, LddmSolver, max_iter=60,
                    exact_subproblem=True, averaging=True)


class TestWarmStartedSolversMatchScalar:
    """Warm-started runs stay on the scalar oracle path too.

    The warm-start plumbing (``initial``/``mu0``) feeds both the batched
    and scalar per-iteration kernels; every iterate must agree to the
    oracle tolerance, exactly like the cold-start equivalence above.
    """

    def _warm_point(self, problem, seed=0):
        rng = np.random.default_rng(seed)
        noisy = problem.uniform_allocation() \
            * rng.uniform(0.5, 1.5, size=problem.data.shape)
        initial = problem.repair(noisy)
        mu0 = rng.uniform(-50.0, 0.0, size=problem.data.n_clients)
        return initial, mu0

    def _check_lddm(self, problem, **kw):
        initial, mu0 = self._warm_point(problem)
        runs = {}
        for batched in (True, False):
            solver = LddmSolver(problem, batched=batched,
                                track_objective=False, **kw)
            iters = [(k, cand.copy(), res) for k, cand, res
                     in solver.iterations(initial, mu0=mu0)]
            runs[batched] = (iters, solver.mu_.copy(), solver.converged_)
        (fast, fast_mu, fast_conv) = runs[True]
        (slow, slow_mu, slow_conv) = runs[False]
        assert len(fast) == len(slow)
        assert fast_conv == slow_conv
        assert np.allclose(fast_mu, slow_mu, atol=ORACLE_ATOL)
        for (kf, cf, rf), (ks, cs, rs) in zip(fast, slow):
            assert kf == ks
            assert np.allclose(cf, cs, atol=ORACLE_ATOL)
            assert abs(rf - rs) < ORACLE_ATOL

    def _check_cdpsm(self, problem, **kw):
        initial, _ = self._warm_point(problem)
        runs = {}
        for batched in (True, False):
            solver = CdpsmSolver(problem, batched=batched,
                                 track_objective=False, **kw)
            runs[batched] = [(k, cand.copy()) for k, cand, _
                             in solver.iterations(initial)]
        assert len(runs[True]) == len(runs[False])
        for (kf, cf), (ks, cs) in zip(runs[True], runs[False]):
            assert kf == ks
            assert np.allclose(cf, cs, atol=ORACLE_ATOL)

    def test_lddm_warm_paper_instance(self, paper_instance):
        self._check_lddm(paper_instance, max_iter=80)

    def test_cdpsm_warm_paper_instance(self, paper_instance):
        self._check_cdpsm(paper_instance, max_iter=40)

    @pytest.mark.parametrize("seed", range(3))
    def test_lddm_warm_random_masked(self, seed):
        self._check_lddm(random_instance(seed, masked=True), max_iter=60)

    @pytest.mark.parametrize("seed", range(3))
    def test_cdpsm_warm_random_masked(self, seed):
        self._check_cdpsm(random_instance(seed, masked=True), max_iter=30)

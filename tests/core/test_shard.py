"""Solve shards: partitioning, the batched water-fill, round semantics.

The shard is the unit the sharded control plane ships around — these
tests pin the pieces the coordinator's correctness rests on: the class
partition is deterministic and demand-balanced, the batched water-fill
kernel matches the scalar per-row oracle exactly (including background
loads and capacity-unfit rows), a lone shard's exchange rounds land on
the centralized optimum, damping never breaks row-sum feasibility, and
the process-pool round path is bit-identical to the in-process one.
"""

import copy

import numpy as np
import pytest

from repro.core.incremental import IncrementalState
from repro.core.kernels import waterfill_rows
from repro.core.reference import solve_reference
from repro.core.shard import (
    SolveShard,
    partition_classes,
    run_shard_round,
)
from repro.errors import ValidationError
from repro.util.rng import make_rng
from tests.core.conftest import random_instance


def _row_state(problem, seed=0, background_scale=0.0):
    """An IncrementalState treating every client row as its own class."""
    data = problem.data
    tokens = [data.mask[i].tobytes() + bytes([i])
              for i in range(data.n_clients)]
    ref = solve_reference(problem)
    st = IncrementalState(data, tokens, ref.allocation)
    if background_scale > 0.0:
        rng = make_rng(seed)
        st.set_background(
            rng.uniform(0.0, background_scale, size=data.B.shape[0]))
    return st


def _shard_from_state(st, shard_id=0, **kwargs):
    return SolveShard(
        shard_id, tokens=list(st.tokens), demands=st.D,
        capacities=st.B, prices=st.u, alpha=st.alpha, beta=st.beta,
        gamma=st.gamma, mask=st.masks, allocation=st.Q, **kwargs)


class TestPartition:
    def test_deterministic(self):
        D = make_rng(3).uniform(1, 100, size=17)
        a = partition_classes(D, 4)
        b = partition_classes(D, 4)
        assert np.array_equal(a, b)

    def test_every_class_assigned_in_range(self):
        D = make_rng(5).uniform(1, 50, size=11)
        shard_of = partition_classes(D, 3)
        assert shard_of.shape == (11,)
        assert set(np.unique(shard_of)) <= {0, 1, 2}

    def test_demand_balanced_lpt_bound(self):
        # Greedy LPT: the heaviest shard carries at most the balanced
        # share plus one item — far below a degenerate all-on-one split.
        D = make_rng(7).uniform(1, 100, size=40)
        shard_of = partition_classes(D, 4)
        totals = [D[shard_of == s].sum() for s in range(4)]
        assert max(totals) <= D.sum() / 4 + D.max()

    def test_more_shards_than_classes(self):
        D = np.array([5.0, 3.0])
        shard_of = partition_classes(D, 4)
        # The two classes land on distinct shards; the rest stay empty.
        assert shard_of[0] != shard_of[1]

    def test_single_shard_takes_everything(self):
        D = make_rng(1).uniform(1, 10, size=6)
        assert np.array_equal(partition_classes(D, 1), np.zeros(6, int))

    def test_validation(self):
        with pytest.raises(ValidationError):
            partition_classes(np.ones((2, 2)), 2)
        with pytest.raises(ValidationError):
            partition_classes(np.ones(3), 0)


class TestWaterfillRows:
    def _batched_inputs(self, st):
        other = np.maximum(st.loads[None, :] - st.Q, 0.0)
        base = other + st.background[None, :]
        head = np.where(st.masks,
                        np.maximum(st.B[None, :] - base, 0.0), 0.0)
        return base, head

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("background_scale", [0.0, 20.0])
    def test_matches_scalar_oracle(self, seed, background_scale):
        problem = random_instance(seed, n_clients=6, n_replicas=4,
                                  masked=True)
        st = _row_state(problem, seed=seed,
                        background_scale=background_scale)
        base, head = self._batched_inputs(st)
        P, fits = waterfill_rows(st.u, st.alpha, st.beta, st.gamma,
                                 st.D, base, head)
        for k in range(st.n_classes):
            oracle = copy.deepcopy(st)
            ok = oracle._rebalance_row(k)
            if not ok:
                assert not fits[k]
                continue
            assert fits[k]
            np.testing.assert_allclose(P[k], oracle.Q[k],
                                       rtol=1e-6, atol=1e-8)

    def test_row_sums_meet_demand_when_fit(self):
        problem = random_instance(11, n_clients=8, n_replicas=5,
                                  masked=True)
        st = _row_state(problem)
        base, head = self._batched_inputs(st)
        P, fits = waterfill_rows(st.u, st.alpha, st.beta, st.gamma,
                                 st.D, base, head)
        assert fits.all()
        np.testing.assert_allclose(P.sum(axis=1), st.D, rtol=1e-9)
        assert (P >= -1e-12).all()
        assert (P <= head + 1e-9).all()

    def test_unfit_row_grabs_all_headroom(self):
        # One row's demand exceeds its eligible headroom: the kernel
        # reports no fit and fills every eligible column to the brim.
        u = np.array([1.0, 2.0])
        alpha = np.ones(2)
        beta = np.full(2, 0.01)
        gamma = np.full(2, 3.0)
        D = np.array([100.0])
        base = np.array([[0.0, 0.0]])
        head = np.array([[30.0, 40.0]])
        P, fits = waterfill_rows(u, alpha, beta, gamma, D, base, head)
        assert not fits[0]
        np.testing.assert_allclose(P[0], head[0])

    def test_linear_cost_columns(self):
        # gamma=1 makes the marginal constant: columns open whole as the
        # water level passes their price, and the final level's columns
        # share the remainder — the expensive column is never touched.
        u = np.array([3.0, 1.0, 2.0])
        alpha = np.ones(3)
        beta = np.zeros(3)
        gamma = np.ones(3)
        D = np.array([15.0])
        base = np.zeros((1, 3))
        head = np.full((1, 3), 10.0)
        P, fits = waterfill_rows(u, alpha, beta, gamma, D, base, head)
        assert fits[0]
        assert P[0, 0] == pytest.approx(0.0, abs=1e-9)
        assert P[0].sum() == pytest.approx(15.0, rel=1e-9)
        assert (P[0] <= head[0] + 1e-9).all()

    def test_zero_demand_row_is_empty(self):
        problem = random_instance(2, n_clients=3, n_replicas=3)
        st = _row_state(problem)
        D = st.D.copy()
        D[1] = 0.0
        base, head = self._batched_inputs(st)
        P, fits = waterfill_rows(st.u, st.alpha, st.beta, st.gamma,
                                 D, base, head)
        assert fits[1]
        np.testing.assert_allclose(P[1], 0.0)


class TestSolveRound:
    def test_lone_shard_lands_on_reference(self):
        # A single shard owning every class, zero background: exchange
        # rounds degenerate to the monolithic solve and must land on
        # the centralized optimum.
        problem = random_instance(4, n_clients=6, n_replicas=4,
                                  masked=True)
        st = _row_state(problem)
        shard = _shard_from_state(st)
        shard.state.Q[:] = 0.0
        shard.state.loads[:] = 0.0
        bg = np.zeros(problem.data.B.shape[0])
        for _ in range(8):
            r = shard.solve_round(bg, damping=1.0)
            if r.converged:
                break
        ref = solve_reference(problem)
        assert shard.state.objective() == pytest.approx(
            ref.objective, rel=1e-6)
        np.testing.assert_allclose(shard.state.Q.sum(axis=1),
                                   problem.data.R, rtol=1e-9)

    def test_damping_preserves_row_sums(self):
        problem = random_instance(6, n_clients=5, n_replicas=4)
        st = _row_state(problem)
        shard = _shard_from_state(st)
        bg = np.zeros(problem.data.B.shape[0])
        r = shard.solve_round(bg, damping=0.3)
        assert r.fit
        np.testing.assert_allclose(shard.state.Q.sum(axis=1),
                                   shard.state.D, rtol=1e-9)

    def test_background_shrinks_headroom(self):
        # With background pinning most of a cheap column's capacity the
        # shard must shift load elsewhere — its own loads never push a
        # column past B - background.
        problem = random_instance(8, n_clients=4, n_replicas=3)
        st = _row_state(problem)
        shard = _shard_from_state(st)
        B = shard.state.B
        bg = np.zeros_like(B)
        bg[0] = 0.95 * B[0]
        r = shard.solve_round(bg, damping=1.0)
        assert r.fit
        assert shard.state.loads[0] <= B[0] - bg[0] + 1e-9

    def test_empty_shard_round_is_noop(self):
        shard = SolveShard(
            0, tokens=[], demands=np.zeros(0),
            capacities=np.array([10.0, 10.0]), prices=np.ones(2),
            alpha=np.ones(2), beta=np.full(2, 0.01),
            gamma=np.full(2, 3.0), mask=np.zeros((0, 2), dtype=bool))
        r = shard.solve_round(np.zeros(2))
        assert r.converged and r.fit and r.sweeps == 0
        assert shard.n_rows == 0

    def test_drop_replica_zeroes_column(self):
        problem = random_instance(9, n_clients=4, n_replicas=3)
        st = _row_state(problem)
        shard = _shard_from_state(st)
        shard.drop_replica(1)
        assert (shard.state.Q[:, 1] == 0.0).all()
        assert not shard.state.masks[:, 1].any()
        assert shard.state.B[1] == 0.0

    def test_process_round_bit_identical(self):
        # The process worker rebuilds the shard from the payload and
        # must return exactly the rows the in-process path computes.
        problem = random_instance(10, n_clients=5, n_replicas=4,
                                  masked=True)
        st = _row_state(problem, seed=10, background_scale=10.0)
        shard_a = _shard_from_state(st)
        shard_b = _shard_from_state(st)
        bg = st.background.copy()
        payload = shard_a.round_payload(bg, 0.5)
        sid, Q, sweeps, converged, fit = run_shard_round(payload)
        r = shard_b.solve_round(bg, 0.5)
        assert sid == 0
        assert np.array_equal(Q, shard_b.state.Q)
        assert (sweeps, converged, fit) == \
            (r.sweeps, r.converged, r.fit)

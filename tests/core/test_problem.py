"""Tests for the problem container: feasibility, repair, helpers."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.params import ProblemData
from repro.core.problem import ReplicaSelectionProblem
from repro.errors import InfeasibleProblemError, ValidationError

from tests.core.conftest import random_instance


class TestFeasibility:
    def test_feasible_instance(self, paper_instance):
        report = paper_instance.feasibility_report()
        assert report["feasible"]
        assert report["max_flow"] == pytest.approx(report["total_demand"],
                                                   rel=1e-6)

    def test_demand_exceeds_capacity(self):
        data = ProblemData.paper_defaults(
            demands=[500.0], prices=[1.0, 2.0], bandwidth=100.0)
        prob = ReplicaSelectionProblem(data)
        assert not prob.is_feasible()
        with pytest.raises(InfeasibleProblemError, match="exceeds"):
            prob.require_feasible()

    def test_orphan_client(self):
        mask = np.array([[True, True], [False, False]])
        data = ProblemData.paper_defaults(
            demands=[10.0, 10.0], prices=[1.0, 2.0], mask=mask)
        prob = ReplicaSelectionProblem(data)
        report = prob.feasibility_report()
        assert not report["feasible"]
        assert report["orphan_clients"] == [1]
        with pytest.raises(InfeasibleProblemError, match="no latency-eligible"):
            prob.require_feasible()

    def test_masked_bottleneck(self):
        # Both clients can only reach replica 0 (B=100) but need 150 total.
        mask = np.array([[True, False], [True, False]])
        data = ProblemData.paper_defaults(
            demands=[75.0, 75.0], prices=[1.0, 1.0], mask=mask)
        assert not ReplicaSelectionProblem(data).is_feasible()

    def test_zero_demand_always_feasible(self):
        data = ProblemData.paper_defaults(demands=[0.0], prices=[1.0])
        assert ReplicaSelectionProblem(data).is_feasible()

    def test_exact_capacity_boundary(self):
        data = ProblemData.paper_defaults(
            demands=[100.0, 100.0], prices=[1.0, 2.0], bandwidth=100.0)
        assert ReplicaSelectionProblem(data).is_feasible()


class TestUniformAllocation:
    def test_row_sums_and_mask(self):
        mask = np.array([[True, True, False], [True, True, True]])
        data = ProblemData.paper_defaults(
            demands=[12.0, 30.0], prices=[1.0, 2.0, 3.0], mask=mask)
        P = ReplicaSelectionProblem(data).uniform_allocation()
        assert np.allclose(P.sum(axis=1), [12.0, 30.0])
        assert P[0, 2] == 0.0
        assert P[0, 0] == pytest.approx(6.0)
        assert P[1, 0] == pytest.approx(10.0)

    def test_orphan_raises(self):
        mask = np.array([[False]])
        data = ProblemData.paper_defaults(demands=[1.0], prices=[1.0],
                                          mask=mask)
        with pytest.raises(InfeasibleProblemError):
            ReplicaSelectionProblem(data).uniform_allocation()


class TestViolation:
    def test_zero_for_feasible(self, tiny_instance):
        P = tiny_instance.uniform_allocation()
        assert tiny_instance.violation(P) == pytest.approx(0.0, abs=1e-9)

    def test_detects_demand_gap(self, tiny_instance):
        P = tiny_instance.uniform_allocation()
        P[0] *= 0.5
        assert tiny_instance.violation(P) > 1.0

    def test_detects_capacity_overrun(self):
        data = ProblemData.paper_defaults([150.0], prices=[1.0, 1.0])
        prob = ReplicaSelectionProblem(data)
        P = np.array([[120.0, 30.0]])
        assert prob.violation(P) == pytest.approx(20.0)

    def test_detects_mask_mass(self):
        mask = np.array([[True, False]])
        data = ProblemData.paper_defaults([10.0], prices=[1.0, 1.0],
                                          mask=mask)
        prob = ReplicaSelectionProblem(data)
        P = np.array([[5.0, 5.0]])
        assert prob.violation(P) >= 5.0

    def test_detects_negative_entries(self, tiny_instance):
        P = tiny_instance.uniform_allocation()
        P[0, 0] -= 100.0
        assert tiny_instance.violation(P) >= 50.0

    def test_shape_check(self, tiny_instance):
        with pytest.raises(ValidationError):
            tiny_instance.violation(np.zeros((1, 1)))


class TestRepair:
    def test_repair_restores_demands(self, paper_instance):
        P = paper_instance.uniform_allocation() * 0.7  # demand broken
        fixed = paper_instance.repair(P)
        assert paper_instance.violation(fixed) < 1e-6

    def test_repair_fixes_capacity(self):
        data = ProblemData.paper_defaults(
            demands=[90.0, 90.0], prices=[1.0, 10.0], bandwidth=100.0)
        prob = ReplicaSelectionProblem(data)
        # All load dumped on the cheap replica: 180 > 100.
        P = np.array([[90.0, 0.0], [90.0, 0.0]])
        fixed = prob.repair(P)
        assert prob.violation(fixed) < 1e-6
        assert np.allclose(fixed.sum(axis=1), [90.0, 90.0])

    @pytest.mark.parametrize("seed", range(8))
    def test_repair_random_instances(self, seed):
        prob = random_instance(seed, masked=True, tight=True)
        rng = np.random.default_rng(seed)
        P = rng.uniform(0, 40, size=prob.data.shape) * prob.data.mask
        fixed = prob.repair(P)
        assert prob.violation(fixed) < 1e-4 * max(1.0, prob.data.R.max())

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 100_000), n_clients=st.integers(1, 12),
           n_replicas=st.integers(1, 6), masked=st.booleans(),
           tight=st.booleans(), start_scale=st.floats(0.0, 10.0))
    def test_repair_capacity_residual_bounded_after_budget(
            self, seed, n_clients, n_replicas, masked, tight, start_scale):
        # Repair is the rounding step every solver run ends with (and
        # aggregation adds a second call site at expansion), so its
        # residual after the default sweep budget must be bounded on any
        # feasible instance — from arbitrarily bad starting points.
        prob = random_instance(seed, n_clients=n_clients,
                               n_replicas=n_replicas, masked=masked,
                               tight=tight)
        assume(prob.is_feasible())
        rng = np.random.default_rng(seed)
        start = rng.uniform(0, start_scale * max(prob.data.R.max(), 1.0),
                            size=prob.data.shape)
        fixed = prob.repair(start)  # default sweep budget
        scale = max(float(prob.data.R.max()), float(prob.data.B.max()), 1.0)
        # Demand rows and the mask hold exactly by construction (repair
        # ends on the demand projection); the capacity residual after the
        # sweep budget is what the alternation can leave behind.
        assert np.max(np.abs(fixed.sum(axis=1) - prob.data.R)) <= 1e-9 * scale
        assert np.all(fixed[~prob.data.mask] == 0.0)
        assert np.all(fixed >= 0.0)
        capacity_residual = float(
            np.max(fixed.sum(axis=0) - prob.data.B, initial=0.0))
        assert capacity_residual <= 1e-6 * scale


class TestLowerBound:
    def test_lower_bound_no_worse_than_reference(self, paper_instance):
        from repro.core.reference import solve_reference
        lb_loads = paper_instance.lower_bound_loads()
        ref = solve_reference(paper_instance)
        # The greedy relaxation ignores convexity's spreading benefit, so it
        # is not a true bound in general; but for all-eligible instances the
        # reference optimum must serve the same total demand, so the greedy
        # load vector's *linear* component bounds below.
        linear_lb = float(np.sum(paper_instance.data.u * paper_instance.data.alpha
                                 * lb_loads))
        assert ref.objective >= linear_lb - 1e-6

"""Tests for consensus weights and step-size schedules."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.consensus import (
    is_doubly_stochastic,
    metropolis_weights,
    ring_weights,
    uniform_weights,
)
from repro.core.stepsize import ConstantStep, DiminishingStep, SqrtStep
from repro.errors import ValidationError


class TestUniformWeights:
    @given(st.integers(1, 30))
    def test_property_doubly_stochastic(self, n):
        assert is_doubly_stochastic(uniform_weights(n))

    def test_values(self):
        W = uniform_weights(4)
        assert np.allclose(W, 0.25)

    def test_validation(self):
        with pytest.raises(ValidationError):
            uniform_weights(0)


class TestRingWeights:
    @given(st.integers(1, 20), st.floats(0.1, 0.9))
    def test_property_doubly_stochastic(self, n, sw):
        assert is_doubly_stochastic(ring_weights(n, sw))

    def test_three_node_structure(self):
        W = ring_weights(3, self_weight=0.5)
        assert W[0, 0] == 0.5
        assert W[0, 1] == pytest.approx(0.25)
        assert W[0, 2] == pytest.approx(0.25)

    def test_two_nodes(self):
        W = ring_weights(2, 0.6)
        assert is_doubly_stochastic(W)
        assert W[0, 1] == pytest.approx(0.4)

    def test_single_node(self):
        assert ring_weights(1).tolist() == [[1.0]]

    def test_validation(self):
        with pytest.raises(ValidationError):
            ring_weights(3, self_weight=1.0)
        with pytest.raises(ValidationError):
            ring_weights(0)


class TestMetropolisWeights:
    def test_complete_graph(self):
        A = 1 - np.eye(4)
        W = metropolis_weights(A)
        assert is_doubly_stochastic(W)

    def test_path_graph(self):
        A = np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]])
        W = metropolis_weights(A)
        assert is_doubly_stochastic(W)
        # Edge (0,1): max degree is 2 => weight 1/3.
        assert W[0, 1] == pytest.approx(1 / 3)

    def test_validation(self):
        with pytest.raises(ValidationError):
            metropolis_weights(np.ones((2, 3)))
        with pytest.raises(ValidationError):
            metropolis_weights(np.eye(3))
        with pytest.raises(ValidationError):
            metropolis_weights(np.array([[0, 1], [0, 0]]))

    @given(st.integers(0, 500))
    def test_property_random_graphs_doubly_stochastic(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 8))
        A = rng.random((n, n)) < 0.5
        A = np.triu(A, 1)
        A = (A | A.T)
        assert is_doubly_stochastic(metropolis_weights(A))


class TestIsDoublyStochastic:
    def test_rejects_non_square(self):
        assert not is_doubly_stochastic(np.ones((2, 3)))

    def test_rejects_negative(self):
        W = np.array([[1.5, -0.5], [-0.5, 1.5]])
        assert not is_doubly_stochastic(W)

    def test_rejects_bad_sums(self):
        assert not is_doubly_stochastic(np.eye(2) * 0.9)


class TestStepSchedules:
    def test_constant(self):
        s = ConstantStep(0.5)
        assert s(0) == s(100) == 0.5

    def test_diminishing(self):
        s = DiminishingStep(1.0)
        assert s(0) == 1.0
        assert s(9) == pytest.approx(0.1)

    def test_sqrt(self):
        s = SqrtStep(2.0)
        assert s(0) == 2.0
        assert s(3) == pytest.approx(1.0)

    @pytest.mark.parametrize("cls", [ConstantStep, DiminishingStep, SqrtStep])
    def test_validation(self, cls):
        with pytest.raises(ValidationError):
            cls(0.0)

    @pytest.mark.parametrize("cls", [DiminishingStep, SqrtStep])
    def test_negative_iteration(self, cls):
        with pytest.raises(ValidationError):
            cls(1.0)(-1)

    @pytest.mark.parametrize("cls", [ConstantStep, DiminishingStep, SqrtStep])
    def test_repr(self, cls):
        assert cls.__name__ in repr(cls(1.0))

    @given(st.integers(0, 1000), st.integers(0, 1000))
    def test_property_diminishing_monotone(self, a, b):
        s = DiminishingStep(1.0)
        lo, hi = min(a, b), max(a, b)
        assert s(hi) <= s(lo)

"""Consistency and correctness of the vectorized projection fast path."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import optimize

from repro.core.projection import (
    _project_rows_vectorized,
    project_demands,
    project_local_set,
    project_simplex,
)
from repro.errors import ValidationError


class TestVectorizedMatchesScalar:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 100000))
    def test_property_rows_match_per_row_projection(self, seed):
        rng = np.random.default_rng(seed)
        C, N = int(rng.integers(1, 12)), int(rng.integers(1, 10))
        P = rng.uniform(-20, 40, size=(C, N))
        R = rng.uniform(0, 50, size=C)
        if rng.random() < 0.3:
            R[rng.integers(C)] = 0.0  # exercise the zero-demand path
        fast = _project_rows_vectorized(P, R)
        for c in range(C):
            slow = project_simplex(P[c], float(R[c]))
            assert np.allclose(fast[c], slow, atol=1e-9), f"row {c}"

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 100000))
    def test_property_masked_mixed_rows(self, seed):
        rng = np.random.default_rng(seed)
        C, N = int(rng.integers(2, 10)), int(rng.integers(2, 8))
        P = rng.uniform(-10, 30, size=(C, N))
        R = rng.uniform(0, 20, size=C)
        mask = rng.random((C, N)) < 0.7
        for c in range(C):
            if not mask[c].any():
                mask[c, int(rng.integers(N))] = True
        out = project_demands(P, R, mask)
        assert np.allclose(out.sum(axis=1), R, atol=1e-8)
        assert np.all(out[~mask] == 0.0)
        assert np.all(out >= -1e-12)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValidationError):
            project_demands(np.ones((1, 2)), np.array([-1.0]),
                            np.ones((1, 2), dtype=bool))


def scipy_local_projection(P, R, mask, col, cap):
    """The exact local-set projection as a QP, solved by SLSQP."""
    C, N = P.shape
    idx = np.nonzero(mask.ravel())[0]

    def unpack(x):
        out = np.zeros(C * N)
        out[idx] = x
        return out.reshape(C, N)

    def fun(x):
        return 0.5 * float(np.sum((unpack(x) - P) ** 2))

    rows = idx // N
    cols = idx % N
    A_eq = np.zeros((C, idx.size))
    A_eq[rows, np.arange(idx.size)] = 1.0
    a_cap = np.zeros(idx.size)
    a_cap[cols == col] = 1.0
    cons = [
        {"type": "eq", "fun": lambda x: A_eq @ x - R},
        {"type": "ineq", "fun": lambda x: cap - a_cap @ x},
    ]
    x0 = np.clip(P.ravel()[idx], 0, None)
    scale = R.sum() / max(x0.sum(), 1e-9)
    res = optimize.minimize(fun, x0 * min(scale, 1.0),
                            bounds=[(0, None)] * idx.size,
                            constraints=cons, method="SLSQP",
                            options={"maxiter": 400, "ftol": 1e-14})
    return unpack(res.x), res.success


class TestDykstraAgainstScipyQP:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_qp_solution(self, seed):
        rng = np.random.default_rng(seed)
        C, N = 4, 3
        P = rng.uniform(-5, 25, size=(C, N))
        R = rng.uniform(2, 20, size=C)
        mask = np.ones((C, N), dtype=bool)
        col = int(rng.integers(N))
        cap = float(rng.uniform(R.sum() / N + 2, R.sum()))
        ours = project_local_set(P, R, mask, col, cap)
        theirs, ok = scipy_local_projection(P, R, mask, col, cap)
        if not ok:
            pytest.skip("scipy reference did not converge")
        # Projections must agree (unique nearest point of a convex set).
        assert np.allclose(ours, theirs, atol=5e-3), \
            f"max diff {np.abs(ours - theirs).max()}"

"""Shared fixtures for core-solver tests."""

import numpy as np
import pytest

from repro.core.params import ProblemData
from repro.core.problem import ReplicaSelectionProblem
from repro.util.rng import make_rng


@pytest.fixture
def paper_instance() -> ReplicaSelectionProblem:
    """8 replicas with the Fig. 6/7 prices, 6 clients, paper calibration."""
    rng = make_rng(0)
    demands = rng.uniform(20, 60, size=6)
    data = ProblemData.paper_defaults(
        demands=demands, prices=[1, 8, 1, 6, 1, 5, 2, 3])
    return ReplicaSelectionProblem(data)


@pytest.fixture
def tiny_instance() -> ReplicaSelectionProblem:
    """3 replicas / 2 clients, fully eligible (the Fig. 5 scale)."""
    data = ProblemData.paper_defaults(
        demands=[30.0, 50.0], prices=[2.0, 10.0, 4.0])
    return ReplicaSelectionProblem(data)


def random_instance(seed: int, n_clients: int = 5, n_replicas: int = 4,
                    masked: bool = False, tight: bool = False
                    ) -> ReplicaSelectionProblem:
    """Randomized feasible instance for property tests."""
    rng = make_rng(seed)
    prices = rng.integers(1, 21, size=n_replicas).astype(float)
    capacities = rng.uniform(50, 150, size=n_replicas)
    if masked:
        mask = rng.random((n_clients, n_replicas)) < 0.7
        # Guarantee every client at least one replica.
        for c in range(n_clients):
            if not mask[c].any():
                mask[c, rng.integers(n_replicas)] = True
    else:
        mask = np.ones((n_clients, n_replicas), dtype=bool)
    # Demand scaled to a fraction of reachable capacity for feasibility.
    frac = 0.9 if tight else 0.5
    per_client_cap = (mask * capacities).sum(axis=1)
    demands = rng.uniform(0.1, frac, size=n_clients) * np.minimum(
        per_client_cap, capacities.sum() / n_clients)
    data = ProblemData(
        demands=demands, capacities=capacities, prices=prices,
        alpha=1.0, beta=0.01, gamma=3.0, mask=mask)
    return ReplicaSelectionProblem(data)

"""Structural property tests of the solvers: symmetry, equivariance,
scaling — invariances that hold for the true optimum and must survive the
solvers' approximations."""

import numpy as np
import pytest

from repro.core.lddm import solve_lddm
from repro.core.params import ProblemData
from repro.core.problem import ReplicaSelectionProblem
from repro.core.reference import solve_reference
from repro.util.rng import make_rng


def make_problem(prices, demands, mask=None):
    return ReplicaSelectionProblem(
        ProblemData.paper_defaults(demands=demands, prices=prices,
                                   mask=mask))


class TestReplicaPermutationEquivariance:
    """Relabeling replicas permutes the optimal loads accordingly."""

    @pytest.mark.parametrize("seed", range(4))
    def test_reference_equivariant(self, seed):
        rng = make_rng(seed)
        prices = rng.integers(1, 21, size=5).astype(float)
        demands = rng.uniform(10, 50, size=3)
        perm = rng.permutation(5)
        base = solve_reference(make_problem(prices, demands))
        permuted = solve_reference(make_problem(prices[perm], demands))
        assert np.allclose(permuted.loads, base.loads[perm], atol=1e-4)
        assert permuted.objective == pytest.approx(base.objective, rel=1e-6)

    @pytest.mark.parametrize("seed", range(3))
    def test_lddm_equivariant(self, seed):
        rng = make_rng(seed + 100)
        prices = rng.integers(1, 21, size=4).astype(float)
        demands = rng.uniform(10, 50, size=3)
        perm = rng.permutation(4)
        base = solve_lddm(make_problem(prices, demands))
        permuted = solve_lddm(make_problem(prices[perm], demands))
        assert np.allclose(permuted.loads, base.loads[perm], atol=1e-2)


class TestClientSymmetry:
    def test_identical_clients_get_identical_rows(self):
        sol = solve_reference(make_problem([1.0, 7.0, 3.0],
                                           [30.0, 30.0, 30.0]))
        for c in range(1, 3):
            assert np.allclose(sol.allocation[c], sol.allocation[0],
                               atol=1e-3)

    def test_equal_price_replicas_get_equal_loads(self):
        sol = solve_reference(make_problem([4.0, 4.0, 4.0], [60.0]))
        loads = sol.loads
        assert np.allclose(loads, loads[0], atol=1e-4)


class TestScaling:
    def test_price_scaling_scales_objective(self):
        """Multiplying every price by a constant multiplies the objective
        but leaves the optimal allocation unchanged."""
        a = solve_reference(make_problem([2.0, 9.0, 4.0], [40.0, 25.0]))
        b = solve_reference(make_problem([6.0, 27.0, 12.0], [40.0, 25.0]))
        # The objective depends only on column loads, so loads are unique
        # but the per-client split is not — compare loads.
        assert np.allclose(a.loads, b.loads, atol=1e-4)
        assert b.objective == pytest.approx(3 * a.objective, rel=1e-6)

    def test_more_capacity_never_hurts(self):
        data_tight = ProblemData.paper_defaults(
            [90.0, 90.0], prices=[1.0, 10.0], bandwidth=100.0)
        data_loose = ProblemData.paper_defaults(
            [90.0, 90.0], prices=[1.0, 10.0], bandwidth=200.0)
        tight = solve_reference(ReplicaSelectionProblem(data_tight))
        loose = solve_reference(ReplicaSelectionProblem(data_loose))
        assert loose.objective <= tight.objective + 1e-6

    def test_extra_demand_costs_more(self):
        small = solve_reference(make_problem([1.0, 5.0], [20.0]))
        large = solve_reference(make_problem([1.0, 5.0], [40.0]))
        assert large.objective > small.objective


class TestMaskMonotonicity:
    def test_restricting_eligibility_never_cheapens(self):
        full = solve_reference(make_problem([1.0, 8.0, 2.0], [30.0, 30.0]))
        mask = np.array([[True, True, False], [True, True, True]])
        restricted = solve_reference(
            make_problem([1.0, 8.0, 2.0], [30.0, 30.0], mask=mask))
        assert restricted.objective >= full.objective - 1e-6

"""Incremental delta-event re-solve: exactness, feasibility, fallbacks.

The contract the runtime leans on: an applied event leaves the state at
the *optimum* of the updated instance (within 1e-6 relative of the
centralized reference — the acceptance bound, property-tested across
random event streams), always feasible, and the state refuses (asks for
a full solve) rather than silently degrading when capacity, drift, or
convergence would break that promise.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregate import ClassStructure
from repro.core.incremental import (
    ClientArrival,
    ClientDeparture,
    DemandChange,
    IncrementalState,
)
from repro.core.problem import ReplicaSelectionProblem
from repro.core.reference import solve_reference
from repro.core.lddm import solve_lddm
from repro.errors import ValidationError
from tests.core.conftest import random_instance

#: Acceptance bound: incremental objective within this relative gap of a
#: full re-solve of the updated instance.
REL_GAP = 1e-6


def _state_from(problem, drift_limit=10.0, **kwargs):
    """State over ``problem`` treating every row as its own class."""
    ref = solve_reference(problem)
    tokens = [problem.data.mask[i].tobytes() + bytes([i])
              for i in range(problem.data.n_clients)]
    clients = {f"c{i}": (tokens[i], float(problem.data.R[i]))
               for i in range(problem.data.n_clients)}
    return IncrementalState(problem.data, tokens, ref.allocation,
                            clients=clients, drift_limit=drift_limit,
                            **kwargs)


def _check_optimal(state):
    """Feasible and within REL_GAP of the reference on the current data."""
    data = state.class_data()
    prob = ReplicaSelectionProblem(data)
    scale = max(1.0, float(data.R.max(initial=0.0)))
    assert prob.violation(state.Q) < 1e-6 * scale
    if float(data.R.sum()) == 0.0:
        assert state.objective() == pytest.approx(0.0, abs=1e-9)
        return
    ref = solve_reference(prob)
    gap = (state.objective() - ref.objective) \
        / max(abs(ref.objective), 1e-12)
    assert gap <= REL_GAP, (state.objective(), ref.objective)


class TestSingleEvents:
    def test_arrival_matches_full_resolve(self):
        prob = random_instance(0, n_clients=5, n_replicas=4, masked=True)
        state = _state_from(prob)
        res = state.apply_event(ClientArrival(
            "new", 7.5, prob.data.mask[0]))
        assert res.ok and res.events == 1
        _check_optimal(state)

    def test_departure_matches_full_resolve(self):
        prob = random_instance(1, n_clients=5, n_replicas=4, masked=True)
        state = _state_from(prob)
        res = state.apply_event(ClientDeparture("c2"))
        assert res.ok
        _check_optimal(state)
        # Departing again is a programming error, not a fallback.
        with pytest.raises(ValidationError):
            state.apply_event(ClientDeparture("c2"))

    def test_demand_change_matches_full_resolve(self):
        prob = random_instance(2, n_clients=5, n_replicas=4, masked=True)
        state = _state_from(prob)
        res = state.apply_event(DemandChange("c0", 2.5))
        assert res.ok
        _check_optimal(state)

    def test_arrival_with_new_pattern_adds_a_class(self):
        prob = random_instance(3, n_clients=4, n_replicas=4)
        state = _state_from(prob)
        k_before = state.n_classes
        row = np.array([True, False, True, False])
        res = state.apply_event(ClientArrival("edge", 5.0, row))
        assert res.ok
        assert state.n_classes == k_before + 1
        assert state.row(row.tobytes()).sum() == pytest.approx(5.0)
        _check_optimal(state)

    def test_mu_matches_operating_point(self):
        prob = random_instance(4, n_clients=5, n_replicas=4, masked=True)
        state = _state_from(prob)
        state.apply_event(DemandChange("c1", 12.0))
        from repro.core import model
        best = model.cheapest_eligible_marginal(state.class_data(),
                                                state.loads)
        np.testing.assert_allclose(state.mu(), -best, atol=1e-12)


class TestEventStreams:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), n_events=st.integers(1, 12))
    def test_random_streams_stay_optimal(self, seed, n_events):
        prob = random_instance(seed, n_clients=5, n_replicas=4, masked=True)
        state = _state_from(prob)
        rng = np.random.default_rng(seed)
        names = [f"c{i}" for i in range(prob.data.n_clients)]
        applied = 0
        for j in range(n_events):
            name = names[int(rng.integers(len(names)))]
            if name in state._clients:
                if rng.random() < 0.4:
                    res = state.apply_event(ClientDeparture(name))
                else:
                    res = state.apply_event(DemandChange(
                        name, float(rng.uniform(0.1, 15.0))))
            else:
                i = int(name[1:])
                res = state.apply_event(ClientArrival(
                    name, float(rng.uniform(0.1, 15.0)),
                    prob.data.mask[i]))
            if not res.ok:
                # A declined event is allowed only for a declared reason,
                # and the state must stay declined afterwards.
                assert res.reason in ("capacity", "drift", "convergence")
                assert state.stale
                return
            applied += 1
            _check_optimal(state)
        assert state.events_applied == applied

    def test_warm_fallback_seed_beats_cold(self):
        # The state's rows/mu warm-start a fallback solve: same optimum,
        # no more iterations than a cold start.
        prob = random_instance(7, n_clients=6, n_replicas=4, masked=True)
        state = _state_from(prob)
        state.apply_event(DemandChange("c0", 9.0))
        data = state.class_data()
        prob2 = ReplicaSelectionProblem(data)
        warm = solve_lddm(prob2, warm_start=state.Q.copy(),
                          mu0=state.mu(), max_iter=400, tol=1e-5)
        cold = solve_lddm(prob2, max_iter=400, tol=1e-5)
        assert warm.iterations <= cold.iterations
        assert warm.objective <= cold.objective * (1 + 1e-6)


class TestRetarget:
    def test_retarget_matches_fresh_solve(self):
        # Chunk-to-chunk transition: move to a new class-demand vector.
        prob = random_instance(11, n_clients=8, n_replicas=4, masked=True)
        structure = ClassStructure.from_mask(prob.data.mask, prob.data.R)
        reduced = structure.reduce_data(prob.data)
        ref = solve_reference(ReplicaSelectionProblem(reduced))
        state = IncrementalState(reduced, list(structure.keys),
                                 ref.allocation, drift_limit=10.0)
        rng = np.random.default_rng(11)
        new_D = reduced.R * rng.uniform(0.5, 1.5, size=reduced.n_clients)
        res = state.retarget(list(structure.keys), structure.masks, new_D)
        assert res.ok and res.events >= 1
        np.testing.assert_allclose(
            state.rows_for(list(structure.keys)).sum(axis=1), new_D)
        _check_optimal(state)

    def test_retarget_unchanged_is_free(self):
        prob = random_instance(12, n_clients=6, n_replicas=4, masked=True)
        structure = ClassStructure.from_mask(prob.data.mask, prob.data.R)
        reduced = structure.reduce_data(prob.data)
        ref = solve_reference(ReplicaSelectionProblem(reduced))
        state = IncrementalState(reduced, list(structure.keys),
                                 ref.allocation)
        res = state.retarget(list(structure.keys), structure.masks,
                             reduced.R)
        assert res.ok and res.events == 0 and res.sweeps == 0

    def test_retarget_drains_absent_classes(self):
        prob = random_instance(13, n_clients=6, n_replicas=4, masked=True)
        structure = ClassStructure.from_mask(prob.data.mask, prob.data.R)
        reduced = structure.reduce_data(prob.data)
        ref = solve_reference(ReplicaSelectionProblem(reduced))
        state = IncrementalState(reduced, list(structure.keys),
                                 ref.allocation, drift_limit=10.0)
        keep = list(structure.keys)[:1]
        res = state.retarget(keep, structure.masks[:1],
                             reduced.R[:1])
        assert res.ok
        for token in list(structure.keys)[1:]:
            assert state.row(token).sum() == pytest.approx(0.0, abs=1e-12)
        _check_optimal(state)


class TestFallbacks:
    def test_capacity_fallback(self):
        prob = random_instance(20, n_clients=4, n_replicas=3)
        state = _state_from(prob)
        res = state.apply_event(ClientArrival(
            "huge", float(prob.data.B.sum() * 2),
            np.ones(prob.data.n_replicas, dtype=bool)))
        assert not res.ok and res.reason in ("capacity", "drift")
        assert state.stale
        # A stale state declines everything until rebuilt.
        res2 = state.apply_event(ClientDeparture("c0"))
        assert not res2.ok and res2.reason == "stale"

    def test_drift_fallback_accumulates(self):
        prob = random_instance(21, n_clients=4, n_replicas=3)
        state = _state_from(prob, drift_limit=0.05)
        total = float(prob.data.R.sum())
        res = state.apply_event(DemandChange(
            "c0", float(prob.data.R[0]) + 0.1 * total))
        assert not res.ok and res.reason == "drift"
        assert state.fallbacks == 1

    def test_small_events_stay_under_drift_limit(self):
        prob = random_instance(22, n_clients=4, n_replicas=3)
        state = _state_from(prob, drift_limit=0.5)
        r0 = float(prob.data.R[0])
        for j in range(3):
            res = state.apply_event(DemandChange("c0", r0 + 0.01 * (j + 1)))
            assert res.ok

    def test_validation_errors(self):
        prob = random_instance(23, n_clients=3, n_replicas=3)
        state = _state_from(prob)
        with pytest.raises(ValidationError):
            state.apply_event(ClientArrival("c0", 1.0, prob.data.mask[0]))
        with pytest.raises(ValidationError):
            state.apply_event(DemandChange("ghost", 1.0))
        with pytest.raises(ValidationError):
            state.apply_event(ClientArrival("x", -1.0, prob.data.mask[0]))
        with pytest.raises(ValidationError):
            IncrementalState(prob.data, [b"a"] * prob.data.n_clients,
                             np.zeros(prob.data.shape))

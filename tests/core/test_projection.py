"""Tests (incl. property tests) for the projection operators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.projection import (
    project_capped_simplex,
    project_demands,
    project_local_set,
    project_simplex,
)
from repro.errors import ValidationError

finite_vec = hnp.arrays(np.float64, st.integers(1, 12),
                        elements=st.floats(-50, 50))


def brute_force_simplex(v, total, grid=400):
    """Nearest point on the simplex by dense sampling (2-D only)."""
    best, best_d = None, np.inf
    for a in np.linspace(0, total, grid):
        x = np.array([a, total - a])
        d = np.sum((x - v) ** 2)
        if d < best_d:
            best, best_d = x, d
    return best


class TestProjectSimplex:
    def test_already_on_simplex(self):
        v = np.array([0.3, 0.7])
        assert np.allclose(project_simplex(v, 1.0), v)

    def test_sums_exactly(self):
        out = project_simplex(np.array([5.0, -2.0, 1.0]), 3.0)
        assert out.sum() == pytest.approx(3.0)
        assert np.all(out >= 0)

    def test_matches_brute_force_2d(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            v = rng.uniform(-5, 5, size=2)
            exact = project_simplex(v, 2.0)
            approx = brute_force_simplex(v, 2.0)
            assert np.allclose(exact, approx, atol=0.02)

    def test_zero_total(self):
        assert project_simplex(np.array([1.0, 2.0]), 0.0).tolist() == [0, 0]

    def test_empty_support(self):
        assert project_simplex(np.array([]), 0.0).size == 0
        with pytest.raises(ValidationError):
            project_simplex(np.array([]), 1.0)

    def test_negative_total(self):
        with pytest.raises(ValidationError):
            project_simplex(np.array([1.0]), -1.0)

    def test_matrix_rejected(self):
        with pytest.raises(ValidationError):
            project_simplex(np.zeros((2, 2)), 1.0)

    @given(finite_vec, st.floats(0, 100))
    def test_property_feasible_output(self, v, total):
        out = project_simplex(v, total)
        assert np.all(out >= -1e-12)
        assert out.sum() == pytest.approx(total, abs=1e-8 * max(1, total))

    @given(finite_vec, st.floats(0.1, 100))
    def test_property_idempotent(self, v, total):
        once = project_simplex(v, total)
        twice = project_simplex(once, total)
        assert np.allclose(once, twice, atol=1e-9)

    @given(finite_vec, st.floats(0.1, 50))
    def test_property_projection_is_nearest(self, v, total):
        """No random feasible point is closer than the projection."""
        out = project_simplex(v, total)
        rng = np.random.default_rng(0)
        d_out = np.sum((out - v) ** 2)
        for _ in range(10):
            w = rng.dirichlet(np.ones(v.size)) * total
            assert d_out <= np.sum((w - v) ** 2) + 1e-7


class TestProjectCappedSimplex:
    def test_under_cap_just_clips(self):
        out = project_capped_simplex(np.array([1.0, -2.0]), 10.0)
        assert out.tolist() == [1.0, 0.0]

    def test_over_cap_projects(self):
        out = project_capped_simplex(np.array([8.0, 8.0]), 10.0)
        assert out.sum() == pytest.approx(10.0)

    def test_negative_cap(self):
        with pytest.raises(ValidationError):
            project_capped_simplex(np.array([1.0]), -1.0)

    @given(finite_vec, st.floats(0, 100))
    def test_property_feasible(self, v, cap):
        out = project_capped_simplex(v, cap)
        assert np.all(out >= -1e-12)
        assert out.sum() <= cap + 1e-8 * max(1, cap)


class TestProjectDemands:
    def test_rows_sum_to_demands(self):
        P = np.array([[1.0, 5.0], [2.0, 2.0]])
        R = np.array([3.0, 10.0])
        mask = np.ones((2, 2), dtype=bool)
        out = project_demands(P, R, mask)
        assert np.allclose(out.sum(axis=1), R)

    def test_mask_respected(self):
        mask = np.array([[True, False]])
        out = project_demands(np.array([[1.0, 9.0]]), np.array([4.0]), mask)
        assert out[0, 1] == 0.0
        assert out[0, 0] == pytest.approx(4.0)

    def test_orphan_with_demand_raises(self):
        mask = np.array([[False, False]])
        with pytest.raises(ValidationError):
            project_demands(np.zeros((1, 2)), np.array([1.0]), mask)

    def test_orphan_without_demand_ok(self):
        mask = np.array([[False, False]])
        out = project_demands(np.ones((1, 2)), np.array([0.0]), mask)
        assert np.all(out == 0)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            project_demands(np.zeros((2, 2)), np.array([1.0]),
                            np.ones((2, 2), dtype=bool))


class TestProjectLocalSet:
    def test_satisfies_all_local_constraints(self):
        rng = np.random.default_rng(1)
        P = rng.uniform(-5, 30, size=(4, 3))
        R = np.array([10.0, 20.0, 5.0, 40.0])
        mask = np.ones((4, 3), dtype=bool)
        out = project_local_set(P, R, mask, column=1, cap=25.0)
        assert np.allclose(out.sum(axis=1), R, atol=1e-6)
        assert out[:, 1].sum() <= 25.0 + 1e-6
        assert np.all(out >= -1e-9)

    def test_identity_when_feasible(self):
        P = np.array([[2.0, 3.0], [1.0, 4.0]])
        R = np.array([5.0, 5.0])
        mask = np.ones((2, 2), dtype=bool)
        out = project_local_set(P, R, mask, column=0, cap=100.0)
        assert np.allclose(out, P, atol=1e-8)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_projection_feasible_and_idempotent(self, seed):
        rng = np.random.default_rng(seed)
        C, N = rng.integers(1, 6), rng.integers(2, 5)
        P = rng.uniform(-10, 40, size=(C, N))
        R = rng.uniform(0, 30, size=C)
        mask = np.ones((C, N), dtype=bool)
        col = int(rng.integers(N))
        cap = float(rng.uniform(R.sum() / N + 1.0, R.sum() + 10))
        out = project_local_set(P, R, mask, col, cap)
        assert np.allclose(out.sum(axis=1), R, atol=1e-6)
        # Capacity holds up to the Dykstra stopping discrepancy; the rate
        # is geometric with a constant that degrades as the sets' angle
        # closes (cap ~ demand), so allow a small relative residual.
        assert out[:, col].sum() <= cap + 5e-3 * max(cap, 1.0)
        assert np.all(out >= -1e-8)
        again = project_local_set(out, R, mask, col, cap)
        assert np.allclose(out, again, atol=5e-3 * max(cap, 1.0))

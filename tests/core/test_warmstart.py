"""Warm-start cache, projection, dual recovery and budget (property tests).

The contracts the runtime leans on: a projected warm-start point is
always feasible for the *new* batch (whatever the cached batch looked
like), a warm-started solve lands on the same objective as a cold one,
and the cache/budget bookkeeping invalidates exactly when it should.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.lddm import LddmSolver
from repro.core import model
from repro.core.params import ProblemData
from repro.core.warmstart import (
    AdaptiveBudget,
    WarmStartCache,
    project_warm_start,
    recover_mu,
)
from repro.errors import ValidationError
from tests.core.conftest import random_instance

#: repair() leaves at most a tiny capacity overshoot (tests elsewhere
#: bound full-solver violations by 1e-4; the projection is no looser).
FEASIBILITY_TOL = 1e-6


def _names(problem, offset=0):
    C, N = problem.data.shape
    clients = [f"c{i + offset}" for i in range(C)]
    replicas = [f"r{j}" for j in range(N)]
    return clients, replicas


def _stored_entry(problem, clients, replicas, cache=None):
    cache = cache or WarmStartCache()
    sol = LddmSolver(problem, max_iter=600, track_objective=False).solve()
    return cache.store(replicas, problem.data.u, clients, sol.allocation,
                       problem.data.mask), sol, cache


class TestWarmStartCache:
    def test_lookup_roundtrip_and_counters(self):
        problem = random_instance(0)
        clients, replicas = _names(problem)
        entry, _, cache = _stored_entry(problem, clients, replicas)
        assert cache.lookup(replicas, problem.data.u) is entry
        assert cache.lookup(replicas, problem.data.u * 2.0) is None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_price_change_is_a_miss_not_an_error(self):
        problem = random_instance(1)
        clients, replicas = _names(problem)
        _, _, cache = _stored_entry(problem, clients, replicas)
        shifted = problem.data.u.copy()
        shifted[0] += 1.0
        assert cache.lookup(replicas, shifted) is None

    def test_replica_set_is_part_of_the_key(self):
        problem = random_instance(2)
        clients, replicas = _names(problem)
        _, _, cache = _stored_entry(problem, clients, replicas)
        fewer = replicas[:-1] + ["r_other"]
        assert cache.lookup(fewer, problem.data.u) is None

    def test_invalidate_clears_and_counts(self):
        problem = random_instance(3)
        clients, replicas = _names(problem)
        _, _, cache = _stored_entry(problem, clients, replicas)
        cache.invalidate()
        assert len(cache) == 0
        assert cache.invalidations == 1
        assert cache.lookup(replicas, problem.data.u) is None
        cache.invalidate()  # empty-cache invalidate is not counted
        assert cache.invalidations == 1

    def test_lru_eviction(self):
        problem = random_instance(4)
        clients, replicas = _names(problem)
        cache = WarmStartCache(max_entries=2)
        sol = LddmSolver(problem, max_iter=200,
                         track_objective=False).solve()
        for scale in (1.0, 2.0, 3.0):
            cache.store(replicas, problem.data.u * scale, clients,
                        sol.allocation, problem.data.mask)
        assert len(cache) == 2
        assert cache.lookup(replicas, problem.data.u) is None  # evicted
        assert cache.lookup(replicas, problem.data.u * 3.0) is not None

    def test_store_rejects_shape_mismatch(self):
        problem = random_instance(5)
        clients, replicas = _names(problem)
        with pytest.raises(ValidationError):
            WarmStartCache().store(
                replicas[:-1], problem.data.u[:-1], clients,
                problem.uniform_allocation(), problem.data.mask)


class TestProjectWarmStart:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 100000))
    def test_property_projected_point_feasible(self, seed):
        """Whatever batch the cache saw, the projection fits the new one."""
        rng = np.random.default_rng(seed)
        old = random_instance(seed, masked=bool(rng.integers(2)))
        new = random_instance(seed + 1,
                              masked=bool(rng.integers(2)))
        clients_old, replicas = _names(old)
        # Overlap the client sets partially: the new batch keeps some of
        # the old names and brings fresh ones.
        keep = int(rng.integers(0, old.data.n_clients + 1))
        clients_new = clients_old[:keep] + [
            f"fresh{i}" for i in range(new.data.n_clients - keep)]
        entry, _, _ = _stored_entry(old, clients_old, replicas)
        P0 = project_warm_start(entry, new, clients_new)
        assert np.allclose(P0.sum(axis=1), new.data.R, atol=FEASIBILITY_TOL)
        assert np.all(P0[~new.data.mask] == 0.0)
        assert P0.min() >= -FEASIBILITY_TOL
        # Demand rows are exact; the bounded repair may leave a small
        # relative capacity overshoot (the solvers' local-set projections
        # absorb it on the first iteration).
        overshoot = float(np.max(P0.sum(axis=0) - new.data.B, initial=0.0))
        assert overshoot <= 1e-3 * float(new.data.B.max())

    def test_returning_client_keeps_its_split(self):
        problem = random_instance(6)
        clients, replicas = _names(problem)
        entry, sol, _ = _stored_entry(problem, clients, replicas)
        P0 = project_warm_start(entry, problem, clients)
        # Same batch again: the projection reproduces the cached rows.
        assert np.allclose(P0, sol.allocation, atol=1e-6)

    def test_new_clients_follow_cached_fractions(self):
        problem = random_instance(7)
        clients, replicas = _names(problem)
        entry, _, _ = _stored_entry(problem, clients, replicas)
        fresh = [f"fresh{i}" for i in range(len(clients))]
        P0 = project_warm_start(entry, problem, fresh)
        # Unmasked rows of unseen clients are proportional to fractions.
        full = np.all(problem.data.mask, axis=1)
        for i in np.flatnonzero(full):
            expect = problem.data.R[i] * entry.fractions
            assert np.allclose(P0[i], expect, rtol=0.2, atol=1.0)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 100000))
    def test_property_tight_masked_projection_meets_repair_bound(self, seed):
        """Regression: the projection used to pin ``repair_sweeps=50``
        while ``repair()``'s own budget had been raised to what tight
        masked instances need — handing solvers a capacity-violating
        start.  Following the problem default, the projected point meets
        the same residual bound the repair tests pin."""
        from repro.errors import InfeasibleProblemError
        rng = np.random.default_rng(seed)
        try:
            old = random_instance(seed, n_clients=6, n_replicas=4,
                                  masked=True, tight=True)
            clients, replicas = _names(old)
            entry, _, _ = _stored_entry(old, clients, replicas)
        except InfeasibleProblemError:
            # Some tight seeds draw a jointly infeasible instance — the
            # max-flow check rejects it at construction or at the first
            # solve; either way it exercises nothing here.
            assume(False)
        drift = rng.uniform(0.8, 1.0, size=old.data.n_clients)
        new = type(old)(ProblemData(
            demands=old.data.R * drift, capacities=old.data.B,
            prices=old.data.u, alpha=1.0, beta=0.01, gamma=3.0,
            mask=old.data.mask))
        P0 = project_warm_start(entry, new, clients)
        scale = max(float(new.data.R.max()), float(new.data.B.max()), 1.0)
        assert np.allclose(P0.sum(axis=1), new.data.R,
                           atol=FEASIBILITY_TOL * scale)
        residual = float(np.max(P0.sum(axis=0) - new.data.B, initial=0.0))
        assert residual <= 1e-6 * scale
        assert np.all(P0[~new.data.mask] == 0.0)
        assert P0.min() >= 0.0

    def test_client_count_mismatch_rejected(self):
        problem = random_instance(8)
        clients, replicas = _names(problem)
        entry, _, _ = _stored_entry(problem, clients, replicas)
        with pytest.raises(ValidationError):
            project_warm_start(entry, problem, clients + ["extra"])


class TestRecoverMu:
    def test_values_are_min_eligible_marginal(self):
        problem = random_instance(9, masked=True)
        P = problem.repair(problem.uniform_allocation())
        mu = recover_mu(problem, P)
        marginal = model.load_marginal_cost(problem.data, P.sum(axis=0))
        for c in range(problem.data.n_clients):
            eligible = problem.data.mask[c]
            assert mu[c] == pytest.approx(-marginal[eligible].min())

    def test_shape_mismatch_rejected(self):
        problem = random_instance(10)
        with pytest.raises(ValidationError):
            recover_mu(problem, np.ones((1, 1)))


class TestWarmMatchesCold:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 100000))
    def test_property_same_objective_warm_or_cold(self, seed):
        """A drifted re-solve from the cache lands on the cold answer."""
        rng = np.random.default_rng(seed)
        old = random_instance(seed, n_clients=6, n_replicas=5)
        drift = rng.uniform(0.9, 1.1, size=6)
        new_data = ProblemData(
            demands=old.data.R * drift, capacities=old.data.B,
            prices=old.data.u, alpha=1.0, beta=0.01, gamma=3.0,
            mask=old.data.mask)
        new = type(old)(new_data)
        clients, replicas = _names(old)
        entry, _, _ = _stored_entry(old, clients, replicas)
        kw = dict(max_iter=3000, track_objective=False)
        cold = LddmSolver(new, **kw).solve()
        initial = project_warm_start(entry, new, clients)
        warm = LddmSolver(new, **kw).solve(initial,
                                           mu0=recover_mu(new, initial))
        assert warm.objective == pytest.approx(cold.objective, rel=0.01)
        assert new.violation(warm.allocation) < 1e-4


class TestAdaptiveBudget:
    def test_cold_always_gets_default(self):
        b = AdaptiveBudget(floor=4)
        b.observe(iterations=10, budget=100, converged=True, warm=True)
        assert b.budget(100, warm=False) == 100

    def test_warm_budget_learns_headroom(self):
        b = AdaptiveBudget(floor=4, headroom=2.0)
        assert b.budget(100, warm=True) == 100  # nothing learned yet
        b.observe(iterations=10, budget=100, converged=True, warm=True)
        assert b.budget(100, warm=True) == 20
        b.observe(iterations=1, budget=20, converged=True, warm=True)
        assert b.budget(100, warm=True) == 4  # floor kicks in

    def test_unconverged_at_cap_resets_to_cold(self):
        b = AdaptiveBudget(floor=4, headroom=2.0)
        b.observe(iterations=10, budget=100, converged=True, warm=True)
        b.observe(iterations=20, budget=20, converged=False, warm=True)
        assert b.budget(100, warm=True) == 100

    def test_budget_never_exceeds_default(self):
        b = AdaptiveBudget(floor=4, headroom=2.0)
        b.observe(iterations=90, budget=100, converged=True, warm=True)
        assert b.budget(50, warm=True) == 50

    def test_reset_and_validation(self):
        b = AdaptiveBudget()
        b.observe(iterations=5, budget=100, converged=True, warm=True)
        b.reset()
        assert b.budget(100, warm=True) == 100
        with pytest.raises(ValidationError):
            AdaptiveBudget(floor=0)
        with pytest.raises(ValidationError):
            AdaptiveBudget(headroom=0.5)

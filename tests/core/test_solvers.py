"""End-to-end solver tests: CDPSM and LDDM against the centralized reference.

These verify the paper's central algorithmic claims:
* both distributed methods reach (a neighborhood of) the global optimum;
* LDDM converges in fewer iterations than CDPSM (Fig. 5);
* LDDM's communication complexity is O(C*N) per iteration vs CDPSM's
  O(C*N^3).
"""

import numpy as np
import pytest

from repro.core.cdpsm import CdpsmSolver, solve_cdpsm
from repro.core.consensus import ring_weights
from repro.core.lddm import LddmSolver, solve_lddm
from repro.core.params import ProblemData
from repro.core.problem import ReplicaSelectionProblem
from repro.core.reference import solve_reference
from repro.core.stepsize import DiminishingStep
from repro.errors import InfeasibleProblemError, ValidationError

from tests.core.conftest import random_instance


class TestReference:
    def test_single_client_two_equal_replicas_splits(self):
        # Symmetric problem: convex network term favors an even split.
        data = ProblemData.paper_defaults([40.0], prices=[3.0, 3.0])
        sol = solve_reference(ReplicaSelectionProblem(data))
        assert np.allclose(sol.allocation, [[20.0, 20.0]], atol=0.1)

    def test_analytic_two_replica_optimum(self):
        # One client, two replicas, same prices, beta>0:
        # minimize u*(L1 + L2 + b*(L1^3 + L2^3)) with L1+L2=R => L1=L2=R/2.
        data = ProblemData.paper_defaults([60.0], prices=[5.0, 5.0])
        sol = solve_reference(ReplicaSelectionProblem(data))
        expected = 5.0 * (60.0 + 0.01 * 2 * 30.0 ** 3)
        assert sol.objective == pytest.approx(expected, rel=1e-5)

    def test_cheap_replica_preferred(self):
        data = ProblemData.paper_defaults([30.0], prices=[1.0, 20.0])
        sol = solve_reference(ReplicaSelectionProblem(data))
        assert sol.allocation[0, 0] > sol.allocation[0, 1]

    def test_capacity_respected(self):
        data = ProblemData.paper_defaults(
            [150.0], prices=[1.0, 20.0], bandwidth=100.0)
        prob = ReplicaSelectionProblem(data)
        sol = solve_reference(prob)
        assert prob.violation(sol.allocation) < 1e-5

    def test_infeasible_raises(self):
        data = ProblemData.paper_defaults([500.0], prices=[1.0])
        with pytest.raises(InfeasibleProblemError):
            solve_reference(ReplicaSelectionProblem(data))

    def test_mask_respected(self):
        mask = np.array([[True, False], [True, True]])
        data = ProblemData.paper_defaults([20.0, 20.0],
                                          prices=[5.0, 1.0], mask=mask)
        sol = solve_reference(ReplicaSelectionProblem(data))
        assert sol.allocation[0, 1] == 0.0


class TestLddm:
    def test_converges_to_reference(self, paper_instance):
        ref = solve_reference(paper_instance)
        sol = solve_lddm(paper_instance)
        assert sol.converged
        assert sol.objective == pytest.approx(ref.objective, rel=5e-3)
        assert paper_instance.violation(sol.allocation) < 1e-4

    def test_random_instances_close_to_optimal(self):
        for seed in range(6):
            prob = random_instance(seed, masked=(seed % 2 == 0))
            ref = solve_reference(prob)
            sol = solve_lddm(prob)
            gap = sol.objective / max(ref.objective, 1e-9) - 1.0
            assert gap < 0.02, f"seed {seed}: gap {gap:.4f}"
            assert prob.violation(sol.allocation) < 1e-3

    def test_exact_subproblem_with_averaging_still_works(self, tiny_instance):
        ref = solve_reference(tiny_instance)
        sol = solve_lddm(tiny_instance, exact_subproblem=True, max_iter=3000,
                         tol=1e-3)
        # Ergodic averaging recovers a near-optimal primal even with the
        # paper's bang-bang subproblem.
        assert sol.objective == pytest.approx(ref.objective, rel=0.05)

    def test_no_averaging_option(self, tiny_instance):
        sol = solve_lddm(tiny_instance, averaging=False)
        assert tiny_instance.violation(sol.allocation) < 1e-4

    def test_histories_recorded(self, tiny_instance):
        sol = solve_lddm(tiny_instance)
        assert len(sol.objective_history) == sol.iterations
        assert len(sol.residual_history) == sol.iterations

    def test_tracking_disabled(self, tiny_instance):
        sol = solve_lddm(tiny_instance, track_objective=False)
        assert sol.objective_history == []

    def test_comm_complexity_linear_in_CN(self, tiny_instance):
        sol = solve_lddm(tiny_instance)
        C, N = tiny_instance.data.shape
        assert sol.messages == sol.iterations * 2 * C * N

    def test_infeasible_raises(self):
        data = ProblemData.paper_defaults([1000.0], prices=[1.0])
        with pytest.raises(InfeasibleProblemError):
            solve_lddm(ReplicaSelectionProblem(data))

    def test_validation(self, tiny_instance):
        with pytest.raises(ValidationError):
            LddmSolver(tiny_instance, epsilon=-1.0)
        with pytest.raises(ValidationError):
            LddmSolver(tiny_instance, max_iter=0)

    def test_cold_start_mu(self, tiny_instance):
        sol = solve_lddm(tiny_instance, warm_start_mu=False, max_iter=3000)
        ref = solve_reference(tiny_instance)
        assert sol.objective == pytest.approx(ref.objective, rel=0.02)


class TestCdpsm:
    def test_converges_near_reference(self, paper_instance):
        ref = solve_reference(paper_instance)
        sol = solve_cdpsm(paper_instance, max_iter=800)
        gap = sol.objective / ref.objective - 1.0
        # Constant-step CDPSM reaches a neighborhood, not the exact optimum.
        assert gap < 0.05
        assert paper_instance.violation(sol.allocation) < 1e-4

    def test_solution_feasible_even_unconverged(self, paper_instance):
        sol = solve_cdpsm(paper_instance, max_iter=5)
        assert paper_instance.violation(sol.allocation) < 1e-4

    def test_ring_weights_also_converge(self, tiny_instance):
        ref = solve_reference(tiny_instance)
        sol = solve_cdpsm(tiny_instance, weights=ring_weights(3),
                          max_iter=800)
        assert sol.objective == pytest.approx(ref.objective, rel=0.05)

    def test_sqrt_step_schedule_improves_feasibly(self, tiny_instance):
        # Decaying schedules converge too slowly to match the optimum in a
        # bounded test budget (the reason the paper uses constant steps);
        # assert monotone improvement over the starting point instead.
        from repro.core.cdpsm import default_cdpsm_step
        from repro.core.stepsize import SqrtStep
        d0 = default_cdpsm_step(tiny_instance.data)
        sol = solve_cdpsm(tiny_instance, step=SqrtStep(d0 * 4),
                          max_iter=300)
        start = tiny_instance.objective(tiny_instance.uniform_allocation())
        assert sol.objective < start
        assert tiny_instance.violation(sol.allocation) < 1e-4

    def test_diminishing_step_runs_and_stays_feasible(self, tiny_instance):
        from repro.core.cdpsm import default_cdpsm_step
        d0 = default_cdpsm_step(tiny_instance.data)
        sol = solve_cdpsm(tiny_instance, step=DiminishingStep(d0 * 4),
                          max_iter=200)
        assert tiny_instance.violation(sol.allocation) < 1e-4

    def test_comm_complexity_cubic_in_N(self, tiny_instance):
        sol = solve_cdpsm(tiny_instance, max_iter=3)
        C, N = tiny_instance.data.shape
        assert sol.messages == sol.iterations * N * (N - 1)
        assert sol.comm_floats == sol.iterations * N * (N - 1) * C * N

    def test_weights_validated(self, tiny_instance):
        with pytest.raises(ValidationError):
            CdpsmSolver(tiny_instance, weights=np.eye(2))  # wrong shape
        bad = np.full((3, 3), 0.5)
        with pytest.raises(ValidationError):
            CdpsmSolver(tiny_instance, weights=bad)

    def test_histories_recorded(self, tiny_instance):
        sol = solve_cdpsm(tiny_instance, max_iter=10)
        assert len(sol.residual_history) == sol.iterations


class TestFig5Shape:
    """The paper's Fig. 5: LDDM converges faster than CDPSM."""

    def test_lddm_converges_in_fewer_iterations(self, tiny_instance):
        target_rel = 0.01
        ref = solve_reference(tiny_instance).objective

        lddm = solve_lddm(tiny_instance, max_iter=500, tol=1e-7)
        cdpsm = solve_cdpsm(tiny_instance, max_iter=500, tol=1e-9)

        def iters_to_target(history):
            for i, v in enumerate(history):
                if v <= ref * (1 + target_rel):
                    return i + 1
            return len(history) + 1

        assert iters_to_target(lddm.objective_history) < \
            iters_to_target(cdpsm.objective_history)

    def test_lddm_cheaper_communication(self, paper_instance):
        lddm = solve_lddm(paper_instance)
        cdpsm = solve_cdpsm(paper_instance, max_iter=lddm.iterations)
        assert lddm.comm_floats < cdpsm.comm_floats


class TestSolutionContainer:
    def test_violation_helpers(self, tiny_instance):
        sol = solve_lddm(tiny_instance)
        data = tiny_instance.data
        assert sol.demand_residual(data) < 1e-6
        assert sol.capacity_violation(data) <= 1e-6
        assert sol.mask_violation(data) == 0.0
        assert sol.max_violation(data) < 1e-6

    def test_loads_property(self, tiny_instance):
        sol = solve_lddm(tiny_instance)
        assert np.allclose(sol.loads, sol.allocation.sum(axis=0))

    def test_summary_string(self, tiny_instance):
        sol = solve_lddm(tiny_instance)
        assert "lddm" in sol.summary()
        assert "objective" in sol.summary()

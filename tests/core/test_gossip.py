"""Tests for the gossip-CDPSM extension."""

import numpy as np
import pytest

from repro.core.gossip import GossipCdpsmSolver, solve_gossip_cdpsm
from repro.core.params import ProblemData
from repro.core.problem import ReplicaSelectionProblem
from repro.core.reference import solve_reference
from repro.errors import InfeasibleProblemError, ValidationError
from repro.util.rng import make_rng


@pytest.fixture
def problem():
    data = ProblemData.paper_defaults(
        demands=[40.0, 55.0], prices=[2.0, 9.0, 4.0])
    return ReplicaSelectionProblem(data)


class TestValidation:
    def test_needs_two_replicas(self):
        data = ProblemData.paper_defaults([10.0], prices=[1.0])
        with pytest.raises(ValidationError):
            GossipCdpsmSolver(ReplicaSelectionProblem(data), make_rng(0))

    def test_max_iter(self, problem):
        with pytest.raises(ValidationError):
            GossipCdpsmSolver(problem, make_rng(0), max_iter=0)

    def test_infeasible(self):
        data = ProblemData.paper_defaults([500.0], prices=[1.0, 1.0])
        with pytest.raises(InfeasibleProblemError):
            solve_gossip_cdpsm(ReplicaSelectionProblem(data), make_rng(0))


class TestConvergence:
    def test_reaches_neighborhood_of_optimum(self, problem):
        ref = solve_reference(problem).objective
        sol = solve_gossip_cdpsm(problem, make_rng(1), max_iter=4000)
        assert sol.objective / ref - 1 < 0.05
        assert problem.violation(sol.allocation) < 1e-4

    def test_feasible_even_with_few_rounds(self, problem):
        sol = solve_gossip_cdpsm(problem, make_rng(1), max_iter=10)
        assert problem.violation(sol.allocation) < 1e-4

    def test_deterministic_given_rng(self, problem):
        a = solve_gossip_cdpsm(problem, make_rng(3), max_iter=200)
        b = solve_gossip_cdpsm(problem, make_rng(3), max_iter=200)
        assert np.allclose(a.allocation, b.allocation)
        assert a.objective == b.objective

    def test_two_messages_per_round(self, problem):
        sol = solve_gossip_cdpsm(problem, make_rng(0), max_iter=50,
                                 tol=0.0)
        assert sol.messages == 2 * sol.iterations

    def test_method_tag(self, problem):
        sol = solve_gossip_cdpsm(problem, make_rng(0), max_iter=10)
        assert sol.method == "gossip_cdpsm"

    def test_disagreement_shrinks(self, problem):
        sol = solve_gossip_cdpsm(problem, make_rng(5), max_iter=2000)
        hist = sol.residual_history
        # Average disagreement over the last tenth is below the first tenth.
        tenth = max(1, len(hist) // 10)
        assert np.mean(hist[-tenth:]) < np.mean(hist[:tenth])

"""The `repro.core.solve` facade: dispatch, parity, and kwarg contract."""

import numpy as np
import pytest

from repro.core import ALGORITHMS, solve
from repro.core.aggregate import solve_aggregated
from repro.core.cdpsm import CdpsmSolver, solve_cdpsm
from repro.core.lddm import LddmSolver, solve_lddm
from repro.core.params import ProblemData
from repro.core.problem import ReplicaSelectionProblem
from repro.core.reference import solve_reference
from repro.errors import ValidationError


@pytest.fixture
def problem() -> ReplicaSelectionProblem:
    data = ProblemData.paper_defaults(
        demands=[30.0, 50.0, 20.0], prices=[2.0, 10.0, 4.0])
    return ReplicaSelectionProblem(data)


class TestDispatchParity:
    """The facade adds nothing numerically: outputs are bit-identical."""

    def test_lddm_matches_solver_class(self, problem):
        via_facade = solve(problem, "lddm", max_iter=60)
        direct = LddmSolver(problem, max_iter=60).solve()
        assert np.array_equal(via_facade.allocation, direct.allocation)
        assert via_facade.objective == direct.objective
        assert via_facade.iterations == direct.iterations

    def test_cdpsm_matches_solver_class(self, problem):
        via_facade = solve(problem, "cdpsm", max_iter=60)
        direct = CdpsmSolver(problem, max_iter=60).solve()
        assert np.array_equal(via_facade.allocation, direct.allocation)
        assert via_facade.objective == direct.objective

    def test_wrappers_match_facade(self, problem):
        assert np.array_equal(
            solve_lddm(problem, max_iter=50).allocation,
            solve(problem, "lddm", max_iter=50).allocation)
        assert np.array_equal(
            solve_cdpsm(problem, max_iter=50).allocation,
            solve(problem, "cdpsm", max_iter=50).allocation)

    def test_reference_matches_wrapper(self, problem):
        assert solve(problem, "reference").objective \
            == solve_reference(problem).objective

    def test_aggregate_matches_solve_aggregated(self, problem):
        via_facade = solve(problem, "lddm", aggregate=True, max_iter=60)
        direct = solve_aggregated(problem, method="lddm", max_iter=60)
        assert np.array_equal(via_facade.allocation, direct.allocation)
        assert via_facade.n_classes == direct.n_classes

    def test_warm_start_kwarg(self, problem):
        cold = solve(problem, "lddm", max_iter=60)
        warm = solve(problem, "lddm", warm_start=cold.allocation,
                     max_iter=60)
        assert warm.warm_started is True
        assert warm.objective == pytest.approx(cold.objective, rel=1e-3)


class TestValidation:
    def test_algorithms_tuple(self):
        assert ALGORITHMS == ("lddm", "cdpsm", "reference")

    def test_unknown_algorithm(self, problem):
        with pytest.raises(ValidationError, match="unknown algorithm"):
            solve(problem, "magic")

    def test_mu0_is_lddm_only(self, problem):
        with pytest.raises(ValidationError, match="mu0"):
            solve(problem, "cdpsm", mu0=np.zeros(3))

    def test_reference_has_no_aggregate(self, problem):
        with pytest.raises(ValidationError, match="aggregated"):
            solve(problem, "reference", aggregate=True)

    def test_options_are_keyword_only(self, problem):
        with pytest.raises(TypeError):
            solve(problem, "lddm", True)  # noqa: E501 — aggregate must be kw


class TestRuntimeFields:
    """Every Solution now reports how the solve actually ran."""

    def test_populated_on_direct_solve(self, problem):
        sol = solve(problem, "lddm", max_iter=60)
        assert sol.solve_time_s is not None and sol.solve_time_s > 0
        assert sol.warm_started is False
        assert sol.n_classes is None  # not an aggregated solve

    def test_populated_on_aggregated_solve(self, problem):
        sol = solve(problem, "lddm", aggregate=True, max_iter=60)
        assert sol.solve_time_s is not None and sol.solve_time_s > 0
        assert sol.n_classes == problem.aggregated().n_classes

    def test_populated_on_reference_solve(self, problem):
        sol = solve(problem, "reference")
        assert sol.solve_time_s is not None and sol.solve_time_s > 0
        assert sol.warm_started is False


class TestKeywordOnlyAggregate:
    """The positional-``aggregate`` shim is gone: options are keyword-only."""

    def test_lddm_rejects_positional_aggregate(self, problem):
        with pytest.raises(TypeError):
            solve_lddm(problem, True)

    def test_cdpsm_rejects_positional_aggregate(self, problem):
        with pytest.raises(TypeError):
            solve_cdpsm(problem, True)

    def test_extra_positionals_rejected(self, problem):
        with pytest.raises(TypeError):
            solve_lddm(problem, True, None)

    def test_no_warning_for_keyword_use(self, problem, recwarn):
        solve_lddm(problem, aggregate=True, max_iter=40)
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]


class TestReferenceWarmStartAlias:
    def test_warm_start_equals_x0(self, problem):
        start = solve(problem, "lddm", max_iter=60).allocation
        via_alias = solve_reference(problem, warm_start=start)
        via_x0 = solve_reference(problem, x0=start)
        assert via_alias.objective == pytest.approx(via_x0.objective)
        assert via_alias.warm_started is True

    def test_both_spellings_rejected(self, problem):
        start = problem.uniform_allocation()
        with pytest.raises(ValidationError):
            solve_reference(problem, x0=start, warm_start=start)

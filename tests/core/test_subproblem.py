"""Tests for the LDDM replica subproblem: exact KKT solver vs scipy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import optimize

from repro.core.subproblem import ReplicaSubproblem, solve_replica_subproblem
from repro.errors import ValidationError


def scipy_solve(sub: ReplicaSubproblem) -> np.ndarray:
    """Reference solve of the same subproblem with SLSQP (multi-start).

    The returned point is forced feasible (clipped and rescaled onto the
    capacity), so objective comparisons against it are meaningful even
    when a start stalls.
    """
    m = sub.mu.size
    ref = sub.ref if sub.ref is not None else np.zeros(m)

    def fun(p):
        s = p.sum()
        val = sub.price * (sub.alpha * s + sub.beta * s ** sub.gamma)
        val += float(sub.mu @ p)
        if sub.epsilon > 0:
            val += 0.5 * sub.epsilon * float(np.sum((p - ref) ** 2))
        return val

    def feasible(p):
        p = np.maximum(p, 0.0)
        total = p.sum()
        if total > sub.bandwidth:
            p = p * (sub.bandwidth / total)
        return p

    cons = [{"type": "ineq", "fun": lambda p: sub.bandwidth - p.sum()}]
    starts = [np.full(m, sub.bandwidth / (2 * m)), np.zeros(m),
              np.maximum(ref, 0.0)]
    best, best_val = np.zeros(m), fun(np.zeros(m))
    for x0 in starts:
        res = optimize.minimize(fun, x0, bounds=[(0, None)] * m,
                                constraints=cons, method="SLSQP",
                                options={"maxiter": 500, "ftol": 1e-12})
        cand = feasible(res.x)
        val = fun(cand)
        if val < best_val:
            best, best_val = cand, val
    return best


def objective(sub: ReplicaSubproblem, p: np.ndarray) -> float:
    s = p.sum()
    ref = sub.ref if sub.ref is not None else np.zeros_like(p)
    val = sub.price * (sub.alpha * s + sub.beta * s ** sub.gamma)
    val += float(sub.mu @ p)
    if sub.epsilon > 0:
        val += 0.5 * sub.epsilon * float(np.sum((p - ref) ** 2))
    return val


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ValidationError):
            ReplicaSubproblem(price=0, alpha=1, beta=1, gamma=3,
                              bandwidth=10, mu=np.zeros(2))
        with pytest.raises(ValidationError):
            ReplicaSubproblem(price=1, alpha=1, beta=1, gamma=0.5,
                              bandwidth=10, mu=np.zeros(2))
        with pytest.raises(ValidationError):
            ReplicaSubproblem(price=1, alpha=1, beta=1, gamma=3,
                              bandwidth=10, mu=np.zeros(2), epsilon=-1)

    def test_ref_shape(self):
        with pytest.raises(ValidationError):
            ReplicaSubproblem(price=1, alpha=1, beta=0.01, gamma=3,
                              bandwidth=10, mu=np.zeros(3), ref=np.zeros(2),
                              epsilon=1.0)

    def test_mu_must_be_vector(self):
        with pytest.raises(ValidationError):
            ReplicaSubproblem(price=1, alpha=1, beta=0.01, gamma=3,
                              bandwidth=10, mu=np.zeros((2, 2)))


class TestExactSubproblem:
    """eps = 0: the paper's problem (5) in closed form."""

    def test_positive_mu_gives_zero(self):
        sub = ReplicaSubproblem(price=1, alpha=1, beta=0.01, gamma=3,
                                bandwidth=100, mu=np.array([5.0, 1.0]))
        assert solve_replica_subproblem(sub).tolist() == [0.0, 0.0]

    def test_interior_optimum(self):
        # h'(s) = u*alpha + u*beta*gamma*s^2 + mu_min = 0
        # 1 + 0.03 s^2 - 4 = 0 => s = 10.
        sub = ReplicaSubproblem(price=1, alpha=1, beta=0.01, gamma=3,
                                bandwidth=100, mu=np.array([-4.0, 0.0]))
        p = solve_replica_subproblem(sub)
        assert p[0] == pytest.approx(10.0)
        assert p[1] == 0.0

    def test_capacity_clamps(self):
        sub = ReplicaSubproblem(price=1, alpha=1, beta=0.01, gamma=3,
                                bandwidth=5.0, mu=np.array([-4.0]))
        assert solve_replica_subproblem(sub)[0] == pytest.approx(5.0)

    def test_ties_split_evenly(self):
        sub = ReplicaSubproblem(price=1, alpha=1, beta=0.01, gamma=3,
                                bandwidth=100, mu=np.array([-4.0, -4.0]))
        p = solve_replica_subproblem(sub)
        assert p[0] == pytest.approx(p[1])
        assert p.sum() == pytest.approx(10.0)

    def test_linear_energy_bang_bang(self):
        # gamma=1 => marginal constant; negative total slope => full B.
        sub = ReplicaSubproblem(price=1, alpha=1, beta=0.0, gamma=1,
                                bandwidth=7.0, mu=np.array([-2.0]))
        assert solve_replica_subproblem(sub)[0] == pytest.approx(7.0)

    def test_empty_mu(self):
        sub = ReplicaSubproblem(price=1, alpha=1, beta=0.01, gamma=3,
                                bandwidth=10, mu=np.zeros(0))
        assert solve_replica_subproblem(sub).size == 0

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_exact_matches_scipy_objective(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, 6))
        sub = ReplicaSubproblem(
            price=float(rng.uniform(0.5, 20)), alpha=1.0, beta=0.01,
            gamma=3.0, bandwidth=float(rng.uniform(5, 100)),
            mu=rng.uniform(-50, 10, size=m))
        ours = solve_replica_subproblem(sub)
        theirs = scipy_solve(sub)
        # Minimizers may differ (linear ties); objectives must match.
        assert objective(sub, ours) <= objective(sub, theirs) + 1e-5


class TestProximalSubproblem:
    """eps > 0: exact via nested bisection, checked against scipy."""

    def _random_sub(self, seed, bind_capacity=False):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, 7))
        bandwidth = float(rng.uniform(3, 20)) if bind_capacity \
            else float(rng.uniform(50, 200))
        return ReplicaSubproblem(
            price=float(rng.uniform(0.5, 20)), alpha=1.0,
            beta=float(rng.uniform(0.001, 0.05)), gamma=3.0,
            bandwidth=bandwidth,
            mu=rng.uniform(-80, 20, size=m),
            ref=rng.uniform(0, 30, size=m),
            epsilon=float(rng.uniform(0.05, 5.0)))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_matches_scipy(self, seed):
        sub = self._random_sub(seed)
        ours = solve_replica_subproblem(sub)
        theirs = scipy_solve(sub)
        assert objective(sub, ours) <= objective(sub, theirs) + 1e-5
        assert np.allclose(ours, theirs, atol=1e-3)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_capacity_binding_matches_scipy(self, seed):
        sub = self._random_sub(seed, bind_capacity=True)
        ours = solve_replica_subproblem(sub)
        theirs = scipy_solve(sub)
        assert ours.sum() <= sub.bandwidth + 1e-8
        assert objective(sub, ours) <= objective(sub, theirs) + 1e-5

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.sampled_from([1.0, 1.5, 2.0, 4.0]))
    def test_property_other_gammas_match_scipy(self, seed, gamma):
        """The KKT solver is exact for any polynomial degree gamma >= 1,
        not just the paper's cubic case."""
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, 6))
        sub = ReplicaSubproblem(
            price=float(rng.uniform(0.5, 20)), alpha=1.0,
            beta=float(rng.uniform(0.001, 0.1)), gamma=gamma,
            bandwidth=float(rng.uniform(10, 150)),
            mu=rng.uniform(-60, 10, size=m),
            ref=rng.uniform(0, 20, size=m),
            epsilon=float(rng.uniform(0.05, 3.0)))
        ours = solve_replica_subproblem(sub)
        theirs = scipy_solve(sub)
        assert objective(sub, ours) <= objective(sub, theirs) + 1e-5

    def test_zero_when_mu_large(self):
        sub = ReplicaSubproblem(price=1, alpha=1, beta=0.01, gamma=3,
                                bandwidth=10, mu=np.array([100.0]),
                                ref=np.array([0.0]), epsilon=1.0)
        assert solve_replica_subproblem(sub)[0] == 0.0

    def test_proximal_pull_toward_ref(self):
        # With huge epsilon the solution hugs the reference point.
        ref = np.array([3.0, 4.0])
        sub = ReplicaSubproblem(price=1, alpha=1, beta=0.01, gamma=3,
                                bandwidth=100, mu=np.array([-10.0, -10.0]),
                                ref=ref, epsilon=1e6)
        p = solve_replica_subproblem(sub)
        assert np.allclose(p, ref, atol=0.01)

    def test_capacity_snap_exact(self):
        sub = ReplicaSubproblem(price=1, alpha=1, beta=0.01, gamma=3,
                                bandwidth=4.0, mu=np.array([-50.0, -50.0]),
                                ref=np.array([10.0, 10.0]), epsilon=0.5)
        p = solve_replica_subproblem(sub)
        assert p.sum() == pytest.approx(4.0)

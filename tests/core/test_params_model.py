"""Tests for ProblemData and the energy model (Eq. 1)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.model import (
    energy_gradient,
    load_marginal_cost,
    replica_energy,
    replica_loads,
    total_energy,
)
from repro.core.params import (
    PAPER_ALPHA,
    PAPER_GAMMA,
    ProblemData,
    ReplicaParams)
from repro.errors import ValidationError


class TestReplicaParams:
    def test_valid(self):
        r = ReplicaParams(price=5.0, bandwidth=100.0)
        assert r.alpha == PAPER_ALPHA and r.gamma == PAPER_GAMMA

    @pytest.mark.parametrize("kw", [
        {"price": 0.0, "bandwidth": 1.0},
        {"price": 1.0, "bandwidth": 0.0},
        {"price": 1.0, "bandwidth": 1.0, "alpha": -1},
        {"price": 1.0, "bandwidth": 1.0, "beta": -1},
        {"price": 1.0, "bandwidth": 1.0, "gamma": 0.5},
    ])
    def test_invalid(self, kw):
        with pytest.raises(ValidationError):
            ReplicaParams(**kw)


class TestProblemData:
    def test_paper_defaults(self):
        d = ProblemData.paper_defaults([10, 20], prices=[1, 2, 3])
        assert d.shape == (2, 3)
        assert np.all(d.alpha == 1.0)
        assert np.all(d.beta == 0.01)
        assert np.all(d.gamma == 3.0)
        assert np.all(d.B == 100.0)
        assert d.mask.all()

    def test_from_replicas_roundtrip(self):
        reps = [ReplicaParams(price=2.0, bandwidth=50.0),
                ReplicaParams(price=7.0, bandwidth=80.0, gamma=2.0)]
        d = ProblemData.from_replicas(reps, demands=[10.0])
        assert d.replica(0) == reps[0]
        assert d.replica(1) == reps[1]

    def test_from_replicas_empty(self):
        with pytest.raises(ValidationError):
            ProblemData.from_replicas([], demands=[1.0])

    def test_scalar_broadcast(self):
        d = ProblemData([1], [10, 10], prices=[1, 1], alpha=2.0, beta=0.5,
                        gamma=3.0)
        assert d.alpha.tolist() == [2.0, 2.0]

    def test_mask_shape_checked(self):
        with pytest.raises(ValidationError):
            ProblemData.paper_defaults([1, 2], prices=[1],
                                       mask=np.ones((3, 1), dtype=bool))

    def test_negative_demand(self):
        with pytest.raises(ValidationError):
            ProblemData.paper_defaults([-1.0], prices=[1])

    def test_gamma_below_one(self):
        with pytest.raises(ValidationError):
            ProblemData([1], [10], prices=[1], alpha=1, beta=1, gamma=0.9)

    def test_demands_must_be_vector(self):
        with pytest.raises(ValidationError):
            ProblemData([[1, 2]], [10], prices=[1], alpha=1, beta=1, gamma=1)


class TestEnergyModel:
    def test_replica_loads(self):
        P = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert replica_loads(P).tolist() == [4.0, 6.0]

    def test_eq1_by_hand(self):
        # E_n = u*(alpha*L + beta*L^gamma) with u=2, alpha=1, beta=0.01, g=3
        d = ProblemData.paper_defaults([10.0], prices=[2.0])
        e = replica_energy(d, np.array([10.0]))
        assert e[0] == pytest.approx(2.0 * (10.0 + 0.01 * 1000.0))

    def test_total_energy_sums(self):
        d = ProblemData.paper_defaults([10.0, 10.0], prices=[1.0, 3.0])
        P = np.array([[5.0, 5.0], [5.0, 5.0]])
        per = replica_energy(d, replica_loads(P))
        assert total_energy(d, P) == pytest.approx(per.sum())

    def test_loads_validation(self):
        d = ProblemData.paper_defaults([1.0], prices=[1.0])
        with pytest.raises(ValidationError):
            replica_energy(d, np.array([1.0, 2.0]))
        with pytest.raises(ValidationError):
            replica_energy(d, np.array([-1.0]))

    def test_marginal_cost_gamma_one(self):
        d = ProblemData([1.0], [10.0], prices=[2.0], alpha=1.0, beta=0.5,
                        gamma=1.0)
        m = load_marginal_cost(d, np.array([0.0]))
        assert m[0] == pytest.approx(2.0 * (1.0 + 0.5))

    def test_marginal_cost_at_zero_gamma_three(self):
        d = ProblemData.paper_defaults([1.0], prices=[1.0])
        assert load_marginal_cost(d, np.array([0.0]))[0] == pytest.approx(1.0)

    def test_gradient_uniform_over_clients(self):
        d = ProblemData.paper_defaults([10.0, 20.0], prices=[1.0, 5.0])
        P = np.array([[4.0, 6.0], [10.0, 10.0]])
        g = energy_gradient(d, P)
        assert g[0, 0] == g[1, 0]
        assert g[0, 1] == g[1, 1]

    def test_gradient_masked(self):
        mask = np.array([[True, False], [True, True]])
        d = ProblemData.paper_defaults([10.0, 20.0], prices=[1.0, 5.0],
                                       mask=mask)
        g = energy_gradient(d, np.ones((2, 2)))
        assert g[0, 1] == 0.0 and g[1, 1] != 0.0

    def test_gradient_shape_checked(self):
        d = ProblemData.paper_defaults([1.0], prices=[1.0])
        with pytest.raises(ValidationError):
            energy_gradient(d, np.zeros((2, 2)))

    @given(st.floats(0.0, 100.0), st.floats(0.0, 100.0), st.floats(0, 1))
    def test_property_convexity_along_segments(self, l1, l2, t):
        """E_n is convex: E(t*l1 + (1-t)*l2) <= t*E(l1) + (1-t)*E(l2)."""
        d = ProblemData.paper_defaults([1.0], prices=[7.0])
        e = lambda l: float(replica_energy(d, np.array([l]))[0])
        mid = t * l1 + (1 - t) * l2
        assert e(mid) <= t * e(l1) + (1 - t) * e(l2) + 1e-6

    @given(st.floats(0.1, 80.0))
    def test_property_gradient_matches_finite_difference(self, load):
        d = ProblemData.paper_defaults([load], prices=[3.0])
        P = np.array([[load]])
        g = energy_gradient(d, P)[0, 0]
        h = 1e-6 * max(1.0, load)
        fd = (total_energy(d, P + h) - total_energy(d, P - h)) / (2 * h)
        assert g == pytest.approx(fd, rel=1e-4)

    @given(st.floats(0, 50), st.floats(0, 50))
    def test_property_marginal_cost_monotone(self, a, b):
        """Marginal cost is nondecreasing in load (convexity)."""
        d = ProblemData.paper_defaults([1.0], prices=[2.0])
        lo, hi = min(a, b), max(a, b)
        m_lo = load_marginal_cost(d, np.array([lo]))[0]
        m_hi = load_marginal_cost(d, np.array([hi]))[0]
        assert m_lo <= m_hi + 1e-9

"""Client-class aggregation: exactness, degenerate structures, parity.

The load-bearing claims of :mod:`repro.core.aggregate`:

* the reduction/expansion maps are *exact* — expansion preserves column
  loads (hence the objective) and satisfies every per-client constraint,
  and the reduction of a feasible allocation is feasible for the reduced
  instance at the same objective (so the two optima coincide);
* degenerate class structures behave: K=1 (everyone shares a mask),
  K=C (pass-through must be *bit-identical* to the direct solve), and
  zero-demand clients inside classes;
* solver entry points (``solve_*(aggregate=True)``) land on the same
  optimum as the direct and reference solvers.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import model
from repro.core.aggregate import (
    AggregatedProblem,
    ClassStructure,
    aggregate_problem,
    solve_aggregated,
)
from repro.core.cdpsm import solve_cdpsm
from repro.core.lddm import solve_lddm
from repro.core.params import ProblemData
from repro.core.problem import ReplicaSelectionProblem
from repro.core.reference import solve_reference
from repro.errors import ValidationError
from repro.util.rng import make_rng

from tests.core.conftest import random_instance


def _class_instance(seed: int, n_clients: int, n_patterns: int = 3,
                    n_replicas: int = 4,
                    zero_demand: bool = False) -> ReplicaSelectionProblem:
    """Feasible instance whose mask rows repeat across clients."""
    rng = make_rng(seed)
    patterns = np.zeros((n_patterns, n_replicas), dtype=bool)
    for k in range(n_patterns):
        support = rng.random(n_replicas) < 0.6
        if not support.any():
            support[rng.integers(n_replicas)] = True
        patterns[k] = support
    mask = patterns[rng.integers(0, n_patterns, size=n_clients)]
    demands = rng.uniform(1.0, 6.0, size=n_clients)
    if zero_demand:
        demands[rng.random(n_clients) < 0.3] = 0.0
    capacities = np.full(n_replicas, float(demands.sum()) + 1.0)
    data = ProblemData(demands=demands, capacities=capacities,
                       prices=rng.integers(1, 9, n_replicas).astype(float),
                       alpha=1.0, beta=0.01, gamma=3.0, mask=mask)
    return ReplicaSelectionProblem(data)


class TestClassStructure:
    def test_groups_by_identical_mask_rows(self):
        mask = np.array([[1, 1, 0], [0, 1, 1], [1, 1, 0], [0, 1, 1],
                         [1, 1, 1]], dtype=bool)
        s = ClassStructure.from_mask(mask, np.arange(1.0, 6.0))
        assert s.n_classes == 3
        assert s.class_of_client.tolist() == [0, 1, 0, 1, 2]
        # First-occurrence ordering: class 0 is row 0's pattern, etc.
        assert np.array_equal(s.masks[0], mask[0])
        assert np.array_equal(s.masks[1], mask[1])
        assert np.array_equal(s.masks[2], mask[4])
        assert s.demands.tolist() == [1.0 + 3.0, 2.0 + 4.0, 5.0]
        assert s.members(0).tolist() == [0, 2]

    def test_keys_are_stable_mask_tokens(self):
        mask = np.array([[1, 0], [0, 1], [1, 0]], dtype=bool)
        s = ClassStructure.from_mask(mask, np.ones(3))
        s2 = ClassStructure.from_mask(mask[[1, 0, 0]], np.ones(3))
        # Same patterns, different client order: the *token set* matches
        # even though class indices differ — this is what lets warm-start
        # entries survive client churn.
        assert set(s.keys) == set(s2.keys)
        assert len(set(s.keys)) == s.n_classes

    def test_ordering_stable_under_appended_clients(self):
        mask = np.array([[1, 0, 1], [0, 1, 1]], dtype=bool)
        s = ClassStructure.from_mask(mask, np.ones(2))
        grown = np.vstack([mask, [[1, 1, 1], [1, 0, 1]]]).astype(bool)
        s2 = ClassStructure.from_mask(grown, np.ones(4))
        assert np.array_equal(s2.masks[: s.n_classes], s.masks)
        assert s2.class_of_client.tolist() == [0, 1, 2, 0]

    def test_reduce_then_expand_preserves_loads_exactly(self):
        prob = _class_instance(3, n_clients=40)
        s = aggregate_problem(prob).structure
        P = prob.uniform_allocation()
        Q = s.reduce_rows(P)
        P2 = s.expand_rows(Q)
        assert np.allclose(P2.sum(axis=0), P.sum(axis=0), rtol=0, atol=1e-9)
        assert np.allclose(P2.sum(axis=1), prob.data.R, rtol=0, atol=1e-9)

    def test_shape_validation(self):
        mask = np.ones((3, 2), dtype=bool)
        s = ClassStructure.from_mask(mask, np.ones(3))
        with pytest.raises(ValidationError):
            s.expand_rows(np.zeros((2, 2)))
        with pytest.raises(ValidationError):
            s.reduce_rows(np.zeros((4, 2)))
        with pytest.raises(ValidationError):
            s.expand_mu(np.zeros(3))
        with pytest.raises(ValidationError):
            ClassStructure.from_mask(np.ones((0, 2), dtype=bool), np.ones(0))


class TestDegenerateStructures:
    def test_single_class_collapses_to_one_row(self):
        prob = random_instance(11, n_clients=30, masked=False)
        agg = prob.aggregated()
        assert agg.n_classes == 1
        sol = solve_aggregated(prob, max_iter=400, tol=1e-6)
        ref = solve_reference(prob)
        assert sol.objective == pytest.approx(ref.objective, rel=1e-4)
        assert prob.violation(sol.allocation) < 1e-8

    @pytest.mark.parametrize("method,solve", [("lddm", solve_lddm),
                                              ("cdpsm", solve_cdpsm)])
    def test_all_unique_masks_is_bit_identical_passthrough(self, method,
                                                           solve):
        # Distinct mask per client => K == C, singleton weights are exactly
        # 1.0, and the reduced instance *is* the original, so the
        # aggregated solve must reproduce the direct one bit for bit.
        rng = make_rng(17)
        mask = np.array([[1, 1, 1, 1], [1, 1, 1, 0], [1, 1, 0, 1],
                         [0, 1, 1, 1], [1, 0, 1, 1]], dtype=bool)
        data = ProblemData.paper_defaults(
            demands=rng.uniform(10, 40, size=5),
            prices=[1.0, 8.0, 1.0, 6.0], mask=mask)
        prob = ReplicaSelectionProblem(data)
        agg = prob.aggregated()
        assert agg.n_classes == data.n_clients
        assert np.array_equal(agg.problem.data.mask, data.mask)
        assert np.array_equal(agg.problem.data.R, data.R)
        direct = solve(prob, max_iter=60)
        aggregated = solve(prob, aggregate=True, max_iter=60)
        assert np.array_equal(aggregated.allocation, direct.allocation)
        assert aggregated.objective == direct.objective
        assert aggregated.iterations == direct.iterations

    def test_zero_demand_clients_get_zero_rows(self):
        prob = _class_instance(5, n_clients=25, zero_demand=True)
        zero = prob.data.R == 0.0
        assert zero.any()  # the scenario actually exercises the case
        sol = solve_aggregated(prob, max_iter=300, tol=1e-6)
        assert np.all(sol.allocation[zero] == 0.0)
        assert prob.violation(sol.allocation) < 1e-8

    def test_whole_class_of_zero_demand(self):
        mask = np.array([[1, 1, 0], [1, 1, 0], [0, 1, 1]], dtype=bool)
        data = ProblemData.paper_defaults(
            demands=[0.0, 0.0, 40.0], prices=[1.0, 8.0, 1.0], mask=mask)
        prob = ReplicaSelectionProblem(data)
        agg = prob.aggregated()
        assert agg.structure.demands[0] == 0.0
        sol = solve_aggregated(prob, max_iter=200)
        assert np.all(sol.allocation[:2] == 0.0)
        assert sol.allocation[2].sum() == pytest.approx(40.0, abs=1e-9)


class TestExactness:
    """The ≤1e-9 mapping-parity properties behind `aggregate=True`.

    Iterate-for-iterate parity between the direct and reduced solver
    *runs* is not defined (their step sizes scale with R.max(), which the
    reduction changes), so exactness is pinned where it actually holds:
    the reduction/expansion maps preserve objective and loads to float
    round-off, in both directions, on randomized instances.
    """

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), n_clients=st.integers(2, 60),
           n_patterns=st.integers(1, 5))
    def test_expansion_is_exact(self, seed, n_clients, n_patterns):
        prob = _class_instance(seed, n_clients, n_patterns=n_patterns)
        agg = aggregate_problem(prob)
        red = agg.problem
        # Any feasible reduced allocation expands to a per-client feasible
        # one with identical loads/objective: use the repaired uniform.
        Q = red.repair(red.uniform_allocation())
        P = agg.structure.expand_rows(Q)
        scale = max(float(prob.data.R.max()), 1.0)
        # Mask and nonnegativity hold *exactly*; demand rows to round-off.
        assert np.all(P[~prob.data.mask] == 0.0)
        assert np.all(P >= 0.0)
        assert np.max(np.abs(P.sum(axis=1) - prob.data.R)) <= 1e-9 * scale
        assert np.max(np.abs(P.sum(axis=0) - Q.sum(axis=0))) <= 1e-9 * scale
        assert model.total_energy(prob.data, P) == pytest.approx(
            model.total_energy(red.data, Q), rel=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), n_clients=st.integers(2, 60),
           n_patterns=st.integers(1, 5))
    def test_reduction_is_exact(self, seed, n_clients, n_patterns):
        prob = _class_instance(seed, n_clients, n_patterns=n_patterns)
        agg = aggregate_problem(prob)
        P = prob.repair(prob.uniform_allocation())
        Q = agg.structure.reduce_rows(P)
        scale = max(float(prob.data.R.max()), 1.0)
        assert np.all(Q[~agg.problem.data.mask] == 0.0)
        assert np.max(np.abs(Q.sum(axis=1) - agg.structure.demands)) \
            <= 1e-9 * scale
        assert np.max(np.abs(Q.sum(axis=0) - P.sum(axis=0))) <= 1e-9 * scale
        assert model.total_energy(agg.problem.data, Q) == pytest.approx(
            model.total_energy(prob.data, P), rel=1e-12)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 5_000), n_clients=st.integers(3, 40))
    def test_aggregated_optimum_matches_reference(self, seed, n_clients):
        prob = _class_instance(seed, n_clients)
        agg_ref = solve_reference(prob.aggregated().problem)
        direct_ref = solve_reference(prob)
        # The two optima coincide (exact transformation); SLSQP agreement
        # is at solver tolerance, not 1e-9.
        assert agg_ref.objective == pytest.approx(direct_ref.objective,
                                                  rel=1e-6)


class TestSolverEntryPoints:
    def test_lddm_aggregate_flag_matches_direct_objective(self):
        prob = _class_instance(23, n_clients=50)
        direct = solve_lddm(prob, max_iter=500, tol=1e-6)
        aggregated = solve_lddm(prob, aggregate=True, max_iter=500, tol=1e-6)
        assert aggregated.objective == pytest.approx(direct.objective,
                                                     rel=1e-4)
        assert prob.violation(aggregated.allocation) < 1e-8

    def test_cdpsm_aggregate_flag_reaches_reference(self):
        # CDPSM's constant step converges to an O(step)-neighborhood of
        # the optimum; on the K-row instance the default step is coarser
        # (fewer, larger rows), so match accuracy by shrinking the step
        # rather than comparing two different-sized neighborhoods.
        from repro.core.cdpsm import default_cdpsm_step
        from repro.core.stepsize import ConstantStep

        prob = _class_instance(23, n_clients=50)
        ref = solve_reference(prob)
        step = ConstantStep(0.3 * default_cdpsm_step(
            prob.aggregated().problem.data))
        aggregated = solve_cdpsm(prob, aggregate=True, step=step,
                                 max_iter=2000, tol=1e-6)
        assert aggregated.objective == pytest.approx(ref.objective, rel=1e-4)
        assert prob.violation(aggregated.allocation) < 1e-8

    def test_problem_aggregated_entry_point(self):
        prob = _class_instance(29, n_clients=16)
        agg = prob.aggregated()
        assert isinstance(agg, AggregatedProblem)
        assert agg.original is prob
        assert agg.structure.n_clients == 16

    def test_unknown_method_rejected(self):
        prob = _class_instance(31, n_clients=4)
        with pytest.raises(ValidationError):
            solve_aggregated(prob, method="simplex")

"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.sim.engine
import repro.util.rng

MODULES = [repro.util.rng, repro.sim.engine]


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_doctests(module):
    result = doctest.testmod(module, optionflags=doctest.ELLIPSIS)
    assert result.attempted > 0, f"{module.__name__} has no doctests"
    assert result.failed == 0

"""Tests for the DONAR reimplementation and the price-greedy ablation."""

import numpy as np
import pytest

from repro.baselines.donar import DonarSolver, solve_donar
from repro.baselines.greedy import solve_price_greedy
from repro.core.params import ProblemData
from repro.core.problem import ReplicaSelectionProblem
from repro.errors import InfeasibleProblemError, ValidationError


def latency(C, N, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0001, 0.0015, size=(C, N))


class TestDonarValidation:
    def test_bad_shapes(self):
        with pytest.raises(ValidationError):
            DonarSolver(np.zeros(3), [1.0], [1.0])
        with pytest.raises(ValidationError):
            DonarSolver(np.zeros((2, 2)), [1.0], [1.0, 1.0])
        with pytest.raises(ValidationError):
            DonarSolver(np.zeros((2, 2)), [1.0, 1.0], [1.0])
        with pytest.raises(ValidationError):
            DonarSolver(np.zeros((2, 2)), [1.0, 1.0], [1.0, 1.0],
                        mask=np.ones((1, 2), dtype=bool))
        with pytest.raises(ValidationError):
            DonarSolver(np.zeros((2, 2)), [1.0, 1.0], [1.0, 1.0],
                        split_weights=[0.0, 0.0])
        with pytest.raises(ValidationError):
            DonarSolver(np.zeros((2, 2)), [1.0, 1.0], [1.0, 1.0],
                        n_mapping_nodes=0)
        with pytest.raises(ValidationError):
            DonarSolver(np.zeros((2, 2)), [1.0, 1.0], [1.0, 1.0], lam=-1)

    def test_orphan_client(self):
        mask = np.array([[False, False]])
        solver = DonarSolver(np.zeros((1, 2)), [5.0], [10.0, 10.0], mask=mask)
        with pytest.raises(InfeasibleProblemError):
            solver.solve()


class TestDonarBehavior:
    def test_demands_met_exactly(self):
        C, N = 6, 3
        sol = solve_donar(latency(C, N), np.full(C, 20.0), np.full(N, 100.0))
        assert np.allclose(sol.allocation.sum(axis=1), 20.0, atol=1e-8)
        assert np.all(sol.allocation >= -1e-10)

    def test_capacity_respected(self):
        C, N = 8, 2
        sol = solve_donar(latency(C, N), np.full(C, 20.0),
                          np.array([90.0, 100.0]))
        loads = sol.allocation.sum(axis=0)
        assert loads[0] <= 90.0 + 1e-6
        assert loads[1] <= 100.0 + 1e-6

    def test_prefers_low_latency(self):
        # One client, replica 0 much closer: most load should go there.
        cost = np.array([[0.0001, 0.0100]])
        sol = solve_donar(cost, [10.0], [100.0, 100.0], lam=0.0)
        assert sol.allocation[0, 0] > sol.allocation[0, 1]

    def test_split_weights_steer_load(self):
        cost = np.zeros((4, 2))  # no latency preference
        sol = solve_donar(cost, np.full(4, 10.0), np.full(2, 100.0),
                          split_weights=[0.8, 0.2], lam=10.0)
        loads = sol.allocation.sum(axis=0)
        assert loads[0] > loads[1]
        assert loads[0] == pytest.approx(0.8 * 40.0, rel=0.15)

    def test_objective_decreases(self):
        sol = solve_donar(latency(10, 3, seed=2), np.full(10, 15.0),
                          np.full(3, 100.0))
        hist = sol.objective_history
        assert hist[-1] <= hist[0] + 1e-9

    def test_energy_oblivious(self):
        """DONAR's allocation is independent of electricity prices — the
        property that distinguishes it from EDR."""
        cost = latency(5, 3, seed=4)
        a = solve_donar(cost, np.full(5, 10.0), np.full(3, 100.0))
        b = solve_donar(cost, np.full(5, 10.0), np.full(3, 100.0))
        assert np.allclose(a.allocation, b.allocation)  # no price input at all

    def test_mapping_node_counts_affect_messages(self):
        cost = latency(6, 3)
        a = solve_donar(cost, np.full(6, 10.0), np.full(3, 100.0),
                        n_mapping_nodes=2, sweeps=5)
        b = solve_donar(cost, np.full(6, 10.0), np.full(3, 100.0),
                        n_mapping_nodes=4, sweeps=5)
        assert b.messages > a.messages

    def test_single_mapping_node(self):
        sol = solve_donar(latency(3, 2), np.full(3, 5.0), np.full(2, 50.0),
                          n_mapping_nodes=1)
        assert np.allclose(sol.allocation.sum(axis=1), 5.0, atol=1e-8)

    def test_more_mapping_nodes_than_clients(self):
        sol = solve_donar(latency(2, 2), np.full(2, 5.0), np.full(2, 50.0),
                          n_mapping_nodes=5)
        assert np.allclose(sol.allocation.sum(axis=1), 5.0, atol=1e-8)


class TestPriceGreedy:
    def _problem(self):
        data = ProblemData.paper_defaults(
            [40.0, 40.0, 40.0], prices=[1, 8, 1, 6, 1, 5, 2, 3])
        return ReplicaSelectionProblem(data)

    def test_feasible(self):
        prob = self._problem()
        sol = solve_price_greedy(prob)
        assert prob.violation(sol.allocation) < 1e-6

    def test_concentrates_on_cheap(self):
        prob = self._problem()
        sol = solve_price_greedy(prob)
        loads = sol.loads
        # Cheapest replicas (indices 0, 2, 4 at price 1) take the load.
        assert loads[0] + loads[2] + loads[4] > 0.9 * prob.data.R.sum()

    def test_beats_round_robin_but_loses_to_lddm(self):
        from repro.baselines.round_robin import solve_round_robin
        from repro.core.lddm import solve_lddm
        prob = self._problem()
        rr = solve_round_robin(prob).objective
        greedy = solve_price_greedy(prob).objective
        lddm = solve_lddm(prob).objective
        assert lddm <= greedy + 1e-6
        assert lddm <= rr + 1e-6

    def test_respects_mask(self):
        mask = np.array([[True, False], [True, True]])
        data = ProblemData.paper_defaults([10.0, 10.0], prices=[9.0, 1.0],
                                          mask=mask)
        sol = solve_price_greedy(ReplicaSelectionProblem(data))
        assert sol.allocation[0, 1] == 0.0

    def test_infeasible_raises(self):
        data = ProblemData.paper_defaults([5000.0], prices=[1.0])
        with pytest.raises(InfeasibleProblemError):
            solve_price_greedy(ReplicaSelectionProblem(data))

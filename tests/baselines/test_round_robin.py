"""Tests for the Round-Robin baseline."""

import numpy as np
import pytest

from repro.baselines.round_robin import RoundRobinScheduler, solve_round_robin
from repro.core.params import ProblemData
from repro.core.problem import ReplicaSelectionProblem
from repro.errors import InfeasibleProblemError
from repro.workload.requests import Request


def req(client="c0", size=10.0, t=0.0):
    return Request(client=client, arrival=t, size_mb=size, app="dfs")


class TestScheduler:
    def test_cycles_through_replicas(self):
        sched = RoundRobinScheduler(["r0", "r1", "r2"], np.full(3, 1000.0))
        picks = [sched.assign(req(t=i)) for i in range(6)]
        assert picks == ["r0", "r1", "r2", "r0", "r1", "r2"]

    def test_skips_saturated(self):
        sched = RoundRobinScheduler(["r0", "r1"], np.array([15.0, 1000.0]))
        picks = [sched.assign(req(t=i)) for i in range(4)]
        # r0 fits one 10 MB request (15 cap), then saturates.
        assert picks == ["r0", "r1", "r1", "r1"]

    def test_eligibility_respected(self):
        elig = {"c0": np.array([False, True])}
        sched = RoundRobinScheduler(["r0", "r1"], np.full(2, 1000.0),
                                    eligibility=elig)
        assert sched.assign(req()) == "r1"
        assert sched.assign(req(t=1)) == "r1"

    def test_no_eligible_raises(self):
        elig = {"c0": np.array([False, False])}
        sched = RoundRobinScheduler(["r0", "r1"], np.full(2, 10.0),
                                    eligibility=elig)
        with pytest.raises(InfeasibleProblemError):
            sched.assign(req())

    def test_all_saturated_falls_back_to_least_loaded(self):
        sched = RoundRobinScheduler(["r0", "r1"], np.array([5.0, 5.0]))
        sched.assign(req(size=4.0))          # r0: 4
        pick = sched.assign(req(size=4.0, t=1))  # r1: 4
        assert pick == "r1"
        # Both now can't fit 4 more; least-loaded wins (tie -> r0).
        pick = sched.assign(req(size=4.0, t=2))
        assert pick == "r0"

    def test_release_restores_capacity(self):
        sched = RoundRobinScheduler(["r0", "r1"], np.array([10.0, 1000.0]))
        sched.assign(req(size=10.0))
        sched.release("r0", 10.0)
        assert sched.assign(req(size=10.0, t=1)) == "r1"  # cursor moved on
        assert sched.assign(req(size=10.0, t=2)) == "r0"  # capacity back


class TestMatrixForm:
    def test_round_robin_ignores_prices(self):
        cheap = ProblemData.paper_defaults([30.0], prices=[1.0, 20.0])
        pricey = ProblemData.paper_defaults([30.0], prices=[20.0, 1.0])
        a = solve_round_robin(ReplicaSelectionProblem(cheap)).allocation
        b = solve_round_robin(ReplicaSelectionProblem(pricey)).allocation
        assert np.allclose(a, b)

    def test_feasible_output(self):
        data = ProblemData.paper_defaults(
            [80.0, 80.0], prices=[1.0, 2.0], bandwidth=100.0)
        prob = ReplicaSelectionProblem(data)
        sol = solve_round_robin(prob)
        assert prob.violation(sol.allocation) < 1e-6

    def test_costlier_than_lddm(self):
        """The paper's core claim: energy-aware beats round-robin on cost."""
        from repro.core.lddm import solve_lddm
        data = ProblemData.paper_defaults(
            [40.0, 40.0, 40.0], prices=[1, 8, 1, 6, 1, 5, 2, 3])
        prob = ReplicaSelectionProblem(data)
        rr = solve_round_robin(prob)
        lddm = solve_lddm(prob)
        assert lddm.objective < rr.objective

    def test_infeasible_raises(self):
        data = ProblemData.paper_defaults([5000.0], prices=[1.0])
        with pytest.raises(InfeasibleProblemError):
            solve_round_robin(ReplicaSelectionProblem(data))

"""Fairness properties of the Round-Robin scheduler."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines.round_robin import RoundRobinScheduler
from repro.workload.requests import Request


class TestFairness:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 8), st.integers(1, 60))
    def test_property_counts_balanced_with_uniform_sizes(self, n_replicas,
                                                         n_requests):
        """With ample capacity and full eligibility, per-replica request
        counts differ by at most one — the definition of cyclic fairness."""
        sched = RoundRobinScheduler(
            [f"r{i}" for i in range(n_replicas)],
            np.full(n_replicas, 1e9))
        counts = {f"r{i}": 0 for i in range(n_replicas)}
        for k in range(n_requests):
            pick = sched.assign(Request(client="c", arrival=float(k),
                                        size_mb=1.0, app="dfs"))
            counts[pick] += 1
        values = list(counts.values())
        assert max(values) - min(values) <= 1

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 5000))
    def test_property_assignment_respects_eligibility(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        names = [f"r{i}" for i in range(n)]
        elig = rng.random(n) < 0.6
        if not elig.any():
            elig[int(rng.integers(n))] = True
        sched = RoundRobinScheduler(names, np.full(n, 1e9),
                                    eligibility={"c": elig})
        for k in range(20):
            pick = sched.assign(Request(client="c", arrival=float(k),
                                        size_mb=1.0, app="dfs"))
            assert elig[names.index(pick)]

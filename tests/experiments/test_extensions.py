"""Tests for the extension experiments (dynamic tariffs, geo latency)."""

import numpy as np
import pytest

from repro.cluster.pricing import PriceSchedule
from repro.edr.system import EDRSystem, RuntimeConfig
from repro.errors import ValidationError
from repro.experiments import ext_dynamic_prices, ext_geo_latency

from tests.edr.conftest import burst_trace


class TestDynamicPricesRuntime:
    def test_schedule_replica_count_checked(self):
        with pytest.raises(ValidationError):
            RuntimeConfig(prices=(1, 2, 3),
                          price_schedule=PriceSchedule.constant([1.0]))

    def test_constant_schedule_matches_static(self):
        trace = burst_trace(count=8, n_clients=8, rate=20.0)
        static = EDRSystem(trace, RuntimeConfig(algorithm="lddm")).run()
        sched = PriceSchedule.constant(list(RuntimeConfig().prices))
        dynamic = EDRSystem(trace, RuntimeConfig(
            algorithm="lddm", price_schedule=sched)).run()
        assert dynamic.total_cents == pytest.approx(static.total_cents,
                                                    rel=1e-3)

    def test_stale_prices_flag(self):
        trace = burst_trace(count=8, n_clients=8, rate=20.0)
        sched = PriceSchedule.two_phase(
            RuntimeConfig().prices, tuple(reversed(RuntimeConfig().prices)),
            switch_at=1e-3)  # flip almost immediately
        aware = EDRSystem(trace, RuntimeConfig(
            algorithm="lddm", price_schedule=sched)).run()
        stale = EDRSystem(trace, RuntimeConfig(
            algorithm="lddm", price_schedule=sched,
            solve_with_stale_prices=True)).run()
        # Both deliver; the aware one can't be (much) worse.
        assert aware.total_cents <= stale.total_cents * 1.02


class TestDynamicPricesExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_dynamic_prices.run(switch_at=8.0, per_burst=12,
                                      n_clients=12)

    def test_aware_beats_stale(self, result):
        assert result.aware.total_cents < result.stale.total_cents

    def test_aware_beats_round_robin(self, result):
        assert result.aware.total_cents < result.round_robin.total_cents

    def test_render(self, result):
        out = result.render()
        assert "tariff" in out and "saving" in out


class TestGeoLatencyExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_geo_latency.run()

    def test_eligibility_shrinks_with_bound(self, result):
        pairs = result.eligible_pairs
        assert all(b >= a for a, b in zip(pairs[1:], pairs))  # nonincreasing

    def test_cost_nondecreasing_as_bound_tightens(self, result):
        finite = [c for c in result.costs if np.isfinite(c)]
        # Allow solver noise at the 1e-6 relative level.
        assert all(b >= a * (1 - 1e-6) for a, b in zip(finite, finite[1:]))

    def test_eventually_infeasible(self, result):
        assert result.infeasible_below_ms > 0
        assert any(np.isinf(c) for c in result.costs)

    def test_render(self, result):
        out = result.render()
        assert "latency bound" in out and "infeasible" in out


class TestRunnerExtensions:
    def test_ext_geo_via_cli(self, capsys):
        from repro.experiments.runner import main
        rc = main(["ext_geo"])
        assert rc == 0
        assert "geo topology" in capsys.readouterr().out

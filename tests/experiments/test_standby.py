"""Tests for the standby-power extension."""

import pytest

from repro.cluster.node import NodeActivity, ReplicaNode
from repro.edr.system import EDRSystem, RuntimeConfig
from repro.errors import ValidationError
from repro.experiments import ext_standby

from tests.edr.conftest import burst_trace


class TestNodeStandby:
    def test_standby_power(self):
        node = ReplicaNode("r0", standby_w=20.0)
        node.set_activity(NodeActivity.STANDBY)
        assert node.power() == 20.0
        assert node.cpu_utilization == 0.0

    def test_standby_below_idle(self):
        node = ReplicaNode("r0")
        idle = node.power()
        node.set_activity(NodeActivity.STANDBY)
        assert node.power() < idle

    def test_negative_standby_rejected(self):
        with pytest.raises(ValidationError):
            ReplicaNode("r0", standby_w=-1.0)


class TestRuntimeStandby:
    def test_validation(self):
        with pytest.raises(ValidationError):
            EDRSystem(burst_trace(count=4),
                      RuntimeConfig(standby_after=0.0))

    def test_standby_reduces_wall_clock_energy(self):
        from repro.workload.apps import VIDEO_STREAMING
        trace = burst_trace(VIDEO_STREAMING, count=12, n_clients=12,
                            rate=6.0, seed=9)
        import numpy as np
        on = EDRSystem(trace, RuntimeConfig(
            algorithm="lddm", batch_capacity_fraction=0.35)).run()
        sb = EDRSystem(trace, RuntimeConfig(
            algorithm="lddm", batch_capacity_fraction=0.35,
            standby_after=0.5)).run()
        assert np.sum(sb.extras["wall_clock_joules"]) < \
            np.sum(on.extras["wall_clock_joules"])
        # Everything still delivered despite nodes sleeping.
        assert sb.extras["delivered_mb"] == pytest.approx(
            trace.total_mb(), rel=1e-9)

    def test_sleeping_node_wakes_for_work(self):
        from repro.workload.apps import VIDEO_STREAMING
        trace = burst_trace(VIDEO_STREAMING, count=12, n_clients=12,
                            rate=3.0, seed=9)  # spread: idle gaps exist
        system = EDRSystem(trace, RuntimeConfig(
            algorithm="lddm", batch_capacity_fraction=0.35,
            standby_after=0.3))
        res = system.run()
        # At least one node slept at some point...
        slept = any(
            any(a is NodeActivity.STANDBY for _, a in node.activity_log)
            for node in system.nodes.values())
        assert slept
        # ...and all demand was still served.
        assert res.extras["delivered_mb"] == pytest.approx(
            trace.total_mb(), rel=1e-9)


class TestStandbyExperiment:
    def test_shape(self):
        # Full experiment scale: the relative benefit is regime-dependent
        # (at tiny scales Round-Robin's sparse whole-request gaps dominate).
        result = ext_standby.run()
        # Standby saves energy for both schedulers...
        for algo in result.joules_on:
            assert result.joules_standby[algo] < result.joules_on[algo]
        # ...and EDR, which concentrates load, benefits more.
        lddm_gain = 1 - result.joules_standby["lddm"] / result.joules_on["lddm"]
        rr_gain = 1 - result.joules_standby["round_robin"] \
            / result.joules_on["round_robin"]
        assert lddm_gain > rr_gain

    def test_render(self):
        out = ext_standby.run(standby_after=0.75, n_requests=8,
                              n_clients=8).render()
        assert "standby" in out and "saved" in out

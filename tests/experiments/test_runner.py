"""Tests for the experiments CLI."""

import pytest

from repro.experiments.runner import main


class TestRunner:
    def test_fig5_via_cli(self, capsys):
        rc = main(["fig5", "--quick"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "Fig. 5" in out

    def test_multiple_experiments(self, capsys):
        rc = main(["fig5", "ablations", "--quick"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out and "Ablation" in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_headline_runs_override(self, capsys):
        rc = main(["headline", "--runs", "2"])
        assert rc == 0
        assert "Headline sweep over 2" in capsys.readouterr().out

    def test_quick_fig9(self, capsys):
        rc = main(["fig9", "--quick"])
        assert rc == 0
        assert "Fig. 9" in capsys.readouterr().out

    def test_quick_fig4_renders_sparklines(self, capsys):
        rc = main(["fig4", "--quick"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "power profiles" in out  # the sparkline panel

    def test_validation_quick(self, capsys):
        rc = main(["validation", "--quick"])
        assert rc == 0
        assert "Spearman" in capsys.readouterr().out

"""Tests for scenario definitions and trace materialization."""

import pytest

from repro.errors import ValidationError
from repro.experiments.scenarios import (
    PAPER_DFS,
    PAPER_VIDEO,
    Scenario,
    make_trace,
)
from repro.workload.apps import FILE_SERVICE, VIDEO_STREAMING


class TestScenario:
    def test_paper_scenarios(self):
        assert PAPER_VIDEO.app is VIDEO_STREAMING
        assert PAPER_DFS.app is FILE_SERVICE
        # DFS runs 10x the requests at 1/10 the size (same total volume).
        assert PAPER_DFS.n_requests == 10 * PAPER_VIDEO.n_requests
        assert PAPER_VIDEO.prices == (1, 8, 1, 6, 1, 5, 2, 3)

    def test_validation(self):
        with pytest.raises(ValidationError):
            Scenario("x", VIDEO_STREAMING, 0, 1, 1.0)
        with pytest.raises(ValidationError):
            Scenario("x", VIDEO_STREAMING, 1, 1, 0.0)

    def test_scaled(self):
        s = PAPER_VIDEO.scaled(0.5)
        assert s.n_requests == 12
        assert s.arrival_rate == pytest.approx(6.0)
        assert s.prices == PAPER_VIDEO.prices

    def test_scaled_validation(self):
        with pytest.raises(ValidationError):
            PAPER_VIDEO.scaled(0)


class TestMakeTrace:
    def test_count_and_app(self):
        trace = make_trace(PAPER_VIDEO.scaled(0.25))
        assert len(trace) == 6
        assert all(r.app == "video" for r in trace)

    def test_deterministic(self):
        a = make_trace(PAPER_DFS.scaled(0.1))
        b = make_trace(PAPER_DFS.scaled(0.1))
        assert [r.arrival for r in a] == [r.arrival for r in b]

    def test_seed_override_changes_trace(self):
        a = make_trace(PAPER_DFS.scaled(0.1))
        b = make_trace(PAPER_DFS.scaled(0.1), seed=99)
        assert [r.arrival for r in a] != [r.arrival for r in b]

"""Parallel sweep execution must be invisible in the results."""

import pytest

from repro.errors import ValidationError
from repro.experiments import fig6_fig7, fig9
from repro.experiments.parallel import parallel_map, point_seed
from repro.experiments.scenarios import PAPER_VIDEO


def _square(x):
    return x * x


class TestParallelMap:
    def test_serial_and_parallel_agree_in_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=1) \
            == parallel_map(_square, items, jobs=4) \
            == [x * x for x in items]

    def test_zero_and_one_jobs_are_serial(self):
        assert parallel_map(_square, [3], jobs=0) == [9]
        assert parallel_map(_square, [], jobs=8) == []

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValidationError):
            parallel_map(_square, [1], jobs=-1)

    def test_point_seed_deterministic_and_distinct(self):
        assert point_seed(2013, 24) == point_seed(2013, 24)
        seeds = {point_seed(2013, c) for c in range(64)}
        assert len(seeds) == 64  # no collisions across a sweep
        assert point_seed(2013, 24) != point_seed(2014, 24)


class TestSweepParity:
    def test_fig9_identical_at_any_jobs_level(self):
        counts = (24, 48)
        serial = fig9.run(request_counts=counts, jobs=1)
        fanned = fig9.run(request_counts=counts, jobs=2)
        assert serial.edr_mean_response == fanned.edr_mean_response
        assert serial.donar_mean_response == fanned.donar_mean_response
        assert serial.edr_solve_time == fanned.edr_solve_time
        assert serial.edr_solve_iterations == fanned.edr_solve_iterations

    def test_fig6_identical_at_any_jobs_level(self):
        scenario = PAPER_VIDEO.scaled(0.5)
        serial = fig6_fig7.run(scenario, app="video", jobs=1)
        fanned = fig6_fig7.run(scenario, app="video", jobs=3)
        assert set(serial.results) == set(fanned.results)
        for algo in serial.results:
            a, b = serial.results[algo], fanned.results[algo]
            assert (a.cents_by_replica == b.cents_by_replica).all()

    def test_runner_accepts_jobs_flag(self, capsys):
        from repro.experiments.runner import main
        assert main(["fig9", "--quick", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "EDR" in out

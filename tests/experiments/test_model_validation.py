"""Tests for the weighted scheduler and the model-validation experiment."""

import numpy as np
import pytest

from repro.edr.system import EDRSystem, RuntimeConfig
from repro.errors import ValidationError

from tests.edr.conftest import burst_trace


class TestWeightedScheduler:
    def test_validation(self):
        with pytest.raises(ValidationError):
            RuntimeConfig(algorithm="weighted")  # no weights
        with pytest.raises(ValidationError):
            RuntimeConfig(algorithm="weighted", weights=(1.0,))
        with pytest.raises(ValidationError):
            RuntimeConfig(algorithm="weighted",
                          weights=(0.0,) * 8)

    def test_split_follows_weights(self):
        from repro.workload.apps import VIDEO_STREAMING
        trace = burst_trace(VIDEO_STREAMING, count=8, n_clients=8,
                            rate=8.0, seed=2)
        w = (4.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0)
        cfg = RuntimeConfig(algorithm="weighted", weights=w,
                            batch_capacity_fraction=0.35)
        res = EDRSystem(trace, cfg).run(app="video")
        moved = res.extras["transferred_mb"]
        # Zero-weight replicas never serve.
        assert moved.get("replica6", 0.0) == 0.0
        assert moved.get("replica8", 0.0) == 0.0
        # The heavy-weight replica serves ~4x a unit-weight one.
        ratio = moved["replica1"] / moved["replica2"]
        assert ratio == pytest.approx(4.0, rel=0.05)
        # Conservation holds.
        assert res.extras["delivered_mb"] == pytest.approx(
            trace.total_mb(), rel=1e-9)

    def test_deterministic(self):
        trace = burst_trace(count=6, n_clients=6, rate=20.0)
        w = tuple(np.linspace(1, 2, 8))
        a = EDRSystem(trace, RuntimeConfig(algorithm="weighted",
                                           weights=w)).run()
        b = EDRSystem(trace, RuntimeConfig(algorithm="weighted",
                                           weights=w)).run()
        assert a.total_cents == b.total_cents


class TestModelValidation:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import model_validation
        return model_validation.run(n_policies=4)

    def test_positive_rank_correlation(self, result):
        assert result.spearman > 0

    def test_beta_sweep_monotone_toward_concentration(self, result):
        betas = sorted(result.beta_sweep)
        costs = [result.beta_sweep[b] for b in betas]
        # On this substrate, smaller planning beta yields lower measured
        # cost (the cubic NIC term is small physically).
        assert costs == sorted(costs)

    def test_render(self, result):
        out = result.render()
        assert "Spearman" in out and "beta" in out

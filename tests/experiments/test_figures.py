"""Tests for the per-figure experiment drivers (scaled-down workloads).

These verify the drivers run end-to-end and that the paper's qualitative
shapes hold at reduced scale.  The full-scale numbers are produced by the
benchmark harness and recorded in EXPERIMENTS.md.
"""

import pytest

from repro.experiments import ablations, fig3_fig4, fig5, fig6_fig7, fig8, fig9
from repro.experiments.scenarios import PAPER_DFS, PAPER_VIDEO

SMALL_DFS = PAPER_DFS.scaled(0.2)     # 48 requests
SMALL_VIDEO = PAPER_VIDEO.scaled(0.5)  # 12 requests


class TestFig5:
    def test_lddm_converges_faster(self):
        result = fig5.run(max_iter=200)
        assert result.lddm_iterations_to_1pct < result.cdpsm_iterations_to_1pct

    def test_both_approach_optimum(self):
        result = fig5.run(max_iter=200)
        assert result.lddm_history[-1] == pytest.approx(result.optimum,
                                                        rel=0.01)
        assert result.cdpsm_history[-1] == pytest.approx(result.optimum,
                                                         rel=0.02)

    def test_render(self):
        out = fig5.run(max_iter=50).render()
        assert "Fig. 5" in out and "LDDM" in out and "CDPSM" in out


class TestFig3Fig4:
    @pytest.fixture(scope="class")
    def profiles(self):
        return fig3_fig4.run(SMALL_DFS)

    def test_both_algorithms_profiled(self, profiles):
        assert set(profiles) == {"cdpsm", "lddm"}

    def test_profiles_within_envelope(self, profiles):
        for res in profiles.values():
            for series in res.profiles.values():
                assert series.min() >= 215.0 - 1e-9
                assert series.max() <= 240.0 + 1e-9

    def test_render_mentions_figures(self, profiles):
        assert "Fig. 3" in profiles["cdpsm"].render()
        assert "Fig. 4" in profiles["lddm"].render()

    def test_summary_rows_cover_replicas(self, profiles):
        assert len(profiles["lddm"].summary_rows()) == 8


class TestFig6Fig7:
    @pytest.fixture(scope="class")
    def fig6(self):
        # Full paper scale: EDR's advantage needs the transfer-dominated
        # regime; the half-scale burst is solve-dominated and RR ties.
        return fig6_fig7.run(PAPER_VIDEO, app="video")

    def test_all_algorithms_present(self, fig6):
        assert set(fig6.results) == {"lddm", "cdpsm", "round_robin"}

    def test_lddm_beats_round_robin(self, fig6):
        rr = fig6.results["round_robin"]
        assert fig6.results["lddm"].savings_vs(rr, "cents") > 0

    def test_cdpsm_beats_round_robin(self, fig6):
        rr = fig6.results["round_robin"]
        assert fig6.results["cdpsm"].savings_vs(rr, "cents") > 0

    def test_lddm_is_the_cheapest(self, fig6):
        cents = {a: r.total_cents for a, r in fig6.results.items()}
        assert cents["lddm"] == min(cents.values())

    def test_cheap_replicas_carry_more_cost_share_under_edr(self, fig6):
        assert fig6.cheap_replica_share("lddm") > \
            fig6.cheap_replica_share("round_robin")

    def test_render(self, fig6):
        out = fig6.render()
        assert "Fig. 6" in out and "TOTAL" in out and "saving" in out

    def test_fig7_uses_dfs(self):
        res = fig6_fig7.run(PAPER_DFS.scaled(0.1), app="dfs")
        assert "Fig. 7" in res.render()


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        # Reduced scale: checks the driver end-to-end; the full-scale
        # orderings are asserted by TestFig6Fig7 (video, paper scale) and
        # recorded by the benchmark harness.
        return fig8.run(video=SMALL_VIDEO, dfs=PAPER_DFS.scaled(0.1))

    def test_all_cells_present(self, result):
        assert len(result.results) == 6  # 2 apps x 3 algorithms

    def test_totals_positive(self, result):
        for res in result.results.values():
            assert res.total_cents > 0 and res.total_joules > 0

    def test_render(self, result):
        out = result.render()
        assert "Fig. 8(a)" in out and "Fig. 8(b)" in out


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9.run(request_counts=(12, 24, 48))

    def test_response_under_200ms(self, result):
        assert max(result.edr_mean_response) < 0.2

    def test_edr_close_to_donar(self, result):
        for e, d in zip(result.edr_mean_response,
                        result.donar_mean_response):
            assert e < 5 * d + 0.2  # same order of magnitude

    def test_total_response_grows_with_count(self, result):
        assert result.edr_total_response[-1] > result.edr_total_response[0]

    def test_render(self, result):
        assert "Fig. 9" in result.render()

    def test_bad_counts(self):
        with pytest.raises(Exception):
            fig9.run(request_counts=())


class TestAblations:
    def test_comm_complexity_scaling(self):
        res = ablations.run_comm_complexity(sizes=(2, 4, 8))
        ns = [row[0] for row in res.rows]
        lddm = [row[1] for row in res.rows]
        cdpsm = [row[2] for row in res.rows]
        # LDDM linear in N: doubling N doubles the volume.
        assert lddm[1] == pytest.approx(2 * lddm[0], rel=0.01)
        # CDPSM superlinear: doubling N multiplies by ~2^3 x (N-1)/(2N-1)...
        # just check it grows much faster than linear.
        assert cdpsm[2] / cdpsm[0] > 4 * (ns[2] / ns[0])

    def test_lddm_variants_all_feasible(self):
        res = ablations.run_lddm_variants(max_iter=400)
        for row in res.rows:
            assert float(row[4]) < 1e-2

    def test_render(self):
        out = ablations.run_comm_complexity(sizes=(2, 4)).render()
        assert "Ablation" in out

"""Consistency of the planning model with the physical emulation.

EDR's premise (DESIGN.md §5.1) is that minimizing the abstract Eq. (1)
objective reduces the *measured* energy cost of the emulated cluster.
These tests serve a controlled workload at varying loads and verify the
measured energy has the planning model's qualitative shape.
"""


from repro.cluster.node import NodeActivity, ReplicaNode
from repro.cluster.pdu import PowerSampler
from repro.net.flows import FlowManager
from repro.net.topology import Topology
from repro.sim.engine import Simulator


def serve_load(n_parallel_flows: int, mb_per_flow: float):
    """One replica serves ``n`` parallel client downloads; returns
    (measured joules above idle, duration)."""
    clients = [f"c{i}" for i in range(max(n_parallel_flows, 1))]
    topo = Topology.lan(["server"] + clients, latency=0.0, capacity=100.0)
    sim = Simulator()
    fm = FlowManager(sim, topo)
    node = ReplicaNode("server",
                       net_probe=lambda: fm.utilization("server"))
    node.set_activity(NodeActivity.TRANSFERRING)
    pdu = PowerSampler(sim, node, rate_hz=50.0)
    flows = [fm.transfer("server", clients[i], mb_per_flow)
             for i in range(n_parallel_flows)]
    for flow in flows:
        if not flow.done.processed:
            sim.run(until=flow.done)
    pdu.stop()
    duration = max((f.finished_at for f in flows), default=0.0)
    joules = pdu.profile.integrate_between(0.0, duration)
    idle_joules = node.power_model.power(0.35, 0.0) * duration
    return joules - idle_joules, duration


class TestPhysicalShape:
    def test_energy_grows_with_volume(self):
        e1, _ = serve_load(1, 50.0)
        e2, _ = serve_load(1, 100.0)
        assert e2 > e1

    def test_nic_term_superlinear_in_rate(self):
        """Same volume at higher NIC utilization costs more dynamic
        energy — the physical counterpart of the convex network term."""
        # 200 MB served as 2 parallel flows (full NIC rate, half time)
        # vs sequentially at half utilization... here: compare 2 flows of
        # 100 MB (utilization 1.0, 2 s) against 1 flow of 200 MB
        # (utilization 1.0, 2 s) — equal; instead reduce rate by capacity.
        clients = ["c0"]
        topo_fast = Topology.lan(["server"] + clients, latency=0.0,
                                 capacity=100.0)
        topo_slow = Topology(["server", "c0"],
                             [[0.0, 0.0], [0.0, 0.0]],
                             [100.0, 50.0])  # client NIC caps rate at 50
        results = {}
        for name, topo in (("fast", topo_fast), ("slow", topo_slow)):
            sim = Simulator()
            fm = FlowManager(sim, topo)
            node = ReplicaNode("server",
                               net_probe=lambda fm=fm: fm.utilization("server"))
            node.set_activity(NodeActivity.TRANSFERRING)
            pdu = PowerSampler(sim, node, rate_hz=50.0)
            flow = fm.transfer("server", "c0", 100.0)
            sim.run(until=flow.done)
            pdu.stop()
            # (the sampler is stopped; no need to drain its future ticks)
            duration = flow.finished_at
            dynamic = pdu.profile.integrate_between(0.0, duration) \
                - node.power_model.power(0.35, 0.0) * duration
            results[name] = dynamic
        # Full-rate transfer: util = 1, cubic term maximal -> more
        # dynamic NIC energy than the half-rate transfer of the same
        # bytes (0.5**3 * 2x duration = 1/4 the NIC energy).
        assert results["fast"] > 2.0 * results["slow"]

    def test_measured_power_within_envelope(self):
        _, duration = serve_load(2, 60.0)
        assert duration > 0

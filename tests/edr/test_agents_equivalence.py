"""The agent-based LDDM execution reproduces the matrix solver exactly.

This is the fidelity proof for the experiment harness's shortcut of
computing iterations centrally while simulating the messages: when every
replica and client is an independent process exchanging only protocol
messages, the resulting allocation is numerically identical to the
matrix-form solver run for the same number of iterations.
"""

import numpy as np
import pytest

from repro.core.lddm import LddmSolver
from repro.core.params import ProblemData
from repro.core.problem import ReplicaSelectionProblem
from repro.edr.agents import AgentBasedLddm
from repro.errors import ValidationError
from repro.net.topology import Topology
from repro.net.transport import Network
from repro.sim.engine import Simulator
from repro.util.rng import make_rng


def run_agents(data, rounds):
    replicas = [f"r{i}" for i in range(data.n_replicas)]
    clients = [f"c{i}" for i in range(data.n_clients)]
    sim = Simulator()
    net = Network(sim, Topology.lan(replicas + clients, latency=0.0004))
    system = AgentBasedLddm(sim, net, data, replicas, clients,
                            rounds=rounds)
    sim.run()
    return system, net


def run_matrix(data, rounds):
    solver = LddmSolver(ReplicaSelectionProblem(data), max_iter=rounds,
                        tol=0.0, track_objective=False)
    candidate = None
    for _k, candidate, _res in solver.iterations():
        pass
    return candidate


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_agent_execution_matches_matrix_solver(self, seed):
        rng = make_rng(seed)
        data = ProblemData.paper_defaults(
            demands=rng.uniform(15, 45, size=3),
            prices=rng.integers(1, 21, size=4).astype(float))
        rounds = 40
        system, _ = run_agents(data, rounds)
        agent_alloc = system.allocation()
        matrix_alloc = run_matrix(data, rounds)
        assert np.allclose(agent_alloc, matrix_alloc, atol=1e-9), \
            f"max diff {np.abs(agent_alloc - matrix_alloc).max():.2e}"

    def test_masked_instance_matches(self):
        mask = np.array([[True, False, True],
                         [True, True, True]])
        data = ProblemData.paper_defaults(
            demands=[25.0, 35.0], prices=[3.0, 11.0, 5.0], mask=mask)
        system, _ = run_agents(data, rounds=30)
        matrix_alloc = run_matrix(data, rounds=30)
        assert np.allclose(system.allocation(), matrix_alloc, atol=1e-9)
        assert np.all(system.allocation()[~mask] == 0.0)

    def test_message_pattern_is_o_cn(self):
        data = ProblemData.paper_defaults(
            demands=[20.0, 30.0], prices=[2.0, 8.0, 3.0])
        rounds = 10
        _, net = run_agents(data, rounds)
        C, N = data.shape
        # REGISTER (C*N) + INIT (N*C) + per round: MU (C*N) + SOL (N*C).
        expected = 2 * C * N + rounds * 2 * C * N
        assert net.messages_sent == expected

    def test_simulated_time_advances_with_rounds(self):
        data = ProblemData.paper_defaults(
            demands=[20.0], prices=[2.0, 8.0])
        replicas = ["r0", "r1"]
        clients = ["c0"]
        sim = Simulator()
        net = Network(sim, Topology.lan(replicas + clients,
                                        latency=0.001))
        AgentBasedLddm(sim, net, data, replicas, clients, rounds=20)
        sim.run()
        # At least one latency per half-round trip, 2 legs per round.
        assert sim.now >= 20 * 2 * 0.001

    def test_allocation_before_finish_raises(self):
        data = ProblemData.paper_defaults([10.0], prices=[1.0, 2.0])
        replicas = ["r0", "r1"]
        clients = ["c0"]
        sim = Simulator()
        net = Network(sim, Topology.lan(replicas + clients))
        system = AgentBasedLddm(sim, net, data, replicas, clients,
                                rounds=5)
        with pytest.raises(ValidationError):
            system.allocation()

    def test_validation(self):
        data = ProblemData.paper_defaults([10.0], prices=[1.0, 2.0])
        sim = Simulator()
        net = Network(sim, Topology.lan(["r0", "r1", "c0"]))
        with pytest.raises(ValidationError):
            AgentBasedLddm(sim, net, data, ["r0"], ["c0"])
        with pytest.raises(ValidationError):
            AgentBasedLddm(sim, net, data, ["r0", "r1"], ["c0"], rounds=0)

"""Runtime-level warm-start behavior: reuse, invalidation, regression.

The cache lives inside :class:`EDRSystem`; these tests drive it through
real traces — including a mid-run membership change and a mid-run tariff
rotation — and pin the headline property: warm starts never cost
iterations or response time on the Fig. 9 workload.
"""

import pytest

from repro.cluster.pricing import PriceSchedule
from repro.edr.system import EDRSystem, RuntimeConfig
from repro.experiments import fig9
from repro.obs import TraceRecorder

from tests.edr.conftest import burst_trace


def _run(trace, **cfg_kwargs):
    cfg_kwargs.setdefault("algorithm", "lddm")
    cfg = RuntimeConfig(**cfg_kwargs)
    system = EDRSystem(trace, cfg)
    return system, system.run(app="dfs")


class TestWarmStartRuntime:
    def test_warm_solves_happen_and_are_counted(self):
        trace = burst_trace(count=24, n_clients=12, rate=40.0, seed=1)
        _, res = _run(trace)
        assert res.extras["warm_solves"] >= 1
        assert res.extras["cold_solves"] >= 1  # the first solve at least

    def test_disabled_means_all_cold(self):
        trace = burst_trace(count=24, n_clients=12, rate=40.0, seed=1)
        _, res = _run(trace, warm_start=False)
        assert res.extras["warm_solves"] == 0

    def test_same_delivery_with_and_without(self):
        trace = burst_trace(count=24, n_clients=12, rate=40.0, seed=2)
        _, warm = _run(trace)
        _, cold = _run(trace, warm_start=False)
        assert warm.extras["delivered_mb"] == pytest.approx(
            cold.extras["delivered_mb"], rel=1e-6)
        # Warm starts must not degrade the energy outcome.
        assert warm.total_cents <= cold.total_cents * 1.02

    def test_warm_never_more_iterations_on_fig9_trace(self):
        counts = (24, 48, 72)
        warm = fig9.run(request_counts=counts)
        cold = fig9.run(request_counts=counts, warm_start=False)
        for w, c in zip(warm.edr_solve_iterations,
                        cold.edr_solve_iterations):
            assert w <= c
        for w, c in zip(warm.edr_solve_time, cold.edr_solve_time):
            assert w <= c + 1e-9
        assert max(warm.edr_mean_response) < 0.2


class TestMembershipInvalidation:
    def test_crash_mid_run_invalidates_and_recovers(self):
        # Long spread-out trace so batches are solved both before and
        # after the crash; the post-crash solve must cold-start against
        # the shrunken replica set without error.
        trace = burst_trace(count=20, n_clients=10, rate=4.0, seed=3)
        system, res = (lambda s: (s, s.run(app="dfs")))(
            EDRSystem(trace, RuntimeConfig(algorithm="lddm")))
        baseline_invalidations = res.extras["warm_cache_invalidations"]

        trace = burst_trace(count=20, n_clients=10, rate=4.0, seed=3)
        system = EDRSystem(trace, RuntimeConfig(algorithm="lddm"))
        system.crash_replica("replica2", at=1.5)
        res = system.run(app="dfs")
        assert "replica2" not in system.ring.live
        assert res.extras["warm_cache_invalidations"] \
            >= baseline_invalidations + 1
        # Everything still delivered: the fallback path is sound.
        assert res.extras["delivered_mb"] == pytest.approx(
            trace.total_mb(), rel=1e-6)

    def test_crash_then_solves_still_converge(self):
        trace = burst_trace(count=24, n_clients=12, rate=6.0, seed=5)
        system = EDRSystem(trace, RuntimeConfig(algorithm="lddm"))
        system.crash_replica("replica3", at=1.0)
        res = system.run(app="dfs")
        # Post-crash batches ran (cold) and produced allocations.
        assert res.extras["solve_iterations"] > 0
        assert res.extras["delivered_mb"] == pytest.approx(
            trace.total_mb(), rel=1e-6)

    def test_price_rotation_is_a_miss_not_an_invalidation(self):
        # A tariff rotation changes the cache *key*: the next solve is a
        # plain miss (cold start at the new prices), while the membership
        # invalidation counter — which means "a replica died or rejoined,
        # flush everything" — must stay untouched.
        rec = TraceRecorder()
        trace = burst_trace(count=20, n_clients=10, rate=4.0, seed=6)
        switch_at = 2.0
        schedule = PriceSchedule.two_phase(
            (1.0, 8.0, 1.0, 6.0, 1.0, 5.0, 2.0, 3.0),
            (8.0, 1.0, 6.0, 1.0, 5.0, 1.0, 3.0, 2.0), switch_at=switch_at)
        system = EDRSystem(trace, RuntimeConfig(
            algorithm="lddm", price_schedule=schedule, recorder=rec))
        res = system.run(app="dfs")
        assert res.extras["delivered_mb"] == pytest.approx(
            trace.total_mb(), rel=1e-6)
        # One cold solve per price phase at minimum, warm reuse within.
        assert res.extras["cold_solves"] >= 2
        assert res.extras["warm_solves"] >= 1
        assert res.extras["warm_cache_invalidations"] == 0
        assert rec.counter_total("warmstart.invalidation") == 0
        # The first optimizing batch after the switch missed the cache.
        post = [ev for ev in rec.events_named("runtime.batch")
                if ev["sim_time"] > switch_at]
        assert post and post[0]["warm_started"] is False
        # ...and AdaptiveBudget handed it the cold default, not the cap
        # learned from the pre-switch warm streak: it had the room to
        # converge from scratch at the new prices.
        assert post[0]["converged"] is True
        assert any(ev["warm_started"] for ev in post[1:])

    def test_budget_learned_from_warm_streak_not_applied_to_cold(self):
        # Unit-level pin of the interaction: a long converged warm streak
        # shrinks the cap toward the floor, but a cold solve (cache miss
        # after a price rotation) still gets the full default budget.
        from repro.core.warmstart import AdaptiveBudget
        budget = AdaptiveBudget(floor=16, headroom=2.0)
        for _ in range(5):
            cap = budget.budget(150, warm=True)
            budget.observe(iterations=8, budget=cap, converged=True,
                           warm=True)
        assert budget.budget(150, warm=True) == 16
        assert budget.budget(150, warm=False) == 150

    def test_cdpsm_also_takes_warm_starts(self):
        trace = burst_trace(count=16, n_clients=8, rate=40.0, seed=4)
        _, res = _run(trace, algorithm="cdpsm")
        assert res.extras["warm_solves"] >= 1
        assert res.extras["delivered_mb"] == pytest.approx(
            trace.total_mb(), rel=1e-6)

"""Runtime-level warm-start behavior: reuse, invalidation, regression.

The cache lives inside :class:`EDRSystem`; these tests drive it through
real traces — including a mid-run membership change — and pin the
headline property: warm starts never cost iterations or response time
on the Fig. 9 workload.
"""

import pytest

from repro.edr.system import EDRSystem, RuntimeConfig
from repro.experiments import fig9

from tests.edr.conftest import burst_trace


def _run(trace, **cfg_kwargs):
    cfg_kwargs.setdefault("algorithm", "lddm")
    cfg = RuntimeConfig(**cfg_kwargs)
    system = EDRSystem(trace, cfg)
    return system, system.run(app="dfs")


class TestWarmStartRuntime:
    def test_warm_solves_happen_and_are_counted(self):
        trace = burst_trace(count=24, n_clients=12, rate=40.0, seed=1)
        _, res = _run(trace)
        assert res.extras["warm_solves"] >= 1
        assert res.extras["cold_solves"] >= 1  # the first solve at least

    def test_disabled_means_all_cold(self):
        trace = burst_trace(count=24, n_clients=12, rate=40.0, seed=1)
        _, res = _run(trace, warm_start=False)
        assert res.extras["warm_solves"] == 0

    def test_same_delivery_with_and_without(self):
        trace = burst_trace(count=24, n_clients=12, rate=40.0, seed=2)
        _, warm = _run(trace)
        _, cold = _run(trace, warm_start=False)
        assert warm.extras["delivered_mb"] == pytest.approx(
            cold.extras["delivered_mb"], rel=1e-6)
        # Warm starts must not degrade the energy outcome.
        assert warm.total_cents <= cold.total_cents * 1.02

    def test_warm_never_more_iterations_on_fig9_trace(self):
        counts = (24, 48, 72)
        warm = fig9.run(request_counts=counts)
        cold = fig9.run(request_counts=counts, warm_start=False)
        for w, c in zip(warm.edr_solve_iterations,
                        cold.edr_solve_iterations):
            assert w <= c
        for w, c in zip(warm.edr_solve_time, cold.edr_solve_time):
            assert w <= c + 1e-9
        assert max(warm.edr_mean_response) < 0.2


class TestMembershipInvalidation:
    def test_crash_mid_run_invalidates_and_recovers(self):
        # Long spread-out trace so batches are solved both before and
        # after the crash; the post-crash solve must cold-start against
        # the shrunken replica set without error.
        trace = burst_trace(count=20, n_clients=10, rate=4.0, seed=3)
        system, res = (lambda s: (s, s.run(app="dfs")))(
            EDRSystem(trace, RuntimeConfig(algorithm="lddm")))
        baseline_invalidations = res.extras["warm_cache_invalidations"]

        trace = burst_trace(count=20, n_clients=10, rate=4.0, seed=3)
        system = EDRSystem(trace, RuntimeConfig(algorithm="lddm"))
        system.crash_replica("replica2", at=1.5)
        res = system.run(app="dfs")
        assert "replica2" not in system.ring.live
        assert res.extras["warm_cache_invalidations"] \
            >= baseline_invalidations + 1
        # Everything still delivered: the fallback path is sound.
        assert res.extras["delivered_mb"] == pytest.approx(
            trace.total_mb(), rel=1e-6)

    def test_crash_then_solves_still_converge(self):
        trace = burst_trace(count=24, n_clients=12, rate=6.0, seed=5)
        system = EDRSystem(trace, RuntimeConfig(algorithm="lddm"))
        system.crash_replica("replica3", at=1.0)
        res = system.run(app="dfs")
        # Post-crash batches ran (cold) and produced allocations.
        assert res.extras["solve_iterations"] > 0
        assert res.extras["delivered_mb"] == pytest.approx(
            trace.total_mb(), rel=1e-6)

    def test_cdpsm_also_takes_warm_starts(self):
        trace = burst_trace(count=16, n_clients=8, rate=40.0, seed=4)
        _, res = _run(trace, algorithm="cdpsm")
        assert res.extras["warm_solves"] >= 1
        assert res.extras["delivered_mb"] == pytest.approx(
            trace.total_mb(), rel=1e-6)

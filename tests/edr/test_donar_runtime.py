"""Tests for the DONAR mapping-node runtime."""

import pytest

from repro.edr.donar_runtime import DonarRuntime, DonarRuntimeConfig
from repro.errors import ValidationError
from repro.workload.requests import RequestTrace

from tests.edr.conftest import burst_trace


class TestDonarRuntime:
    @pytest.fixture(scope="class")
    def result(self):
        trace = burst_trace(count=16, n_clients=8, rate=40.0)
        runtime = DonarRuntime(trace, DonarRuntimeConfig())
        return trace, runtime.run(app="dfs")

    def test_everything_delivered(self, result):
        trace, res = result
        assert res.extras["delivered_mb"] == pytest.approx(
            trace.total_mb(), rel=1e-9)
        assert len(res.response_times) == len(trace)

    def test_responses_positive_and_bounded(self, result):
        _, res = result
        assert all(0 < t < 1.0 for t in res.response_times)

    def test_messages_counted(self, result):
        _, res = result
        assert res.extras["messages"] > 0
        assert res.extras["batches"] >= 1

    def test_method_tag(self, result):
        _, res = result
        assert res.method == "donar"

    def test_empty_trace_rejected(self):
        with pytest.raises(ValidationError):
            DonarRuntime(RequestTrace([]))

    def test_min_rounds_floor_slows_decisions(self):
        trace = burst_trace(count=8, n_clients=8, rate=40.0)
        fast = DonarRuntime(trace, DonarRuntimeConfig(min_rounds=1)
                            ).run(app="dfs")
        slow = DonarRuntime(trace, DonarRuntimeConfig(min_rounds=30)
                            ).run(app="dfs")
        assert slow.mean_response > fast.mean_response

    def test_deterministic(self):
        trace = burst_trace(count=8, n_clients=8, rate=40.0)
        a = DonarRuntime(trace, DonarRuntimeConfig()).run(app="dfs")
        b = DonarRuntime(trace, DonarRuntimeConfig()).run(app="dfs")
        assert a.response_times == b.response_times

"""Worker-fleet lifecycle and online re-partitioning edge cases.

The elasticity contract: a migration moves a class *with* its
allocation, so loads and residual are untouched no matter how extreme
the class (even one holding essentially all demand); migrations are
safe mid-churn and deterministic across execution modes; the advisory
shard-count tuner is monotone in the work it models; and the
coordinator's executor lifecycle survives close/reuse without leaking
or changing results.
"""

import numpy as np
import pytest

from repro.core.aggregate import aggregate_problem
from repro.core.incremental import ClientArrival, DemandChange
from repro.edr.coordinator import (
    ShardCoordinator,
    ShardingConfig,
    tune_shard_count,
)
from repro.errors import ValidationError
from repro.experiments import fig9
from repro.util.cpus import available_cpus, resolve_workers


def _make_coord(n_clients=400, n_shards=3, seed=2013, **cfg_kwargs):
    problem = fig9.scaling_problem(n_clients, seed=seed)
    agg = aggregate_problem(problem)
    coord = ShardCoordinator(
        agg.problem.data, list(agg.structure.keys),
        ShardingConfig(n_shards=n_shards, **cfg_kwargs))
    return agg, coord


class TestMigration:
    def test_all_demand_class_migrates_cleanly(self):
        # One class holds ~all the demand; moving it must not change
        # the aggregate loads, the residual, or any allocation row.
        agg, coord = _make_coord(rebalance_skew=None)
        coord.solve()
        tokens = list(agg.structure.keys)
        st_demands = [float(coord.shards[coord._token_shard[t]].state.D[
            coord.shards[coord._token_shard[t]].state.tokens.index(t)])
            for t in tokens]
        fat = tokens[int(np.argmax(st_demands))]
        src = coord._token_shard[fat]
        dest = (src + 1) % coord.n_shards
        rows0 = coord.rows_for(tokens)
        resid0 = coord.residual()
        coord.migrate_class(fat, dest)
        assert coord._token_shard[fat] == dest
        assert coord.migrations == 1
        assert np.array_equal(coord.rows_for(tokens), rows0)
        assert coord.residual() == pytest.approx(resid0, abs=1e-15)
        # The emptied/loaded shards still converge together afterwards.
        res = coord.solve()
        assert res.converged
        coord.close()

    def test_migration_conserves_under_extreme_skew(self):
        # A shard left with zero demand after the move is legal: the
        # residual never spikes and exchange rounds still run.
        agg, coord = _make_coord(n_shards=2, rebalance_skew=None)
        coord.solve()
        tokens = list(agg.structure.keys)
        shard0 = [t for t in tokens if coord._token_shard[t] == 0]
        rows0 = coord.rows_for(tokens)
        for t in shard0:
            coord.migrate_class(t, 1)
        assert coord.shards[0].state.n_classes == 0
        assert np.array_equal(coord.rows_for(tokens), rows0)
        assert coord.solve().converged
        coord.close()

    def test_mid_churn_migration_bit_identity(self):
        # Identical event stream + identical mid-stream migration in
        # serial and process mode: the final allocation must match
        # bit-for-bit (migration decisions use no wall-clock).
        def stream(mode):
            agg, coord = _make_coord(mode=mode, rebalance_skew=None)
            coord.solve()
            tokens = list(agg.structure.keys)
            elig = np.asarray(agg.structure.masks[0], dtype=bool)
            with coord:
                for i in range(4):
                    coord.apply_event(ClientArrival(f"n{i}", 3.0 + i,
                                                    elig.copy()))
                coord.migrate_class(tokens[0],
                                    (coord._token_shard[tokens[0]] + 1)
                                    % coord.n_shards)
                for i in range(4):
                    coord.apply_event(DemandChange(f"n{i}", 4.0 + i))
                rows = coord.rows_for(tokens)
                return rows, coord.migrations

        rows_s, mig_s = stream("serial")
        rows_p, mig_p = stream("process")
        assert mig_s == mig_p == 1
        assert np.array_equal(rows_s, rows_p)

    def test_mode_bit_identity_after_rebalance(self):
        # Auto-rebalance (not a manual migrate) fires during a skewed
        # stream; both modes must migrate the same classes and land on
        # identical bits.  Thread mode covers the third executor.
        result = fig9.run_elastic_skew(n_clients=4_000, n_events=30,
                                       check_mode="thread")
        assert result.migrations >= 1
        assert result.resizes == 0
        assert result.modes_identical

    def test_migrate_validation(self):
        agg, coord = _make_coord()
        with pytest.raises(ValidationError):
            coord.migrate_class(b"no-such-token", 0)
        token = list(agg.structure.keys)[0]
        with pytest.raises(ValidationError):
            coord.migrate_class(token, 99)
        coord.close()


class TestTuner:
    def test_suggestion_monotone_in_class_count(self):
        # More rows to spread -> never fewer shards suggested.
        suggestions = [tune_shard_count(k, row_cost_s=1e-3,
                                        dispatch_cost_s=5e-3,
                                        max_shards=8)
                       for k in (1, 4, 16, 64, 256, 1024)]
        assert suggestions == sorted(suggestions)
        assert suggestions[0] == 1

    def test_suggestion_monotone_in_dispatch_cost(self):
        # Costlier dispatch -> never more shards suggested.
        suggestions = [tune_shard_count(64, row_cost_s=1e-3,
                                        dispatch_cost_s=c, max_shards=8)
                       for c in (0.0, 1e-4, 1e-3, 1e-2, 1e-1)]
        assert suggestions == sorted(suggestions, reverse=True)
        assert suggestions[0] == 8      # free dispatch: spread fully
        assert suggestions[-1] == 1     # dominant dispatch: stay serial

    def test_auto_tune_advisory_only_without_samples(self):
        # With no round-time samples the tuner must keep the current
        # shard count rather than guess.
        agg, coord = _make_coord()
        assert coord.suggest_n_shards() == coord.n_shards
        assert coord.auto_tune() == coord.n_shards
        assert coord.resizes == 0
        coord.close()


class TestLifecycle:
    def test_close_is_idempotent_and_reusable(self):
        agg, coord = _make_coord(mode="process", max_workers=2)
        tokens = list(agg.structure.keys)
        coord.solve()
        rows0 = coord.rows_for(tokens)
        pool0 = coord.worker_pool
        assert pool0 is not None
        coord.close()
        coord.close()   # idempotent
        assert coord.worker_pool is None
        # The coordinator stays usable: a later solve re-creates the
        # pool lazily and reproduces the same bits.
        coord.install_target(tokens, agg.structure.masks,
                             agg.structure.demands)
        assert coord.solve().converged
        assert np.array_equal(coord.rows_for(tokens), rows0)
        assert coord.worker_pool is not None
        coord.close()

    def test_context_manager_closes_pool(self):
        agg, coord = _make_coord(mode="process", max_workers=2)
        with coord:
            coord.solve()
            assert coord.worker_pool is not None
        assert coord.worker_pool is None

    def test_no_pool_churn_across_solves(self):
        # One executor for the coordinator's lifetime: consecutive
        # solves must reuse the same pool object.
        agg, coord = _make_coord(mode="process", max_workers=2)
        tokens = list(agg.structure.keys)
        with coord:
            coord.solve()
            pool = coord.worker_pool
            for scale in (1.02, 0.97):
                coord.install_target(tokens, agg.structure.masks,
                                     agg.structure.demands * scale)
                coord.solve()
                assert coord.worker_pool is pool

    def test_demand_only_retarget_ships_no_geometry(self):
        # install_target touches only demands: the fleet must not
        # re-ship a single static payload across the retargets.
        agg, coord = _make_coord(mode="process", max_workers=2)
        tokens = list(agg.structure.keys)
        with coord:
            coord.solve()
            static0 = coord.worker_pool.static_bytes
            for scale in (1.05, 0.95, 1.01):
                coord.install_target(tokens, agg.structure.masks,
                                     agg.structure.demands * scale)
                coord.solve()
            assert coord.worker_pool.reships == 0
            assert coord.worker_pool.static_bytes == static0


class TestWorkerSizing:
    def test_resolve_workers_caps(self):
        assert resolve_workers(8, 2) == 2
        assert resolve_workers(2, 8) == 2
        assert resolve_workers(8, None) == min(8, available_cpus())
        assert resolve_workers(0, None) == 1

    def test_max_workers_validation(self):
        with pytest.raises(ValidationError):
            ShardingConfig(max_workers=0)
        with pytest.raises(ValidationError):
            ShardingConfig(rebalance_skew=1.0)
        with pytest.raises(ValidationError):
            ShardingConfig(rebalance_max_moves=0)

    def test_pool_respects_max_workers(self):
        agg, coord = _make_coord(n_shards=3, mode="process",
                                 max_workers=1)
        with coord:
            coord.solve()
            assert coord.worker_pool.workers == 1


class TestPayloadCaching:
    def test_static_payload_cached_until_touch(self):
        agg, coord = _make_coord()
        sh = coord.shards[0]
        first = sh.static_payload()
        assert sh.static_payload() is first          # cached
        v0 = sh.version
        sh.touch_demands()
        assert sh.version == v0                      # no geometry bump
        assert sh.static_payload() is not first      # but cache dropped
        sh.touch()
        assert sh.version > v0                       # geometry bump
        coord.close()

    def test_retarget_keeps_version_migration_bumps_it(self):
        agg, coord = _make_coord(rebalance_skew=None)
        coord.solve()
        tokens = list(agg.structure.keys)
        versions0 = [sh.version for sh in coord.shards]
        coord.install_target(tokens, agg.structure.masks,
                             agg.structure.demands * 1.1)
        assert [sh.version for sh in coord.shards] == versions0
        token = tokens[0]
        src = coord._token_shard[token]
        dest = (src + 1) % coord.n_shards
        coord.migrate_class(token, dest)
        assert coord.shards[src].version != versions0[src]
        assert coord.shards[dest].version != versions0[dest]
        coord.close()

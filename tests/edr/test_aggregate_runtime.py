"""Runtime-level class-space aggregation: sessions, cache, end-to-end.

Pins the wiring of :mod:`repro.core.aggregate` through the EDR stack:
sessions solve K-row instances (and charge compute time for K rows, not
C), the client-space matrix is expanded lazily, the warm-start cache
keyed by class tokens survives client churn, and the full runtime
delivers identical traffic with aggregation on or off.
"""

import numpy as np
import pytest

from repro.core.aggregate import aggregate_problem
from repro.core.params import ProblemData
from repro.core.problem import ReplicaSelectionProblem
from repro.core.warmstart import WarmStartCache, project_warm_start
from repro.edr.scheduler import DistributedSolveSession
from repro.edr.system import EDRSystem, RuntimeConfig
from repro.errors import ValidationError
from repro.net.topology import Topology
from repro.net.transport import Network
from repro.sim.engine import Simulator

from tests.edr.conftest import burst_trace


def _aggregated_session(n_clients=6, algorithm="lddm", **kwargs):
    sim = Simulator()
    replicas = ["r0", "r1", "r2"]
    clients = [f"c{i}" for i in range(n_clients)]
    topo = Topology.lan(replicas + clients, latency=0.0005)
    net = Network(sim, topo)
    # Everyone shares the all-eligible LAN mask: K == 1.
    data = ProblemData.paper_defaults(
        demands=[20.0 + i for i in range(n_clients)], prices=[1.0, 8.0, 1.0])
    problem = ReplicaSelectionProblem(data)
    agg = aggregate_problem(problem)
    session = DistributedSolveSession(
        sim, net, problem, replicas, clients, algorithm,
        aggregation=agg, **kwargs)
    return sim, net, problem, agg, session


class TestAggregatedSession:
    def test_solver_runs_in_class_space(self):
        sim, net, problem, agg, session = _aggregated_session()
        assert agg.n_classes == 1
        sim.process(session.run())
        sim.run()
        assert session.solver_allocation.shape == (1, 3)
        assert session.allocation.shape == (6, 3)
        assert problem.violation(session.allocation) < 1e-6

    def test_allocation_expansion_is_lazy_and_cached(self):
        sim, net, problem, agg, session = _aggregated_session()
        sim.process(session.run())
        sim.run()
        assert session._allocation is None  # nothing expanded yet
        first = session.allocation
        assert session._allocation is first  # cached, not rebuilt
        assert session.allocation is first

    def test_compute_time_charged_for_classes_not_clients(self):
        # Same instance solved with and without aggregation: identical
        # iteration math (K=1 vs C=6 only changes *local* work), so the
        # aggregated session must finish in less simulated time.
        sim_a, _, _, _, agg_sess = _aggregated_session(max_iter=40,
                                                       tol=1e-12)
        sim_a.process(agg_sess.run())
        sim_a.run()

        sim_d = Simulator()
        replicas = ["r0", "r1", "r2"]
        clients = [f"c{i}" for i in range(6)]
        topo = Topology.lan(replicas + clients, latency=0.0005)
        net = Network(sim_d, topo)
        data = ProblemData.paper_defaults(
            demands=[20.0 + i for i in range(6)], prices=[1.0, 8.0, 1.0])
        direct = DistributedSolveSession(
            sim_d, net, ReplicaSelectionProblem(data), replicas, clients,
            "lddm", max_iter=40, tol=1e-12)
        sim_d.process(direct.run())
        sim_d.run()

        per_iter_agg = agg_sess.duration / agg_sess.iterations
        per_iter_direct = direct.duration / direct.iterations
        assert per_iter_agg < per_iter_direct

    def test_message_pattern_stays_per_client(self):
        # Aggregation is a local-computation optimization; the network
        # still carries the paper's per-(replica, client) exchanges.
        sim, net, problem, agg, session = _aggregated_session(
            max_iter=5, tol=1e-12)
        sim.process(session.run())
        sim.run()
        assert net.messages_sent == session.iterations * 2 * 3 * 6

    def test_mismatched_aggregation_rejected(self):
        sim = Simulator()
        replicas = ["r0", "r1", "r2"]
        topo = Topology.lan(replicas + ["c0"], latency=0.0005)
        net = Network(sim, topo)
        data = ProblemData.paper_defaults(
            demands=[10.0], prices=[1.0, 8.0, 1.0])
        other = ProblemData.paper_defaults(
            demands=[10.0, 20.0], prices=[1.0, 8.0, 1.0])
        agg = aggregate_problem(ReplicaSelectionProblem(other))
        with pytest.raises(ValidationError):
            DistributedSolveSession(
                sim, net, ReplicaSelectionProblem(data), replicas, ["c0"],
                "lddm", aggregation=agg)


class TestClassSpaceWarmStarts:
    def test_cache_hits_across_total_client_churn(self):
        # Two batches with entirely different client sets but the same
        # class set: a class-token entry stored from the first projects
        # cleanly onto the second — the churn-proof hit per-name keys
        # cannot deliver.
        mask = np.array([[1, 1, 0], [0, 1, 1], [1, 1, 0]], dtype=bool)
        batch1 = ReplicaSelectionProblem(ProblemData.paper_defaults(
            demands=[30.0, 20.0, 10.0], prices=[1.0, 8.0, 1.0], mask=mask))
        mask2 = np.array([[0, 1, 1], [1, 1, 0]], dtype=bool)
        batch2 = ReplicaSelectionProblem(ProblemData.paper_defaults(
            demands=[25.0, 45.0], prices=[1.0, 8.0, 1.0], mask=mask2))
        replicas = ["r0", "r1", "r2"]
        cache = WarmStartCache()
        agg1 = aggregate_problem(batch1)
        sol1 = agg1.problem.repair(agg1.problem.uniform_allocation())
        cache.store(replicas, batch1.data.u, list(agg1.structure.keys),
                    sol1, agg1.structure.masks)
        entry = cache.lookup(replicas, batch2.data.u)
        assert entry is not None
        agg2 = aggregate_problem(batch2)
        # Both of batch2's classes already have cached rows under their
        # mask tokens (the class sets overlap even though no client name
        # repeats).
        assert set(agg2.structure.keys) <= set(entry.rows)
        seeded = project_warm_start(entry, agg2.problem,
                                    list(agg2.structure.keys))
        assert agg2.problem.violation(seeded) < 1e-6

    def test_runtime_counts_warm_solves_with_aggregation(self):
        trace = burst_trace(count=24, n_clients=12, rate=40.0, seed=1)
        res = EDRSystem(trace, RuntimeConfig(algorithm="lddm")).run("dfs")
        assert res.extras["warm_solves"] >= 1


class TestRuntimeParity:
    @pytest.mark.parametrize("algorithm", ["lddm", "cdpsm"])
    def test_aggregate_on_off_same_delivery(self, algorithm):
        trace = burst_trace(count=24, n_clients=12, rate=40.0, seed=2)
        on = EDRSystem(trace, RuntimeConfig(
            algorithm=algorithm, aggregate=True)).run("dfs")
        trace = burst_trace(count=24, n_clients=12, rate=40.0, seed=2)
        off = EDRSystem(trace, RuntimeConfig(
            algorithm=algorithm, aggregate=False)).run("dfs")
        assert on.extras["delivered_mb"] == pytest.approx(
            off.extras["delivered_mb"], rel=1e-6)
        # Same optimum (the LAN mask collapses to one class), so the
        # energy outcome must not drift in either direction.
        assert on.total_cents == pytest.approx(off.total_cents, rel=0.05)

    def test_faulted_run_still_delivers_with_aggregation(self):
        trace = burst_trace(count=20, n_clients=10, rate=4.0, seed=3)
        system = EDRSystem(trace, RuntimeConfig(algorithm="lddm"))
        system.crash_replica("replica2", at=1.5)
        res = system.run(app="dfs")
        assert res.extras["delivered_mb"] == pytest.approx(
            trace.total_mb(), rel=1e-6)

"""Shared workload fixtures for runtime tests."""

import pytest

from repro.util.rng import make_rng
from repro.workload import (
    ClientPopulation,
    FILE_SERVICE,
    VIDEO_STREAMING,
    WorkloadGenerator,
    YoutubeTrafficModel,
)


def burst_trace(app=FILE_SERVICE, count=16, n_clients=8, rate=20.0, seed=0):
    """A burst of ``count`` requests arriving within ~count/rate seconds."""
    gen = WorkloadGenerator(
        traffic=YoutubeTrafficModel(base_rate=rate, amplitude=0.0,
                                    period=1000.0),
        clients=ClientPopulation.uniform(n_clients),
        app=app)
    return gen.generate(make_rng(seed), count=count)


@pytest.fixture
def dfs_burst():
    return burst_trace(FILE_SERVICE, count=16)


@pytest.fixture
def video_burst():
    return burst_trace(VIDEO_STREAMING, count=8, rate=8.0)

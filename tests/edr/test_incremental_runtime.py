"""Runtime integration of the incremental delta-event path.

``RuntimeConfig.incremental`` routes small sub-batches through
:class:`~repro.core.incremental.IncrementalState` instead of a full
``DistributedSolveSession`` — these tests pin that the path actually
fires, that it delivers the same work at comparable energy, that the
state is keyed to (live replicas, prices) like a warm cache entry, and
that the obs taxonomy records it.
"""

import pytest

from repro.cluster.pricing import PriceSchedule
from repro.edr.system import EDRSystem, RuntimeConfig
from repro.errors import ValidationError
from repro.obs import TraceRecorder
from repro.util.rng import make_rng
from repro.workload.apps import FILE_SERVICE
from repro.workload.clients import ClientPopulation
from repro.workload.generator import WorkloadGenerator
from repro.workload.youtube import YoutubeTrafficModel

from tests.edr.conftest import burst_trace


def trickle_trace(count=30, n_clients=6, seed=1, rate=6.0):
    """Requests arriving one at a time — the event-path regime."""
    clients = [f"client{i}" for i in range(n_clients)]
    gen = WorkloadGenerator(
        traffic=YoutubeTrafficModel(base_rate=rate, amplitude=0.0,
                                    period=1000.0),
        clients=ClientPopulation(clients), app=FILE_SERVICE)
    return gen.generate(make_rng(seed), count=count)


def run_system(trace, incremental, recorder=None, **cfg_kwargs):
    cfg = RuntimeConfig(algorithm="lddm", prices=(1, 8, 1),
                        incremental=incremental, recorder=recorder,
                        **cfg_kwargs)
    system = EDRSystem(trace, cfg)
    return system.run(app="dfs")


class TestEventPath:
    def test_trickle_absorbed_as_events(self):
        trace = trickle_trace()
        res = run_system(trace, incremental=True)
        assert res.extras["delivered_mb"] == pytest.approx(
            trace.total_mb(), rel=1e-9)
        # Nearly every single-request chunk rides the event path; only
        # the state-building first solve (plus rare declines) batch-solve.
        assert res.extras["incremental_chunks"] >= \
            res.extras["batches"] * 0.8
        assert res.extras["incremental_events"] >= \
            res.extras["incremental_chunks"]
        assert res.extras["incremental_fallbacks"] <= 2

    def test_same_allocation_and_less_energy_than_batch_path(self):
        trace = trickle_trace(seed=2)
        res_b = run_system(trace, incremental=False)
        res_i = run_system(trace, incremental=True)
        assert res_i.extras["delivered_mb"] == pytest.approx(
            res_b.extras["delivered_mb"], rel=1e-9)
        # The event updates land on the same optimum the batch solves do,
        # so each replica moves the same megabytes...
        t_b, t_i = res_b.extras["transferred_mb"], \
            res_i.extras["transferred_mb"]
        for r in set(t_b) | set(t_i):
            assert t_i.get(r, 0.0) == pytest.approx(
                t_b.get(r, 0.0), rel=0.02, abs=1.0)
        # ...while skipping the per-chunk selection rounds entirely —
        # which is the point: strictly less energy, not just less latency.
        assert res_i.joules_by_replica.sum() \
            < res_b.joules_by_replica.sum()

    def test_event_chunks_skip_solve_messages(self):
        trace = trickle_trace(seed=3)
        res_b = run_system(trace, incremental=False)
        res_i = run_system(trace, incremental=True)
        # The absorbed chunks run no per-iteration solve rounds over the
        # network, so total message count drops sharply.
        assert res_i.extras["messages"] < 0.5 * res_b.extras["messages"]

    def test_counters_and_events_recorded(self):
        rec = TraceRecorder()
        trace = trickle_trace(seed=4)
        res = run_system(trace, incremental=True, recorder=rec)
        assert rec.counter_total("incremental.event") \
            == res.extras["incremental_events"] > 0
        events = rec.events_named("runtime.incremental")
        assert len(events) == res.extras["incremental_chunks"]
        for ev in events:
            assert ev["solve_sim_s"] > 0
            assert ev["events"] >= 1

    def test_large_chunks_take_the_batch_path(self):
        trace = burst_trace(count=16, n_clients=8)
        rec = TraceRecorder()
        res = run_system(trace, incremental=True, recorder=rec,
                         incremental_max_clients=2)
        assert res.extras["delivered_mb"] == pytest.approx(
            trace.total_mb(), rel=1e-9)
        # Batches above the client limit never count as absorbed chunks.
        for ev in rec.events_named("runtime.incremental"):
            assert ev["n_clients"] <= 2

    def test_incremental_requires_aggregate(self):
        with pytest.raises(ValidationError):
            RuntimeConfig(algorithm="lddm", prices=(1, 8, 1),
                          incremental=True, aggregate=False)


class TestStateKeying:
    def test_membership_change_rebuilds_state(self):
        # A crash changes the live set: the keyed state must not be
        # reused across it (stale column space), and the run completes.
        trace = trickle_trace(count=40, seed=5)
        cfg = RuntimeConfig(algorithm="lddm", prices=(1, 8, 1),
                            incremental=True)
        system = EDRSystem(trace, cfg)
        system.crash_replica("replica2", at=1.0)
        res = system.run(app="dfs")
        assert res.extras["delivered_mb"] == pytest.approx(
            trace.total_mb(), rel=1e-9)
        assert res.extras["transferred_mb"].get("replica2", 0.0) \
            <= trace.total_mb() * 0.9
        assert res.extras["incremental_chunks"] > 0

    def test_price_rotation_rebuilds_state(self):
        # A tariff rotation changes the key: chunks straddling the switch
        # must batch-solve at the new prices, then resume absorbing.
        trace = trickle_trace(count=40, seed=6)
        schedule = PriceSchedule.two_phase(
            (1.0, 8.0, 1.0), (8.0, 1.0, 1.0), switch_at=2.0)
        res = run_system(trace, incremental=True, price_schedule=schedule)
        assert res.extras["delivered_mb"] == pytest.approx(
            trace.total_mb(), rel=1e-9)
        assert res.extras["incremental_chunks"] > 0
        # At least two batch solves: one per price phase.
        assert res.extras["warm_solves"] + res.extras["cold_solves"] >= 2

    def test_event_allocation_matches_batch_quality(self):
        # The split of work across replicas (the thing the objective
        # shapes) must not degrade when chunks are absorbed as events.
        trace = trickle_trace(count=30, seed=7)
        res_b = run_system(trace, incremental=False)
        res_i = run_system(trace, incremental=True)
        t_b, t_i = res_b.extras["transferred_mb"], \
            res_i.extras["transferred_mb"]
        for r in set(t_b) | set(t_i):
            assert t_i.get(r, 0.0) == pytest.approx(
                t_b.get(r, 0.0), rel=0.02, abs=1.0)

"""Tests for the distributed solve session."""

import pytest

from repro.cluster.node import NodeActivity, ReplicaNode
from repro.core.params import ProblemData
from repro.core.problem import ReplicaSelectionProblem
from repro.edr.scheduler import DistributedSolveSession, SolveTimingModel
from repro.errors import ValidationError
from repro.net.topology import Topology
from repro.net.transport import Network
from repro.sim.engine import Simulator


def setup_session(algorithm="lddm", n_replicas=3, n_clients=2, **kwargs):
    sim = Simulator()
    replicas = [f"r{i}" for i in range(n_replicas)]
    clients = [f"c{i}" for i in range(n_clients)]
    topo = Topology.lan(replicas + clients, latency=0.0005)
    net = Network(sim, topo)
    data = ProblemData.paper_defaults(
        demands=[30.0] * n_clients, prices=list(range(1, n_replicas + 1)))
    problem = ReplicaSelectionProblem(data)
    nodes = {r: ReplicaNode(r) for r in replicas}
    session = DistributedSolveSession(
        sim, net, problem, replicas, clients, algorithm, nodes=nodes,
        **kwargs)
    return sim, net, nodes, problem, session


class TestTimingModel:
    def test_linear_in_clients(self):
        tm = SolveTimingModel(base=1e-4, per_client=1e-5)
        t1 = tm.iteration_time(10, "lddm")
        t2 = tm.iteration_time(20, "lddm")
        assert t2 - t1 == pytest.approx(10 * 1e-5)

    def test_cdpsm_costs_more(self):
        tm = SolveTimingModel()
        assert tm.iteration_time(5, "cdpsm") > tm.iteration_time(5, "lddm")


class TestSession:
    def test_produces_feasible_allocation(self):
        sim, net, nodes, problem, session = setup_session("lddm")
        sim.process(session.run())
        sim.run()
        assert session.allocation is not None
        assert problem.violation(session.allocation) < 1e-3
        assert session.duration > 0
        assert session.iterations > 0

    def test_time_advances_with_iterations(self):
        sim, net, nodes, problem, session = setup_session("lddm")
        sim.process(session.run())
        sim.run()
        # Each iteration costs at least the computation time.
        assert sim.now >= session.iterations * \
            session.timing.iteration_time(2, "lddm")

    def test_cdpsm_message_pattern(self):
        sim, net, nodes, problem, session = setup_session(
            "cdpsm", max_iter=5, tol=1e-12)
        sim.process(session.run())
        sim.run()
        n = 3
        # All-pairs exchange per iteration.
        assert net.messages_sent == session.iterations * n * (n - 1)

    def test_lddm_message_pattern(self):
        sim, net, nodes, problem, session = setup_session(
            "lddm", max_iter=5, tol=1e-12)
        sim.process(session.run())
        sim.run()
        # replica->client + client->replica per pair per iteration.
        assert net.messages_sent == session.iterations * 2 * 3 * 2

    def test_nodes_return_to_idle(self):
        sim, net, nodes, problem, session = setup_session("lddm")
        sim.process(session.run())
        sim.run()
        for node in nodes.values():
            assert node.activity is NodeActivity.IDLE

    def test_nodes_busy_during_solve(self):
        sim, net, nodes, problem, session = setup_session("cdpsm",
                                                          max_iter=50)
        sim.process(session.run())
        sim.run(until=1e-4)
        states = {n.activity for n in nodes.values()}
        assert states == {NodeActivity.SELECTING}
        # CDPSM stacks coordination overlay on top.
        assert all(n.cpu_utilization > 0.8 for n in nodes.values())
        sim.run()

    def test_unknown_algorithm(self):
        with pytest.raises(ValidationError):
            setup_session("simplex")

    def test_name_count_validation(self):
        sim = Simulator()
        topo = Topology.lan(["r0", "c0"])
        net = Network(sim, topo)
        data = ProblemData.paper_defaults([10.0], prices=[1.0, 2.0])
        problem = ReplicaSelectionProblem(data)
        with pytest.raises(ValidationError):
            DistributedSolveSession(sim, net, problem, ["r0"], ["c0"],
                                    "lddm")

"""Runtime with heterogeneous per-replica NIC capacities (extension)."""

import numpy as np
import pytest

from repro.edr.system import EDRSystem, RuntimeConfig
from repro.errors import ValidationError

from tests.edr.conftest import burst_trace


class TestHeterogeneousBandwidths:
    def test_validation(self):
        with pytest.raises(ValidationError):
            RuntimeConfig(bandwidths=(100.0,))  # wrong length
        with pytest.raises(ValidationError):
            RuntimeConfig(bandwidths=(0.0,) * 8)

    def test_replica_bandwidths_helper(self):
        cfg = RuntimeConfig()
        assert np.allclose(cfg.replica_bandwidths(), 100.0)
        cfg2 = RuntimeConfig(bandwidths=tuple(range(10, 90, 10)))
        assert cfg2.replica_bandwidths().tolist() == list(range(10, 80, 10)) \
            + [80]

    def test_small_nic_limits_its_share(self):
        from repro.workload.apps import VIDEO_STREAMING
        trace = burst_trace(VIDEO_STREAMING, count=16, n_clients=16,
                            rate=16.0, seed=4)
        # replica1 is the cheapest but has a tiny NIC.
        bws = (10.0, 100.0, 100.0, 100.0, 100.0, 100.0, 100.0, 100.0)
        cfg = RuntimeConfig(algorithm="lddm", bandwidths=bws,
                            batch_capacity_fraction=0.35)
        res = EDRSystem(trace, cfg).run(app="video")
        moved = res.extras["transferred_mb"]
        # The capacity constraint caps the cheap replica's share well
        # below an equal-capacity run's.
        equal = EDRSystem(trace, RuntimeConfig(
            algorithm="lddm", batch_capacity_fraction=0.35)).run(app="video")
        moved_equal = equal.extras["transferred_mb"]
        assert moved["replica1"] < 0.5 * moved_equal["replica1"]
        assert res.extras["delivered_mb"] == pytest.approx(
            trace.total_mb(), rel=1e-9)

    def test_homogeneous_path_unchanged(self):
        trace = burst_trace(count=8, n_clients=8, rate=20.0)
        a = EDRSystem(trace, RuntimeConfig(algorithm="lddm")).run()
        b = EDRSystem(trace, RuntimeConfig(
            algorithm="lddm", bandwidths=(100.0,) * 8)).run()
        assert a.total_cents == pytest.approx(b.total_cents, rel=1e-9)

"""Coordinator-level contracts for the sharded dual-price plane.

What the runtime leans on: exchange rounds land on the centralized
optimum, ``n_shards=1`` degenerates bit-identically to the monolithic
aggregated solve, all three execution modes produce the same bits, a
shard holding essentially all the load still converges, a replica dying
mid-exchange is recovered in place, and routed events keep the plane
within the refresh residual — including the force-target fallback when
a shard declines.
"""

import numpy as np
import pytest

from repro.core.aggregate import aggregate_problem, solve_aggregated
from repro.core.incremental import (
    ClientArrival,
    ClientDeparture,
    DemandChange,
)
from repro.core.model import total_energy
from repro.core.params import ProblemData
from repro.core.problem import ReplicaSelectionProblem
from repro.core.reference import solve_reference
from repro.edr.coordinator import (
    ShardCoordinator,
    ShardingConfig,
    solve_sharded,
)
from repro.errors import InfeasibleProblemError, ValidationError
from repro.experiments import fig9
from tests.core.conftest import random_instance

#: Acceptance bound: sharded objective within this relative gap of the
#: centralized reference / tight monolithic solve.
REL_GAP = 1e-6


def _class_space(demands, prices=(1.0, 8.0, 1.0), mask=None,
                 bandwidth=None):
    """A tiny instance used *directly* as class space (row = class)."""
    demands = np.asarray(demands, dtype=float)
    kwargs = {} if bandwidth is None else {"bandwidth": bandwidth}
    data = ProblemData.paper_defaults(
        demands=demands, prices=list(prices), mask=mask, **kwargs)
    tokens = [data.mask[i].tobytes() + bytes([i])
              for i in range(data.n_clients)]
    return data, tokens


def _make_coord(n_clients=400, n_shards=3, seed=2013, **cfg_kwargs):
    problem = fig9.scaling_problem(n_clients, seed=seed)
    agg = aggregate_problem(problem)
    coord = ShardCoordinator(
        agg.problem.data, list(agg.structure.keys),
        ShardingConfig(n_shards=n_shards, **cfg_kwargs))
    return problem, agg, coord


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValidationError):
            ShardingConfig(n_shards=0)
        with pytest.raises(ValidationError):
            ShardingConfig(mode="fork")
        with pytest.raises(ValidationError):
            ShardingConfig(damping=0.0)
        with pytest.raises(ValidationError):
            ShardingConfig(damping=1.5)
        with pytest.raises(ValidationError):
            ShardingConfig(tol=1e-3, refresh_residual=1e-6)
        with pytest.raises(ValidationError):
            ShardingConfig(warm_cache_entries=0)

    def test_token_count_checked(self):
        data, tokens = _class_space([10.0, 20.0])
        with pytest.raises(ValidationError):
            ShardCoordinator(data, tokens[:1])

    def test_unknown_client_class_rejected(self):
        data, tokens = _class_space([10.0, 20.0])
        with pytest.raises(ValidationError):
            ShardCoordinator(data, tokens,
                             clients={"c0": (b"nope", 10.0)})


class TestConvergence:
    def test_lands_on_reference(self):
        problem, agg, coord = _make_coord(n_clients=400, n_shards=3)
        res = coord.solve()
        assert res.converged
        rows = coord.rows_for(list(agg.structure.keys))
        P = agg.structure.expand_rows(rows)
        ref = solve_reference(problem)
        assert total_energy(problem.data, P) \
            <= ref.objective * (1 + REL_GAP)
        assert problem.violation(P) < 1e-6 * float(problem.data.R.max())

    def test_solve_sharded_gap_and_feasibility(self):
        problem = fig9.scaling_problem(600, seed=7)
        sol = solve_sharded(problem, 3)
        mono = solve_aggregated(problem, "lddm", max_iter=5000, tol=1e-10,
                                track_objective=False)
        gap = abs(sol.objective - mono.objective) \
            / max(abs(mono.objective), 1e-12)
        assert sol.converged
        assert gap <= REL_GAP
        assert sol.method == "sharded"

    def test_single_shard_bit_identical_to_monolithic(self):
        problem = fig9.scaling_problem(300, seed=5)
        one = solve_sharded(problem, 1)
        mono = solve_aggregated(problem, "lddm")
        assert np.array_equal(one.allocation, mono.allocation)
        assert one.objective == mono.objective

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_modes_bit_identical(self, mode):
        problem = fig9.scaling_problem(500, seed=3)
        serial = solve_sharded(problem, 3, mode="serial")
        other = solve_sharded(problem, 3, mode=mode)
        assert np.array_equal(serial.allocation, other.allocation)

    def test_one_shard_holds_all_load(self):
        # One class carries ~99% of the demand: LPT isolates it on its
        # own shard, which then fights the (near-empty) others for the
        # cheap columns.  The exchange must still land on the optimum.
        data, tokens = _class_space([500.0, 2.0, 3.0], bandwidth=250.0)
        coord = ShardCoordinator(data, tokens, ShardingConfig(n_shards=3))
        heavy = coord._token_shard[tokens[0]]
        assert coord.shards[heavy].demand() == pytest.approx(500.0)
        res = coord.solve()
        assert res.converged
        ref = solve_reference(
            ReplicaSelectionProblem(ProblemData.paper_defaults(
                demands=[500.0, 2.0, 3.0], prices=[1.0, 8.0, 1.0],
                bandwidth=250.0)))
        assert coord.objective() <= ref.objective * (1 + REL_GAP)

    def test_more_shards_than_classes(self):
        data, tokens = _class_space([40.0, 60.0])
        coord = ShardCoordinator(data, tokens, ShardingConfig(n_shards=4))
        res = coord.solve()
        assert res.converged
        ref = solve_reference(
            ReplicaSelectionProblem(ProblemData.paper_defaults(
                demands=[40.0, 60.0], prices=[1.0, 8.0, 1.0])))
        assert coord.objective() <= ref.objective * (1 + REL_GAP)


class TestReplicaDeath:
    def test_dead_replica_mid_exchange_recovers(self):
        # Converge partially, kill a column mid-flight, finish: the dead
        # column drains everywhere and the plane re-converges on the
        # survivor set's optimum.
        problem, agg, coord = _make_coord(n_clients=300, n_shards=3)
        coord.solve(max_rounds=2)
        coord.fail_replica(1)
        res = coord.solve()
        assert res.converged
        assert coord.loads[1] == pytest.approx(0.0, abs=1e-12)
        masked = problem.data.mask.copy()
        masked[:, 1] = False
        survivors = ReplicaSelectionProblem(ProblemData(
            demands=problem.data.R, capacities=problem.data.B,
            prices=problem.data.u, alpha=problem.data.alpha[0],
            beta=problem.data.beta[0], gamma=problem.data.gamma[0],
            mask=masked))
        ref = solve_reference(survivors)
        assert coord.objective() <= ref.objective * (1 + REL_GAP)

    def test_orphaned_class_raises(self):
        # A class eligible only to the dying replica cannot be placed.
        mask = np.array([[True, True, True], [False, True, False]])
        data, tokens = _class_space([30.0, 20.0], mask=mask)
        coord = ShardCoordinator(data, tokens, ShardingConfig(n_shards=2))
        coord.solve()
        with pytest.raises(InfeasibleProblemError):
            coord.fail_replica(1)

    def test_index_validated(self):
        data, tokens = _class_space([10.0, 20.0])
        coord = ShardCoordinator(data, tokens)
        with pytest.raises(ValidationError):
            coord.fail_replica(7)


class TestEventRouting:
    def _converged_coord(self, n_clients=300, n_shards=3, **cfg_kwargs):
        problem = fig9.scaling_problem(n_clients, seed=2013)
        agg = aggregate_problem(problem)
        tokens = list(agg.structure.keys)
        clients = {
            f"c{i}": (tokens[agg.structure.class_of_client[i]],
                      float(problem.data.R[i]))
            for i in range(problem.data.n_clients)}
        coord = ShardCoordinator(
            agg.problem.data, tokens,
            ShardingConfig(n_shards=n_shards, **cfg_kwargs),
            clients=clients)
        coord.solve()
        return problem, coord

    def test_events_stay_within_refresh_residual(self):
        problem, coord = self._converged_coord()
        eligibility = problem.data.mask[0]
        events = [
            ClientArrival("fresh1", 5.0, eligibility),
            DemandChange("c0", 9.0),
            ClientDeparture("c1"),
            ClientDeparture("fresh1"),
        ]
        for event in events:
            r = coord.apply_event(event)
            assert r.ok
            assert coord.residual() \
                <= coord.config.refresh_residual + 1e-12
        assert coord.events_applied >= 2

    def test_routing_follows_registration(self):
        problem, coord = self._converged_coord()
        eligibility = problem.data.mask[0]
        coord.apply_event(ClientArrival("fresh1", 4.0, eligibility))
        token = np.asarray(eligibility, dtype=bool).tobytes()
        assert coord._client_shard["fresh1"] == coord._token_shard[token]
        coord.apply_event(ClientDeparture("fresh1"))
        assert "fresh1" not in coord._client_shard

    def test_unknown_client_raises(self):
        _, coord = self._converged_coord()
        with pytest.raises(ValidationError):
            coord.apply_event(DemandChange("ghost", 5.0))

    def test_new_class_routes_to_lightest_shard(self):
        _, coord = self._converged_coord()
        fresh_mask = np.array([False, True, False])
        token = fresh_mask.tobytes()
        assert token not in coord._token_shard
        lightest = min(range(coord.n_shards),
                       key=lambda s: (coord.shards[s].demand(), s))
        r = coord.apply_event(ClientArrival("newpat", 3.0, fresh_mask))
        assert r.ok
        assert coord._token_shard[token] == lightest

    def test_fallback_recovery_in_place(self):
        # A hair-trigger drift limit makes the owning shard decline the
        # event; the coordinator force-targets and re-runs exchange
        # rounds, ending converged with the event applied.
        problem, coord = self._converged_coord(drift_limit=1e-9)
        before = coord.fallbacks
        r = coord.apply_event(DemandChange("c0", 50.0))
        assert r.ok and r.refreshed
        assert r.fallback_reason in \
            {"capacity", "drift", "convergence", "stale"}
        assert coord.fallbacks == before + 1
        assert coord.residual() <= coord.config.tol * (1 + 1e-9)
        # The demand change actually landed.
        reg = None
        for sh in coord.shards:
            reg = reg or sh.state.registered("c0")
        assert reg is not None and reg[1] == pytest.approx(50.0)

    def test_retarget_moves_the_plane(self):
        problem, coord = self._converged_coord()
        agg = aggregate_problem(problem)
        tokens = list(agg.structure.keys)
        masks = agg.structure.masks
        demands = agg.structure.demands * 1.1
        r = coord.retarget(tokens, masks, demands)
        assert r.ok
        assert coord.residual() \
            <= coord.config.refresh_residual + 1e-12
        total = sum(sh.demand() for sh in coord.shards)
        assert total == pytest.approx(float(demands.sum()))

"""Weighted scheduler when a client loses every eligible replica.

Regression for a divide-by-zero: with all of a client's within-latency
replicas dead, the eligibility row over the live set is all-False, so
``w = elig.astype(float)`` summed to zero and ``w / w.sum()`` produced
NaN shares that silently corrupted transfer accounting.  The fix fails
over to the nearest live replica.
"""

import math

import pytest

from repro.edr.system import EDRSystem, RuntimeConfig
from repro.net.topology import Topology
from repro.util.rng import make_rng
from repro.workload.apps import FILE_SERVICE
from repro.workload.clients import ClientPopulation
from repro.workload.generator import WorkloadGenerator
from repro.workload.youtube import YoutubeTrafficModel


def build_system():
    """client0 can only reach replica1 within T; the rest sit far away."""
    replicas = ["replica1", "replica2", "replica3"]
    clients = ["client0", "client1"]
    positions = {
        "replica1": (0.5, 0.0),
        "replica2": (10.0, 0.0),
        "replica3": (10.0, 1.0),
        "client0": (0.0, 0.0),     # within T of replica1 only
        "client1": (10.0, 0.5),    # within T of replicas 2 and 3
    }
    topo = Topology.geo(replicas + clients, positions,
                        seconds_per_unit=0.001, base_latency=0.0001,
                        capacity=100.0)
    gen = WorkloadGenerator(
        traffic=YoutubeTrafficModel(base_rate=10.0, amplitude=0.0,
                                    period=1000.0),
        clients=ClientPopulation(clients), app=FILE_SERVICE)
    trace = gen.generate(make_rng(3), count=24)
    cfg = RuntimeConfig(algorithm="weighted", prices=(1, 8, 1),
                        weights=(1.0, 1.0, 1.0))
    return trace, EDRSystem(trace, cfg, topology=topo)


class TestWeightedFailover:
    def test_crashing_a_clients_only_replica_fails_over(self):
        trace, system = build_system()
        # Mid-run, kill the one replica client0 is allowed to use.
        system.crash_replica("replica1", at=1.0)
        res = system.run(app="dfs")
        # Everything still arrives — client0's post-crash requests fail
        # over to the nearest live replica instead of NaN shares.
        assert res.extras["delivered_mb"] == pytest.approx(
            trace.total_mb(), rel=1e-9)
        for replica, mb in res.extras["transferred_mb"].items():
            assert math.isfinite(mb) and mb >= 0.0
        # The failover target really served client0's late requests.
        late = {"replica2", "replica3"}
        assert sum(res.extras["transferred_mb"].get(r, 0.0)
                   for r in late) > 0.0

    def test_no_crash_honors_eligibility(self):
        trace, system = build_system()
        res = system.run(app="dfs")
        assert res.extras["delivered_mb"] == pytest.approx(
            trace.total_mb(), rel=1e-9)
        # Without the crash, client0 is served by replica1 alone, so it
        # moves at least client0's share of the bytes.
        assert res.extras["transferred_mb"]["replica1"] > 0.0

"""Runtime integration of the sharded dual-price control plane.

``RuntimeConfig.sharding`` routes scheduling chunks through a
:class:`~repro.edr.coordinator.ShardCoordinator` instead of batch
solves — these tests pin that the path fires, delivers the same work as
the monolithic runtime at comparable energy, survives a mid-run replica
crash (plane rebuild on the shrunken live set), sizes the shard-local
warm caches from the global budget, and records the obs taxonomy.
"""

import pytest

from repro.edr.coordinator import ShardingConfig
from repro.edr.system import EDRSystem, RuntimeConfig
from repro.errors import ValidationError
from repro.obs import TraceRecorder
from repro.obs.events import validate_record

from tests.edr.conftest import burst_trace


def _run(trace, n_shards=2, recorder=None, **cfg_kwargs):
    cfg_kwargs.setdefault("algorithm", "lddm")
    cfg = RuntimeConfig(sharding=ShardingConfig(n_shards=n_shards),
                        recorder=recorder, **cfg_kwargs)
    system = EDRSystem(trace, cfg)
    return system, system.run(app="dfs")


class TestConfigValidation:
    def test_sharding_requires_aggregate(self):
        with pytest.raises(ValidationError):
            RuntimeConfig(sharding=ShardingConfig(), aggregate=False)

    def test_sharding_requires_lddm(self):
        with pytest.raises(ValidationError):
            RuntimeConfig(sharding=ShardingConfig(), algorithm="cdpsm")

    def test_warm_cache_entries_positive(self):
        with pytest.raises(ValidationError):
            RuntimeConfig(warm_cache_entries=0)


class TestShardedRuntime:
    def test_sharded_path_fires_and_delivers(self):
        trace = burst_trace(count=30, n_clients=12, rate=10.0, seed=3)
        _, res = _run(trace)
        assert res.extras["shard_chunks"] >= 1
        assert res.extras["shard_events"] >= 1
        assert res.extras["delivered_mb"] == pytest.approx(
            trace.total_mb(), rel=1e-6)

    def test_parity_with_monolithic_runtime(self):
        trace = burst_trace(count=30, n_clients=12, rate=10.0, seed=4)
        _, sharded = _run(trace)
        mono_trace = burst_trace(count=30, n_clients=12, rate=10.0, seed=4)
        mono_sys = EDRSystem(mono_trace, RuntimeConfig(algorithm="lddm"))
        mono = mono_sys.run(app="dfs")
        assert sharded.extras["delivered_mb"] == pytest.approx(
            mono.extras["delivered_mb"], rel=1e-6)
        # Same optimum, so comparable energy cost.
        assert sharded.total_cents <= mono.total_cents * 1.05

    def test_crash_rebuilds_the_plane(self):
        trace = burst_trace(count=20, n_clients=10, rate=4.0, seed=5)
        cfg = RuntimeConfig(algorithm="lddm",
                            sharding=ShardingConfig(n_shards=2))
        system = EDRSystem(trace, cfg)
        system.crash_replica("replica2", at=1.5)
        res = system.run(app="dfs")
        assert "replica2" not in system.ring.live
        # Chunks solved on both sides of the crash; everything lands.
        assert res.extras["shard_chunks"] >= 2
        assert res.extras["delivered_mb"] == pytest.approx(
            trace.total_mb(), rel=1e-6)

    def test_shard_cache_sizing_follows_global_budget(self):
        trace = burst_trace(count=8, n_clients=4, rate=10.0, seed=6)
        cfg = RuntimeConfig(algorithm="lddm", warm_cache_entries=8,
                            sharding=ShardingConfig(n_shards=4))
        system = EDRSystem(trace, cfg)
        assert len(system._shard_caches) == 4
        for cache in system._shard_caches:
            assert cache.max_entries == 2
        # An explicit per-shard override wins over the derived share.
        cfg = RuntimeConfig(
            algorithm="lddm", warm_cache_entries=8,
            sharding=ShardingConfig(n_shards=4, warm_cache_entries=5))
        system = EDRSystem(trace, cfg)
        for cache in system._shard_caches:
            assert cache.max_entries == 5

    def test_obs_taxonomy_recorded_and_valid(self):
        rec = TraceRecorder()
        trace = burst_trace(count=24, n_clients=10, rate=10.0, seed=7)
        _, res = _run(trace, recorder=rec)
        names = {r.get("name") for r in rec.records}
        assert "runtime.shard" in names
        assert "coordinator.solve" in names
        assert "shard.solve" in names
        for record in rec.records:
            validate_record(record)

    def test_extras_counters_present(self):
        trace = burst_trace(count=24, n_clients=10, rate=10.0, seed=8)
        _, res = _run(trace)
        for key in ("shard_chunks", "shard_events", "shard_rounds",
                    "shard_refreshes", "shard_fallbacks"):
            assert key in res.extras
        # The cold build of the plane runs exchange rounds at least once.
        assert res.extras["shard_rounds"] >= 1

"""Tests for the ring membership structure and heartbeat failure detector."""

import pytest

from repro.edr.membership import HeartbeatProtocol, MembershipRing
from repro.errors import MembershipError
from repro.net.faults import FaultInjector
from repro.net.topology import Topology
from repro.net.transport import Network
from repro.sim.engine import Simulator


class TestMembershipRing:
    def test_ring_order(self):
        ring = MembershipRing(["a", "b", "c"])
        assert ring.successor("a") == "b"
        assert ring.successor("c") == "a"
        assert ring.predecessor("a") == "c"

    def test_dead_member_skipped(self):
        ring = MembershipRing(["a", "b", "c"])
        ring.mark_dead("b")
        assert ring.live == ["a", "c"]
        assert ring.successor("a") == "c"
        assert ring.predecessor("a") == "c"

    def test_single_member_self_loop(self):
        ring = MembershipRing(["only"])
        assert ring.successor("only") == "only"

    def test_mark_dead_idempotent(self):
        ring = MembershipRing(["a", "b"])
        ring.mark_dead("a")
        ring.mark_dead("a")
        assert ring.events == [("dead", "a")]

    def test_rejoin(self):
        ring = MembershipRing(["a", "b"])
        ring.mark_dead("a")
        ring.mark_alive("a")
        assert ring.live == ["a", "b"]

    def test_rejoin_unknown_rejected(self):
        with pytest.raises(MembershipError):
            MembershipRing(["a"]).mark_alive("stranger")

    def test_dead_member_queries_fail(self):
        ring = MembershipRing(["a", "b"])
        ring.mark_dead("a")
        with pytest.raises(MembershipError):
            ring.successor("a")

    def test_validation(self):
        with pytest.raises(MembershipError):
            MembershipRing([])
        with pytest.raises(MembershipError):
            MembershipRing(["a", "a"])

    def test_is_alive(self):
        ring = MembershipRing(["a"])
        assert ring.is_alive("a")
        assert not ring.is_alive("z")


class TestHeartbeatProtocol:
    def _setup(self, n=3):
        sim = Simulator()
        names = [f"r{i}" for i in range(n)]
        topo = Topology.lan(names, latency=0.001)
        net = Network(sim, topo)
        ring = MembershipRing(names)
        return sim, net, ring

    def test_no_false_positives(self):
        sim, net, ring = self._setup()
        hb = HeartbeatProtocol(sim, net, ring, interval=0.05, timeout=0.25)
        sim.run(until=5.0)
        hb.stop()
        assert ring.live == ["r0", "r1", "r2"]

    def test_crash_detected_and_announced(self):
        sim, net, ring = self._setup()
        deaths = []
        hb = HeartbeatProtocol(sim, net, ring, interval=0.05, timeout=0.25,
                               on_death=deaths.append)
        inj = FaultInjector(sim, net)
        inj.crash_at(1.0, "r1")
        sim.run(until=3.0)
        hb.stop()
        assert ring.live == ["r0", "r2"]
        assert deaths == ["r1"]
        # Detection happened within a few timeouts of the crash.
        assert ("dead", "r1") in ring.events

    def test_ring_repairs_after_death(self):
        sim, net, ring = self._setup(4)
        hb = HeartbeatProtocol(sim, net, ring, interval=0.05, timeout=0.25)
        inj = FaultInjector(sim, net)
        inj.crash_at(1.0, "r2")
        sim.run(until=3.0)
        hb.stop()
        assert ring.successor("r1") == "r3"

    def test_two_crashes(self):
        sim, net, ring = self._setup(5)
        hb = HeartbeatProtocol(sim, net, ring, interval=0.05, timeout=0.25)
        inj = FaultInjector(sim, net)
        inj.crash_at(1.0, "r1")
        inj.crash_at(1.5, "r3")
        sim.run(until=4.0)
        hb.stop()
        assert ring.live == ["r0", "r2", "r4"]

    def test_timeout_must_exceed_interval(self):
        sim, net, ring = self._setup()
        with pytest.raises(MembershipError):
            HeartbeatProtocol(sim, net, ring, interval=0.3, timeout=0.2)

    def test_partitioned_predecessor_detected_despite_churn(self):
        """Shared-timestamp regression: detection state must be local.

        Only the r5 -> r0 link is cut, so r0 alone stops hearing its
        predecessor r5.  With observer-local timestamps, r0 declares r5
        dead one timeout after the last delivered heartbeat — deaths
        elsewhere on the ring (r1, r3 crash around the same time) must
        not refresh r0's window and postpone the detection.
        """
        sim, net, ring = self._setup(6)
        deaths = []
        hb = HeartbeatProtocol(sim, net, ring, interval=0.05, timeout=0.25,
                               on_death=lambda n: deaths.append((sim.now, n)))
        inj = FaultInjector(sim, net)
        inj.crash_at(0.87, "r1")
        inj.crash_at(1.03, "r3")
        sim.call_at(0.98, lambda: inj.cut_link("r5", "r0"))
        sim.run(until=1.5)
        hb.stop()
        times = {name: t for t, name in deaths}
        assert set(times) == {"r1", "r3", "r5"}
        # One timeout after r5's last delivered heartbeat (~0.95), plus
        # watch-tick granularity — not one timeout after the churn.
        assert times["r5"] < 1.35
        assert ring.live == ["r0", "r2", "r4"]

    def test_crash_restore_rejoin_round_trip(self):
        """A restored replica rejoins the ring and is watched again."""
        sim, net, ring = self._setup(3)
        deaths = []
        hb = HeartbeatProtocol(sim, net, ring, interval=0.05, timeout=0.25,
                               on_death=deaths.append)
        inj = FaultInjector(sim, net, on_restore=hb.rejoin)
        inj.crash_at(1.0, "r1")
        inj.restore_at(2.0, "r1")
        sim.run(until=3.0)
        # Detected once, then re-admitted; no spurious deaths after the
        # rejoin (the re-seeded window must not instantly re-kill it, and
        # the restarted beat process must keep its successor satisfied).
        assert deaths == ["r1"]
        assert ring.live == ["r0", "r1", "r2"]
        assert ("alive", "r1") in ring.events
        # The rejoined member is a first-class participant: crash it again
        # and the restarted protocol must re-detect it.
        inj.crash_at(3.0, "r1")
        sim.run(until=4.0)
        hb.stop()
        assert deaths == ["r1", "r1"]
        assert ring.live == ["r0", "r2"]

    def test_rejoin_requires_restored_transport(self):
        sim, net, ring = self._setup(3)
        hb = HeartbeatProtocol(sim, net, ring, interval=0.05, timeout=0.25)
        inj = FaultInjector(sim, net)
        inj.crash_at(1.0, "r1")
        sim.run(until=2.0)
        with pytest.raises(MembershipError):
            hb.rejoin("r1")
        hb.stop()

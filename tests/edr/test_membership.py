"""Tests for the ring membership structure and heartbeat failure detector."""

import pytest

from repro.edr.membership import HeartbeatProtocol, MembershipRing
from repro.errors import MembershipError
from repro.net.faults import FaultInjector
from repro.net.topology import Topology
from repro.net.transport import Network
from repro.sim.engine import Simulator


class TestMembershipRing:
    def test_ring_order(self):
        ring = MembershipRing(["a", "b", "c"])
        assert ring.successor("a") == "b"
        assert ring.successor("c") == "a"
        assert ring.predecessor("a") == "c"

    def test_dead_member_skipped(self):
        ring = MembershipRing(["a", "b", "c"])
        ring.mark_dead("b")
        assert ring.live == ["a", "c"]
        assert ring.successor("a") == "c"
        assert ring.predecessor("a") == "c"

    def test_single_member_self_loop(self):
        ring = MembershipRing(["only"])
        assert ring.successor("only") == "only"

    def test_mark_dead_idempotent(self):
        ring = MembershipRing(["a", "b"])
        ring.mark_dead("a")
        ring.mark_dead("a")
        assert ring.events == [("dead", "a")]

    def test_rejoin(self):
        ring = MembershipRing(["a", "b"])
        ring.mark_dead("a")
        ring.mark_alive("a")
        assert ring.live == ["a", "b"]

    def test_rejoin_unknown_rejected(self):
        with pytest.raises(MembershipError):
            MembershipRing(["a"]).mark_alive("stranger")

    def test_dead_member_queries_fail(self):
        ring = MembershipRing(["a", "b"])
        ring.mark_dead("a")
        with pytest.raises(MembershipError):
            ring.successor("a")

    def test_validation(self):
        with pytest.raises(MembershipError):
            MembershipRing([])
        with pytest.raises(MembershipError):
            MembershipRing(["a", "a"])

    def test_is_alive(self):
        ring = MembershipRing(["a"])
        assert ring.is_alive("a")
        assert not ring.is_alive("z")


class TestHeartbeatProtocol:
    def _setup(self, n=3):
        sim = Simulator()
        names = [f"r{i}" for i in range(n)]
        topo = Topology.lan(names, latency=0.001)
        net = Network(sim, topo)
        ring = MembershipRing(names)
        return sim, net, ring

    def test_no_false_positives(self):
        sim, net, ring = self._setup()
        hb = HeartbeatProtocol(sim, net, ring, interval=0.05, timeout=0.25)
        sim.run(until=5.0)
        hb.stop()
        assert ring.live == ["r0", "r1", "r2"]

    def test_crash_detected_and_announced(self):
        sim, net, ring = self._setup()
        deaths = []
        hb = HeartbeatProtocol(sim, net, ring, interval=0.05, timeout=0.25,
                               on_death=deaths.append)
        inj = FaultInjector(sim, net)
        inj.crash_at(1.0, "r1")
        sim.run(until=3.0)
        hb.stop()
        assert ring.live == ["r0", "r2"]
        assert deaths == ["r1"]
        # Detection happened within a few timeouts of the crash.
        assert ("dead", "r1") in ring.events

    def test_ring_repairs_after_death(self):
        sim, net, ring = self._setup(4)
        hb = HeartbeatProtocol(sim, net, ring, interval=0.05, timeout=0.25)
        inj = FaultInjector(sim, net)
        inj.crash_at(1.0, "r2")
        sim.run(until=3.0)
        hb.stop()
        assert ring.successor("r1") == "r3"

    def test_two_crashes(self):
        sim, net, ring = self._setup(5)
        hb = HeartbeatProtocol(sim, net, ring, interval=0.05, timeout=0.25)
        inj = FaultInjector(sim, net)
        inj.crash_at(1.0, "r1")
        inj.crash_at(1.5, "r3")
        sim.run(until=4.0)
        hb.stop()
        assert ring.live == ["r0", "r2", "r4"]

    def test_timeout_must_exceed_interval(self):
        sim, net, ring = self._setup()
        with pytest.raises(MembershipError):
            HeartbeatProtocol(sim, net, ring, interval=0.3, timeout=0.2)

"""Integration tests for the full EDR runtime."""

import numpy as np
import pytest

from repro.edr.system import EDRSystem, RuntimeConfig
from repro.errors import ValidationError
from repro.workload.requests import RequestTrace

from tests.edr.conftest import burst_trace


def run_system(trace, **cfg_kwargs):
    cfg = RuntimeConfig(**cfg_kwargs)
    return EDRSystem(trace, cfg).run(app="test")


class TestConfigValidation:
    def test_unknown_algorithm(self):
        with pytest.raises(ValidationError):
            RuntimeConfig(algorithm="magic")

    def test_bad_fraction(self):
        with pytest.raises(ValidationError):
            RuntimeConfig(batch_capacity_fraction=0.0)

    def test_price_count_mismatch(self):
        trace = burst_trace(count=2)
        with pytest.raises(ValidationError):
            EDRSystem(trace, RuntimeConfig(prices=(1, 2)), n_replicas=3)

    def test_empty_trace(self):
        with pytest.raises(ValidationError):
            EDRSystem(RequestTrace([]), RuntimeConfig())


@pytest.mark.parametrize("algorithm", ["lddm", "cdpsm", "round_robin"])
class TestAllAlgorithmsDeliver:
    def test_everything_delivered(self, algorithm, dfs_burst):
        res = run_system(dfs_burst, algorithm=algorithm)
        assert res.extras["delivered_mb"] == pytest.approx(
            dfs_burst.total_mb(), rel=1e-9)
        assert res.makespan > 0
        assert len(res.response_times) == len(dfs_burst)

    def test_energy_positive_everywhere(self, algorithm, dfs_burst):
        res = run_system(dfs_burst, algorithm=algorithm)
        assert np.all(res.joules_by_replica >= 0)
        assert res.total_joules > 0
        assert res.total_cents > 0


class TestRuntimeShape:
    """The paper's qualitative claims at runtime scale."""

    def test_lddm_cheaper_than_round_robin(self):
        # Transfer-dominated regime (the paper's "peak service hours"):
        # video-sized requests so placement, not solve overhead, dominates.
        from repro.workload.apps import VIDEO_STREAMING
        trace = burst_trace(VIDEO_STREAMING, count=24, n_clients=24,
                            rate=12.0, seed=5)
        lddm = run_system(trace, algorithm="lddm",
                          batch_capacity_fraction=0.35)
        rr = run_system(trace, algorithm="round_robin",
                        batch_capacity_fraction=0.35)
        assert lddm.total_cents < rr.total_cents

    def test_lddm_faster_response_than_cdpsm(self, dfs_burst):
        lddm = run_system(dfs_burst, algorithm="lddm")
        cdpsm = run_system(dfs_burst, algorithm="cdpsm")
        assert lddm.mean_response < cdpsm.mean_response

    def test_lddm_fewer_messages_than_cdpsm(self, dfs_burst):
        lddm = run_system(dfs_burst, algorithm="lddm")
        cdpsm = run_system(dfs_burst, algorithm="cdpsm")
        assert lddm.extras["messages"] < cdpsm.extras["messages"]

    def test_round_robin_no_solve_messages(self, dfs_burst):
        rr = run_system(dfs_burst, algorithm="round_robin")
        # Only request broadcasts + assignments, no solver sync storm.
        lddm = run_system(dfs_burst, algorithm="lddm")
        assert rr.extras["messages"] < lddm.extras["messages"] / 5

    def test_load_concentrates_on_cheap_replicas(self):
        from repro.workload.apps import VIDEO_STREAMING
        trace = burst_trace(VIDEO_STREAMING, count=24, n_clients=24,
                            rate=12.0, seed=7)
        res = run_system(trace, algorithm="lddm",
                         batch_capacity_fraction=0.35)
        joules = res.joules_by_replica
        prices = np.array(RuntimeConfig().prices)
        cheap = joules[prices <= 2].mean()
        expensive = joules[prices >= 6].mean()
        # Cheap replicas work longer windows => more energy there.
        assert cheap > expensive


class TestDeterminism:
    def test_same_trace_same_result(self, dfs_burst):
        a = run_system(dfs_burst, algorithm="lddm")
        b = run_system(dfs_burst, algorithm="lddm")
        assert a.total_cents == b.total_cents
        assert a.makespan == b.makespan
        assert a.response_times == b.response_times


class TestFaultTolerance:
    def test_crash_mid_run_everything_still_delivered(self):
        # Long spread-out trace so the crash lands mid-service.
        trace = burst_trace(count=20, n_clients=10, rate=4.0, seed=3)
        cfg = RuntimeConfig(algorithm="lddm")
        system = EDRSystem(trace, cfg)
        # Crash a non-lead replica while transfers are in flight.
        system.crash_replica("replica2", at=1.5)
        res = system.run(app="dfs")
        assert res.extras["delivered_mb"] == pytest.approx(
            trace.total_mb(), rel=1e-6)
        assert "replica2" not in system.ring.live

    def test_crash_triggers_retries(self):
        # Video transfers last several seconds, so a crash at t=2 lands
        # while flows from the victim are certainly in flight (LDDM's
        # waterfill gives every replica a share).
        from repro.workload.apps import VIDEO_STREAMING
        trace = burst_trace(VIDEO_STREAMING, count=8, n_clients=8,
                            rate=8.0, seed=3)
        system = EDRSystem(trace, RuntimeConfig(algorithm="lddm"))
        # Crash a cheap (price-1), non-lead replica: it certainly carries
        # long-running flows when the fault hits.
        system.crash_replica("replica3", at=2.0)
        res = system.run(app="video")
        assert res.extras["retries"] >= 1
        assert res.extras["delivered_mb"] == pytest.approx(
            trace.total_mb(), rel=1e-6)

    def test_heartbeat_detection_path(self):
        trace = burst_trace(count=10, n_clients=5, rate=4.0, seed=2)
        system = EDRSystem(trace, RuntimeConfig(
            algorithm="lddm", heartbeats=True))
        system.faults.crash_at(1.0, "replica3")  # net-level crash only
        res = system.run(app="dfs")
        # The heartbeat protocol (not the harness) must detect it.
        assert "replica3" not in system.ring.live
        assert res.extras["delivered_mb"] == pytest.approx(
            trace.total_mb(), rel=1e-6)


class TestPowerProfiles:
    def test_profiles_recorded_at_50hz(self, dfs_burst):
        system = EDRSystem(dfs_burst, RuntimeConfig(algorithm="lddm"))
        system.run(app="dfs")
        profiles = system.power_profiles()
        assert set(profiles) == set(system.replica_names)
        for series in profiles.values():
            assert len(series) >= 2
            dt = np.diff(series.times)
            assert np.allclose(dt, 0.02, atol=1e-9)

    def test_power_within_model_envelope(self, dfs_burst):
        system = EDRSystem(dfs_burst, RuntimeConfig(algorithm="cdpsm"))
        system.run(app="dfs")
        pm = system.config.power_model
        for series in system.power_profiles().values():
            assert series.min() >= pm.idle_w - 1e-9
            assert series.max() <= pm.peak_w + 1e-9

    def test_selection_raises_power_above_idle(self, dfs_burst):
        system = EDRSystem(dfs_burst, RuntimeConfig(algorithm="cdpsm"))
        system.run(app="dfs")
        pm = system.config.power_model
        # At least one replica must have been observed above idle+cpu floor.
        peaks = [s.max() for s in system.power_profiles().values()]
        assert max(peaks) > pm.idle_w + 5.0

"""Agent-based CDPSM reproduces the matrix solver exactly."""

import numpy as np
import pytest

from repro.core.cdpsm import CdpsmSolver
from repro.core.params import ProblemData
from repro.core.problem import ReplicaSelectionProblem
from repro.edr.agents import AgentBasedCdpsm
from repro.errors import ValidationError
from repro.net.topology import Topology
from repro.net.transport import Network
from repro.sim.engine import Simulator
from repro.util.rng import make_rng


def run_agents(data, rounds):
    replicas = [f"r{i}" for i in range(data.n_replicas)]
    sim = Simulator()
    net = Network(sim, Topology.lan(replicas, latency=0.0004))
    system = AgentBasedCdpsm(sim, net, data, replicas, rounds=rounds)
    sim.run()
    return system, net


def run_matrix(data, rounds):
    solver = CdpsmSolver(ReplicaSelectionProblem(data), max_iter=rounds,
                         tol=0.0, track_objective=False)
    mean = None
    for _k, mean, _change in solver.iterations():
        pass
    return mean


class TestCdpsmEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_agents_match_matrix(self, seed):
        rng = make_rng(seed)
        data = ProblemData.paper_defaults(
            demands=rng.uniform(15, 40, size=2),
            prices=rng.integers(1, 21, size=3).astype(float))
        rounds = 25
        system, _ = run_agents(data, rounds)
        agent_mean = system.consensus_mean()
        matrix_mean = run_matrix(data, rounds)
        assert np.allclose(agent_mean, matrix_mean, atol=1e-8), \
            f"max diff {np.abs(agent_mean - matrix_mean).max():.2e}"

    def test_message_pattern_is_all_pairs(self):
        data = ProblemData.paper_defaults([20.0], prices=[2.0, 8.0, 3.0])
        rounds = 7
        _, net = run_agents(data, rounds)
        n = 3
        assert net.messages_sent == rounds * n * (n - 1)

    def test_estimate_volume_is_cn_per_message(self):
        data = ProblemData.paper_defaults(
            [20.0, 10.0], prices=[2.0, 8.0])
        _, net = run_agents(data, rounds=4)
        C, N = data.shape
        expected_mb = 4 * N * (N - 1) * C * N * 8e-6
        assert net.mb_sent == pytest.approx(expected_mb)

    def test_validation(self):
        data = ProblemData.paper_defaults([10.0], prices=[1.0])
        sim = Simulator()
        net = Network(sim, Topology.lan(["r0"]))
        with pytest.raises(ValidationError):
            AgentBasedCdpsm(sim, net, data, ["r0"])

    def test_mean_before_finish_raises(self):
        data = ProblemData.paper_defaults([10.0], prices=[1.0, 2.0])
        sim = Simulator()
        net = Network(sim, Topology.lan(["r0", "r1"]))
        system = AgentBasedCdpsm(sim, net, data, ["r0", "r1"], rounds=3)
        with pytest.raises(ValidationError):
            system.consensus_mean()

"""Property-style invariant tests for the full runtime over random configs.

Each randomized scenario must satisfy the conservation and bookkeeping
invariants regardless of scheduler, workload, or prices.
"""

import numpy as np
import pytest

from repro.cluster.pricing import JOULES_PER_KWH
from repro.edr.system import EDRSystem, RuntimeConfig
from repro.util.rng import make_rng
from repro.workload.apps import FILE_SERVICE, VIDEO_STREAMING
from repro.workload.clients import ClientPopulation
from repro.workload.generator import WorkloadGenerator
from repro.workload.youtube import YoutubeTrafficModel


def random_run(seed: int):
    rng = make_rng(seed)
    app = VIDEO_STREAMING if rng.random() < 0.5 else FILE_SERVICE
    count = int(rng.integers(4, 16)) if app is VIDEO_STREAMING \
        else int(rng.integers(20, 60))
    n_clients = int(rng.integers(3, 12))
    algo = ["lddm", "cdpsm", "round_robin"][int(rng.integers(3))]
    prices = tuple(rng.integers(1, 21, size=8).astype(float))
    gen = WorkloadGenerator(
        traffic=YoutubeTrafficModel(base_rate=count / 2.0, amplitude=0.0,
                                    period=1000.0),
        clients=ClientPopulation.uniform(n_clients),
        app=app)
    trace = gen.generate(rng, count=count)
    cfg = RuntimeConfig(algorithm=algo, prices=prices,
                        batch_capacity_fraction=0.35)
    system = EDRSystem(trace, cfg)
    return trace, system, system.run(app=app.name)


@pytest.mark.parametrize("seed", range(10))
def test_property_runtime_invariants(seed):
    trace, system, res = random_run(seed)

    # 1. Conservation: every requested MB was delivered.
    assert res.extras["delivered_mb"] == pytest.approx(trace.total_mb(),
                                                       rel=1e-9)
    # 2. Every request got exactly one response.
    assert len(res.response_times) >= len(trace)  # retries may add more
    assert system.stats.pending == 0
    # 3. Response times are positive and precede the makespan.
    assert all(0 < t <= res.makespan for t in res.response_times)
    # 4. Energy is within the physical envelope: every replica's
    #    busy-window energy is bounded by peak power x window.
    for i, site in enumerate(system.sites):
        window = res.extras["busy_end"][site.name]
        peak = system.config.power_model.peak_w
        assert res.joules_by_replica[i] <= peak * window + 1e-6
        assert res.joules_by_replica[i] >= 0.0
    # 5. Cents follow from joules at the site prices exactly.
    expected_cents = res.joules_by_replica / JOULES_PER_KWH \
        * np.asarray(system.config.prices)
    assert np.allclose(res.cents_by_replica, expected_cents, rtol=1e-9)
    # 6. Busy windows never exceed the makespan.
    assert all(0.0 <= w <= res.makespan + 1e-9
               for w in res.extras["busy_end"].values())
    # 7. No flows left running.
    assert len(system.flows.active) == 0


@pytest.mark.parametrize("seed", [3, 4])
def test_property_wall_clock_dominates_window_energy(seed):
    _, system, res = random_run(seed)
    wall = res.extras["wall_clock_joules"]
    assert np.all(wall + 1e-9 >= res.joules_by_replica)

"""Runtime test on a geo topology where the latency bound actually binds.

The paper's testbed is a LAN (every pair eligible); its target deployment
is geo-distributed, where the ``l[c,n] <= T`` constraint removes pairs.
This verifies the runtime honors the mask end-to-end: a replica too far
from every client never serves a byte, yet everything is delivered.
"""

import pytest

from repro.edr.system import EDRSystem, RuntimeConfig
from repro.net.topology import Topology
from repro.util.rng import make_rng
from repro.workload.apps import FILE_SERVICE
from repro.workload.clients import ClientPopulation
from repro.workload.generator import WorkloadGenerator
from repro.workload.youtube import YoutubeTrafficModel


def geo_system(algorithm: str):
    """6 clients + 8 replicas; replica8 is placed far beyond T."""
    n_rep, n_cli = 8, 6
    replicas = [f"replica{i + 1}" for i in range(n_rep)]
    clients = [f"client{i}" for i in range(n_cli)]
    positions = {}
    rng = make_rng(0)
    for name in replicas[:-1] + clients:
        positions[name] = tuple(rng.uniform(0, 1.0, size=2))
    positions["replica8"] = (100.0, 100.0)  # unreachable within T
    topo = Topology.geo(replicas + clients, positions,
                        seconds_per_unit=0.001, base_latency=0.0001,
                        capacity=100.0)
    gen = WorkloadGenerator(
        traffic=YoutubeTrafficModel(base_rate=10.0, amplitude=0.0,
                                    period=1000.0),
        clients=ClientPopulation(clients),
        app=FILE_SERVICE)
    trace = gen.generate(make_rng(1), count=20)
    cfg = RuntimeConfig(algorithm=algorithm, batch_capacity_fraction=0.35)
    return trace, EDRSystem(trace, cfg, topology=topo)


@pytest.mark.parametrize("algorithm", ["lddm", "round_robin"])
class TestGeoRuntime:
    def test_unreachable_replica_serves_nothing(self, algorithm):
        trace, system = geo_system(algorithm)
        res = system.run(app="dfs")
        transferred = res.extras["transferred_mb"]
        assert transferred.get("replica8", 0.0) == 0.0
        # Everyone else shares the work and all data arrives.
        assert res.extras["delivered_mb"] == pytest.approx(
            trace.total_mb(), rel=1e-9)

    def test_reachable_replicas_do_serve(self, algorithm):
        trace, system = geo_system(algorithm)
        res = system.run(app="dfs")
        served = [r for r, mb in res.extras["transferred_mb"].items()
                  if mb > 0]
        assert len(served) >= 2

"""The composable RuntimeConfig: sub-configs, flat-kwarg deprecation
shim, mirror properties, and from_flat()."""

import dataclasses

import pytest

from repro.edr.coordinator import ShardingConfig
from repro.edr.system import (
    FaultConfig,
    NetConfig,
    RuntimeConfig,
    SolverOptions,
)
from repro.errors import ValidationError


class TestSubConfigs:
    def test_defaults_compose(self):
        cfg = RuntimeConfig()
        assert isinstance(cfg.solver, SolverOptions)
        assert isinstance(cfg.net, NetConfig)
        assert isinstance(cfg.faults, FaultConfig)
        assert cfg.solver.algorithm == "lddm"
        assert cfg.net.bandwidth == 100.0
        assert cfg.faults.heartbeats is False

    def test_explicit_sub_configs(self):
        cfg = RuntimeConfig(
            solver=SolverOptions(algorithm="cdpsm", warm_start=False),
            net=NetConfig(bandwidth=50.0),
            faults=FaultConfig(heartbeats=True, hb_interval=0.1))
        assert cfg.solver.algorithm == "cdpsm"
        assert cfg.net.bandwidth == 50.0
        assert cfg.faults.hb_interval == 0.1

    def test_sub_config_validation_still_fires(self):
        with pytest.raises(ValidationError):
            SolverOptions(algorithm="magic")
        with pytest.raises(ValidationError):
            NetConfig(flow_kernel="quantum")
        with pytest.raises(ValidationError):
            FaultConfig(standby_after=-1.0)

    def test_sharding_requires_aggregate_lddm(self):
        with pytest.raises(ValidationError):
            SolverOptions(algorithm="cdpsm",
                          sharding=ShardingConfig(n_shards=2))


class TestMirrorProperties:
    """Flat attribute access keeps working — it reads the sub-configs."""

    def test_read_through(self):
        cfg = RuntimeConfig(solver=SolverOptions(algorithm="cdpsm"))
        assert cfg.algorithm == "cdpsm"
        assert cfg.bandwidth == cfg.net.bandwidth
        assert cfg.hb_timeout == cfg.faults.hb_timeout

    def test_write_through(self):
        cfg = RuntimeConfig()
        cfg.bandwidth = 73.0
        assert cfg.net.bandwidth == 73.0

    def test_every_sub_config_field_is_mirrored(self):
        cfg = RuntimeConfig()
        for sub_name, sub_cls in (("solver", SolverOptions),
                                  ("net", NetConfig),
                                  ("faults", FaultConfig)):
            for f in dataclasses.fields(sub_cls):
                assert getattr(cfg, f.name) == \
                    getattr(getattr(cfg, sub_name), f.name)


class TestFlatKwargShim:
    def test_flat_kwargs_warn_and_land_in_sub_configs(self):
        with pytest.warns(DeprecationWarning, match="algorithm"):
            cfg = RuntimeConfig(algorithm="cdpsm", bandwidth=42.0)
        assert cfg.solver.algorithm == "cdpsm"
        assert cfg.net.bandwidth == 42.0

    def test_sub_config_construction_does_not_warn(self, recwarn):
        RuntimeConfig(solver=SolverOptions(algorithm="cdpsm"))
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_from_flat_is_silent(self, recwarn):
        cfg = RuntimeConfig.from_flat(algorithm="cdpsm", heartbeats=True)
        assert cfg.solver.algorithm == "cdpsm"
        assert cfg.faults.heartbeats is True
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_from_flat_overrides_explicit_sub_config(self):
        cfg = RuntimeConfig.from_flat(
            solver=SolverOptions(algorithm="cdpsm", warm_start=False),
            algorithm="lddm")
        assert cfg.solver.algorithm == "lddm"
        assert cfg.solver.warm_start is False  # untouched field survives

    def test_unknown_kwarg_is_a_type_error(self):
        with pytest.raises(TypeError, match="unexpected"):
            RuntimeConfig(not_a_field=1)

    def test_top_level_fields_do_not_warn(self, recwarn):
        RuntimeConfig(prices=(1, 2, 3), poll_interval=0.05)
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]


class TestCrossFieldValidation:
    def test_weighted_needs_per_replica_weights(self):
        with pytest.raises(ValidationError):
            RuntimeConfig(prices=(1, 2, 3),
                          solver=SolverOptions(algorithm="weighted",
                                               weights=(1.0, 2.0)))

    def test_bandwidths_must_match_replica_count(self):
        with pytest.raises(ValidationError):
            RuntimeConfig(prices=(1, 2, 3),
                          net=NetConfig(bandwidths=(100.0, 50.0)))

    def test_replica_bandwidths_helper(self):
        cfg = RuntimeConfig(prices=(1, 2),
                            net=NetConfig(bandwidths=(10.0, 20.0)))
        assert tuple(cfg.replica_bandwidths()) == (10.0, 20.0)

"""Coalesced vs per-request data plane: exact runtime parity.

Epoch coalescing plus the vectorized kernel must reproduce the legacy
per-request scalar path to numerical exactness — same per-replica cost,
same response times, same makespan, same delivery and retry accounting —
because weighted max-min fairness makes the aggregate flow's internal
requests drain at exactly the instants their separate flows would have.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.edr.system import EDRSystem, RuntimeConfig
from repro.workload import FILE_SERVICE, VIDEO_STREAMING

from tests.edr.conftest import burst_trace

PAIR = ((True, "vector"), (False, "scalar"))


def _run(trace, coalesce, kernel, crash=None, restore=None, **kwargs):
    cfg = RuntimeConfig(coalesce=coalesce, flow_kernel=kernel, **kwargs)
    system = EDRSystem(trace, cfg)
    if crash is not None:
        system.crash_replica(*crash)
    if restore is not None:
        system.restore_replica(*restore)
    return system.run(app="test")


def _assert_parity(a, b):
    np.testing.assert_allclose(a.cents_by_replica, b.cents_by_replica,
                               rtol=0, atol=1e-9)
    np.testing.assert_allclose(a.joules_by_replica, b.joules_by_replica,
                               rtol=0, atol=1e-6)
    assert a.makespan == pytest.approx(b.makespan, abs=1e-9)
    assert len(a.response_times) == len(b.response_times)
    np.testing.assert_allclose(sorted(a.response_times),
                               sorted(b.response_times), rtol=0, atol=1e-9)
    assert a.extras["retries"] == b.extras["retries"]
    assert a.extras["delivered_mb"] == pytest.approx(
        b.extras["delivered_mb"], abs=1e-6)
    assert a.extras["batches"] == b.extras["batches"]


class TestCoalescedParity:
    @pytest.mark.parametrize("algorithm", ["lddm", "round_robin"])
    def test_small_burst_parity(self, algorithm):
        # Dense enough that several requests land on the same
        # (replica, client) pair within one epoch, so the coalesced
        # path actually aggregates.
        trace = burst_trace(FILE_SERVICE, count=48, n_clients=8, rate=80.0)
        new = _run(trace, True, "vector", algorithm=algorithm)
        old = _run(trace, False, "scalar", algorithm=algorithm)
        _assert_parity(new, old)
        if algorithm == "lddm":
            # Round-robin hands each request whole to one replica, so
            # epochs rarely repeat a (replica, client) pair; only the
            # share-splitting scheduler reliably produces aggregates.
            assert new.extras["flows_coalesced"] > 0
        assert old.extras["flows_coalesced"] == 0

    def test_video_burst_parity(self):
        trace = burst_trace(VIDEO_STREAMING, count=8, n_clients=4, rate=8.0)
        _assert_parity(_run(trace, True, "vector"),
                       _run(trace, False, "scalar"))

    def test_mid_epoch_crash_parity(self):
        # A replica dies while downloads are in flight: cancelled parts
        # report their exact partial delivery and the retry re-broadcast
        # fires at the same instant on both paths.
        trace = burst_trace(VIDEO_STREAMING, count=10, n_clients=5, rate=10.0)
        crash = ("replica2", 0.3)
        new = _run(trace, True, "vector", crash=crash)
        old = _run(trace, False, "scalar", crash=crash)
        assert new.extras["retries"] > 0, \
            "crash must interrupt at least one download for this test"
        _assert_parity(new, old)

    def test_crash_and_rejoin_parity(self):
        trace = burst_trace(FILE_SERVICE, count=32, n_clients=8, rate=12.0)
        crash, restore = ("replica3", 0.2), ("replica3", 1.2)
        _assert_parity(
            _run(trace, True, "vector", crash=crash, restore=restore),
            _run(trace, False, "scalar", crash=crash, restore=restore))

    def test_mixed_modes_also_agree(self):
        # The two tentpole layers are independent: coalescing with the
        # scalar oracle and per-request flows with the vector kernel both
        # land on the same trajectory.
        trace = burst_trace(FILE_SERVICE, count=16, n_clients=8)
        base = _run(trace, True, "vector")
        _assert_parity(base, _run(trace, True, "scalar"))
        _assert_parity(base, _run(trace, False, "vector"))


@settings(max_examples=8, deadline=None)
@given(st.integers(6, 28), st.integers(2, 8), st.integers(0, 999),
       st.sampled_from([None, 0.15, 0.4]))
def test_property_random_trace_parity(count, n_clients, seed, crash_at):
    trace = burst_trace(FILE_SERVICE, count=count, n_clients=n_clients,
                        seed=seed)
    crash = ("replica2", crash_at) if crash_at is not None else None
    new = _run(trace, True, "vector", crash=crash)
    old = _run(trace, False, "scalar", crash=crash)
    _assert_parity(new, old)

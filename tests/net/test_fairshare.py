"""Vectorized weighted max-min kernel vs the scalar oracle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net.fairshare import fair_share_rates
from repro.net.flows import Flow, max_min_fair_rates
from repro.sim.engine import Simulator


def _oracle(src, dst, weights, capacities):
    """Scalar oracle rates for the kernel's array inputs."""
    sim = Simulator()
    nodes = [f"n{i}" for i in range(len(capacities))]
    flows = []
    for s, d, w in zip(src, dst, weights):
        f = Flow(sim, nodes[s], nodes[d], 1.0, weight=w)
        flows.append(f)
    caps = {n: c for n, c in zip(nodes, capacities)}
    rates = max_min_fair_rates(flows, caps)
    return np.array([rates[f] for f in flows])


class TestKernelBasics:
    def test_empty(self):
        rates = fair_share_rates([], [], [], np.array([10.0]))
        assert rates.size == 0

    def test_single_flow_full_capacity(self):
        rates = fair_share_rates([0], [1], [1.0], np.array([100.0, 100.0]))
        assert rates[0] == pytest.approx(100.0)

    def test_bottleneck_then_leftover(self):
        # Node 1 is tight; the 0->2 flow picks up the leftover at node 0.
        rates = fair_share_rates([0, 0], [1, 2], [1.0, 1.0],
                                 np.array([100.0, 20.0, 100.0]))
        assert rates[0] == pytest.approx(20.0)
        assert rates[1] == pytest.approx(80.0)

    def test_weighted_flow_equals_unit_bundle(self):
        # One weight-3 flow next to a unit flow on a shared node gets
        # exactly what 3 unit flows would get in total.
        caps = np.array([100.0, 100.0, 100.0])
        agg = fair_share_rates([0, 0], [1, 2], [3.0, 1.0], caps)
        sep = fair_share_rates([0, 0, 0, 0], [1, 1, 1, 2],
                               [1.0, 1.0, 1.0, 1.0], caps)
        assert agg[0] == pytest.approx(sep[:3].sum(), abs=1e-9)
        assert agg[1] == pytest.approx(sep[3], abs=1e-9)

    def test_zero_weight_flow_gets_zero_and_consumes_nothing(self):
        rates = fair_share_rates([0, 0], [1, 1], [0.0, 1.0],
                                 np.array([100.0, 40.0]))
        assert rates[0] == 0.0
        assert rates[1] == pytest.approx(40.0)

    def test_crashed_endpoint_zero_capacity(self):
        # A crashed node is modeled as zero capacity: flows touching it
        # freeze at rate 0 and release nothing anywhere else.
        rates = fair_share_rates([0, 1], [2, 2], [1.0, 1.0],
                                 np.array([0.0, 100.0, 100.0]))
        assert rates[0] == 0.0
        assert rates[1] == pytest.approx(100.0)


@st.composite
def _flow_sets(draw):
    n_nodes = draw(st.integers(2, 8))
    n_flows = draw(st.integers(1, 24))
    caps = draw(st.lists(
        st.one_of(st.floats(0.5, 500.0), st.just(0.0)),  # 0.0 = crashed
        min_size=n_nodes, max_size=n_nodes))
    flows = []
    for _ in range(n_flows):
        s = draw(st.integers(0, n_nodes - 1))
        d = draw(st.integers(0, n_nodes - 1).filter(lambda x, s=s: x != s))
        w = draw(st.one_of(st.floats(0.1, 12.0), st.just(0.0),
                           st.integers(1, 6).map(float)))
        flows.append((s, d, w))
    return caps, flows


@settings(max_examples=120, deadline=None)
@given(_flow_sets())
def test_property_kernel_matches_scalar_oracle(case):
    caps, spec = case
    src = [s for s, _, _ in spec]
    dst = [d for _, d, _ in spec]
    w = [x for _, _, x in spec]
    got = fair_share_rates(src, dst, w, np.array(caps))
    want = _oracle(src, dst, w, caps)
    np.testing.assert_allclose(got, want, rtol=0, atol=1e-9)


@settings(max_examples=60, deadline=None)
@given(_flow_sets())
def test_property_no_node_over_capacity(case):
    caps, spec = case
    src = np.array([s for s, _, _ in spec])
    dst = np.array([d for _, d, _ in spec])
    w = [x for _, _, x in spec]
    rates = fair_share_rates(src, dst, w, np.array(caps))
    assert (rates >= -1e-9).all()
    for node, cap in enumerate(caps):
        total = rates[(src == node) | (dst == node)].sum()
        assert total <= cap * (1 + 1e-9) + 1e-6


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 12), st.floats(1.0, 300.0))
def test_property_equal_weights_equal_rates(n_flows, cap):
    rates = fair_share_rates([0] * n_flows, [1] * n_flows, [1.0] * n_flows,
                             np.array([cap, cap]))
    assert np.allclose(rates, rates[0])
    assert rates.sum() == pytest.approx(cap)

"""Tests for crash-fault injection."""

import pytest

from repro.errors import SimulationError
from repro.net.faults import FaultInjector
from repro.net.flows import FlowManager
from repro.net.topology import Topology
from repro.net.transport import Network
from repro.sim.engine import Simulator
from repro.sim.process import Interrupt


def setup():
    sim = Simulator()
    topo = Topology.lan(["a", "b", "c"], latency=0.001, capacity=10.0)
    net = Network(sim, topo)
    fm = FlowManager(sim, topo)
    return sim, net, fm, FaultInjector(sim, net, fm)


class TestCrash:
    def test_crash_drops_messages_and_flows(self):
        sim, net, fm, inj = setup()
        flow = fm.transfer("a", "b", 100.0)
        inj.crash_at(1.0, "b")

        def sender(sim):
            yield sim.timeout(2.0)
            net.endpoint("a").send("b", "m", "X")

        sim.process(sender(sim))
        sim.run()
        assert flow.cancelled
        assert net.messages_delivered == 0

    def test_crash_interrupts_registered_process(self):
        sim, net, fm, inj = setup()
        states = []

        def server(sim):
            try:
                yield sim.timeout(100)
                states.append("finished")
            except Interrupt as exc:
                states.append(f"killed:{exc.cause}")

        proc = sim.process(server(sim))
        inj.register_process("b", proc)
        inj.crash_at(3.0, "b")
        sim.run()
        assert states == ["killed:crash:b"]

    def test_double_crash_rejected(self):
        sim, net, fm, inj = setup()
        inj.crash("b")
        with pytest.raises(SimulationError):
            inj.crash("b")

    def test_restore_requires_crashed(self):
        sim, net, fm, inj = setup()
        with pytest.raises(SimulationError):
            inj.restore("b")

    def test_crash_restore_cycle(self):
        sim, net, fm, inj = setup()
        inj.crash("b")
        inj.restore("b")
        net.endpoint("a").send("b", "m", "X")
        sim.run()
        assert net.messages_delivered == 1

    def test_crash_log(self):
        sim, net, fm, inj = setup()
        inj.crash_at(1.0, "c")
        inj.restore_at(2.0, "c")
        sim.run()
        assert inj.crash_log == [(1.0, "c", "crash"), (2.0, "c", "restore")]

    def test_crash_without_flowmanager(self):
        sim = Simulator()
        topo = Topology.lan(["a", "b"])
        net = Network(sim, topo)
        inj = FaultInjector(sim, net, flows=None)
        inj.crash("a")
        assert net.is_crashed("a")

    def test_restore_fires_on_restore_hook(self):
        sim = Simulator()
        topo = Topology.lan(["a", "b"])
        net = Network(sim, topo)
        restored = []
        inj = FaultInjector(sim, net, on_restore=restored.append)
        inj.crash("a")
        assert restored == []
        inj.restore("a")
        assert restored == ["a"]


class TestLinkCuts:
    def test_cut_link_is_directional(self):
        sim, net, fm, inj = setup()
        inj.cut_link("a", "b")
        net.endpoint("a").send("b", "m", "X")   # cut direction: dropped
        net.endpoint("b").send("a", "m", "Y")   # reverse: delivered
        net.endpoint("a").send("c", "m", "Z")   # other links: delivered
        sim.run()
        assert net.messages_delivered == 2
        assert net.is_link_cut("a", "b")
        assert not net.is_link_cut("b", "a")

    def test_heal_link_restores_delivery(self):
        sim, net, fm, inj = setup()
        inj.cut_link("a", "b")
        net.endpoint("a").send("b", "m", "X")
        inj.heal_link("a", "b")
        net.endpoint("a").send("b", "m", "X")
        sim.run()
        assert net.messages_delivered == 1

    def test_cut_and_heal_logged(self):
        sim, net, fm, inj = setup()
        inj.cut_link("a", "b")
        inj.heal_link("a", "b")
        assert inj.crash_log == [(0.0, "a->b", "cut"), (0.0, "a->b", "heal")]

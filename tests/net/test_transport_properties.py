"""Ordering and determinism properties of the transport."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.net.topology import Topology
from repro.net.transport import Network
from repro.sim.engine import Simulator


def build(latency=0.001):
    sim = Simulator()
    topo = Topology.lan(["a", "b", "c"], latency=latency, capacity=100.0)
    return sim, Network(sim, topo)


class TestOrdering:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 30))
    def test_property_equal_size_messages_fifo_per_pair(self, n):
        """Same-size messages between one pair arrive in send order."""
        sim, net = build()
        ep = net.endpoint("a")
        for i in range(n):
            ep.send("b", "main", "MSG", payload=i)
        got = []

        def rx(sim):
            for _ in range(n):
                msg = yield net.endpoint("b").recv("main")
                got.append(msg.payload)

        sim.process(rx(sim))
        sim.run()
        assert got == list(range(n))

    def test_smaller_message_can_overtake(self):
        """A tiny message sent later may arrive before a huge one —
        transit time includes serialization, as on a real link."""
        sim, net = build(latency=0.0)
        ep = net.endpoint("a")
        ep.send("b", "main", "BIG", payload="big", size=10.0)   # 0.1 s
        ep.send("b", "main", "SMALL", payload="small", size=1e-4)
        got = []

        def rx(sim):
            for _ in range(2):
                msg = yield net.endpoint("b").recv("main")
                got.append(msg.payload)

        sim.process(rx(sim))
        sim.run()
        assert got == ["small", "big"]

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10000))
    def test_property_delivery_is_deterministic(self, seed):
        rng = np.random.default_rng(seed)
        plan = [(["a", "b", "c"][int(rng.integers(3))],
                 ["a", "b", "c"][int(rng.integers(3))],
                 float(rng.uniform(1e-5, 0.1)))
                for _ in range(15)]

        def run_once():
            sim, net = build()
            arrivals = []
            for src, dst, size in plan:
                if src == dst:
                    continue
                net.endpoint(src).send(dst, "m", "X", size=size)
            # Drain all deliveries, recording (time, dst, uid-free info).
            sim.run()
            for node in ("a", "b", "c"):
                box = net.mailbox(node, "m")
                while True:
                    item = box.try_get()
                    if item is None:
                        break
                    arrivals.append((node, item.src, item.size))
            return arrivals, net.messages_delivered

        first = run_once()
        second = run_once()
        assert first == second

"""Tests for the control-plane message transport."""

import pytest

from repro.errors import ValidationError
from repro.net.message import Message
from repro.net.topology import Topology
from repro.net.transport import Network
from repro.sim.engine import Simulator


def make_net(latency=0.001, capacity=100.0, nodes=("a", "b", "c")):
    sim = Simulator()
    topo = Topology.lan(list(nodes), latency=latency, capacity=capacity)
    return sim, Network(sim, topo)


class TestMessage:
    def test_uid_monotone(self):
        m1 = Message("a", "b", "p", "K")
        m2 = Message("a", "b", "p", "K")
        assert m2.uid > m1.uid

    def test_reply_to_swaps_endpoints(self):
        m = Message("a", "b", "client", "REQUEST")
        r = m.reply_to("ACK", {"x": 1})
        assert (r.src, r.dst, r.port, r.kind) == ("b", "a", "client", "ACK")
        assert r.payload == {"x": 1}

    def test_reply_to_custom_port(self):
        m = Message("a", "b", "client", "REQUEST")
        assert m.reply_to("ACK", port="other").port == "other"


class TestDelivery:
    def test_latency_plus_serialization(self):
        sim, net = make_net(latency=0.5, capacity=10.0)
        ep_a, ep_b = net.endpoint("a"), net.endpoint("b")
        got = []

        def receiver(sim):
            msg = yield ep_b.recv("main")
            got.append((sim.now, msg.kind))

        sim.process(receiver(sim))
        ep_a.send("b", "main", "PING", size=1.0)  # 1 MB over 10 MB/s = 0.1 s
        sim.run()
        assert got == [(0.6, "PING")]

    def test_send_to_self_rejected(self):
        sim, net = make_net()
        with pytest.raises(ValidationError):
            net.endpoint("a").send("a", "main", "X")

    def test_unknown_endpoint_rejected(self):
        sim, net = make_net()
        with pytest.raises(ValidationError):
            net.endpoint("nope")

    def test_ports_are_demultiplexed(self):
        sim, net = make_net()
        ep_a, ep_b = net.endpoint("a"), net.endpoint("b")
        got = {"client": [], "replica": []}

        def listener(sim, port):
            while True:
                msg = yield ep_b.recv(port)
                got[port].append(msg.kind)
                if msg.kind == "STOP":
                    return

        sim.process(listener(sim, "client"))
        sim.process(listener(sim, "replica"))
        ep_a.send("b", "client", "REQ")
        ep_a.send("b", "replica", "SHARE")
        ep_a.send("b", "client", "STOP")
        ep_a.send("b", "replica", "STOP")
        sim.run()
        assert got == {"client": ["REQ", "STOP"], "replica": ["SHARE", "STOP"]}

    def test_broadcast_excludes_self(self):
        sim, net = make_net()
        ep_a = net.endpoint("a")
        ep_a.broadcast(["a", "b", "c"], "main", "HELLO")
        sim.run()
        assert net.messages_sent == 2
        assert net.mailbox("b", "main").try_get() is not None
        assert net.mailbox("c", "main").try_get() is not None

    def test_counters(self):
        sim, net = make_net()
        net.endpoint("a").send("b", "m", "X", size=0.5)
        sim.run()
        assert net.messages_sent == 1
        assert net.messages_delivered == 1
        assert net.mb_sent == pytest.approx(0.5)
        assert net.sent_by_node["a"] == 1

    def test_pending(self):
        sim, net = make_net()
        ep = net.endpoint("a")
        ep.send("b", "m", "X")
        sim.run()
        assert net.endpoint("b").pending("m") == 1


class TestCrashSemantics:
    def test_crashed_receiver_drops(self):
        sim, net = make_net()
        net.crash("b")
        net.endpoint("a").send("b", "m", "X")
        sim.run()
        assert net.messages_delivered == 0

    def test_crashed_sender_drops(self):
        sim, net = make_net()
        net.crash("a")
        net.endpoint("a").send("b", "m", "X")
        sim.run()
        assert net.messages_delivered == 0

    def test_restore_resumes_delivery(self):
        sim, net = make_net()
        net.crash("b")
        net.restore("b")
        net.endpoint("a").send("b", "m", "X")
        sim.run()
        assert net.messages_delivered == 1

    def test_message_in_flight_when_crash_dropped(self):
        sim, net = make_net(latency=1.0)
        net.endpoint("a").send("b", "m", "X")
        sim.call_at(0.5, lambda: net.crash("b"))
        sim.run()
        assert net.messages_delivered == 0

    def test_is_crashed(self):
        sim, net = make_net()
        assert not net.is_crashed("a")
        net.crash("a")
        assert net.is_crashed("a")

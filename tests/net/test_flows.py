"""Tests for max-min fair bulk flows."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.net.flows import Flow, FlowManager, max_min_fair_rates
from repro.net.topology import Topology
from repro.sim.engine import Simulator


def setup(nodes=("a", "b", "c"), capacity=100.0, latency=0.0):
    sim = Simulator()
    topo = Topology.lan(list(nodes), latency=latency, capacity=capacity)
    return sim, FlowManager(sim, topo)


class TestMaxMinFairRates:
    def _mk(self, sim, src, dst):
        return Flow(sim, src, dst, 1.0)

    def test_single_flow_gets_full_capacity(self):
        sim, fm = setup()
        f = self._mk(sim, "a", "b")
        rates = max_min_fair_rates([f], {"a": 100, "b": 100, "c": 100})
        assert rates[f] == pytest.approx(100)

    def test_two_flows_share_common_node(self):
        sim, _ = setup()
        f1, f2 = self._mk(sim, "a", "b"), self._mk(sim, "a", "c")
        rates = max_min_fair_rates([f1, f2], {"a": 100, "b": 100, "c": 100})
        assert rates[f1] == pytest.approx(50)
        assert rates[f2] == pytest.approx(50)

    def test_bottleneck_then_leftover(self):
        sim, _ = setup()
        # b has low capacity; flow a->c should get the rest of a's capacity.
        f1, f2 = self._mk(sim, "a", "b"), self._mk(sim, "a", "c")
        rates = max_min_fair_rates([f1, f2], {"a": 100, "b": 20, "c": 100})
        assert rates[f1] == pytest.approx(20)
        assert rates[f2] == pytest.approx(80)

    def test_empty(self):
        assert max_min_fair_rates([], {"a": 1}) == {}

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 12), st.integers(2, 6),
           st.floats(1.0, 1000.0))
    def test_property_no_node_over_capacity(self, n_flows, n_nodes, cap):
        sim = Simulator()
        nodes = [f"n{i}" for i in range(n_nodes)]
        flows = []
        for i in range(n_flows):
            src = nodes[i % n_nodes]
            dst = nodes[(i + 1) % n_nodes]
            flows.append(Flow(sim, src, dst, 1.0))
        capacity = {n: cap for n in nodes}
        rates = max_min_fair_rates(flows, capacity)
        assert all(r >= -1e-9 for r in rates.values())
        for node in nodes:
            total = sum(r for f, r in rates.items()
                        if node in (f.src, f.dst))
            assert total <= cap * (1 + 1e-9) + 1e-6

    @settings(max_examples=50, deadline=None)
    @given(st.integers(2, 10))
    def test_property_equal_flows_equal_rates(self, n_flows):
        # n identical flows a->b must split capacity evenly.
        sim = Simulator()
        flows = [Flow(sim, "a", "b", 1.0) for _ in range(n_flows)]
        rates = max_min_fair_rates(flows, {"a": 100, "b": 100})
        values = list(rates.values())
        assert all(v == pytest.approx(values[0]) for v in values)
        assert sum(values) == pytest.approx(100)


class TestFlowManagerCompletion:
    def test_single_transfer_timing(self):
        sim, fm = setup(capacity=10.0)
        flow = fm.transfer("a", "b", 50.0)  # 50 MB over 10 MB/s = 5 s
        sim.run()
        assert flow.completed
        assert flow.finished_at == pytest.approx(5.0)

    def test_zero_size_completes_at_latency(self):
        sim, fm = setup(latency=0.25)
        flow = fm.transfer("a", "b", 0.0)
        sim.run()
        assert flow.completed
        assert flow.finished_at == pytest.approx(0.25)

    def test_concurrent_flows_slow_each_other(self):
        sim, fm = setup(capacity=10.0)
        f1 = fm.transfer("a", "b", 10.0)
        f2 = fm.transfer("a", "c", 10.0)
        sim.run()
        # Each flow runs at 5 MB/s while both active: both end at t=2.
        assert f1.finished_at == pytest.approx(2.0)
        assert f2.finished_at == pytest.approx(2.0)

    def test_staggered_start_rate_change(self):
        sim, fm = setup(capacity=10.0)
        f1 = fm.transfer("a", "b", 10.0)
        holder = {}

        def late(sim):
            yield sim.timeout(0.5)
            holder["f2"] = fm.transfer("a", "c", 5.0)

        sim.process(late(sim))
        sim.run()
        # f1 alone for 0.5 s (moves 5 MB), then shares at 5 MB/s for
        # remaining 5 MB => finishes at 0.5 + 1.0 = 1.5 s.
        assert f1.finished_at == pytest.approx(1.5)
        # f2: 5 MB at 5 MB/s while sharing, finishing at the same instant
        # or after; once f1 done it would speed up, but it is exactly done.
        assert holder["f2"].finished_at == pytest.approx(1.5)

    def test_rate_speeds_up_after_completion(self):
        sim, fm = setup(capacity=10.0)
        f1 = fm.transfer("a", "b", 5.0)
        f2 = fm.transfer("a", "c", 10.0)
        sim.run()
        # Shared 5 MB/s until f1 done at t=1 (f2 moved 5), then f2 at
        # 10 MB/s for remaining 5 => t=1.5.
        assert f1.finished_at == pytest.approx(1.0)
        assert f2.finished_at == pytest.approx(1.5)

    def test_conservation_all_bytes_delivered(self):
        sim, fm = setup(capacity=33.0)
        flows = [fm.transfer("a", "b", 7.0), fm.transfer("b", "c", 11.0),
                 fm.transfer("a", "c", 13.0)]
        sim.run()
        assert all(f.completed for f in flows)
        assert fm.completed_flows == 3
        assert fm.total_mb == pytest.approx(31.0)

    def test_validation(self):
        sim, fm = setup()
        with pytest.raises(ValidationError):
            fm.transfer("a", "a", 1.0)
        with pytest.raises(ValidationError):
            fm.transfer("a", "b", -1.0)
        with pytest.raises(ValidationError):
            fm.transfer("a", "nope", 1.0)


class TestThroughputProbe:
    def test_throughput_while_active(self):
        sim, fm = setup(capacity=10.0)
        fm.transfer("a", "b", 100.0)
        sim.run(until=1.0)
        assert fm.node_throughput("a") == pytest.approx(10.0)
        assert fm.node_throughput("b") == pytest.approx(10.0)
        assert fm.node_throughput("c") == 0.0
        assert fm.utilization("a") == pytest.approx(1.0)

    def test_throughput_zero_when_idle(self):
        sim, fm = setup()
        assert fm.node_throughput("a") == 0.0


class TestCancellation:
    def test_cancel_node_aborts(self):
        sim, fm = setup(capacity=10.0)
        f1 = fm.transfer("a", "b", 100.0)
        f2 = fm.transfer("c", "b", 100.0)

        def killer(sim):
            yield sim.timeout(1.0)
            fm.cancel_node("b")

        sim.process(killer(sim))
        sim.run()
        assert f1.cancelled and f2.cancelled
        assert not f1.completed
        assert f1.finished_at == pytest.approx(1.0)

    def test_cancel_leaves_other_flows(self):
        sim, fm = setup(capacity=10.0)
        f1 = fm.transfer("a", "b", 100.0)
        f2 = fm.transfer("a", "c", 10.0)

        def killer(sim):
            yield sim.timeout(0.1)
            fm.cancel_node("b")

        sim.process(killer(sim))
        sim.run()
        assert f1.cancelled
        assert f2.completed
        # f2 at 5 MB/s for 0.1 s (0.5 MB) then 10 MB/s for 9.5 MB.
        assert f2.finished_at == pytest.approx(0.1 + 9.5 / 10.0)


class TestCrashOracle:
    def test_transfer_from_crashed_node_is_born_cancelled(self):
        sim = Simulator()
        topo = Topology.lan(["a", "b"], latency=0.25, capacity=10.0)
        dead = {"a"}
        fm = FlowManager(sim, topo, crashed=lambda n: n in dead)
        flow = fm.transfer("a", "b", 50.0)
        sim.run()
        assert flow.cancelled
        assert not flow.completed
        # The caller learns after one propagation delay, like a timeout.
        assert flow.finished_at == pytest.approx(0.25)
        # No bytes moved, no throughput registered.
        assert fm.completed_flows == 0

    def test_oracle_checked_at_start_not_construction(self):
        sim = Simulator()
        topo = Topology.lan(["a", "b"], capacity=10.0)
        dead = set()
        fm = FlowManager(sim, topo, crashed=lambda n: n in dead)
        ok = fm.transfer("a", "b", 10.0)
        dead.add("a")  # crashes after this flow started
        late = fm.transfer("a", "b", 10.0)
        sim.run()
        assert ok.completed  # in-flight flow unaffected (cancel_node handles those)
        assert late.cancelled


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["a", "b", "c", "d"]),
                          st.sampled_from(["a", "b", "c", "d"]),
                          st.floats(0.1, 50.0)),
                min_size=1, max_size=10))
def test_property_all_flows_eventually_complete(specs):
    sim = Simulator()
    topo = Topology.lan(["a", "b", "c", "d"], latency=0.001, capacity=25.0)
    fm = FlowManager(sim, topo)
    flows = []
    for src, dst, size in specs:
        if src == dst:
            continue
        flows.append(fm.transfer(src, dst, size))
    sim.run()
    assert all(f.completed for f in flows)
    # Makespan sanity: total bytes / min share rate is a loose upper bound.
    if flows:
        total = sum(f.size for f in flows)
        assert max(f.finished_at for f in flows) <= total / (25.0 / (2 * len(flows))) + 1.0

"""Tests for max-min fair bulk flows."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.net.flows import Flow, FlowManager, max_min_fair_rates
from repro.net.topology import Topology
from repro.sim.engine import Simulator


def setup(nodes=("a", "b", "c"), capacity=100.0, latency=0.0):
    sim = Simulator()
    topo = Topology.lan(list(nodes), latency=latency, capacity=capacity)
    return sim, FlowManager(sim, topo)


class TestMaxMinFairRates:
    def _mk(self, sim, src, dst):
        return Flow(sim, src, dst, 1.0)

    def test_single_flow_gets_full_capacity(self):
        sim, fm = setup()
        f = self._mk(sim, "a", "b")
        rates = max_min_fair_rates([f], {"a": 100, "b": 100, "c": 100})
        assert rates[f] == pytest.approx(100)

    def test_two_flows_share_common_node(self):
        sim, _ = setup()
        f1, f2 = self._mk(sim, "a", "b"), self._mk(sim, "a", "c")
        rates = max_min_fair_rates([f1, f2], {"a": 100, "b": 100, "c": 100})
        assert rates[f1] == pytest.approx(50)
        assert rates[f2] == pytest.approx(50)

    def test_bottleneck_then_leftover(self):
        sim, _ = setup()
        # b has low capacity; flow a->c should get the rest of a's capacity.
        f1, f2 = self._mk(sim, "a", "b"), self._mk(sim, "a", "c")
        rates = max_min_fair_rates([f1, f2], {"a": 100, "b": 20, "c": 100})
        assert rates[f1] == pytest.approx(20)
        assert rates[f2] == pytest.approx(80)

    def test_empty(self):
        assert max_min_fair_rates([], {"a": 1}) == {}

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 12), st.integers(2, 6),
           st.floats(1.0, 1000.0))
    def test_property_no_node_over_capacity(self, n_flows, n_nodes, cap):
        sim = Simulator()
        nodes = [f"n{i}" for i in range(n_nodes)]
        flows = []
        for i in range(n_flows):
            src = nodes[i % n_nodes]
            dst = nodes[(i + 1) % n_nodes]
            flows.append(Flow(sim, src, dst, 1.0))
        capacity = {n: cap for n in nodes}
        rates = max_min_fair_rates(flows, capacity)
        assert all(r >= -1e-9 for r in rates.values())
        for node in nodes:
            total = sum(r for f, r in rates.items()
                        if node in (f.src, f.dst))
            assert total <= cap * (1 + 1e-9) + 1e-6

    @settings(max_examples=50, deadline=None)
    @given(st.integers(2, 10))
    def test_property_equal_flows_equal_rates(self, n_flows):
        # n identical flows a->b must split capacity evenly.
        sim = Simulator()
        flows = [Flow(sim, "a", "b", 1.0) for _ in range(n_flows)]
        rates = max_min_fair_rates(flows, {"a": 100, "b": 100})
        values = list(rates.values())
        assert all(v == pytest.approx(values[0]) for v in values)
        assert sum(values) == pytest.approx(100)


class TestFlowManagerCompletion:
    def test_single_transfer_timing(self):
        sim, fm = setup(capacity=10.0)
        flow = fm.transfer("a", "b", 50.0)  # 50 MB over 10 MB/s = 5 s
        sim.run()
        assert flow.completed
        assert flow.finished_at == pytest.approx(5.0)

    def test_zero_size_completes_at_latency(self):
        sim, fm = setup(latency=0.25)
        flow = fm.transfer("a", "b", 0.0)
        sim.run()
        assert flow.completed
        assert flow.finished_at == pytest.approx(0.25)

    def test_concurrent_flows_slow_each_other(self):
        sim, fm = setup(capacity=10.0)
        f1 = fm.transfer("a", "b", 10.0)
        f2 = fm.transfer("a", "c", 10.0)
        sim.run()
        # Each flow runs at 5 MB/s while both active: both end at t=2.
        assert f1.finished_at == pytest.approx(2.0)
        assert f2.finished_at == pytest.approx(2.0)

    def test_staggered_start_rate_change(self):
        sim, fm = setup(capacity=10.0)
        f1 = fm.transfer("a", "b", 10.0)
        holder = {}

        def late(sim):
            yield sim.timeout(0.5)
            holder["f2"] = fm.transfer("a", "c", 5.0)

        sim.process(late(sim))
        sim.run()
        # f1 alone for 0.5 s (moves 5 MB), then shares at 5 MB/s for
        # remaining 5 MB => finishes at 0.5 + 1.0 = 1.5 s.
        assert f1.finished_at == pytest.approx(1.5)
        # f2: 5 MB at 5 MB/s while sharing, finishing at the same instant
        # or after; once f1 done it would speed up, but it is exactly done.
        assert holder["f2"].finished_at == pytest.approx(1.5)

    def test_rate_speeds_up_after_completion(self):
        sim, fm = setup(capacity=10.0)
        f1 = fm.transfer("a", "b", 5.0)
        f2 = fm.transfer("a", "c", 10.0)
        sim.run()
        # Shared 5 MB/s until f1 done at t=1 (f2 moved 5), then f2 at
        # 10 MB/s for remaining 5 => t=1.5.
        assert f1.finished_at == pytest.approx(1.0)
        assert f2.finished_at == pytest.approx(1.5)

    def test_conservation_all_bytes_delivered(self):
        sim, fm = setup(capacity=33.0)
        flows = [fm.transfer("a", "b", 7.0), fm.transfer("b", "c", 11.0),
                 fm.transfer("a", "c", 13.0)]
        sim.run()
        assert all(f.completed for f in flows)
        assert fm.completed_flows == 3
        assert fm.total_mb == pytest.approx(31.0)

    def test_validation(self):
        sim, fm = setup()
        with pytest.raises(ValidationError):
            fm.transfer("a", "a", 1.0)
        with pytest.raises(ValidationError):
            fm.transfer("a", "b", -1.0)
        with pytest.raises(ValidationError):
            fm.transfer("a", "nope", 1.0)


class TestThroughputProbe:
    def test_throughput_while_active(self):
        sim, fm = setup(capacity=10.0)
        fm.transfer("a", "b", 100.0)
        sim.run(until=1.0)
        assert fm.node_throughput("a") == pytest.approx(10.0)
        assert fm.node_throughput("b") == pytest.approx(10.0)
        assert fm.node_throughput("c") == 0.0
        assert fm.utilization("a") == pytest.approx(1.0)

    def test_throughput_zero_when_idle(self):
        sim, fm = setup()
        assert fm.node_throughput("a") == 0.0


class TestCancellation:
    def test_cancel_node_aborts(self):
        sim, fm = setup(capacity=10.0)
        f1 = fm.transfer("a", "b", 100.0)
        f2 = fm.transfer("c", "b", 100.0)

        def killer(sim):
            yield sim.timeout(1.0)
            fm.cancel_node("b")

        sim.process(killer(sim))
        sim.run()
        assert f1.cancelled and f2.cancelled
        assert not f1.completed
        assert f1.finished_at == pytest.approx(1.0)

    def test_cancel_leaves_other_flows(self):
        sim, fm = setup(capacity=10.0)
        f1 = fm.transfer("a", "b", 100.0)
        f2 = fm.transfer("a", "c", 10.0)

        def killer(sim):
            yield sim.timeout(0.1)
            fm.cancel_node("b")

        sim.process(killer(sim))
        sim.run()
        assert f1.cancelled
        assert f2.completed
        # f2 at 5 MB/s for 0.1 s (0.5 MB) then 10 MB/s for 9.5 MB.
        assert f2.finished_at == pytest.approx(0.1 + 9.5 / 10.0)


class TestCrashOracle:
    def test_transfer_from_crashed_node_is_born_cancelled(self):
        sim = Simulator()
        topo = Topology.lan(["a", "b"], latency=0.25, capacity=10.0)
        dead = {"a"}
        fm = FlowManager(sim, topo, crashed=lambda n: n in dead)
        flow = fm.transfer("a", "b", 50.0)
        sim.run()
        assert flow.cancelled
        assert not flow.completed
        # The caller learns after one propagation delay, like a timeout.
        assert flow.finished_at == pytest.approx(0.25)
        # No bytes moved, no throughput registered.
        assert fm.completed_flows == 0

    def test_oracle_checked_at_start_not_construction(self):
        sim = Simulator()
        topo = Topology.lan(["a", "b"], capacity=10.0)
        dead = set()
        fm = FlowManager(sim, topo, crashed=lambda n: n in dead)
        ok = fm.transfer("a", "b", 10.0)
        dead.add("a")  # crashes after this flow started
        late = fm.transfer("a", "b", 10.0)
        sim.run()
        assert ok.completed  # in-flight flow unaffected (cancel_node handles those)
        assert late.cancelled


class TestAggregateFlow:
    def test_parts_complete_at_separate_flow_instants(self):
        # One weighted aggregate must reproduce the exact completion
        # instants of one flow per part.
        parts = [("u1", 4.0), ("u2", 10.0), ("u3", 7.0)]
        sim_a, fm_a = setup(capacity=10.0)
        resolved = {}
        agg = fm_a.transfer_aggregate("a", "b", parts)
        agg.on_part = lambda uid, size, got, comp: \
            resolved.setdefault(uid, (sim_a.now, size, got, comp))
        sim_a.run()
        sim_b, fm_b = setup(capacity=10.0)
        flows = {uid: fm_b.transfer("a", "b", size) for uid, size in parts}
        sim_b.run()
        for uid, _size in parts:
            assert resolved[uid][0] == pytest.approx(
                flows[uid].finished_at, abs=1e-9)
            assert resolved[uid][3] is True
        assert agg.completed
        assert fm_a.parts_settled == 3
        assert fm_a.parts_coalesced == 2

    def test_weight_decrements_smallest_first(self):
        sim, fm = setup(capacity=10.0)
        agg = fm.transfer_aggregate("a", "b", [("big", 9.0), ("small", 3.0)])
        assert agg.weight == 2.0
        assert agg.parts_live == 2
        # Per-unit rate 5 MB/s: "small" done at t=0.6, then weight 1.
        sim.run(until=1.0)
        assert agg.weight == 1.0
        assert agg.parts_live == 1
        sim.run()
        assert agg.completed
        assert agg.parts_live == 0

    def test_aggregate_coexists_with_plain_flow(self):
        # weight-2 aggregate + unit flow on one NIC: aggregate carries
        # 2/3 of capacity, exactly like two separate unit flows would.
        sim, fm = setup(capacity=9.0)
        agg = fm.transfer_aggregate("a", "b", [("u1", 2.0), ("u2", 2.0)])
        plain = fm.transfer("a", "c", 3.0)
        sim.run(until=0.5)
        assert agg.rate == pytest.approx(6.0)
        assert plain.rate == pytest.approx(3.0)
        sim.run()
        assert agg.completed and plain.completed

    def test_cancel_mid_flight_reports_partial_got(self):
        sim, fm = setup(capacity=10.0)
        resolved = {}
        agg = fm.transfer_aggregate("a", "b", [("u1", 4.0), ("u2", 12.0)])
        agg.on_part = lambda uid, size, got, comp: \
            resolved.setdefault(uid, (sim.now, got, comp))

        def killer(sim):
            yield sim.timeout(1.0)
            fm.cancel_node("a")

        sim.process(killer(sim))
        sim.run()
        # Per-unit rate 5 MB/s: each part delivered 5 MB-per-unit... but
        # u1 (4 MB) completed at t=0.8; u2 got 4 + 1*10 MB/s... per-unit
        # delivery to u2: 4 MB by t=0.8 (shared), then alone at 10 MB/s
        # for 0.2 s => 6 MB when the crash lands.
        assert resolved["u1"] == (pytest.approx(0.8), pytest.approx(4.0), True)
        t, got, comp = resolved["u2"]
        assert t == pytest.approx(1.0)
        assert got == pytest.approx(6.0)
        assert comp is False
        assert agg.cancelled
        assert agg.remaining == pytest.approx(6.0)

    def test_born_dead_aggregate_resolves_all_parts(self):
        sim = Simulator()
        topo = Topology.lan(["a", "b"], latency=0.25, capacity=10.0)
        dead = {"a"}
        fm = FlowManager(sim, topo, crashed=lambda n: n in dead)
        resolved = []
        agg = fm.transfer_aggregate("a", "b", [("u1", 5.0), ("u2", 3.0)])
        agg.on_part = lambda uid, size, got, comp: \
            resolved.append((uid, got, comp, sim.now))
        sim.run()
        assert agg.cancelled and not agg.completed
        assert sorted(resolved) == [("u1", 0.0, False, 0.25),
                                    ("u2", 0.0, False, 0.25)]

    def test_zero_size_aggregate_completes_at_latency(self):
        sim, fm = setup(latency=0.25)
        resolved = []
        agg = fm.transfer_aggregate("a", "b", [("u1", 0.0)])
        agg.on_part = lambda uid, size, got, comp: \
            resolved.append((uid, comp, sim.now))
        sim.run()
        assert agg.completed
        assert resolved == [("u1", True, 0.25)]

    def test_validation(self):
        sim, fm = setup()
        with pytest.raises(ValidationError):
            fm.transfer_aggregate("a", "a", [("u", 1.0)])
        with pytest.raises(ValidationError):
            fm.transfer_aggregate("a", "b", [])
        with pytest.raises(ValidationError):
            fm.transfer_aggregate("a", "b", [("u", -1.0)])


class TestKernelModes:
    def test_scalar_mode_matches_vector_mode(self):
        finals = []
        for kernel in ("vector", "scalar"):
            sim = Simulator()
            topo = Topology.lan(["a", "b", "c"], capacity=17.0)
            fm = FlowManager(sim, topo, kernel=kernel)
            flows = [fm.transfer("a", "b", 7.0), fm.transfer("a", "c", 11.0),
                     fm.transfer("b", "c", 3.0)]
            sim.run()
            finals.append([f.finished_at for f in flows])
        assert finals[0] == pytest.approx(finals[1], abs=1e-9)

    def test_unknown_kernel_rejected(self):
        sim = Simulator()
        topo = Topology.lan(["a", "b"], capacity=10.0)
        with pytest.raises(ValidationError):
            FlowManager(sim, topo, kernel="magic")

    def test_batched_settling_one_recompute_per_instant(self):
        # n same-size same-pair flows all complete at one instant: the
        # batch settles with a single extra recompute, not one per flow.
        sim, fm = setup(capacity=10.0)
        for _ in range(8):
            fm.transfer("a", "b", 5.0)
        before = fm.recomputes
        sim.run()
        # One timer batch: one recompute after servicing all 8 (plus no
        # further work since the table is empty afterwards).
        assert fm.recomputes - before <= 2
        assert fm.completed_flows == 8


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["a", "b", "c", "d"]),
                          st.sampled_from(["a", "b", "c", "d"]),
                          st.floats(0.1, 50.0)),
                min_size=1, max_size=10))
def test_property_all_flows_eventually_complete(specs):
    sim = Simulator()
    topo = Topology.lan(["a", "b", "c", "d"], latency=0.001, capacity=25.0)
    fm = FlowManager(sim, topo)
    flows = []
    for src, dst, size in specs:
        if src == dst:
            continue
        flows.append(fm.transfer(src, dst, size))
    sim.run()
    assert all(f.completed for f in flows)
    # Makespan sanity: total bytes / min share rate is a loose upper bound.
    if flows:
        total = sum(f.size for f in flows)
        assert max(f.finished_at for f in flows) <= total / (25.0 / (2 * len(flows))) + 1.0

"""Tests for the Topology container and builders."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.net.topology import Topology
from repro.util.rng import make_rng


class TestConstruction:
    def test_basic(self):
        t = Topology(["a", "b"], [[0, 1], [2, 0]], [10, 20])
        assert len(t) == 2
        assert t.latency("a", "b") == 1
        assert t.latency("b", "a") == 2
        assert t.capacity("b") == 20

    def test_duplicate_names(self):
        with pytest.raises(ValidationError):
            Topology(["a", "a"], [[0, 1], [1, 0]], [1, 1])

    def test_nonzero_diagonal(self):
        with pytest.raises(ValidationError):
            Topology(["a", "b"], [[1, 1], [1, 0]], [1, 1])

    def test_negative_latency(self):
        with pytest.raises(ValidationError):
            Topology(["a", "b"], [[0, -1], [1, 0]], [1, 1])

    def test_bad_shapes(self):
        with pytest.raises(ValidationError):
            Topology(["a", "b"], [[0, 1, 2], [1, 0, 2]], [1, 1])
        with pytest.raises(ValidationError):
            Topology(["a", "b"], [[0, 1], [1, 0]], [1, 1, 1])

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValidationError):
            Topology(["a", "b"], [[0, 1], [1, 0]], [1, 0])

    def test_unknown_node(self):
        t = Topology.lan(["a", "b"])
        with pytest.raises(ValidationError):
            t.index("zzz")

    def test_contains(self):
        t = Topology.lan(["a", "b"])
        assert "a" in t and "zzz" not in t

    def test_matrix_read_only(self):
        t = Topology.lan(["a", "b"])
        with pytest.raises(ValueError):
            t.latency_matrix[0, 1] = 5.0


class TestEligibility:
    def test_mask_shape_and_content(self):
        lat = [[0, 0.001, 0.01],
               [0.001, 0, 0.01],
               [0.01, 0.01, 0]]
        t = Topology(["c0", "r0", "r1"], lat, [100, 100, 100])
        mask = t.eligibility(["c0"], ["r0", "r1"], max_latency=0.0018)
        assert mask.shape == (1, 2)
        assert mask.tolist() == [[True, False]]

    def test_negative_bound(self):
        t = Topology.lan(["a", "b"])
        with pytest.raises(ValidationError):
            t.eligibility(["a"], ["b"], -1)

    def test_lan_all_eligible_at_paper_T(self):
        # Paper: T = 1.8 ms, LAN one-way latency 0.5 ms => all eligible.
        names = [f"n{i}" for i in range(9)]
        t = Topology.lan(names)
        mask = t.eligibility(names[:1], names[1:], max_latency=0.0018)
        assert mask.all()


class TestBuilders:
    def test_lan_uniform(self):
        t = Topology.lan(["a", "b", "c"], latency=0.002, capacity=50)
        assert t.latency("a", "c") == 0.002
        assert t.capacity("a") == 50
        assert t.latency("a", "a") == 0

    def test_geo_triangle_inequality_like(self):
        pos = {"a": (0, 0), "b": (3, 4), "c": (0, 8)}
        t = Topology.geo(["a", "b", "c"], pos, seconds_per_unit=0.001,
                         base_latency=0.0)
        assert t.latency("a", "b") == pytest.approx(0.005)
        # Symmetric for geometric builder
        assert t.latency("b", "a") == t.latency("a", "b")

    def test_random_geo_deterministic(self):
        names = ["a", "b", "c", "d"]
        t1 = Topology.random_geo(names, make_rng(5))
        t2 = Topology.random_geo(names, make_rng(5))
        assert np.array_equal(t1.latency_matrix, t2.latency_matrix)

    def test_random_geo_nonnegative(self):
        t = Topology.random_geo(["a", "b", "c"], make_rng(0))
        assert np.all(t.latency_matrix >= 0)

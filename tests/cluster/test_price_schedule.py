"""Tests for time-varying electricity tariffs (extension)."""

import numpy as np
import pytest

from repro.cluster.pricing import JOULES_PER_KWH, PriceSchedule
from repro.errors import ValidationError
from repro.util.timeseries import TimeSeries


class TestConstruction:
    def test_constant(self):
        s = PriceSchedule.constant([1.0, 2.0])
        assert s.n_replicas == 2
        assert s.prices_at(0.0).tolist() == [1.0, 2.0]
        assert s.prices_at(1e9).tolist() == [1.0, 2.0]

    def test_two_phase(self):
        s = PriceSchedule.two_phase([1.0], [5.0], switch_at=10.0)
        assert s.prices_at(9.999)[0] == 1.0
        assert s.prices_at(10.0)[0] == 5.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            PriceSchedule([1.0], [[1.0]])  # must start at 0
        with pytest.raises(ValidationError):
            PriceSchedule([0.0, 0.0], [[1.0], [2.0]])  # not increasing
        with pytest.raises(ValidationError):
            PriceSchedule([0.0], [[0.0]])  # nonpositive price
        with pytest.raises(ValidationError):
            PriceSchedule([0.0, 1.0], [[1.0]])  # row count mismatch
        with pytest.raises(ValidationError):
            PriceSchedule.two_phase([1.0], [2.0], switch_at=0.0)

    def test_negative_time_query(self):
        with pytest.raises(ValidationError):
            PriceSchedule.constant([1.0]).prices_at(-1.0)


class TestCostIntegration:
    def test_constant_power_constant_price(self):
        # 100 W for 1 kWh-hour at 10 c/kWh: cost = 0.1 kWh * 10 = 1 cent.
        s = PriceSchedule.constant([10.0])
        power = TimeSeries([0.0, 36000.0], [100.0, 100.0])
        cost = s.cost_cents(0, power, 36000.0)
        assert cost == pytest.approx(100.0 * 36000.0 / JOULES_PER_KWH * 10.0,
                                     rel=1e-6)

    def test_matches_static_conversion(self):
        s = PriceSchedule.constant([7.0])
        t = np.arange(0, 100, 0.02)
        power = TimeSeries(t, np.full(t.size, 220.0))
        cost = s.cost_cents(0, power, 100.0)
        expected = 220.0 * 100.0 / JOULES_PER_KWH * 7.0
        assert cost == pytest.approx(expected, rel=1e-4)

    def test_two_phase_split(self):
        # 100 W throughout; price 1 for first 50 s, 9 afterwards.
        s = PriceSchedule.two_phase([1.0], [9.0], switch_at=50.0)
        t = np.arange(0, 100.001, 0.5)
        power = TimeSeries(t, np.full(t.size, 100.0))
        cost = s.cost_cents(0, power, 100.0)
        expected = (100.0 * 50.0 * 1.0 + 100.0 * 50.0 * 9.0) / JOULES_PER_KWH
        assert cost == pytest.approx(expected, rel=1e-3)

    def test_t_end_before_first_switch(self):
        s = PriceSchedule.two_phase([2.0], [100.0], switch_at=50.0)
        power = TimeSeries([0.0, 10.0], [50.0, 50.0])
        cost = s.cost_cents(0, power, 10.0)
        assert cost == pytest.approx(50.0 * 10.0 / JOULES_PER_KWH * 2.0,
                                     rel=1e-6)

    def test_zero_window(self):
        s = PriceSchedule.constant([3.0])
        power = TimeSeries([0.0], [100.0])
        assert s.cost_cents(0, power, 0.0) == 0.0

    def test_negative_t_end(self):
        s = PriceSchedule.constant([3.0])
        with pytest.raises(ValidationError):
            s.cost_cents(0, TimeSeries(), -1.0)

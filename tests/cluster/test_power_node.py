"""Tests for the power model and replica node."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.node import NodeActivity, ReplicaNode
from repro.cluster.power import SYSTEMG_POWER_MODEL, PowerModel
from repro.errors import ValidationError


class TestPowerModel:
    def test_idle(self):
        pm = PowerModel(idle_w=215, cpu_w=10, net_w=15, gamma=3)
        assert pm.power(0, 0) == 215

    def test_peak(self):
        pm = PowerModel(idle_w=215, cpu_w=10, net_w=15, gamma=3)
        assert pm.power(1, 1) == 240
        assert pm.peak_w == 240

    def test_network_term_polynomial(self):
        pm = PowerModel(idle_w=0, cpu_w=0, net_w=16, gamma=3)
        assert pm.power(0, 0.5) == pytest.approx(16 * 0.125)

    def test_clipping(self):
        pm = PowerModel()
        assert pm.power(2.0, -1.0) == pm.power(1.0, 0.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            PowerModel(idle_w=-1)
        with pytest.raises(ValidationError):
            PowerModel(gamma=0.5)

    def test_systemg_calibration_matches_figures(self):
        # Figs. 3-4: idle ~215 W, profiles stay within [215, 240].
        pm = SYSTEMG_POWER_MODEL
        assert pm.power(0, 0) == pytest.approx(215.0)
        assert pm.peak_w <= 240.0 + 1e-9

    @given(st.floats(0, 1), st.floats(0, 1), st.floats(0, 1), st.floats(0, 1))
    def test_property_monotone_in_utilization(self, c1, c2, n1, n2):
        pm = SYSTEMG_POWER_MODEL
        lo = pm.power(min(c1, c2), min(n1, n2))
        hi = pm.power(max(c1, c2), max(n1, n2))
        assert lo <= hi + 1e-12


class TestReplicaNode:
    def test_default_idle(self):
        node = ReplicaNode("r0")
        assert node.activity is NodeActivity.IDLE
        assert node.power() > 0

    def test_activity_changes_power(self):
        node = ReplicaNode("r0")
        idle_power = node.power()
        node.set_activity(NodeActivity.SELECTING)
        assert node.power() > idle_power

    def test_off_node_draws_nothing(self):
        node = ReplicaNode("r0")
        node.set_activity(NodeActivity.OFF)
        assert node.power() == 0.0
        assert node.net_utilization == 0.0

    def test_net_probe_feeds_power(self):
        util = {"v": 0.0}
        node = ReplicaNode("r0", net_probe=lambda: util["v"])
        p0 = node.power()
        util["v"] = 1.0
        assert node.power() == pytest.approx(p0 + node.power_model.net_w)

    def test_net_probe_clipped(self):
        node = ReplicaNode("r0", net_probe=lambda: 3.0)
        assert node.net_utilization == 1.0

    def test_cpu_overlay(self):
        node = ReplicaNode("r0")
        base = node.cpu_utilization
        node.set_cpu_overlay(0.10)
        assert node.cpu_utilization == pytest.approx(base + 0.10)

    def test_cpu_overlay_clipped_at_one(self):
        node = ReplicaNode("r0")
        node.set_activity(NodeActivity.SELECTING)
        node.set_cpu_overlay(5.0)
        assert node.cpu_utilization == 1.0

    def test_overlay_validation(self):
        with pytest.raises(ValidationError):
            ReplicaNode("r0").set_cpu_overlay(-0.1)

    def test_activity_validation(self):
        with pytest.raises(ValidationError):
            ReplicaNode("r0").set_activity("idle")

    def test_activity_log(self):
        node = ReplicaNode("r0")
        node.set_activity(NodeActivity.SELECTING, now=1.0)
        node.set_activity(NodeActivity.TRANSFERRING, now=2.0)
        assert node.activity_log == [(1.0, NodeActivity.SELECTING),
                                     (2.0, NodeActivity.TRANSFERRING)]

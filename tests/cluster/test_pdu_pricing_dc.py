"""Tests for PDU sampling, pricing, and datacenter equivalence."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cluster.datacenter import (
    ReplicaSite,
    apply_pue,
    datacenter_energy,
    single_node_energy,
)
from repro.cluster.node import NodeActivity, ReplicaNode
from repro.cluster.pdu import PowerSampler
from repro.cluster.pricing import (
    JOULES_PER_KWH,
    PAPER_PRICES,
    ElectricityPricing,
    random_prices,
)
from repro.errors import ValidationError
from repro.sim.engine import Simulator
from repro.util.rng import make_rng


class TestPowerSampler:
    def test_sampling_rate(self):
        sim = Simulator()
        node = ReplicaNode("r0")
        pdu = PowerSampler(sim, node, rate_hz=50.0)
        sim.run(until=1.0)
        pdu.stop()
        # 50 Hz over [0, 1]: 50 or 51 samples depending on float rounding
        # of the accumulated 0.02 s period at the horizon.
        assert len(pdu.profile) in (50, 51)

    def test_energy_of_constant_power(self):
        sim = Simulator()
        node = ReplicaNode("r0")  # idle: 215.5 W (idle + 5% cpu)
        pdu = PowerSampler(sim, node, rate_hz=10.0)
        sim.run(until=10.0)
        pdu.stop()
        expected = node.power() * 10.0
        assert pdu.energy_joules() == pytest.approx(expected, rel=1e-6)

    def test_average_power(self):
        sim = Simulator()
        node = ReplicaNode("r0")
        pdu = PowerSampler(sim, node, rate_hz=10.0)
        sim.call_at(5.0, lambda: node.set_activity(NodeActivity.SELECTING))
        sim.run(until=10.0)
        pdu.stop()
        idle_p = 215.0 + 10 * 0.05
        select_p = 215.0 + 10 * 0.80
        assert pdu.average_power() == pytest.approx((idle_p + select_p) / 2,
                                                    rel=1e-3)

    def test_bad_rate(self):
        with pytest.raises(ValidationError):
            PowerSampler(Simulator(), ReplicaNode("r0"), rate_hz=0)


class TestPricing:
    def test_paper_prices(self):
        assert PAPER_PRICES == (1, 8, 1, 6, 1, 5, 2, 3)

    def test_random_prices_range(self):
        p = random_prices(make_rng(0), 1000)
        assert p.min() >= 1 and p.max() <= 20
        assert np.all(p == np.floor(p))  # integers, per the paper

    def test_random_prices_deterministic(self):
        assert np.array_equal(random_prices(make_rng(3), 8),
                              random_prices(make_rng(3), 8))

    def test_random_prices_validation(self):
        with pytest.raises(ValidationError):
            random_prices(make_rng(0), 0)
        with pytest.raises(ValidationError):
            random_prices(make_rng(0), 3, lo=5, hi=2)

    def test_cost_conversion(self):
        pricing = ElectricityPricing([10.0])
        # 1 kWh at 10 cents/kWh = 10 cents.
        assert pricing.cost_cents(0, JOULES_PER_KWH) == pytest.approx(10.0)

    def test_cost_vector(self):
        pricing = ElectricityPricing([1.0, 2.0])
        out = pricing.cost_vector([JOULES_PER_KWH, JOULES_PER_KWH])
        assert out.tolist() == [1.0, 2.0]

    def test_cost_vector_validation(self):
        pricing = ElectricityPricing([1.0, 2.0])
        with pytest.raises(ValidationError):
            pricing.cost_vector([1.0])
        with pytest.raises(ValidationError):
            pricing.cost_vector([-1.0, 1.0])

    def test_negative_energy_rejected(self):
        with pytest.raises(ValidationError):
            ElectricityPricing([1.0]).cost_cents(0, -5)

    def test_nonpositive_price_rejected(self):
        with pytest.raises(ValidationError):
            ElectricityPricing([0.0])


class TestDatacenterEquivalence:
    def test_single_node_formula(self):
        assert single_node_energy(2.0, alpha=1.0, beta=0.01, gamma=3) == \
            pytest.approx(2.0 + 0.01 * 8.0)

    def test_negative_workload(self):
        with pytest.raises(ValidationError):
            single_node_energy(-1, 1, 1)

    @given(st.lists(st.floats(0, 10), min_size=1, max_size=10),
           st.floats(0.001, 1.0))
    def test_property_node_energy_dominates_datacenter(self, splits, beta):
        """Eq. 7 vs Eq. 8: E_s >= E_d for the same total workload."""
        total = sum(splits)
        es = single_node_energy(total, alpha=1.0, beta=beta, gamma=3)
        ed = datacenter_energy(splits, alpha=1.0, beta=beta, gamma=3)
        assert es >= ed - 1e-9 * max(1.0, abs(es))

    def test_equivalence_as_beta_vanishes(self):
        """E_s ~= E_d when beta << alpha (the paper's argument)."""
        splits = [1.0, 2.0, 3.0]
        es = single_node_energy(6.0, alpha=1.0, beta=1e-6, gamma=3)
        ed = datacenter_energy(splits, alpha=1.0, beta=1e-6, gamma=3)
        assert es == pytest.approx(ed, rel=1e-4)

    def test_pue(self):
        assert apply_pue(100.0, 1.33) == pytest.approx(133.0)
        with pytest.raises(ValidationError):
            apply_pue(100.0, 0.9)
        with pytest.raises(ValidationError):
            apply_pue(-1.0)


class TestReplicaSite:
    def test_site_cost(self):
        sim = Simulator()
        node = ReplicaNode("r0")
        pdu = PowerSampler(sim, node, rate_hz=10.0)
        site = ReplicaSite(node=node, meter=pdu, price_cents_per_kwh=10.0,
                           index=0)
        sim.run(until=3600.0)  # one hour idle
        pdu.stop()
        joules = site.energy_joules()
        assert joules == pytest.approx(node.power() * 3600.0, rel=1e-6)
        assert site.energy_cost_cents() == pytest.approx(
            joules / JOULES_PER_KWH * 10.0)
        assert site.name == "r0"

    def test_price_validation(self):
        sim = Simulator()
        node = ReplicaNode("r0")
        pdu = PowerSampler(sim, node)
        with pytest.raises(ValidationError):
            ReplicaSite(node=node, meter=pdu, price_cents_per_kwh=0, index=0)

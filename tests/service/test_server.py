"""ControlPlaneServer end-to-end over real HTTP: routing, parity with the
in-process backend, error mapping, Prometheus exposition compliance, and
the close() lifecycle."""

import json
import re
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.edr.coordinator import ShardingConfig
from repro.edr.messages import (
    WIRE_VERSION,
    ErrorResponse,
    SolveRequest,
    WireEvent,
)
from repro.edr.system import SolverOptions
from repro.errors import ServiceError, VersionMismatchError
from repro.service import (
    ControlPlaneServer,
    EDRClient,
    InProcessControlPlane,
    ServiceConfig,
    connect,
    serve,
)

DEMANDS = [40.0, 60.0, 30.0]
PRICES = [1.0, 8.0, 1.0, 6.0]


@pytest.fixture()
def server():
    with serve() as srv:
        yield srv


@pytest.fixture()
def client(server):
    return connect(server.url)


def raw_request(url, method="GET", body=None, headers=None):
    req = urllib.request.Request(url, data=body, method=method,
                                 headers=headers or {})
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.status, resp.read().decode()


class TestEndpoints:
    def test_health(self, client):
        health = client.health()
        assert health.ok
        assert health.wire_version == WIRE_VERSION

    def test_solve_over_http_matches_in_process_exactly(self, client):
        request = SolveRequest(demands=DEMANDS, prices=PRICES,
                               clients=["a", "b", "c"])
        via_http = client.solve(request)
        with InProcessControlPlane() as local:
            direct = local.solve(request)
        # JSON round-trips floats via repr, so parity is exact — not
        # just within the 1e-9 CI gate.
        assert via_http.allocation == direct.allocation
        assert via_http.objective == direct.objective
        assert via_http.duals == direct.duals

    def test_events_over_http(self, client):
        client.solve(demands=DEMANDS, prices=PRICES,
                     clients=["a", "b", "c"])
        resp = client.events([
            WireEvent(kind="arrival", client="d", demand=12.0,
                      eligibility=[True, True, True, True]),
            WireEvent(kind="departure", client="b"),
        ])
        assert resp.applied == 2
        assert resp.clients == ["a", "c", "d"]
        totals = np.asarray(resp.allocation).sum(axis=1)
        np.testing.assert_allclose(totals, [40.0, 30.0, 12.0], atol=1e-8)

    def test_events_accept_core_event_objects(self, client):
        from repro.core.incremental import DemandChange

        client.solve(demands=DEMANDS, prices=PRICES,
                     clients=["a", "b", "c"])
        resp = client.events([DemandChange(client="a", demand=50.0)])
        assert resp.applied == 1

    def test_membership_and_register(self, client):
        ack = client.register("replica-0", capacity_mbps=100.0)
        assert ack.agent == "replica-0"
        assert ack.hb_interval > 0
        hb = client.heartbeat("replica-0", seq=1)
        assert hb.known
        m = client.membership()
        assert m.replicas == ["replica-0"]
        assert m.live == ["replica-0"]

    def test_solve_kwargs_shorthand(self, client):
        resp = client.solve(demands=[10.0, 20.0], prices=[1.0, 2.0])
        assert resp.converged

    def test_request_and_kwargs_are_exclusive(self, client):
        with pytest.raises(ServiceError, match="not both"):
            client.solve(SolveRequest(demands=[1.0], prices=[1.0]),
                         demands=[2.0])


class TestErrorMapping:
    def test_unrouted_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            raw_request(server.url + "/v1/nope")
        assert exc.value.code == 404
        err = ErrorResponse.from_json(exc.value.read())
        assert err.error == "not_found"

    def test_wrong_method_is_405(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            raw_request(server.url + "/v1/solve")  # GET on a POST route
        assert exc.value.code == 405

    def test_malformed_body_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            raw_request(server.url + "/v1/solve", method="POST",
                        body=b"{not json",
                        headers={"Content-Type": "application/json"})
        assert exc.value.code == 400

    def test_validation_failure_is_typed_service_error(self, client):
        with pytest.raises(ServiceError) as exc:
            client.solve(demands=DEMANDS, prices=PRICES,
                         algorithm="simplex")
        assert exc.value.status == 400
        assert exc.value.remote_type == "ValidationError"

    def test_newer_wire_version_is_426(self, server):
        payload = SolveRequest(demands=[1.0], prices=[1.0]).to_dict()
        payload["v"] = WIRE_VERSION + 1
        with pytest.raises(urllib.error.HTTPError) as exc:
            raw_request(server.url + "/v1/solve", method="POST",
                        body=json.dumps(payload).encode(),
                        headers={"Content-Type": "application/json"})
        assert exc.value.code == 426

    def test_client_raises_version_mismatch_on_426(self, server):
        client = EDRClient(server.url)
        payload = SolveRequest(demands=[1.0], prices=[1.0])
        original = payload.to_dict

        def newer():
            d = original()
            d["v"] = WIRE_VERSION + 1
            return d

        payload.to_dict = newer
        with pytest.raises(VersionMismatchError):
            client.solve(payload)

    def test_unreachable_server_raises_service_error(self):
        client = EDRClient("http://127.0.0.1:1", timeout=0.5)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()


#: Prometheus metric-name legality per the text exposition format.
METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


class TestMetricsExposition:
    def scrape(self, client):
        client.solve(demands=DEMANDS, prices=PRICES)
        client.register("r0")
        return client.metrics_text()

    def test_every_family_has_help_and_type(self, client):
        text = self.scrape(client)
        families = {}
        help_seen, type_seen = set(), set()
        for line in text.strip().splitlines():
            if line.startswith("# HELP "):
                help_seen.add(line.split()[2])
            elif line.startswith("# TYPE "):
                parts = line.split()
                type_seen.add(parts[2])
                assert parts[3] in ("counter", "gauge", "histogram",
                                    "summary", "untyped")
            else:
                name = line.split("{")[0].split()[0]
                families.setdefault(name, 0)
        assert families, "scrape produced no samples"
        for name in families:
            assert name in help_seen, f"{name} lacks a # HELP line"
            assert name in type_seen, f"{name} lacks a # TYPE line"

    def test_metric_names_are_legal(self, client):
        for line in self.scrape(client).strip().splitlines():
            if line.startswith("#"):
                name = line.split()[2]
            else:
                name = line.split("{")[0].split()[0]
            assert METRIC_NAME.match(name), f"illegal metric name {name!r}"

    def test_samples_parse_as_floats(self, client):
        for line in self.scrape(client).strip().splitlines():
            if line.startswith("#"):
                continue
            float(line.rsplit(None, 1)[1])  # value column parses

    def test_content_type_is_prometheus_text(self, server, client):
        self.scrape(client)
        req = urllib.request.Request(server.url + "/metrics")
        with urllib.request.urlopen(req, timeout=10) as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")

    def test_help_lines_precede_samples(self, client):
        seen_sample_for = set()
        for line in self.scrape(client).strip().splitlines():
            if line.startswith("# HELP "):
                name = line.split()[2]
                assert name not in seen_sample_for, \
                    f"# HELP for {name} after its samples"
            elif not line.startswith("#"):
                seen_sample_for.add(line.split("{")[0].split()[0])


class TestLifecycle:
    def test_close_shuts_listener_and_plane(self):
        server = serve()
        client = connect(server.url)
        assert client.health().ok
        plane = server.plane
        server.close()
        server.close()  # idempotent
        with pytest.raises(ServiceError):
            EDRClient(server.url, timeout=0.5).health()
        assert plane._closed

    def test_close_releases_sharded_worker_pools(self):
        config = ServiceConfig(solver=SolverOptions(
            sharding=ShardingConfig(n_shards=2, mode="thread")))
        server = serve(config)
        client = connect(server.url)
        mask = [[True] * 4, [True, True, False, True],
                [False, True, True, True], [True, False, True, True]]
        client.solve(demands=[20.0, 15.0, 25.0, 10.0], prices=PRICES,
                     mask=mask, clients=["a", "b", "c", "d"])
        coordinator = server.plane._coordinator
        assert coordinator is not None
        server.close()
        assert coordinator._closed
        assert coordinator._thread_pool is None
        assert coordinator._pool is None

    def test_context_manager_closes(self):
        with serve() as server:
            url = server.url
            assert connect(url).health().ok
        with pytest.raises(ServiceError):
            EDRClient(url, timeout=0.5).health()

    def test_connect_rejects_newer_server(self, server, monkeypatch):
        monkeypatch.setattr(
            "repro.service.client.WIRE_VERSION", WIRE_VERSION - 1)
        client = EDRClient(server.url)
        health = client.health()
        assert health.wire_version == WIRE_VERSION  # server is "newer"
        with pytest.raises(VersionMismatchError):
            connect(server.url)

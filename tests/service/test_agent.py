"""ReplicaAgent: registration, server-dictated heartbeat cadence, the
failure detector seen end-to-end, and clean shutdown."""

import time

import pytest

from repro.edr.system import FaultConfig
from repro.service import ReplicaAgent, ServiceConfig, connect, serve


@pytest.fixture()
def fast_server():
    """A server with a tight cadence so liveness flips within a test."""
    config = ServiceConfig(faults=FaultConfig(hb_interval=0.02,
                                              hb_timeout=0.1))
    with serve(config) as srv:
        yield srv


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestCadenceAdoption:
    def test_agent_adopts_server_cadence(self, fast_server):
        with ReplicaAgent(fast_server.url, "r0") as agent:
            # Cadence comes from the RegisterResponse — i.e. from the
            # server's FaultConfig — never from agent-side constants.
            assert agent.hb_interval == 0.02
            assert agent.hb_timeout == 0.1

    def test_cadence_unset_before_start(self, fast_server):
        agent = ReplicaAgent(fast_server.url, "r0")
        assert agent.hb_interval is None
        assert agent.hb_timeout is None
        agent.start()
        try:
            assert agent.hb_interval is not None
        finally:
            agent.stop()

    def test_distinct_config_distinct_cadence(self):
        config = ServiceConfig(faults=FaultConfig(hb_interval=0.03,
                                                  hb_timeout=0.33))
        with serve(config) as server:
            with ReplicaAgent(server.url, "r0") as agent:
                assert agent.hb_interval == 0.03
                assert agent.hb_timeout == 0.33


class TestLiveness:
    def test_running_agent_stays_live(self, fast_server):
        client = connect(fast_server.url)
        with ReplicaAgent(fast_server.url, "r0", capacity_mbps=100.0) \
                as agent:
            assert wait_until(lambda: agent.beats_sent >= 3)
            membership = client.membership()
            assert membership.live == ["r0"]
            assert membership.heartbeat_age_s["r0"] <= 0.1

    def test_stopped_agent_expires(self, fast_server):
        client = connect(fast_server.url)
        agent = ReplicaAgent(fast_server.url, "r0").start()
        assert wait_until(lambda: agent.beats_sent >= 1)
        agent.stop()
        assert not agent.running
        assert wait_until(lambda: client.membership().live == [])
        # still registered, just dead
        assert client.membership().replicas == ["r0"]

    def test_two_agents_tracked_independently(self, fast_server):
        client = connect(fast_server.url)
        a = ReplicaAgent(fast_server.url, "r0").start()
        b = ReplicaAgent(fast_server.url, "r1").start()
        try:
            assert wait_until(
                lambda: client.membership().live == ["r0", "r1"])
            a.stop()
            assert wait_until(lambda: client.membership().live == ["r1"])
        finally:
            a.stop()
            b.stop()

    def test_agent_reregisters_after_server_forgets(self, fast_server):
        with ReplicaAgent(fast_server.url, "r0") as agent:
            assert wait_until(lambda: agent.beats_sent >= 1)
            # Simulate a plane restart losing the registry.
            fast_server.plane._agents.clear()
            assert wait_until(
                lambda: "r0" in fast_server.plane._agents)
            assert agent.hb_interval == 0.02  # re-adopted, not invented


class TestShutdown:
    def test_stop_is_idempotent(self, fast_server):
        agent = ReplicaAgent(fast_server.url, "r0").start()
        agent.stop()
        agent.stop()
        assert not agent.running

    def test_start_twice_is_single_thread(self, fast_server):
        agent = ReplicaAgent(fast_server.url, "r0").start()
        thread = agent._thread
        agent.start()
        assert agent._thread is thread
        agent.stop()

    def test_agent_survives_server_going_away(self):
        server = serve(ServiceConfig(
            faults=FaultConfig(hb_interval=0.02, hb_timeout=0.1)))
        agent = ReplicaAgent(server.url, "r0").start()
        wait_until(lambda: agent.beats_sent >= 1)
        server.close()
        time.sleep(0.1)  # heartbeats now fail; the loop must not die
        assert agent.running
        assert agent.last_error is not None
        agent.stop()
        assert not agent.running

"""InProcessControlPlane: solves, event streams, the failure detector,
the sharded backend, and the close() lifecycle."""

import numpy as np
import pytest

from repro.core.aggregate import solve_aggregated
from repro.core.params import ProblemData
from repro.core.problem import ReplicaSelectionProblem
from repro.edr.coordinator import ShardingConfig
from repro.edr.messages import (
    EventRequest,
    HeartbeatRequest,
    RegisterRequest,
    SolveRequest,
    WireEvent,
)
from repro.edr.system import FaultConfig, SolverOptions
from repro.errors import ValidationError
from repro.service.plane import ControlPlane, InProcessControlPlane, \
    ServiceConfig

DEMANDS = [40.0, 60.0, 30.0]
PRICES = [1.0, 8.0, 1.0, 6.0]


def make_plane(**cfg):
    return InProcessControlPlane(ServiceConfig(**cfg))


def solve_request(**over):
    fields = dict(demands=DEMANDS, prices=PRICES, clients=["a", "b", "c"])
    fields.update(over)
    return SolveRequest(**fields)


class TestSolve:
    def test_matches_library_solve_exactly(self):
        with make_plane() as plane:
            resp = plane.solve(solve_request())
        problem = ReplicaSelectionProblem(
            ProblemData.paper_defaults(DEMANDS, PRICES))
        direct = solve_aggregated(problem, "lddm")
        np.testing.assert_array_equal(np.asarray(resp.allocation),
                                      direct.allocation)
        assert resp.objective == direct.objective
        assert resp.converged

    def test_reports_runtime_fields(self):
        with make_plane() as plane:
            resp = plane.solve(solve_request())
        assert resp.method == "lddm"
        assert resp.solve_time_s > 0
        assert resp.n_classes == 1
        assert len(resp.duals) == len(DEMANDS)
        assert len(resp.loads) == len(PRICES)

    def test_unknown_algorithm_rejected(self):
        with make_plane() as plane:
            with pytest.raises(ValidationError, match="algorithm"):
                plane.solve(solve_request(algorithm="simplex"))

    def test_client_names_must_cover_rows(self):
        with make_plane() as plane:
            with pytest.raises(ValidationError, match="clients"):
                plane.solve(solve_request(clients=["a"]))
            with pytest.raises(ValidationError, match="unique"):
                plane.solve(solve_request(clients=["a", "a", "b"]))

    def test_solve_without_clients_leaves_events_unarmed(self):
        with make_plane() as plane:
            plane.solve(solve_request(clients=None))
            with pytest.raises(ValidationError, match="event plane"):
                plane.events(EventRequest(events=[]))


class TestEvents:
    def arrival(self, name, demand=10.0, elig=(1, 1, 1, 1)):
        return WireEvent(kind="arrival", client=name, demand=demand,
                         eligibility=list(elig))

    def test_stream_tracks_registry_and_objective(self):
        with make_plane() as plane:
            plane.solve(solve_request())
            resp = plane.events(EventRequest(events=[
                self.arrival("d", 12.0),
                WireEvent(kind="demand_change", client="a", demand=55.0),
                WireEvent(kind="departure", client="b"),
            ]))
        assert resp.applied == 3
        assert resp.clients == ["a", "c", "d"]
        assert resp.objective > 0
        # per-client allocation rows sum to each client's demand
        totals = np.asarray(resp.allocation).sum(axis=1)
        np.testing.assert_allclose(totals, [55.0, 30.0, 12.0], atol=1e-8)
        # loads equal the column sums of the per-client allocation
        np.testing.assert_allclose(
            np.asarray(resp.allocation).sum(axis=0), resp.loads, atol=1e-8)

    def test_duplicate_arrival_rejected(self):
        with make_plane() as plane:
            plane.solve(solve_request())
            with pytest.raises(ValidationError, match="registered"):
                plane.events(EventRequest(events=[self.arrival("a")]))

    def test_unknown_client_rejected(self):
        with make_plane() as plane:
            plane.solve(solve_request())
            with pytest.raises(ValidationError, match="unknown client"):
                plane.events(EventRequest(events=[
                    WireEvent(kind="departure", client="zz")]))

    def test_new_eligibility_class_is_admitted(self):
        with make_plane() as plane:
            plane.solve(solve_request())
            resp = plane.events(EventRequest(events=[
                self.arrival("d", 8.0, elig=(1, 0, 1, 0))]))
        assert resp.applied == 1
        row = np.asarray(resp.allocation)[resp.clients.index("d")]
        assert row[1] == 0.0 and row[3] == 0.0
        assert row.sum() == pytest.approx(8.0)

    def test_long_churn_stream_stays_feasible(self):
        rng = np.random.default_rng(7)
        with make_plane() as plane:
            plane.solve(solve_request())
            live = {"a", "b", "c"}
            events = []
            for i in range(60):
                roll = rng.random()
                if roll < 0.4 or len(live) < 2:
                    name = f"x{i}"
                    live.add(name)
                    events.append(self.arrival(
                        name, float(rng.uniform(1, 20)),
                        elig=tuple(int(b) for b in
                                   rng.random(4) < 0.7) or (1, 1, 1, 1)))
                    if not any(events[-1].eligibility):
                        events[-1].eligibility = [1, 1, 1, 1]
                elif roll < 0.7:
                    victim = sorted(live)[0]
                    live.remove(victim)
                    events.append(WireEvent(kind="departure", client=victim))
                else:
                    target = sorted(live)[-1]
                    events.append(WireEvent(kind="demand_change",
                                            client=target,
                                            demand=float(rng.uniform(1, 25))))
            resp = plane.events(EventRequest(events=events))
        assert resp.applied == 60
        assert sorted(resp.clients) == sorted(live)
        assert max(resp.loads) <= 100.0 + 1e-6


class TestShardedBackend:
    def sharded_plane(self):
        return make_plane(solver=SolverOptions(
            sharding=ShardingConfig(n_shards=2, mode="thread")))

    def varied_request(self):
        # four distinct eligibility classes so two shards get real work
        mask = [[1, 1, 1, 1], [1, 1, 0, 1], [0, 1, 1, 1], [1, 0, 1, 1],
                [1, 1, 1, 0], [1, 1, 1, 1]]
        return SolveRequest(
            demands=[20.0, 15.0, 25.0, 10.0, 18.0, 12.0], prices=PRICES,
            mask=[[bool(b) for b in row] for row in mask],
            clients=["a", "b", "c", "d", "e", "f"])

    def test_events_route_through_coordinator(self):
        with self.sharded_plane() as plane:
            plane.solve(self.varied_request())
            assert plane._coordinator is not None
            resp = plane.events(EventRequest(events=[
                WireEvent(kind="arrival", client="g", demand=9.0,
                          eligibility=[True, True, True, True]),
                WireEvent(kind="departure", client="b"),
            ]))
        assert resp.applied == 2
        assert "g" in resp.clients and "b" not in resp.clients
        totals = np.asarray(resp.allocation).sum(axis=1)
        assert totals.sum() == pytest.approx(sum(resp.loads))

    def test_close_releases_coordinator_pools(self):
        plane = self.sharded_plane()
        plane.solve(self.varied_request())
        coordinator = plane._coordinator
        assert coordinator is not None
        plane.close()
        assert coordinator._closed
        assert coordinator._thread_pool is None
        assert coordinator._pool is None
        assert plane._coordinator is None


class TestFailureDetector:
    def test_liveness_follows_heartbeat_age(self):
        clock = [0.0]
        plane = InProcessControlPlane(
            ServiceConfig(faults=FaultConfig(hb_interval=0.05,
                                             hb_timeout=0.25)),
            clock=lambda: clock[0])
        ack = plane.register(RegisterRequest(agent="r0"))
        assert ack.hb_interval == 0.05
        assert ack.hb_timeout == 0.25
        assert plane.membership().live == ["r0"]
        clock[0] = 0.2
        plane.heartbeat(HeartbeatRequest(agent="r0"))
        clock[0] = 0.4
        m = plane.membership()
        assert m.live == ["r0"]            # age 0.2 <= timeout
        assert m.heartbeat_age_s["r0"] == pytest.approx(0.2)
        clock[0] = 0.7
        m = plane.membership()
        assert m.live == []                # age 0.5 > timeout: dead
        assert m.replicas == ["r0"]        # but still registered
        plane.close()

    def test_unknown_agent_heartbeat_is_flagged(self):
        with make_plane() as plane:
            ack = plane.heartbeat(HeartbeatRequest(agent="ghost"))
        assert ack.known is False

    def test_membership_advertises_cadence(self):
        cfg = ServiceConfig(faults=FaultConfig(hb_interval=0.1,
                                               hb_timeout=0.5))
        with InProcessControlPlane(cfg) as plane:
            m = plane.membership()
        assert m.hb_interval == 0.1
        assert m.hb_timeout == 0.5


class TestLifecycle:
    def test_satisfies_control_plane_protocol(self):
        assert isinstance(InProcessControlPlane(), ControlPlane)

    def test_close_is_idempotent_and_final(self):
        plane = make_plane()
        plane.solve(solve_request())
        plane.close()
        plane.close()
        with pytest.raises(ValidationError, match="closed"):
            plane.solve(solve_request())
        with pytest.raises(ValidationError, match="closed"):
            plane.events(EventRequest(events=[]))

    def test_health_reflects_closed_state(self):
        plane = make_plane()
        assert plane.health().ok
        plane.close()
        assert not plane.health().ok

    def test_metrics_counts_requests(self):
        with make_plane() as plane:
            plane.solve(solve_request())
            plane.membership()
            text = plane.metrics_text()
        assert 'repro_service_requests_total{endpoint="solve"} 1' in text
        assert 'repro_service_requests_total{endpoint="membership"} 1' \
            in text

"""Wire-schema contract tests: round-trip identity, forward/backward
compatibility, and version negotiation — over *every* registered model."""

import json

import numpy as np
import pytest

from repro.core.incremental import ClientArrival, ClientDeparture, \
    DemandChange
from repro.edr.messages import (
    MODEL_TYPES,
    WIRE_VERSION,
    ErrorResponse,
    EventRequest,
    EventResponse,
    HealthResponse,
    HeartbeatRequest,
    HeartbeatResponse,
    MembershipResponse,
    RegisterRequest,
    RegisterResponse,
    SolveRequest,
    SolveResponse,
    WireEvent,
    parse_message,
)
from repro.errors import VersionMismatchError, WireFormatError

#: One representative, fully-populated instance of every wire model.
EXAMPLES = {
    "solve_request": SolveRequest(
        demands=[40.0, 60.0], prices=[1.0, 8.0, 1.0],
        capacities=[100.0, 100.0, 100.0], alpha=1.0, beta=0.01, gamma=3.0,
        mask=[[True, True, False], [True, True, True]],
        algorithm="lddm", aggregate=True, clients=["a", "b"],
        options={"max_iter": 200}),
    "solve_response": SolveResponse(
        allocation=[[10.0, 30.0, 0.0], [20.0, 20.0, 20.0]],
        objective=123.5, iterations=17, converged=True,
        loads=[30.0, 50.0, 20.0], duals=[-1.0, -2.0], method="lddm",
        solve_time_s=0.01, warm_started=False, n_classes=2,
        clients=["a", "b"]),
    "event": WireEvent(kind="arrival", client="c", demand=5.0,
                       eligibility=[True, False, True]),
    "event_request": EventRequest(events=[
        WireEvent(kind="arrival", client="c", demand=5.0,
                  eligibility=[True, False, True]),
        WireEvent(kind="demand_change", client="a", demand=45.0),
        WireEvent(kind="departure", client="b"),
    ]),
    "event_response": EventResponse(
        applied=3, resolves=1, sweeps=4, objective=99.0,
        loads=[10.0, 20.0, 5.0], clients=["a", "c"],
        allocation=[[5.0, 5.0, 0.0], [5.0, 15.0, 5.0]],
        fallback_reasons={"drift": 1}),
    "membership_response": MembershipResponse(
        replicas=["r0", "r1"], live=["r0"],
        heartbeat_age_s={"r0": 0.01, "r1": 1.5},
        hb_interval=0.05, hb_timeout=0.25),
    "register_request": RegisterRequest(agent="r0", capacity_mbps=100.0),
    "register_response": RegisterResponse(
        agent="r0", hb_interval=0.05, hb_timeout=0.25,
        replicas=["r0", "r1"]),
    "heartbeat_request": HeartbeatRequest(agent="r0", seq=7),
    "heartbeat_response": HeartbeatResponse(agent="r0", known=True),
    "health_response": HealthResponse(ok=True, version="1.0.0",
                                      wire_version=WIRE_VERSION),
    "error_response": ErrorResponse(error="ValidationError",
                                    detail="bad demand", status=400),
}


def test_every_registered_model_has_an_example():
    assert set(EXAMPLES) == set(MODEL_TYPES)


@pytest.mark.parametrize("tag", sorted(MODEL_TYPES))
class TestRoundTrip:
    def test_json_round_trip_is_identity(self, tag):
        model = EXAMPLES[tag]
        cls = MODEL_TYPES[tag]
        assert cls.from_json(model.to_json()) == model

    def test_envelope_declares_version_and_type(self, tag):
        payload = json.loads(EXAMPLES[tag].to_json())
        assert payload["v"] == WIRE_VERSION
        assert payload["type"] == tag

    def test_unknown_fields_are_tolerated(self, tag):
        payload = EXAMPLES[tag].to_dict()
        payload["some_future_field"] = {"nested": [1, 2, 3]}
        assert MODEL_TYPES[tag].from_dict(payload) == EXAMPLES[tag]

    def test_newer_version_is_rejected(self, tag):
        payload = EXAMPLES[tag].to_dict()
        payload["v"] = WIRE_VERSION + 1
        with pytest.raises(VersionMismatchError) as exc:
            MODEL_TYPES[tag].from_dict(payload)
        assert exc.value.got == WIRE_VERSION + 1
        assert exc.value.expected == WIRE_VERSION

    @pytest.mark.parametrize("bad", [None, "1", 0, -3, 1.0, True])
    def test_missing_or_malformed_version_is_rejected(self, tag, bad):
        payload = EXAMPLES[tag].to_dict()
        if bad is None:
            del payload["v"]
        else:
            payload["v"] = bad
        with pytest.raises(VersionMismatchError):
            MODEL_TYPES[tag].from_dict(payload)

    def test_parse_message_dispatches_by_tag(self, tag):
        parsed = parse_message(EXAMPLES[tag].to_json())
        assert type(parsed) is MODEL_TYPES[tag]
        assert parsed == EXAMPLES[tag]


class TestValidation:
    def test_missing_required_field_is_rejected(self):
        payload = EXAMPLES["solve_request"].to_dict()
        del payload["demands"]
        with pytest.raises(WireFormatError, match="demands"):
            SolveRequest.from_dict(payload)

    def test_wrong_type_tag_is_rejected(self):
        payload = EXAMPLES["solve_request"].to_dict()
        payload["type"] = "heartbeat_request"
        with pytest.raises(WireFormatError, match="expected"):
            SolveRequest.from_dict(payload)

    def test_non_object_payload_is_rejected(self):
        with pytest.raises(WireFormatError):
            SolveRequest.from_dict([1, 2, 3])

    def test_invalid_json_is_rejected(self):
        with pytest.raises(WireFormatError, match="JSON"):
            SolveRequest.from_json("{not json")

    def test_unknown_message_type_is_rejected(self):
        with pytest.raises(WireFormatError, match="unknown"):
            parse_message(json.dumps({"v": 1, "type": "no_such_model"}))

    def test_numpy_values_encode_to_plain_json(self):
        req = SolveRequest(demands=np.array([40.0, 60.0]),
                           prices=np.array([1.0, 8.0]))
        payload = json.loads(req.to_json())
        assert payload["demands"] == [40.0, 60.0]

    def test_converters_coerce_incoming_values(self):
        payload = {"v": 1, "type": "solve_request",
                   "demands": [40, 60], "prices": [1, 8],
                   "mask": [[1, 0], [1, 1]]}
        req = SolveRequest.from_dict(payload)
        assert req.demands == [40.0, 60.0]
        assert req.mask == [[True, False], [True, True]]


class TestWireEventBridge:
    """WireEvent <-> repro.core.incremental event dataclasses."""

    def test_arrival_round_trips_through_core(self):
        wire = WireEvent(kind="arrival", client="c", demand=5.0,
                         eligibility=[True, False, True])
        core = wire.to_core()
        assert isinstance(core, ClientArrival)
        assert core.demand == 5.0
        assert WireEvent.from_core(core) == wire

    def test_departure_round_trips_through_core(self):
        core = ClientDeparture(client="x")
        wire = WireEvent.from_core(core)
        assert wire.kind == "departure"
        assert isinstance(wire.to_core(), ClientDeparture)

    def test_demand_change_round_trips_through_core(self):
        core = DemandChange(client="x", demand=12.5)
        wire = WireEvent.from_core(core)
        assert wire.to_core() == core

    def test_arrival_without_eligibility_is_rejected(self):
        with pytest.raises(WireFormatError):
            WireEvent(kind="arrival", client="c", demand=5.0).to_core()

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(WireFormatError):
            WireEvent(kind="teleport", client="c").to_core()

    def test_float_values_survive_json_bit_exactly(self):
        demand = 1.0 / 3.0 + 1e-16
        wire = WireEvent(kind="demand_change", client="c", demand=demand)
        back = WireEvent.from_json(wire.to_json())
        assert back.demand == demand

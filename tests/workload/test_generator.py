"""Tests for the end-to-end workload generator."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.util.rng import make_rng
from repro.workload.apps import FILE_SERVICE, VIDEO_STREAMING
from repro.workload.clients import ClientPopulation
from repro.workload.generator import WorkloadGenerator
from repro.workload.youtube import YoutubeTrafficModel


def make_gen(app=VIDEO_STREAMING, base_rate=2.0):
    return WorkloadGenerator(
        traffic=YoutubeTrafficModel(base_rate=base_rate, amplitude=0.6,
                                    period=200.0),
        clients=ClientPopulation.uniform(4),
        app=app,
    )


class TestGenerate:
    def test_window_mode(self):
        trace = make_gen().generate(make_rng(0), 0.0, 100.0)
        assert all(0 <= r.arrival < 100 for r in trace)
        assert all(r.app == "video" for r in trace)
        assert len(trace) > 50  # ~200 expected

    def test_count_mode_exact(self):
        trace = make_gen().generate(make_rng(0), count=48)
        assert len(trace) == 48

    def test_count_mode_small_counts(self):
        for count in (1, 24, 96):
            trace = make_gen().generate(make_rng(1), count=count)
            assert len(trace) == count

    def test_mode_exclusivity(self):
        gen = make_gen()
        with pytest.raises(ValidationError):
            gen.generate(make_rng(0))
        with pytest.raises(ValidationError):
            gen.generate(make_rng(0), 0.0, 10.0, count=5)

    def test_clients_drawn_from_population(self):
        trace = make_gen().generate(make_rng(0), 0.0, 200.0)
        assert set(trace.clients) <= {"client0", "client1", "client2", "client3"}

    def test_sizes_follow_app(self):
        trace = make_gen(app=FILE_SERVICE, base_rate=10).generate(
            make_rng(0), 0.0, 200.0)
        mean = np.mean([r.size_mb for r in trace])
        assert mean == pytest.approx(10.0, rel=0.2)

    def test_deterministic(self):
        a = make_gen().generate(make_rng(5), 0.0, 100.0)
        b = make_gen().generate(make_rng(5), 0.0, 100.0)
        assert len(a) == len(b)
        assert all(x.arrival == y.arrival and x.client == y.client
                   for x, y in zip(a, b))


class TestTraceRoundTrip:
    def test_dump_load_identity(self):
        trace = make_gen().generate(make_rng(0), 0.0, 50.0)
        text = WorkloadGenerator.dump(trace)
        back = WorkloadGenerator.load(text)
        assert len(back) == len(trace)
        for x, y in zip(trace, back):
            assert x == y

    def test_load_rejects_bad_header(self):
        with pytest.raises(ValidationError):
            WorkloadGenerator.load("nope\n1,2,3")

    def test_load_rejects_bad_row(self):
        with pytest.raises(ValidationError):
            WorkloadGenerator.load(
                "client,arrival,size_mb,app,object_id\na,b\n")

"""Tests for trace analysis: the generated workloads exhibit their
configured statistics (closing the loop on the YouTube model)."""

import pytest

from repro.errors import ValidationError
from repro.util.rng import make_rng
from repro.workload.analysis import (
    analyze,
    arrival_rate_series,
    fit_zipf_exponent)
from repro.workload.apps import FILE_SERVICE, VIDEO_STREAMING
from repro.workload.clients import ClientPopulation
from repro.workload.generator import WorkloadGenerator
from repro.workload.requests import Request, RequestTrace
from repro.workload.youtube import YoutubeTrafficModel, ZipfPopularity


def generated_trace(app=FILE_SERVICE, base_rate=20.0, amplitude=0.0,
                    window=100.0, zipf=1.0, seed=0):
    gen = WorkloadGenerator(
        traffic=YoutubeTrafficModel(base_rate=base_rate,
                                    amplitude=amplitude, period=window),
        clients=ClientPopulation.uniform(8),
        app=app,
        popularity=ZipfPopularity(200, zipf))
    return gen.generate(make_rng(seed), 0.0, window)


class TestFitZipf:
    @pytest.mark.parametrize("true_s", [0.0, 0.8, 1.5])
    def test_recovers_exponent(self, true_s):
        z = ZipfPopularity(100, true_s)
        ids = z.sample(make_rng(0), size=20000)
        fitted = fit_zipf_exponent(ids)
        assert fitted == pytest.approx(true_s, abs=0.15)

    def test_empty(self):
        with pytest.raises(ValidationError):
            fit_zipf_exponent([])

    def test_single_object(self):
        assert fit_zipf_exponent([0, 0, 0]) == 0.0


class TestArrivalRate:
    def test_flat_process_flat_series(self):
        trace = generated_trace(base_rate=50.0, amplitude=0.0)
        rates = arrival_rate_series(trace, bins=5)
        assert rates.std() / rates.mean() < 0.35

    def test_diurnal_process_oscillates(self):
        trace = generated_trace(base_rate=50.0, amplitude=0.8)
        rates = arrival_rate_series(trace, bins=10)
        # Peak-to-trough spread far exceeds Poisson noise.
        assert rates.max() > 2.0 * rates.min()

    def test_validation(self):
        with pytest.raises(ValidationError):
            arrival_rate_series(RequestTrace([]))
        trace = generated_trace()
        with pytest.raises(ValidationError):
            arrival_rate_series(trace, bins=0)

    def test_single_instant(self):
        trace = RequestTrace([Request("c", 1.0, 2.0, "dfs"),
                              Request("c", 1.0, 2.0, "dfs")])
        assert arrival_rate_series(trace).tolist() == [2.0]


class TestAnalyze:
    def test_matches_generator_configuration(self):
        trace = generated_trace(app=VIDEO_STREAMING, base_rate=10.0,
                                window=100.0, zipf=1.0, seed=3)
        stats = analyze(trace)
        assert stats.n_requests == len(trace)
        assert stats.mean_size_mb == pytest.approx(100.0, rel=0.15)
        assert stats.mean_rate == pytest.approx(10.0, rel=0.3)
        assert stats.zipf_exponent == pytest.approx(1.0, abs=0.3)
        assert stats.n_clients <= 8

    def test_balance_uniform_clients(self):
        trace = generated_trace(base_rate=100.0, seed=1)
        stats = analyze(trace)
        assert stats.client_balance < 1.5  # near-uniform origination

    def test_empty_trace(self):
        with pytest.raises(ValidationError):
            analyze(RequestTrace([]))

    def test_render(self):
        out = analyze(generated_trace()).render()
        assert "requests=" in out and "zipf~" in out

"""Tests for request records, traces, and application profiles."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ValidationError
from repro.workload.apps import FILE_SERVICE, VIDEO_STREAMING, ApplicationProfile
from repro.workload.requests import Request, RequestTrace
from repro.util.rng import make_rng


class TestRequest:
    def test_valid(self):
        r = Request("c0", 1.0, 100.0, "video", 7)
        assert r.client == "c0" and r.object_id == 7

    def test_negative_arrival(self):
        with pytest.raises(ValidationError):
            Request("c0", -1.0, 1.0, "video")

    def test_nonpositive_size(self):
        with pytest.raises(ValidationError):
            Request("c0", 0.0, 0.0, "video")


class TestRequestTrace:
    def _trace(self):
        return RequestTrace([
            Request("c1", 5.0, 10.0, "dfs"),
            Request("c0", 1.0, 100.0, "video"),
            Request("c0", 3.0, 50.0, "video"),
        ])

    def test_sorted_by_arrival(self):
        t = self._trace()
        assert [r.arrival for r in t] == [1.0, 3.0, 5.0]

    def test_len_getitem(self):
        t = self._trace()
        assert len(t) == 3
        assert t[0].client == "c0"

    def test_clients_sorted_unique(self):
        assert self._trace().clients == ("c0", "c1")

    def test_span(self):
        assert self._trace().span == 4.0
        assert RequestTrace([]).span == 0.0

    def test_total_mb(self):
        assert self._trace().total_mb() == 160.0

    def test_demand_vector(self):
        d = self._trace().demand_vector(["c0", "c1", "c2"])
        assert d.tolist() == [150.0, 10.0, 0.0]

    def test_demand_vector_unknown_client(self):
        with pytest.raises(ValidationError):
            self._trace().demand_vector(["c0"])  # c1 missing

    def test_window(self):
        w = self._trace().window(2.0, 5.0)
        assert len(w) == 1 and w[0].arrival == 3.0

    def test_by_app(self):
        assert len(self._trace().by_app("video")) == 2
        assert len(self._trace().by_app("dfs")) == 1


class TestApplicationProfile:
    def test_paper_sizes(self):
        assert VIDEO_STREAMING.mean_size_mb == 100.0
        assert FILE_SERVICE.mean_size_mb == 10.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            ApplicationProfile("x", 0.0)
        with pytest.raises(ValidationError):
            ApplicationProfile("x", 1.0, size_sigma=-1)

    def test_no_jitter(self):
        app = ApplicationProfile("x", 50.0, size_sigma=0.0)
        assert app.sample_size(make_rng(0)) == 50.0

    def test_jitter_preserves_mean(self):
        rng = make_rng(1)
        sizes = [VIDEO_STREAMING.sample_size(rng) for _ in range(20000)]
        assert np.mean(sizes) == pytest.approx(100.0, rel=0.02)

    @given(st.integers(0, 1000))
    def test_property_sizes_positive(self, seed):
        rng = make_rng(seed)
        assert FILE_SERVICE.sample_size(rng) > 0

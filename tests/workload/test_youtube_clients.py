"""Tests for the YouTube traffic model, Zipf popularity, and clients."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.util.rng import make_rng
from repro.workload.clients import ClientPopulation
from repro.workload.youtube import YoutubeTrafficModel, ZipfPopularity


class TestZipfPopularity:
    def test_pmf_sums_to_one(self):
        z = ZipfPopularity(100, 1.0)
        assert z.pmf.sum() == pytest.approx(1.0)

    def test_pmf_decreasing(self):
        z = ZipfPopularity(50, 1.2)
        assert np.all(np.diff(z.pmf) <= 0)

    def test_exponent_zero_uniform(self):
        z = ZipfPopularity(10, 0.0)
        assert np.allclose(z.pmf, 0.1)

    def test_sample_range(self):
        z = ZipfPopularity(10, 1.0)
        s = z.sample(make_rng(0), size=1000)
        assert s.min() >= 0 and s.max() < 10

    def test_sample_matches_pmf(self):
        z = ZipfPopularity(5, 1.0)
        s = z.sample(make_rng(0), size=100000)
        freq = np.bincount(s, minlength=5) / 100000
        assert np.allclose(freq, z.pmf, atol=0.01)

    def test_validation(self):
        with pytest.raises(ValidationError):
            ZipfPopularity(0)
        with pytest.raises(ValidationError):
            ZipfPopularity(5, -1)


class TestYoutubeTrafficModel:
    def test_rate_oscillates(self):
        m = YoutubeTrafficModel(base_rate=10, amplitude=0.5, period=100)
        assert m.rate(25) == pytest.approx(15.0)  # sin peak
        assert m.rate(75) == pytest.approx(5.0)   # sin trough
        assert m.peak_rate == pytest.approx(15.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            YoutubeTrafficModel(0)
        with pytest.raises(ValidationError):
            YoutubeTrafficModel(1, amplitude=1.0)
        with pytest.raises(ValidationError):
            YoutubeTrafficModel(1, period=0)

    def test_arrivals_sorted_within_window(self):
        m = YoutubeTrafficModel(base_rate=5, amplitude=0.6, period=100)
        t = m.arrivals(make_rng(0), 10, 60)
        assert np.all(np.diff(t) >= 0)
        assert t.min() >= 10 and t.max() < 60

    def test_arrival_count_matches_expectation(self):
        m = YoutubeTrafficModel(base_rate=20, amplitude=0.6, period=50)
        t = m.arrivals(make_rng(1), 0, 500)
        expected = m.expected_count(0, 500)
        # Poisson: sd = sqrt(mean); allow 4 sigma.
        assert abs(len(t) - expected) < 4 * np.sqrt(expected)

    def test_diurnal_shape_observable(self):
        m = YoutubeTrafficModel(base_rate=50, amplitude=0.8, period=100,
                                phase=0.0)
        t = m.arrivals(make_rng(2), 0, 100)
        peak_half = np.sum((t >= 0) & (t < 50))    # sin > 0
        trough_half = np.sum((t >= 50) & (t < 100))  # sin < 0
        assert peak_half > 1.5 * trough_half

    def test_empty_window(self):
        m = YoutubeTrafficModel(base_rate=5)
        assert len(m.arrivals(make_rng(0), 10, 10)) == 0
        with pytest.raises(ValidationError):
            m.arrivals(make_rng(0), 10, 5)

    def test_deterministic(self):
        m = YoutubeTrafficModel(base_rate=5, period=100)
        a = m.arrivals(make_rng(7), 0, 100)
        b = m.arrivals(make_rng(7), 0, 100)
        assert np.array_equal(a, b)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.5, 50), st.floats(0, 0.9), st.floats(10, 1000))
    def test_property_rate_nonnegative(self, base, amp, period):
        m = YoutubeTrafficModel(base, amp, period)
        ts = np.linspace(0, 2 * period, 101)
        assert all(m.rate(t) >= 0 for t in ts)


class TestClientPopulation:
    def test_uniform_builder(self):
        pop = ClientPopulation.uniform(4)
        assert pop.names == ("client0", "client1", "client2", "client3")
        assert np.allclose(pop.probabilities, 0.25)

    def test_weights(self):
        pop = ClientPopulation(["a", "b"], [3.0, 1.0])
        assert pop.probabilities.tolist() == [0.75, 0.25]

    def test_validation(self):
        with pytest.raises(ValidationError):
            ClientPopulation([])
        with pytest.raises(ValidationError):
            ClientPopulation(["a", "a"])
        with pytest.raises(ValidationError):
            ClientPopulation(["a", "b"], [1.0])
        with pytest.raises(ValidationError):
            ClientPopulation(["a", "b"], [1.0, 0.0])

    def test_sample_single(self):
        pop = ClientPopulation(["only"])
        assert pop.sample(make_rng(0)) == "only"

    def test_sample_respects_weights(self):
        pop = ClientPopulation(["hot", "cold"], [9.0, 1.0])
        draws = pop.sample(make_rng(0), size=10000)
        frac_hot = sum(1 for d in draws if d == "hot") / 10000
        assert frac_hot == pytest.approx(0.9, abs=0.02)

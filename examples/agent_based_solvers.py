#!/usr/bin/env python3
"""Fully decentralized solver execution — no coordinator anywhere.

Every replica (and, for LDDM, every client) runs as an independent
simulated process holding only its local state; all coordination happens
through protocol messages with real network latencies.  The result is
numerically identical to the matrix-form solvers — the fidelity proof
behind the experiment harness.

Run:  python examples/agent_based_solvers.py
"""

import numpy as np

from repro.core import ProblemData, ReplicaSelectionProblem, solve_reference
from repro.core.lddm import LddmSolver
from repro.edr.agents import AgentBasedCdpsm, AgentBasedLddm
from repro.net.topology import Topology
from repro.net.transport import Network
from repro.sim.engine import Simulator


def main() -> None:
    data = ProblemData.paper_defaults(
        demands=[35.0, 50.0, 20.0], prices=[2.0, 9.0, 4.0, 1.0])
    problem = ReplicaSelectionProblem(data)
    optimum = solve_reference(problem).objective
    rounds = 40

    # --- LDDM: replicas + clients as message-passing agents -------------
    replicas = [f"replica{i}" for i in range(data.n_replicas)]
    clients = [f"client{i}" for i in range(data.n_clients)]
    sim = Simulator()
    net = Network(sim, Topology.lan(replicas + clients, latency=0.0005))
    agents = AgentBasedLddm(sim, net, data, replicas, clients,
                            rounds=rounds)
    sim.run()
    alloc = problem.repair(agents.allocation())
    print(f"agent-based LDDM : objective {problem.objective(alloc):10.2f} "
          f"(optimum {optimum:.2f})")
    print(f"                   {net.messages_sent} messages over "
          f"{sim.now * 1000:.1f} simulated ms")

    # Identical to the matrix-form solver, iterate for iterate:
    matrix = LddmSolver(problem, max_iter=rounds, tol=0.0,
                        track_objective=False)
    candidate = None
    for _k, candidate, _res in matrix.iterations():
        pass
    diff = float(np.abs(agents.allocation() - candidate).max())
    print(f"                   max |agent - matrix| = {diff:.2e}")

    # --- CDPSM: replicas only -------------------------------------------
    sim2 = Simulator()
    net2 = Network(sim2, Topology.lan(replicas, latency=0.0005))
    cdpsm_agents = AgentBasedCdpsm(sim2, net2, data, replicas,
                                   rounds=rounds)
    sim2.run()
    mean = problem.repair(cdpsm_agents.consensus_mean())
    print(f"agent-based CDPSM: objective {problem.objective(mean):10.2f} "
          f"after {rounds} all-pairs consensus rounds")
    print(f"                   {net2.messages_sent} messages, "
          f"{net2.mb_sent:.2f} MB of estimates exchanged")


if __name__ == "__main__":
    main()

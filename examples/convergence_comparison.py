#!/usr/bin/env python3
"""Fig. 5 reproduction: CDPSM vs LDDM convergence on a 3-replica instance.

Prints the objective-vs-iteration series for both distributed solvers
against the centralized optimum, plus the communication volume each
method needs — the two quantities Sec. III-D compares.

Run:  python examples/convergence_comparison.py
"""

from repro.core import ProblemData, ReplicaSelectionProblem, solve
from repro.experiments import fig5
from repro.obs import TraceRecorder


def main() -> None:
    print(fig5.run(max_iter=200).render())

    # Communication accounting on the same instance, with a telemetry
    # trace capturing both solvers' per-iteration residuals.
    data = ProblemData.paper_defaults(
        demands=[40.0, 55.0, 25.0], prices=[2.0, 9.0, 4.0])
    problem = ReplicaSelectionProblem(data)
    rec = TraceRecorder()
    lddm = solve(problem, "lddm", recorder=rec)
    cdpsm = solve(problem, "cdpsm", recorder=rec)
    print("\ncommunication to convergence:")
    print(f"  LDDM : {lddm.iterations:4d} iterations, "
          f"{lddm.comm_floats:8d} floats moved  (O(|C|·|N|)/iter)")
    print(f"  CDPSM: {cdpsm.iterations:4d} iterations, "
          f"{cdpsm.comm_floats:8d} floats moved  (O(|C|·|N|^3)/iter)")
    print(f"\ntrace captured {len(rec.records)} records; final LDDM "
          f"residual {rec.events_named('lddm.iteration')[-1]['residual']:.2e}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Fig. 9 reproduction (reduced sweep): EDR vs DONAR response times.

Runs both decentralized replica-selection systems on the same
YouTube-patterned request stream at growing request counts and reports
mean response time per request.

Run:  python examples/donar_comparison.py
"""

from repro.experiments import fig9


def main() -> None:
    result = fig9.run(request_counts=(24, 48, 96, 144))
    print(result.render())
    print("\nDONAR is energy-oblivious: EDR matches its speed while also "
          "minimizing the energy cost (Figs. 6-8).")


if __name__ == "__main__":
    main()

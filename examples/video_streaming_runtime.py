#!/usr/bin/env python3
"""Full runtime simulation: video streaming on an 8-replica cluster.

Reproduces the Fig. 6 experiment end-to-end: a burst of ~100 MB video
requests (YouTube-patterned) is scheduled by EDR (LDDM and CDPSM) and by
Round-Robin on the emulated SystemG cluster; per-replica energy costs and
response times are reported.

Run:  python examples/video_streaming_runtime.py
"""

from repro.edr.system import EDRSystem, RuntimeConfig, SolverOptions
from repro.experiments.scenarios import PAPER_VIDEO, make_trace
from repro.metrics.report import compare_table


def main() -> None:
    trace = make_trace(PAPER_VIDEO)
    print(f"workload: {len(trace)} video requests, "
          f"{trace.total_mb():.0f} MB total, "
          f"{len(trace.clients)} clients, burst of {trace.span:.1f}s\n")

    results = {}
    for algorithm in ("lddm", "cdpsm", "round_robin"):
        system = EDRSystem(trace, RuntimeConfig(
            solver=SolverOptions(algorithm=algorithm),
            batch_capacity_fraction=0.35))
        res = system.run(app="video")
        results[algorithm] = res
        print(f"{algorithm:12s} makespan {res.makespan:6.2f}s   "
              f"mean response {1000 * res.mean_response:6.1f} ms   "
              f"messages {res.extras['messages']:7d}")

    print()
    replica_names = [f"replica{i + 1}" for i in range(8)]
    print(compare_table(results, replica_names, quantity="cents",
                        title="Per-replica energy cost (cents) — Fig. 6"))

    rr = results["round_robin"]
    print()
    for algo in ("lddm", "cdpsm"):
        saving = results[algo].savings_vs(rr, "cents")
        print(f"{algo} total energy-cost saving vs Round-Robin: "
              f"{100 * saving:+.1f}%  (paper reports ~12% on average)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Extension: a heterogeneous cluster (mixed NIC capacities).

The paper's SystemG testbed is homogeneous (100 MB/s everywhere); real
fleets mix generations.  Here the *cheapest* replica has a 10 MB/s NIC,
so naive price-greedy placement would bottleneck on it — EDR's capacity
constraint makes the planner spill load to the next-cheapest replicas
instead.

Run:  python examples/heterogeneous_cluster.py
"""

from repro.edr.system import (EDRSystem, NetConfig, RuntimeConfig,
                              SolverOptions)
from repro.experiments.scenarios import PAPER_VIDEO, make_trace
from repro.util.tables import render_table


def main() -> None:
    trace = make_trace(PAPER_VIDEO)
    prices = RuntimeConfig().prices
    bandwidths = (10.0, 100.0, 100.0, 100.0, 100.0, 100.0, 100.0, 100.0)

    results = {}
    for label, bws in (("homogeneous", None), ("replica1@10MB/s", bandwidths)):
        cfg = RuntimeConfig(solver=SolverOptions(algorithm="lddm"),
                            net=NetConfig(bandwidths=bws),
                            batch_capacity_fraction=0.35)
        res = EDRSystem(trace, cfg).run(app="video")
        results[label] = res

    rows = []
    for i in range(8):
        rows.append([
            f"replica{i + 1}",
            prices[i],
            bandwidths[i],
            round(results["homogeneous"].extras["transferred_mb"]
                  .get(f"replica{i + 1}", 0.0), 1),
            round(results["replica1@10MB/s"].extras["transferred_mb"]
                  .get(f"replica{i + 1}", 0.0), 1),
        ])
    print(render_table(
        ["replica", "¢/kWh", "NIC MB/s", "MB served (homog.)",
         "MB served (hetero.)"],
        rows, title="Load placement under heterogeneous NICs"))
    print("\nNote replica1 (cheapest, tiny NIC): the capacity constraint "
          "caps its share and the planner routes the overflow to the "
          "other price-1 replicas.")
    print("Also visible: the per-batch capacity constraint doesn't model "
          "queueing across batches, so the slow NIC still stretches the "
          "makespan — the paper's static model shares this limit.")
    for label, res in results.items():
        print(f"{label:18s} total cost {1000 * res.total_cents:.3f} m¢, "
              f"makespan {res.makespan:.2f}s")


if __name__ == "__main__":
    main()

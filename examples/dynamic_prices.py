#!/usr/bin/env python3
"""Extension: EDR under a time-of-use electricity tariff.

Commercial clouds pay tariffs that change through the day (the paper's
future-work target).  This example flips the cheap and expensive regions
mid-run: a tariff-aware EDR re-solves each batch at the prices in force,
a stale-tariff EDR keeps optimizing against yesterday's prices, and
Round-Robin remains price-blind.

Run:  python examples/dynamic_prices.py
"""

from repro.experiments import ext_dynamic_prices


def main() -> None:
    result = ext_dynamic_prices.run(switch_at=15.0)
    print(result.render())
    print("\nNote the stale scheduler: optimizing against outdated prices "
          "is worse than not optimizing at all — the load it 'saves' onto "
          "formerly-cheap replicas is now the expensive load.")


if __name__ == "__main__":
    main()

"""The control-plane service in one file: serve, connect, solve, churn.

Starts an EDR control-plane server in this process, connects the typed
client SDK over real HTTP, runs one solve, registers two replica agents
that heartbeat in the background, streams churn events through the
incremental plane, and scrapes the live Prometheus metrics — the same
loop an external orchestrator would run against
``python -m repro.service``.
"""

import time

import repro
from repro.edr.messages import WireEvent


def main() -> None:
    server = repro.serve()
    print(f"control plane listening on {server.url}")
    client = repro.connect(server.url)
    print(f"health: ok={client.health().ok} "
          f"wire_version={client.health().wire_version}")

    # One solve over HTTP; naming the clients arms the event plane.
    resp = client.solve(
        demands=[40.0, 60.0, 30.0],
        prices=[1.0, 8.0, 1.0, 6.0],
        clients=["web", "batch", "archive"])
    print(f"solve: objective={resp.objective:.2f} "
          f"iterations={resp.iterations} converged={resp.converged}")
    print(f"loads: {[round(x, 1) for x in resp.loads]}")

    # Two replica agents join and adopt the server's heartbeat cadence.
    with repro.ReplicaAgent(server.url, "replica-0",
                            capacity_mbps=100.0) as a0, \
            repro.ReplicaAgent(server.url, "replica-1",
                               capacity_mbps=100.0) as a1:
        time.sleep(3 * a0.hb_interval)
        membership = client.membership()
        print(f"membership: live={membership.live} "
              f"(cadence {membership.hb_interval}s handed to agents)")

        # Client churn rides the incremental plane — no full re-solve.
        stream = client.events([
            WireEvent(kind="arrival", client="burst", demand=15.0,
                      eligibility=[True, True, True, True]),
            WireEvent(kind="demand_change", client="web", demand=55.0),
            WireEvent(kind="departure", client="archive"),
        ])
        print(f"events: applied={stream.applied} "
              f"resolves={stream.resolves} "
              f"objective={stream.objective:.2f}")
        print(f"clients now: {stream.clients}")
        assert a1.running

    scrape = client.metrics_text()
    served = [line for line in scrape.splitlines()
              if line.startswith("repro_service_requests_total")]
    print("metrics:", *served, sep="\n  ")
    server.close()
    print("server closed cleanly")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: solve one energy-aware replica-selection instance.

Builds the paper's optimization problem (Sec. III-A) for a handful of
clients against 8 replicas with heterogeneous electricity prices, solves
it with the decentralized LDDM algorithm, and compares the energy cost
against Round-Robin and the centralized optimum.

Run:  python examples/quickstart.py
"""


from repro.baselines import solve_round_robin
from repro.core import ProblemData, ReplicaSelectionProblem, solve
from repro.util.tables import render_table


def main() -> None:
    # The Fig. 6/7 electricity prices, in cents/kWh, one per replica.
    prices = [1, 8, 1, 6, 1, 5, 2, 3]
    # Four clients with different traffic demands (MB/s of load).
    demands = [45.0, 30.0, 60.0, 25.0]

    data = ProblemData.paper_defaults(demands=demands, prices=prices)
    problem = ReplicaSelectionProblem(data)
    problem.require_feasible()

    lddm = solve(problem, "lddm")
    rr = solve_round_robin(problem)
    optimum = solve(problem, "reference")

    print(render_table(
        ["replica", "price ¢/kWh", "LDDM load", "RoundRobin load"],
        [[f"replica{n + 1}", prices[n],
          round(float(lddm.loads[n]), 1),
          round(float(rr.loads[n]), 1)]
         for n in range(len(prices))],
        title="Load placement (MB/s) — note the cheap replicas under LDDM"))

    print()
    print(f"LDDM        objective: {lddm.objective:10.2f}  "
          f"({lddm.iterations} iterations, "
          f"{lddm.messages} messages exchanged)")
    print(f"Round-Robin objective: {rr.objective:10.2f}")
    print(f"optimum     objective: {optimum.objective:10.2f}")
    saving = 1 - lddm.objective / rr.objective
    gap = lddm.objective / optimum.objective - 1
    print(f"\nLDDM saves {100 * saving:.1f}% energy cost vs Round-Robin "
          f"and is within {100 * gap:.3f}% of the centralized optimum.")


if __name__ == "__main__":
    main()

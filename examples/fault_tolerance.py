#!/usr/bin/env python3
"""Fault tolerance: crash a replica mid-run and watch EDR recover.

EDR's reliability design (Sec. III-C): a heartbeat ring detects the dead
replica, the survivors drop it from their active member lists and re-form
the ring, in-flight downloads from the victim are re-requested by the
clients, and subsequent scheduling rounds use only the survivors.

Run:  python examples/fault_tolerance.py
"""

from repro.edr.system import (EDRSystem, FaultConfig, RuntimeConfig,
                              SolverOptions)
from repro.experiments.scenarios import Scenario, make_trace
from repro.workload.apps import VIDEO_STREAMING


def main() -> None:
    scenario = Scenario(name="fault-demo", app=VIDEO_STREAMING,
                        n_requests=12, n_clients=12, arrival_rate=6.0)
    trace = make_trace(scenario)
    print(f"workload: {len(trace)} video requests, "
          f"{trace.total_mb():.0f} MB total\n")

    system = EDRSystem(trace, RuntimeConfig(
        solver=SolverOptions(algorithm="lddm"),
        faults=FaultConfig(heartbeats=True, hb_interval=0.05,
                           hb_timeout=0.25),
        batch_capacity_fraction=0.35))

    victim = "replica2"
    crash_time = 2.0
    # Network-level crash only: the heartbeat ring must *detect* it.
    system.faults.crash_at(crash_time, victim)
    print(f"scheduling crash of {victim} at t = {crash_time:.1f}s "
          f"(detection left to the heartbeat ring)\n")

    result = system.run(app="video")

    print(f"makespan:            {result.makespan:.2f}s")
    print(f"delivered:           {result.extras['delivered_mb']:.1f} MB "
          f"of {trace.total_mb():.1f} MB requested")
    print(f"client re-requests:  {result.extras['retries']}")
    print(f"surviving ring:      {system.ring.live}")
    print("\nmembership events (time-ordered):")
    for what, who in system.ring.events:
        print(f"  {what:>5s}: {who}")
    assert victim not in system.ring.live
    assert abs(result.extras["delivered_mb"] - trace.total_mb()) < 1e-6
    print("\nAll requested data was served despite the crash.")


if __name__ == "__main__":
    main()

"""The EDR runtime system: replica servers, clients, distributed solve
sessions, ring fault tolerance — all running over the simulation substrate.

:class:`~repro.edr.system.EDRSystem` is the main entry point: it wires the
cluster, network, workload and agents together, runs a scenario, and
returns an :class:`~repro.metrics.report.ExperimentResult`.
"""

from repro.edr.messages import Ports, MsgKind
from repro.edr.membership import MembershipRing
from repro.edr.scheduler import SolveTimingModel, DistributedSolveSession
from repro.edr.coordinator import (
    ShardCoordinator,
    ShardingConfig,
    solve_sharded,
)
from repro.edr.system import EDRSystem, RuntimeConfig
from repro.edr.donar_runtime import DonarRuntime
from repro.edr.agents import AgentBasedLddm, AgentBasedCdpsm

__all__ = [
    "Ports",
    "MsgKind",
    "MembershipRing",
    "SolveTimingModel",
    "DistributedSolveSession",
    "EDRSystem",
    "RuntimeConfig",
    "ShardCoordinator",
    "ShardingConfig",
    "solve_sharded",
    "DonarRuntime",
    "AgentBasedLddm",
    "AgentBasedCdpsm",
]

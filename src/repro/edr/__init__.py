"""The EDR runtime system: replica servers, clients, distributed solve
sessions, ring fault tolerance — all running over the simulation substrate.

:class:`~repro.edr.system.EDRSystem` is the main entry point: it wires the
cluster, network, workload and agents together, runs a scenario, and
returns an :class:`~repro.metrics.report.ExperimentResult`.
"""

from repro.edr.messages import (
    MODEL_TYPES,
    WIRE_VERSION,
    ErrorResponse,
    EventRequest,
    EventResponse,
    HealthResponse,
    HeartbeatRequest,
    HeartbeatResponse,
    MembershipResponse,
    MsgKind,
    Ports,
    RegisterRequest,
    RegisterResponse,
    SolveRequest,
    SolveResponse,
    WireEvent,
    WireModel,
    parse_message,
)
from repro.edr.membership import MembershipRing
from repro.edr.scheduler import SolveTimingModel, DistributedSolveSession
from repro.edr.coordinator import (
    ShardCoordinator,
    ShardingConfig,
    solve_sharded,
)
from repro.edr.system import (
    EDRSystem,
    FaultConfig,
    NetConfig,
    RuntimeConfig,
    SolverOptions,
)
from repro.edr.donar_runtime import DonarRuntime
from repro.edr.agents import AgentBasedLddm, AgentBasedCdpsm

__all__ = [
    # protocol constants
    "Ports",
    "MsgKind",
    # typed wire schemas
    "WIRE_VERSION",
    "WireModel",
    "SolveRequest",
    "SolveResponse",
    "WireEvent",
    "EventRequest",
    "EventResponse",
    "MembershipResponse",
    "RegisterRequest",
    "RegisterResponse",
    "HeartbeatRequest",
    "HeartbeatResponse",
    "HealthResponse",
    "ErrorResponse",
    "MODEL_TYPES",
    "parse_message",
    # runtime
    "MembershipRing",
    "SolveTimingModel",
    "DistributedSolveSession",
    "EDRSystem",
    "RuntimeConfig",
    "SolverOptions",
    "NetConfig",
    "FaultConfig",
    "ShardCoordinator",
    "ShardingConfig",
    "solve_sharded",
    "DonarRuntime",
    "AgentBasedLddm",
    "AgentBasedCdpsm",
]

"""DONAR runtime for the Fig. 9 head-to-head.

Mirrors :class:`~repro.edr.system.EDRSystem` with DONAR's architecture:
dedicated *mapping nodes* (not the replicas) receive client requests and
run DONAR's decomposition among themselves, then hand each client its
split.  Replicas only serve files.  Response-time semantics match EDR's:
request issued -> decision received.

The numeric solve runs via :class:`~repro.baselines.donar.DonarSolver`;
each Gauss-Seidel sweep costs one round of mapping-node aggregate
exchanges (real messages) plus local computation proportional to the
batch's client count, exactly parallel to how EDR's sessions are timed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.donar import DonarSolver
from repro.edr.client import ClientAgent
from repro.edr.messages import MsgKind, Ports
from repro.edr.scheduler import SolveTimingModel
from repro.errors import SimulationError, ValidationError
from repro.metrics.latency import ResponseTimeStats
from repro.metrics.report import ExperimentResult
from repro.net.flows import FlowManager
from repro.net.topology import Topology
from repro.net.transport import Network
from repro.sim.engine import Simulator
from repro.workload.requests import RequestTrace

__all__ = ["DonarRuntimeConfig", "DonarRuntime"]


@dataclass
class DonarRuntimeConfig:
    """Scenario knobs for a DONAR runtime experiment."""

    n_replicas: int = 3
    n_mapping_nodes: int = 3
    bandwidth: float = 100.0
    lan_latency: float = 0.0005
    max_latency: float = 0.0018
    poll_interval: float = 0.02
    batch_capacity_fraction: float = 0.8
    #: Floor on coordination rounds per batch: a *distributed* system
    #: cannot detect convergence instantly — DONAR's mapping nodes keep
    #: exchanging aggregates for a few rounds after the solution settles.
    min_rounds: int = 10
    timing: SolveTimingModel = field(default_factory=SolveTimingModel)
    solver_kwargs: dict = field(default_factory=dict)
    horizon: float = 100000.0


class DonarRuntime:
    """DONAR mapping-node runtime over the same substrate as EDR."""

    def __init__(self, trace: RequestTrace,
                 config: DonarRuntimeConfig | None = None) -> None:
        self.config = config or DonarRuntimeConfig()
        cfg = self.config
        self.trace = trace
        self.replica_names = [f"replica{i + 1}" for i in range(cfg.n_replicas)]
        self.mapping_names = [f"mapper{i + 1}"
                              for i in range(cfg.n_mapping_nodes)]
        self.client_names = list(trace.clients)
        if not self.client_names:
            raise ValidationError("trace has no requests")

        self.sim = Simulator()
        all_nodes = self.replica_names + self.mapping_names + self.client_names
        self.topology = Topology.lan(all_nodes, latency=cfg.lan_latency,
                                     capacity=cfg.bandwidth)
        self.network = Network(self.sim, self.topology)
        self.flows = FlowManager(self.sim, self.topology)

        self._batch: list[dict] = []
        self.stats = ResponseTimeStats()
        self._delivered_mb = 0.0
        by_client = {c: [] for c in self.client_names}
        for req in trace:
            by_client[req.client].append(req)
        self.clients: dict[str, ClientAgent] = {}
        for cname in self.client_names:
            self.clients[cname] = ClientAgent(
                self.sim, self.network, self.flows, cname,
                by_client[cname],
                live_replicas=lambda: [self.mapping_names[0]],
                stats=self.stats,
                on_delivered=lambda _c, mb: self._deliver(mb))
        self._intake = self.sim.process(self._intake_loop())
        self._batches = 0
        self._driver = self.sim.process(self._drive())

    def _deliver(self, mb: float) -> None:
        self._delivered_mb += mb

    # -- intake -------------------------------------------------------------
    def _intake_loop(self):
        """Lead mapping node's request intake."""
        ep = self.network.endpoint(self.mapping_names[0])
        while True:
            msg = yield ep.recv(Ports.CLIENT)
            if msg.kind == MsgKind.REQUEST:
                self._batch.append(dict(msg.payload))

    # -- scheduling ------------------------------------------------------------
    def _sub_batches(self, batch: list[dict]) -> list[list[dict]]:
        cap = self.config.batch_capacity_fraction * self.config.bandwidth \
            * len(self.replica_names)
        chunks, current, load = [], [], 0.0
        for item in batch:
            if current and load + item["size"] > cap:
                chunks.append(current)
                current, load = [], 0.0
            current.append(item)
            load += item["size"]
        if current:
            chunks.append(current)
        return chunks

    def _schedule_chunk(self, chunk: list[dict]):
        cfg = self.config
        demands: dict[str, float] = {}
        for item in chunk:
            demands[item["client"]] = demands.get(item["client"], 0.0) \
                + item["size"]
        clients = sorted(demands)
        cost = np.array([[self.topology.latency(c, r)
                          for r in self.replica_names] for c in clients])
        mask = self.topology.eligibility(clients, self.replica_names,
                                         cfg.max_latency)
        solver = DonarSolver(
            cost, [demands[c] for c in clients],
            np.full(len(self.replica_names), cfg.bandwidth), mask=mask,
            n_mapping_nodes=cfg.n_mapping_nodes, **cfg.solver_kwargs)
        # One communication round per Gauss-Seidel sweep: mapping nodes
        # exchange their per-replica aggregates, then compute locally.
        # The numeric sweeps come from the solver's generator so the
        # simulation timing and the math advance in lockstep.
        eps = {m: self.network.endpoint(m) for m in self.mapping_names}
        pair_delay = max(
            (self.topology.latency(a, b)
             for a in self.mapping_names for b in self.mapping_names
             if a != b), default=0.0)
        n_floats_mb = len(self.replica_names) * 8e-6

        def one_round():
            for src in self.mapping_names:
                for dst in self.mapping_names:
                    if src != dst:
                        eps[src].send(dst, Ports.REPLICA, MsgKind.SOLVE_SYNC,
                                      size=n_floats_mb)
            return cfg.timing.iteration_time(len(clients), "donar") \
                + pair_delay

        allocation = None
        rounds = 0
        for _k, P, _obj in solver.sweeps_iter():
            allocation = P
            rounds += 1
            yield self.sim.timeout(one_round())
        # A distributed system needs extra quiet rounds to *detect*
        # convergence; pad up to the floor.
        for _ in range(max(0, cfg.min_rounds - rounds)):
            yield self.sim.timeout(one_round())
        allocation = np.array(allocation, dtype=float)
        # Final capacity rounding, as in DonarSolver.solve().
        loads = allocation.sum(axis=0)
        over = loads > np.full(len(self.replica_names), cfg.bandwidth)
        if over.any():
            from repro.core.projection import project_demands
            scale = np.where(over, cfg.bandwidth / np.maximum(loads, 1e-300),
                             1.0)
            allocation = project_demands(allocation * scale,
                                         np.array([demands[c]
                                                   for c in clients]),
                                         mask)
        per_client: dict[str, dict] = {}
        for item in chunk:
            c_idx = clients.index(item["client"])
            frac = item["size"] / demands[item["client"]]
            shares = {self.replica_names[n]: float(allocation[c_idx, n]) * frac
                      for n in range(len(self.replica_names))
                      if allocation[c_idx, n] * frac > 1e-12}
            per_client.setdefault(item["client"], {})[item["uid"]] = shares
        self._batches += 1
        lead = self.network.endpoint(self.mapping_names[0])
        for cname, shares in per_client.items():
            lead.send(cname, Ports.ASSIGN, MsgKind.ASSIGN,
                      payload={"batch": self._batches, "shares": shares},
                      size=1e-4)

    def _drive(self):
        cfg = self.config
        total_mb = self.trace.total_mb()
        while True:
            if self._batch:
                batch, self._batch = self._batch, []
                for chunk in self._sub_batches(batch):
                    yield from self._schedule_chunk(chunk)
                continue
            done = (self.stats.pending == 0
                    and len(self.flows.active) == 0
                    and self._delivered_mb >= total_mb - 1e-6
                    and all(not c._issuer.is_alive
                            for c in self.clients.values()))
            if done:
                return
            yield self.sim.timeout(cfg.poll_interval)

    def run(self, app: str = "unknown") -> ExperimentResult:
        """Run to completion; returns the measured result."""
        cfg = self.config
        while not self._driver.processed and self.sim.peek() <= cfg.horizon:
            self.sim.step()
        if not self._driver.triggered:
            raise SimulationError("DONAR run did not complete within horizon")
        n = len(self.replica_names)
        return ExperimentResult(
            method="donar", app=app,
            joules_by_replica=np.zeros(n),  # DONAR runtime: perf-only run
            cents_by_replica=np.zeros(n),
            makespan=self.sim.now,
            response_times=list(self.stats.samples),
            extras={
                "messages": self.network.messages_sent,
                "batches": self._batches,
                "delivered_mb": self._delivered_mb,
            })

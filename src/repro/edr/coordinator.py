"""Sharded dual-price control plane: coordinator over solve shards.

The runtime's remaining monolith is the solve itself: even with class
aggregation and incremental events, one ``EDRSystem`` re-touches the
whole class space in lockstep.  This module splits the plane into
independent :class:`~repro.core.shard.SolveShard`\\ s and reconciles the
*shared* resource — replica capacity — with a small number of dual-price
exchange rounds, the decomposition-by-prices structure Mathew et al.'s
energy-aware CDN balancing (arXiv:1109.5641) exploits across clusters
and Lučanin's geo-distributed pricing work (arXiv:1809.05853) uses
across data centers.

The exchange protocol (one :meth:`ShardCoordinator.solve` round):

1. the coordinator snapshots the aggregate column loads ``L`` and
   broadcasts to shard ``s`` its *background* ``L - L_s`` — together
   with the energy curve this fixes the marginal-price field
   ``mu = E'(L)`` every shard prices against;
2. every shard best-responds simultaneously (Jacobi): a batched
   water-fill of all its rows against the background
   (:func:`repro.core.kernels.waterfill_rows`), an intra-shard
   Gauss–Seidel polish, and damping against its previous rows;
3. the coordinator gathers the new loads and re-evaluates the global
   residual — the worst of relative capacity overshoot, cross-shard KKT
   gap, and per-row demand shortfall — and stops when it is within
   tolerance.

Because each round's inputs are a single broadcast snapshot, the round
outcome is independent of shard execution order: ``serial``, ``thread``
and ``process`` modes are bit-identical (the process worker rebuilds the
shard from the round payload and runs the same code path).  Events
route to exactly one shard (:meth:`ShardCoordinator.apply_event` /
:meth:`ShardCoordinator.retarget`) and stay incremental inside it; full
exchange rounds re-run only when the global residual drifts past the
refresh threshold, so per-event cost is O(K_s * N) — independent of the
client count and of the other shards.

The coordinator is a *long-lived* object: its executors — a thread pool
or the persistent shared-memory worker fleet of :mod:`repro.core.
shard_workers` — start lazily on the first concurrent round and survive
across solves and event storms until :meth:`ShardCoordinator.close`
(also a context manager).  It is elastic, too: when per-shard demand
skews past ``rebalance_skew``, individual classes migrate between
shards *with* their warm rows and client registrations — no plane
teardown, no allocation change, hence no residual change — and
:meth:`ShardCoordinator.resize` / :meth:`~ShardCoordinator.auto_tune`
re-partition the whole class set onto a different shard count using the
measured round-time curve.  Migration decisions read only gathered
demand/residual statistics, never wall-clock, so they are identical
across execution modes; auto-tune *is* wall-clock-informed and is
therefore advisory (explicitly invoked, never inside the arithmetic
path).
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Sequence

import numpy as np

from repro.core import model
from repro.core.aggregate import aggregate_problem, solve_aggregated
from repro.core.incremental import (
    ClientArrival,
    ClientDeparture,
    DemandChange,
)
from repro.core.shard import SolveShard, partition_classes, run_shard_round
from repro.core.shard_workers import ShardWorkerPool
from repro.core.solution import Solution
from repro.core.warmstart import WarmStartCache
from repro.errors import InfeasibleProblemError, ValidationError
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.util.cpus import resolve_workers

__all__ = ["ShardingConfig", "CoordinatorResult", "RoutedResult",
           "ShardCoordinator", "solve_sharded", "tune_shard_count"]

_MODES = ("serial", "thread", "process")

#: Fallback reasons after which the declined event's demand delta has
#: already been written into the state's class demands (see
#: ``IncrementalState._apply_class_delta``): capacity and convergence
#: declines happen *after* ``D[k]`` is updated, drift/stale before.
_DELTA_APPLIED = frozenset({"capacity", "convergence"})


@dataclass(frozen=True)
class ShardingConfig:
    """Tuning for the sharded control plane.

    ``mode`` picks shard execution: ``serial`` (deterministic reference,
    zero concurrency overhead), ``thread`` (shares the numpy kernels
    across cores) or ``process`` (a ``concurrent.futures`` pool for
    large K) — all three produce bit-identical allocations.  ``tol`` is
    the global residual bound a solve converges to;
    ``refresh_residual`` is the looser bound a routed event may leave
    behind before the coordinator schedules full exchange rounds.
    ``warm_cache_entries`` sizes each *shard-local* warm cache (``None``
    derives a fair share of the runtime's global budget).

    Worker-fleet knobs: ``max_workers`` caps process/thread pool size
    (``None`` follows the CPU affinity mask); ``persistent_workers``
    keeps one shared-memory worker fleet alive across solves in process
    mode (``False`` restores the per-solve pool + full-payload rounds —
    the measured baseline).  Elasticity knobs: once the heaviest
    shard's demand exceeds ``rebalance_skew`` times the mean, routed
    events migrate up to ``rebalance_max_moves`` classes toward lighter
    shards (``rebalance_skew=None`` disables online re-partitioning).
    """

    n_shards: int = 4
    mode: str = "serial"
    max_rounds: int = 64
    tol: float = 1e-8
    damping: float = 0.5
    refresh_residual: float = 1e-3
    warm_cache_entries: int | None = None
    kkt_rtol: float = 1e-9
    max_sweeps: int = 64
    drift_limit: float = 2.5
    max_workers: int | None = None
    persistent_workers: bool = True
    rebalance_skew: float | None = 2.0
    rebalance_max_moves: int = 8

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValidationError("n_shards must be >= 1")
        if self.mode not in _MODES:
            raise ValidationError(f"mode must be one of {_MODES}")
        if self.max_rounds < 1:
            raise ValidationError("max_rounds must be >= 1")
        if not 0.0 < self.damping <= 1.0:
            raise ValidationError("damping must be in (0, 1]")
        if self.tol <= 0.0:
            raise ValidationError("tol must be positive")
        if self.refresh_residual < self.tol:
            raise ValidationError("refresh_residual must be >= tol")
        if self.warm_cache_entries is not None \
                and self.warm_cache_entries < 1:
            raise ValidationError("warm_cache_entries must be >= 1")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValidationError("max_workers must be >= 1")
        if self.rebalance_skew is not None and self.rebalance_skew <= 1.0:
            raise ValidationError("rebalance_skew must be > 1")
        if self.rebalance_max_moves < 1:
            raise ValidationError("rebalance_max_moves must be >= 1")


def tune_shard_count(n_classes: int, row_cost_s: float,
                     dispatch_cost_s: float, max_shards: int) -> int:
    """The shard count minimizing the modeled round time (pure, testable).

    Round-time model: ``dispatch_cost_s * n + row_cost_s * K / n`` — a
    per-shard dispatch overhead plus the widest shard's row work (a
    single shard pays no dispatch).  The integer argmin of this convex
    curve, smallest count on ties, which makes the suggestion monotone:
    nondecreasing in ``n_classes``/``row_cost_s``, nonincreasing in
    ``dispatch_cost_s``.
    """
    K = max(float(n_classes), 1.0)
    r = max(float(row_cost_s), 0.0)
    c = max(float(dispatch_cost_s), 0.0)
    best_n, best = 1, None
    for n in range(1, max(int(max_shards), 1) + 1):
        cost = c * n * (1 if n > 1 else 0) + r * K / n
        if best is None or cost < best - 1e-15 * max(abs(best), 1.0):
            best_n, best = n, cost
    return best_n


@dataclass(frozen=True)
class CoordinatorResult:
    """Outcome of one :meth:`ShardCoordinator.solve` call."""

    rounds: int
    sweeps: int
    residual: float
    converged: bool
    wall_s: float


@dataclass(frozen=True)
class RoutedResult:
    """Outcome of a routed event or chunk retarget.

    ``rounds`` counts the exchange rounds a residual-triggered refresh
    (or a fallback recovery) ran — zero for the common absorbed-in-shard
    case.  ``fallback_reason`` names the shard's decline when the
    coordinator had to recover through force-target + full rounds.
    ``migrations`` counts classes the skew check moved between shards
    while absorbing this event — load-conserving, never a teardown.
    """

    ok: bool
    events: int = 0
    sweeps: int = 0
    rounds: int = 0
    refreshed: bool = False
    residual: float = 0.0
    fallback_reason: str | None = None
    migrations: int = 0


class ShardCoordinator:
    """Owns the shard set, the aggregate loads, and the exchange rounds.

    ``data`` is the *class-space* instance (the K-row reduction from
    :mod:`repro.core.aggregate` — a :class:`~repro.core.params.
    ProblemData` or anything with its array attributes) and ``tokens``
    the classes' packed-mask byte tokens in row order.  Classes are
    partitioned across ``config.n_shards`` shards by demand-balanced
    greedy assignment; ``clients`` optionally pre-registers client ->
    (token, demand) members, routed to their class's shard.
    """

    def __init__(self, data, tokens: Sequence[bytes],
                 config: ShardingConfig | None = None, *,
                 clients: dict[str, tuple[bytes, float]] | None = None,
                 warm_caches: Sequence[WarmStartCache | None] | None = None,
                 recorder: Recorder | None = None) -> None:
        cfg = config if config is not None else ShardingConfig()
        tokens = list(tokens)
        mask = np.asarray(data.mask, dtype=bool)
        if len(tokens) != mask.shape[0]:
            raise ValidationError("need one token per class row")
        if warm_caches is not None and len(warm_caches) != cfg.n_shards:
            raise ValidationError("need one warm cache per shard")
        self.config = cfg
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.B = np.asarray(data.B, dtype=float).copy()
        self.u = np.asarray(data.u, dtype=float).copy()
        self.alpha = np.asarray(data.alpha, dtype=float).copy()
        self.beta = np.asarray(data.beta, dtype=float).copy()
        self.gamma = np.asarray(data.gamma, dtype=float).copy()
        shard_of = partition_classes(data.R, cfg.n_shards)
        self._token_shard = {t: int(shard_of[i])
                             for i, t in enumerate(tokens)}
        registry = dict(clients) if clients else {}
        self._client_shard = {}
        for c, (t, _) in registry.items():
            if t not in self._token_shard:
                raise ValidationError(
                    f"client {c!r} registered to an unknown class")
            self._client_shard[c] = self._token_shard[t]
        self.shards: list[SolveShard] = []
        demands = np.asarray(data.R, dtype=float)
        for s in range(cfg.n_shards):
            idx = np.flatnonzero(shard_of == s)
            stokens = [tokens[int(i)] for i in idx]
            own = set(stokens)
            self.shards.append(SolveShard(
                s, tokens=stokens, demands=demands[idx],
                capacities=self.B, prices=self.u, alpha=self.alpha,
                beta=self.beta, gamma=self.gamma, mask=mask[idx],
                clients={c: r for c, r in registry.items() if r[0] in own},
                warm_cache=warm_caches[s] if warm_caches else None,
                kkt_rtol=cfg.kkt_rtol, max_sweeps=cfg.max_sweeps,
                drift_limit=cfg.drift_limit))
        self.loads = np.zeros(self.B.shape[0])
        self.refresh_loads()
        self.rounds_total = 0
        self.refreshes = 0
        self.fallbacks = 0
        self.events_applied = 0
        self.migrations = 0
        self.resizes = 0
        self._pool: ShardWorkerPool | None = None
        self._thread_pool: ThreadPoolExecutor | None = None
        # (n_shards, max_rows, wall_s) per exchange round — feeds the
        # advisory shard-count tuner, never the arithmetic path.
        self._round_stats: deque = deque(maxlen=256)
        self._emitted_static = 0
        self._emitted_round = 0
        self._closed = False

    # -- views ---------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        """Shard count (fixed at construction)."""
        return len(self.shards)

    @property
    def n_replicas(self) -> int:
        """N, the replica count the plane is keyed to."""
        return self.B.shape[0]

    @property
    def n_classes(self) -> int:
        """Total class rows across all shards."""
        return sum(sh.n_rows for sh in self.shards)

    @property
    def max_shard_rows(self) -> int:
        """The widest shard's row count — the per-round critical path."""
        return max((sh.n_rows for sh in self.shards), default=0)

    @property
    def worker_pool(self) -> ShardWorkerPool | None:
        """The persistent process-mode worker fleet, if one is live.

        Exposes the fleet's shipped-byte accounting (``static_bytes``,
        ``round_bytes``, ``rounds_shipped``, ``reships``) to experiments
        and benchmarks; ``None`` before the first process-mode round or
        in other execution modes.
        """
        return self._pool

    def refresh_loads(self) -> None:
        """Re-derive the aggregate column loads from the shards."""
        loads = np.zeros(self.B.shape[0])
        for sh in self.shards:
            loads += sh.loads
        self.loads = loads

    def background(self, shard_id: int) -> np.ndarray:
        """Column loads every shard *except* ``shard_id`` contributes."""
        return np.maximum(self.loads - self.shards[shard_id].loads, 0.0)

    def mu(self) -> np.ndarray:
        """The broadcast dual-price vector: marginal energy cost at ``L``.

        This is the shared price field the exchange rounds implicitly
        fix — each shard's background plus the cost curve evaluates to
        exactly these marginals at the aggregate operating point.
        """
        L = np.maximum(self.loads, 0.0)
        return self.u * (self.alpha
                         + self.beta * self.gamma * L ** (self.gamma - 1.0))

    def objective(self) -> float:
        """``E_g`` at the aggregate column loads (Eq. 1)."""
        L = np.maximum(self.loads, 0.0)
        return float(np.sum(self.u * (self.alpha * L
                                      + self.beta * L ** self.gamma)))

    def rows_for(self, tokens: Sequence[bytes]) -> np.ndarray:
        """Class allocation rows for ``tokens``, whichever shard owns them."""
        rows = np.zeros((len(tokens), self.n_replicas))
        for i, t in enumerate(tokens):
            s = self._token_shard.get(t)
            if s is None:
                raise ValidationError("unknown class token")
            rows[i] = self.shards[s].state.row(t)
        return rows

    def residual(self) -> float:
        """The global convergence residual (relative, 0 = converged).

        The worst of: capacity overshoot relative to the column's
        capacity, cross-shard KKT gap (each shard checked against its
        current background), and per-row demand shortfall.
        """
        self.refresh_loads()
        over = (self.loads - self.B) / np.maximum(self.B, 1e-9)
        resid = float(np.max(over, initial=0.0))
        for sh in self.shards:
            if sh.n_rows:
                resid = max(resid, sh.kkt_gap(self.background(sh.shard_id)),
                            sh.demand_error())
        return max(resid, 0.0)

    # -- exchange rounds ------------------------------------------------------
    def solve(self, *, max_rounds: int | None = None,
              tol: float | None = None) -> CoordinatorResult:
        """Run dual-price exchange rounds until the residual is within tol."""
        cfg = self.config
        max_rounds = cfg.max_rounds if max_rounds is None else int(max_rounds)
        tol = cfg.tol if tol is None else float(tol)
        t0 = perf_counter()
        rounds = 0
        sweeps = 0
        resid = self.residual()
        # Adaptive damping: a fixed factor can stall in a small limit
        # cycle (simultaneous best responses overshooting each other);
        # when the residual stops contracting for a few rounds, halve
        # the damping.  The decision uses only the gathered residual,
        # so it is identical across execution modes.
        damping = cfg.damping
        best = resid
        stall = 0
        executor = None
        transient = None
        if len(self.shards) > 1:
            if cfg.mode == "thread":
                if self._thread_pool is None:
                    self._thread_pool = ThreadPoolExecutor(
                        max_workers=resolve_workers(len(self.shards),
                                                    cfg.max_workers))
                executor = self._thread_pool
            elif cfg.mode == "process":
                if cfg.persistent_workers:
                    if self._pool is None:
                        self._pool = ShardWorkerPool(
                            max_workers=cfg.max_workers)
                    executor = self._pool
                else:
                    # The measured baseline: a fresh pool per solve,
                    # full payload per round.
                    transient = ProcessPoolExecutor(
                        max_workers=resolve_workers(len(self.shards),
                                                    cfg.max_workers))
                    executor = transient
        try:
            while resid > tol and rounds < max_rounds:
                r0 = perf_counter()
                results = self._run_round(executor, damping)
                round_wall = perf_counter() - r0
                self._round_stats.append(
                    (len(self.shards), self.max_shard_rows, round_wall))
                rounds += 1
                self.rounds_total += 1
                sweeps += sum(r.sweeps for r in results)
                resid = self.residual()
                if resid <= 0.9 * best:
                    stall = 0
                else:
                    stall += 1
                    if stall >= 3:
                        damping = max(0.5 * damping, 0.05)
                        stall = 0
                best = min(best, resid)
                if self.recorder.enabled:
                    self.recorder.event(
                        "coordinator.round", round=self.rounds_total,
                        residual=resid, n_shards=self.n_shards,
                        wall_s=round_wall)
                    self.recorder.sample("coordinator.residual", resid)
                    total_demand = sum(sh.demand() for sh in self.shards)
                    for r in results:
                        sh = self.shards[r.shard]
                        self.recorder.event(
                            "shard.solve", shard=r.shard,
                            rows=sh.n_rows, sweeps=r.sweeps,
                            converged=r.converged,
                            demand_share=(sh.demand() / total_demand
                                          if total_demand > 0.0 else 0.0))
        finally:
            if transient is not None:
                transient.shutdown()
        if self.recorder.enabled and self._pool is not None:
            ds = self._pool.static_bytes - self._emitted_static
            dr = self._pool.round_bytes - self._emitted_round
            if ds:
                self.recorder.count("shard.bytes_static", ds)
            if dr:
                self.recorder.count("shard.bytes_round", dr)
            self._emitted_static = self._pool.static_bytes
            self._emitted_round = self._pool.round_bytes
        converged = resid <= tol
        if self.recorder.enabled:
            self.recorder.event(
                "coordinator.solve", rounds=rounds, residual=resid,
                converged=converged, n_shards=self.n_shards,
                n_classes=self.n_classes)
        return CoordinatorResult(rounds=rounds, sweeps=sweeps,
                                 residual=resid, converged=converged,
                                 wall_s=perf_counter() - t0)

    def _run_round(self, executor, damping: float) -> list:
        """One Jacobi round: broadcast backgrounds, gather shard responses.

        Backgrounds all come from the same pre-round load snapshot, so
        the round is order-independent — the three execution modes only
        differ in where the identical arithmetic runs.
        """
        cfg = self.config
        bgs = [self.background(s) for s in range(len(self.shards))]
        if executor is None:
            return [sh.solve_round(bgs[i], damping)
                    for i, sh in enumerate(self.shards)]
        if isinstance(executor, ShardWorkerPool):
            return executor.run_round(self.shards, bgs, damping)
        if cfg.mode == "thread":
            return list(executor.map(
                lambda pair: pair[0].solve_round(pair[1], damping),
                zip(self.shards, bgs)))
        payloads = [sh.round_payload(bgs[i], damping)
                    for i, sh in enumerate(self.shards)]
        from repro.core.shard import ShardRound
        results = []
        for sid, Q, swp, conv, fit in executor.map(run_shard_round,
                                                   payloads):
            self.shards[sid].adopt(Q)
            results.append(ShardRound(sid, self.shards[sid].loads.copy(),
                                      swp, conv, fit))
        return results

    # -- event / chunk routing ------------------------------------------------
    def _split_target(self, tokens: Sequence[bytes], masks: np.ndarray,
                      demands: np.ndarray) -> list:
        """Split a class target by owning shard; new tokens go lightest."""
        per: list[tuple[list, list, list]] = \
            [([], [], []) for _ in self.shards]
        totals = [sh.demand() for sh in self.shards]
        for i, t in enumerate(tokens):
            s = self._token_shard.get(t)
            if s is None:
                s = min(range(len(self.shards)),
                        key=lambda j: (totals[j], j))
                self._token_shard[t] = s
            totals[s] += float(demands[i])
            per[s][0].append(t)
            per[s][1].append(masks[i])
            per[s][2].append(float(demands[i]))
        out = []
        for tk, mk, dm in per:
            out.append((tk,
                        np.asarray(mk, dtype=bool).reshape(
                            len(tk), self.n_replicas),
                        np.asarray(dm, dtype=float)))
        return out

    @staticmethod
    def _touch_after(sh: SolveShard, n_before: int) -> None:
        """Post-mutation touch: geometry bump only on membership change.

        Demand and allocation updates ride the per-round delta (demands
        in the task, rows via the republished state block), so a shard
        whose class set is unchanged keeps its worker-side geometry
        cache warm; adding or removing a class re-ships the static.
        """
        if sh.state.n_classes != n_before:
            sh.touch()
        else:
            sh.touch_demands()

    def retarget(self, tokens: Sequence[bytes], masks: np.ndarray,
                 demands: np.ndarray) -> RoutedResult:
        """Move the plane to a new per-class demand target (chunk turnover).

        Each shard retargets its own slice incrementally against the
        other shards' loads; classes a shard owns that are absent from
        the target drain to zero inside that shard.  Full exchange
        rounds run only if the resulting global residual exceeds the
        refresh threshold, or as recovery when a shard declines.
        """
        masks = np.asarray(masks, dtype=bool)
        demands = np.asarray(demands, dtype=float)
        if masks.shape != (len(tokens), self.n_replicas) \
                or demands.shape != (len(tokens),):
            raise ValidationError("retarget shapes do not match tokens")
        split = self._split_target(tokens, masks, demands)
        events = 0
        sweeps = 0
        for s, sh in enumerate(self.shards):
            self.refresh_loads()
            sh.state.set_background(self.background(s))
            k0 = sh.state.n_classes
            r = sh.state.retarget(*split[s])
            if not r.ok:
                return self._recover(split, r.reason)
            self._touch_after(sh, k0)
            events += r.events
            sweeps += r.sweeps
        return self._maybe_refresh(events, sweeps)

    def install_target(self, tokens: Sequence[bytes], masks: np.ndarray,
                       demands: np.ndarray) -> None:
        """Force-install a class-demand target without re-solving.

        Unlike :meth:`retarget`, nothing is absorbed incrementally:
        every shard force-installs its slice of the target (keeping
        warm rows where shapes allow) and bumps its geometry version.
        The plane is left *out of tolerance* on purpose — callers run
        :meth:`solve` when ready.  The persistent-fleet benchmark uses
        this as untimed setup between its timed consecutive solves.
        """
        masks = np.asarray(masks, dtype=bool)
        demands = np.asarray(demands, dtype=float)
        if masks.shape != (len(tokens), self.n_replicas) \
                or demands.shape != (len(tokens),):
            raise ValidationError("retarget shapes do not match tokens")
        split = self._split_target(tokens, masks, demands)
        for s, sh in enumerate(self.shards):
            k0 = sh.state.n_classes
            sh.state.force_target(*split[s])
            self._touch_after(sh, k0)

    def force_retarget(self, tokens: Sequence[bytes], masks: np.ndarray,
                       demands: np.ndarray) -> CoordinatorResult:
        """:meth:`install_target` followed by a full :meth:`solve`."""
        self.install_target(tokens, masks, demands)
        return self.solve()

    def _recover(self, split: list, reason: str) -> RoutedResult:
        """A shard declined: force-target everything, re-fill with rounds."""
        self.fallbacks += 1
        if self.recorder.enabled:
            self.recorder.count("shard.fallback", reason=reason)
        for s, sh in enumerate(self.shards):
            k0 = sh.state.n_classes
            sh.state.force_target(*split[s])
            self._touch_after(sh, k0)
        res = self.solve()
        self.refreshes += 1
        return RoutedResult(ok=True, events=0, sweeps=res.sweeps,
                            rounds=res.rounds, refreshed=True,
                            residual=res.residual, fallback_reason=reason)

    def _maybe_refresh(self, events: int, sweeps: int) -> RoutedResult:
        """Schedule exchange rounds only when the residual drifted.

        The skew check runs first: a migration moves a class *with* its
        allocation, so it changes neither the loads nor the residual —
        re-partitioning rides along with routed events for free.
        """
        migrated = self.rebalance()
        resid = self.residual()
        rounds = 0
        refreshed = False
        if resid > self.config.refresh_residual:
            res = self.solve()
            resid = res.residual
            rounds = res.rounds
            sweeps += res.sweeps
            refreshed = True
            self.refreshes += 1
            if self.recorder.enabled:
                self.recorder.count("coordinator.refresh")
        self.events_applied += events
        return RoutedResult(ok=True, events=events, sweeps=sweeps,
                            rounds=rounds, refreshed=refreshed,
                            residual=resid, migrations=migrated)

    def apply_event(
            self, event: "ClientArrival | ClientDeparture | DemandChange"
    ) -> RoutedResult:
        """Route one client event to its owning shard; O(K_s * N).

        Arrivals go to their class's shard (new classes to the lightest
        shard); departures and demand changes follow the client's
        registration.  The shard absorbs the event incrementally against
        the other shards' loads; a decline is recovered in place with
        force-target + exchange rounds, so the plane never goes stale.
        """
        if isinstance(event, ClientArrival):
            token = np.asarray(event.eligibility, dtype=bool).tobytes()
            s = self._token_shard.get(token)
            if s is None:
                totals = [sh.demand() for sh in self.shards]
                s = min(range(len(self.shards)),
                        key=lambda j: (totals[j], j))
                self._token_shard[token] = s
        else:
            s = self._client_shard.get(event.client)
            if s is None:
                raise ValidationError(f"unknown client {event.client!r}")
        self.refresh_loads()
        sh = self.shards[s]
        sh.state.set_background(self.background(s))
        k0 = sh.state.n_classes
        r = sh.state.apply_event(event)
        if r.ok:
            self._touch_after(sh, k0)
            if isinstance(event, ClientArrival):
                self._client_shard[event.client] = s
            elif isinstance(event, ClientDeparture):
                self._client_shard.pop(event.client, None)
            if self.recorder.enabled:
                self.recorder.count("shard.event", shard=s)
            return self._maybe_refresh(r.events, r.sweeps)
        return self._recover_event(sh, event, r.reason)

    def _recover_event(self, sh: SolveShard, event,
                       reason: str) -> RoutedResult:
        """Absorb a declined event through force-target + full rounds.

        Capacity/convergence declines happen after the class demand was
        updated; drift/stale declines before — so the event's delta is
        folded into the forced target only in the latter case, and the
        registry update the decline skipped is replayed explicitly.
        """
        self.fallbacks += 1
        if self.recorder.enabled:
            self.recorder.count("shard.fallback", reason=reason)
        st = sh.state
        k0 = st.n_classes
        target = {t: float(st.D[k]) for k, t in enumerate(st.tokens)}
        if isinstance(event, ClientArrival):
            token = np.asarray(event.eligibility, dtype=bool).tobytes()
            if reason not in _DELTA_APPLIED:
                target[token] = target.get(token, 0.0) + float(event.demand)
        else:
            reg = st.registered(event.client)
            if reg is None:
                raise ValidationError(f"unknown client {event.client!r}")
            token, old = reg
            if reason not in _DELTA_APPLIED:
                if isinstance(event, ClientDeparture):
                    target[token] = max(target.get(token, 0.0) - old, 0.0)
                else:
                    target[token] = max(
                        target.get(token, 0.0) - old + float(event.demand),
                        0.0)
        toks = list(st.tokens)
        st.force_target(toks, st.masks,
                        np.array([target.get(t, 0.0) for t in toks]))
        if isinstance(event, ClientArrival):
            st.register_client(event.client, token, float(event.demand))
            self._client_shard[event.client] = sh.shard_id
        elif isinstance(event, ClientDeparture):
            st.deregister_client(event.client)
            self._client_shard.pop(event.client, None)
        else:
            st.register_client(event.client, token, float(event.demand))
        self._touch_after(sh, k0)
        res = self.solve()
        self.refreshes += 1
        return RoutedResult(ok=True, events=1, sweeps=res.sweeps,
                            rounds=res.rounds, refreshed=True,
                            residual=res.residual, fallback_reason=reason)

    # -- membership -----------------------------------------------------------
    def fail_replica(self, index: int) -> None:
        """Drop a dead replica's column across every shard, mid-flight.

        Shard-local warm caches are invalidated (membership change) and
        a class left with positive demand but no eligible replica raises
        :class:`~repro.errors.InfeasibleProblemError` — the same
        contract the monolithic runtime enforces via its feasibility
        checks.  Call :meth:`solve` afterwards to re-spread the dead
        column's load.
        """
        j = int(index)
        if not 0 <= j < self.n_replicas:
            raise ValidationError("replica index out of range")
        self.B[j] = 0.0
        for sh in self.shards:
            sh.drop_replica(j)
            if sh.warm_cache is not None:
                sh.warm_cache.invalidate()
            st = sh.state
            orphaned = (st.D > 0.0) & ~st.masks.any(axis=1)
            if orphaned.any():
                raise InfeasibleProblemError(
                    "a class has positive demand but no eligible replica "
                    "after the replica failure")
        self.refresh_loads()

    # -- elasticity: migration, re-partitioning, sizing ------------------------
    def demand_skew(self) -> float:
        """Heaviest shard's demand over the mean shard demand (>= 1)."""
        if len(self.shards) < 2:
            return 1.0
        demands = [sh.demand() for sh in self.shards]
        total = sum(demands)
        if total <= 0.0:
            return 1.0
        return max(demands) * len(demands) / total

    def migrate_class(self, token: bytes, dest: int) -> None:
        """Move one class row to shard ``dest`` — warm rows, clients, all.

        The row leaves *with* its allocation, so the aggregate loads —
        and therefore the residual — are unchanged: a migration never
        needs a re-solve and is safe mid-stream.  Both shards bump
        their geometry version, so the worker fleet re-ships exactly
        those two on the next round.
        """
        src = self._token_shard.get(token)
        if src is None:
            raise ValidationError("unknown class token")
        dest = int(dest)
        if not 0 <= dest < len(self.shards):
            raise ValidationError("destination shard out of range")
        if dest == src:
            return
        elig, demand, row, moved = self.shards[src].extract_class(token)
        self.shards[dest].install_class(token, elig, demand, row, moved)
        self._token_shard[token] = dest
        for c in moved:
            self._client_shard[c] = dest
        self.migrations += 1
        if self.recorder.enabled:
            self.recorder.count("coordinator.migration")

    def rebalance(self, max_moves: int | None = None) -> int:
        """Deterministic greedy skew repair; returns classes migrated.

        While the heaviest shard's demand exceeds ``rebalance_skew``
        times the mean, its largest class that fits within half the
        heavy/light gap moves to the lightest shard (ties broken by
        token so every execution mode picks the same class).  Decisions
        read only class demands — no wall-clock — and every move
        conserves the allocation, so the plane needs neither teardown
        nor refresh on account of a migration.
        """
        cfg = self.config
        if cfg.rebalance_skew is None or len(self.shards) < 2:
            return 0
        budget = cfg.rebalance_max_moves if max_moves is None \
            else int(max_moves)
        skew_before = self.demand_skew()
        moves = 0
        while moves < budget and self.demand_skew() > cfg.rebalance_skew:
            demands = [sh.demand() for sh in self.shards]
            heavy = max(range(len(demands)),
                        key=lambda s: (demands[s], -s))
            light = min(range(len(demands)),
                        key=lambda s: (demands[s], s))
            gap = demands[heavy] - demands[light]
            st = self.shards[heavy].state
            best = None
            for k, t in enumerate(st.tokens):
                d = float(st.D[k])
                if 0.0 < d <= 0.5 * gap + 1e-12 \
                        and (best is None or (d, t) > best):
                    best = (d, t)
            if best is None:
                break
            self.migrate_class(best[1], light)
            moves += 1
        if moves and self.recorder.enabled:
            self.recorder.event(
                "coordinator.repartition", moves=moves,
                n_shards=self.n_shards, skew_before=skew_before,
                skew_after=self.demand_skew())
        return moves

    def suggest_n_shards(self, max_shards: int | None = None) -> int:
        """Fit the measured round-time curve; suggest a shard count.

        A least-squares fit of ``wall ~ a + b * max_rows`` over the
        recent round samples yields a per-row cost ``b`` and a fixed
        overhead ``a`` whose per-shard share approximates the dispatch
        cost; both feed :func:`tune_shard_count`.  Wall-clock informed,
        hence advisory only: callers decide when to act on it, and
        nothing in the arithmetic path ever consults it.
        """
        current = len(self.shards)
        hi = max_shards if max_shards is not None else max(
            resolve_workers(max(self.n_classes, 1),
                            self.config.max_workers), current)
        hi = max(1, min(int(hi), max(self.n_classes, 1)))
        stats = list(self._round_stats)
        if len(stats) < 4:
            return current
        rows = np.array([s[1] for s in stats], dtype=float)
        walls = np.array([s[2] for s in stats], dtype=float)
        if float(rows.std()) <= 0.0:
            return current
        A = np.stack([np.ones_like(rows), rows], axis=1)
        (a, b), *_ = np.linalg.lstsq(A, walls, rcond=None)
        if b <= 0.0:
            return current
        mean_shards = float(np.mean([s[0] for s in stats]))
        dispatch = max(float(a), 0.0) / max(mean_shards, 1.0)
        return tune_shard_count(self.n_classes, float(b), dispatch, hi)

    def resize(self, n_shards: int) -> None:
        """Re-partition every class onto ``n_shards`` shards, warm.

        Classes move with their allocation rows and client registries,
        so the aggregate loads — and the residual — survive the resize.
        Shard-local warm caches are reused positionally, and the
        persistent worker fleet stays up: the new shard geometries
        simply ship on the next exchange round.
        """
        n = int(n_shards)
        if n < 1:
            raise ValidationError("n_shards must be >= 1")
        if n == len(self.shards):
            return
        old_n = len(self.shards)
        old_caches = [sh.warm_cache for sh in self.shards]
        entries = []
        for sh in self.shards:
            for t in list(sh.state.tokens):
                entries.append((t,) + sh.extract_class(t))
        demands = np.array([e[2] for e in entries], dtype=float)
        shard_of = partition_classes(demands, n)
        cfg = self.config
        self.shards = []
        for s in range(n):
            self.shards.append(SolveShard(
                s, tokens=[], demands=np.zeros(0),
                capacities=self.B, prices=self.u, alpha=self.alpha,
                beta=self.beta, gamma=self.gamma,
                mask=np.zeros((0, self.n_replicas), dtype=bool),
                warm_cache=old_caches[s] if s < old_n else None,
                kkt_rtol=cfg.kkt_rtol, max_sweeps=cfg.max_sweeps,
                drift_limit=cfg.drift_limit))
        self._token_shard = {}
        self._client_shard = {}
        for i, (t, elig, demand, row, moved) in enumerate(entries):
            s = int(shard_of[i])
            self.shards[s].install_class(t, elig, demand, row, moved)
            self._token_shard[t] = s
            for c in moved:
                self._client_shard[c] = s
        self.refresh_loads()
        self.resizes += 1
        if self.recorder.enabled:
            self.recorder.event(
                "coordinator.resize", from_shards=old_n, to_shards=n,
                n_classes=len(entries))

    def auto_tune(self, max_shards: int | None = None) -> int:
        """Resize to the suggested shard count if it differs; return it."""
        n = self.suggest_n_shards(max_shards)
        if n != len(self.shards):
            self.resize(n)
        return n

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Release the persistent executors and their shared memory.

        Idempotent, and the coordinator stays usable afterwards: the
        next concurrent solve simply re-creates its executor lazily.
        """
        self._closed = True
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
            self._thread_pool = None

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # safety net; close() is the contract
        try:
            self.close()
        except Exception:
            pass

    # -- warm-start plumbing ---------------------------------------------------
    def warm_seed(self, replicas: Sequence[str], prices: np.ndarray) -> bool:
        """Seed every shard from its local cache; True if anything hit."""
        hits = [sh.warm_seed(replicas, prices) for sh in self.shards]
        if any(hits):
            self.refresh_loads()
        return any(hits)

    def store_warm(self, replicas: Sequence[str], prices: np.ndarray,
                   rounds: int, converged: bool) -> None:
        """Record every shard's rows in its local cache."""
        for sh in self.shards:
            sh.store_warm(replicas, prices, rounds, converged)


def solve_sharded(problem, n_shards: int = 4, *, mode: str = "serial",
                  config: ShardingConfig | None = None,
                  recorder: Recorder | None = None) -> Solution:
    """Solve one instance end-to-end through the sharded plane.

    Aggregates ``problem`` to class space, partitions the classes across
    shards, runs exchange rounds to the configured tolerance and expands
    the class rows back to a client-space :class:`Solution`.  With
    ``n_shards=1`` the plane degenerates and this delegates *literally*
    to :func:`repro.core.aggregate.solve_aggregated` — bit-identical to
    the monolithic aggregated solve by construction.
    """
    cfg = config if config is not None \
        else ShardingConfig(n_shards=n_shards, mode=mode)
    if cfg.n_shards == 1:
        return solve_aggregated(problem, "lddm")
    t0 = perf_counter()
    agg = aggregate_problem(problem)
    with ShardCoordinator(agg.problem.data, list(agg.structure.keys),
                          cfg, recorder=recorder) as coord:
        res = coord.solve()
        rows = coord.rows_for(list(agg.structure.keys))
    P = agg.structure.expand_rows(rows)
    return Solution(
        allocation=P,
        objective=model.total_energy(problem.data, P),
        iterations=res.rounds,
        converged=res.converged,
        method="sharded",
        solve_time_s=perf_counter() - t0,
        n_classes=agg.n_classes)

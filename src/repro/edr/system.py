"""EDRSystem: the full runtime wired together.

Builds the emulated cluster (nodes + PDUs + prices), the network, the
replica servers and client agents, then drives batched replica selection
with the configured algorithm (LDDM / CDPSM / Round-Robin) until every
request in the trace has been served.  Returns an
:class:`~repro.metrics.report.ExperimentResult` with per-replica energy
and cost, the makespan, and per-request response times — the raw material
for Figs. 3, 4, 6, 7, 8 and 9.

Harness notes (see DESIGN.md §5): clients broadcast requests to all live
replicas exactly as in the paper; the *lead* (first live) replica's intake
feeds the batch queue, and final ASSIGN decisions are announced by the
lead on behalf of the group.  The solve itself exchanges per-iteration
messages with the paper's exact pattern and counts via
:class:`~repro.edr.scheduler.DistributedSolveSession`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.baselines.round_robin import RoundRobinScheduler
from repro.cluster.datacenter import ReplicaSite
from repro.cluster.node import ReplicaNode
from repro.cluster.pdu import PowerSampler
from repro.cluster.power import SYSTEMG_POWER_MODEL, PowerModel
from repro.cluster.pricing import PriceSchedule
from repro.core.params import (
    PAPER_ALPHA,
    PAPER_BETA,
    PAPER_GAMMA,
    PAPER_MAX_LATENCY,
    ProblemData,
)
from repro.core.problem import ReplicaSelectionProblem
from repro.core.incremental import IncrementalState
from repro.core.warmstart import (
    AdaptiveBudget,
    WarmStartCache,
    project_warm_start,
    recover_mu,
)
from repro.edr.client import ClientAgent
from repro.edr.coordinator import ShardCoordinator, ShardingConfig
from repro.edr.membership import HeartbeatProtocol, MembershipRing
from repro.edr.scheduler import DistributedSolveSession, SolveTimingModel
from repro.edr.server import ReplicaServer
from repro.errors import SimulationError, ValidationError
from repro.metrics.latency import ResponseTimeStats
from repro.metrics.report import ExperimentResult
from repro.net.faults import FaultInjector
from repro.net.flows import FlowManager
from repro.net.topology import Topology
from repro.net.transport import Network
from repro.obs import NULL_RECORDER
from repro.sim.engine import Simulator
from repro.workload.requests import RequestTrace

__all__ = ["SolverOptions", "NetConfig", "FaultConfig", "RuntimeConfig",
           "EDRSystem"]


@dataclass
class SolverOptions:
    """Scheduling/solver knobs: which algorithm runs and how hard.

    One of :class:`RuntimeConfig`'s three composable sub-configs (with
    :class:`NetConfig` and :class:`FaultConfig`; the fourth,
    :class:`~repro.edr.coordinator.ShardingConfig`, nests under
    :attr:`sharding`).
    """

    #: "lddm" | "cdpsm" | "round_robin" | "weighted"
    algorithm: str = "lddm"
    solver_kwargs: dict = field(default_factory=dict)
    timing: SolveTimingModel = field(default_factory=SolveTimingModel)
    #: Solve each sub-batch in eligibility-class space (one super-client
    #: per distinct latency-mask row; see :mod:`repro.core.aggregate`).
    #: The reduction is exact — identical objective and per-client
    #: constraint satisfaction — while per-iteration local work drops
    #: from O(C*N) to O(K*N), and warm-start entries become keyed by
    #: class (so they survive client churn).  The per-iteration message
    #: pattern over the network is unchanged.
    aggregate: bool = True
    #: Warm-start each sub-batch solve from the previous round's projected
    #: solution (same live replicas and prices; see
    #: :mod:`repro.core.warmstart`).  Membership changes invalidate the
    #: cache, falling back to a cold start.
    warm_start: bool = True
    #: With warm starts on, adaptively shrink the per-batch iteration
    #: budget while warm solves keep converging early (reset to the full
    #: budget the moment one does not).
    adaptive_budget: bool = True
    #: Floor of the adaptive warm-start iteration budget.
    warm_budget_floor: int = 16
    #: Event-driven incremental path (see :mod:`repro.core.incremental`):
    #: small sub-batches are absorbed by updating the last converged
    #: class-space allocation one class-demand delta at a time on the
    #: lead replica — no per-iteration network rounds — falling back to
    #: the batch solve when the state declines (capacity, drift,
    #: convergence) or is keyed to different live replicas / prices.
    #: Requires ``aggregate=True`` (the state lives in class space).
    incremental: bool = False
    #: Sub-batches with at most this many distinct clients route through
    #: the incremental path; larger ones take the batch solve (their
    #: demand shift is no longer a small perturbation).
    incremental_max_clients: int = 4
    #: |class-demand delta| of one chunk transition, as a fraction of the
    #: previous chunk's total demand, beyond which the state requests a
    #: full solve (the drift fallback).  Consecutive sub-batches have
    #: disjoint clients, so an ordinary turnover (old classes drain, new
    #: ones fill) costs about old+new total — the default budgets for
    #: full turnover plus a growing batch; a sudden much-larger batch
    #: takes the batch solver.
    incremental_drift_limit: float = 2.5
    #: Sharded control plane (see :mod:`repro.edr.coordinator`): classes
    #: partition across independent solve shards and a coordinator
    #: reconciles replica capacity with dual-price exchange rounds.
    #: Chunks retarget shard-locally (each shard re-solves only its own
    #: rows against the others' loads) and full rounds run only when the
    #: global residual drifts.  Supersedes the ``incremental`` path when
    #: set; requires ``aggregate=True`` and ``algorithm="lddm"``.
    sharding: "ShardingConfig | None" = None
    #: Worker budget for the sharded plane's thread/process pools.
    #: ``None`` follows the process's CPU affinity mask (not the raw
    #: machine core count — container quotas and taskset masks are
    #: respected).  A :class:`~repro.edr.coordinator.ShardingConfig`
    #: with its own ``max_workers`` set wins over this knob.
    max_workers: int | None = None
    #: Capacity of the global warm-start cache; shard-local caches (one
    #: per shard when ``sharding`` is set) each get a fair share
    #: ``max(1, warm_cache_entries // n_shards)`` unless the
    #: :class:`~repro.edr.coordinator.ShardingConfig` overrides it — so
    #: K shards never multiply the cache memory K-fold silently.
    warm_cache_entries: int = 32
    #: For ``algorithm="weighted"``: fixed per-replica split weights
    #: (normalized internally).  A static, oblivious scheduler — used by
    #: the planning-model validation experiment and as an extra baseline.
    weights: Sequence[float] | None = None

    def __post_init__(self) -> None:
        if self.algorithm not in ("lddm", "cdpsm", "round_robin",
                                  "weighted"):
            raise ValidationError(f"unknown algorithm {self.algorithm!r}")
        if self.incremental and not self.aggregate:
            raise ValidationError(
                "incremental=True requires aggregate=True (the event "
                "state lives in eligibility-class space)")
        if self.incremental and self.incremental_max_clients < 1:
            raise ValidationError("incremental_max_clients must be >= 1")
        if self.warm_cache_entries < 1:
            raise ValidationError("warm_cache_entries must be >= 1")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValidationError("max_workers must be >= 1")
        if self.sharding is not None:
            if not self.aggregate:
                raise ValidationError(
                    "sharding requires aggregate=True (shards own "
                    "eligibility-class slices)")
            if self.algorithm != "lddm":
                raise ValidationError(
                    "sharding currently implements the LDDM-style "
                    "dual-price plane only")


@dataclass
class NetConfig:
    """Data-plane knobs: link capacities, latency bounds, flow engine."""

    #: MB/s per node (SystemG Ethernet).
    bandwidth: float = 100.0
    #: Optional per-replica NIC capacities (MB/s); overrides ``bandwidth``
    #: for the replicas (clients keep ``bandwidth``).  The paper's testbed
    #: is homogeneous; heterogeneous clusters are the common real case.
    bandwidths: Sequence[float] | None = None
    lan_latency: float = 0.0005      # one-way propagation (s)
    max_latency: float = PAPER_MAX_LATENCY   # the paper's T
    #: Coalesce each ASSIGN batch's downloads per (replica, client) pair
    #: into one weighted aggregate flow (weight = live request
    #: multiplicity; see :class:`~repro.net.flows.AggregateFlow`).  Exact
    #: under max-min fairness — every request completes at the instant
    #: its own flow would have — while the flow table and fair-share
    #: recompute scale with (replica, client) pairs per epoch instead of
    #: requests.  ``False`` restores one flow per request (the legacy
    #: data-plane cost profile, used by parity benches).
    coalesce: bool = True
    #: Fair-share allocator inside the :class:`~repro.net.flows.
    #: FlowManager`: ``"vector"`` (default) runs the numpy progressive-
    #: filling kernel over flat arrays; ``"scalar"`` keeps the dict-based
    #: oracle in the loop.
    flow_kernel: str = "vector"
    #: Drop per-request shares below this fraction of the request size and
    #: redistribute them over the kept replicas.  Slivers of a few MB keep
    #: a replica's execution window open for an entire download at almost
    #: no throughput benefit; the paper's clients open one download thread
    #: per *meaningfully loaded* replica.
    min_share_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.flow_kernel not in ("vector", "scalar"):
            raise ValidationError(f"unknown flow kernel {self.flow_kernel!r}")
        if self.bandwidths is not None and min(self.bandwidths) <= 0:
            raise ValidationError("bandwidths must be positive")


@dataclass
class FaultConfig:
    """Failure-detection and power-state knobs."""

    #: Run the ring failure detector (heartbeats over the transport).
    heartbeats: bool = False
    hb_interval: float = 0.05
    hb_timeout: float = 0.25
    #: Standby extension: replicas idle for this many seconds drop into a
    #: deep low-power state (``ReplicaNode.standby_w`` watts) until new
    #: work arrives.  ``None`` disables (the paper's setup: machines on
    #: 24x7, which its related-work section calls out as the waste).
    standby_after: float | None = None

    def __post_init__(self) -> None:
        if self.standby_after is not None and self.standby_after <= 0:
            raise ValidationError("standby_after must be positive")


#: Flat RuntimeConfig keyword -> the sub-config it migrated into.
_FLAT_TO_SUB: dict[str, str] = {
    **{f.name: "solver" for f in dataclasses.fields(SolverOptions)},
    **{f.name: "net" for f in dataclasses.fields(NetConfig)},
    **{f.name: "faults" for f in dataclasses.fields(FaultConfig)},
}

_UNSET = object()


class RuntimeConfig:
    """Scenario knobs for one runtime experiment.

    The documented constructor takes the three composable sub-configs::

        RuntimeConfig(solver=SolverOptions(algorithm="cdpsm"),
                      net=NetConfig(bandwidth=50.0),
                      faults=FaultConfig(heartbeats=True),
                      prices=(1, 8, 1))

    plus the scenario-level fields below.  Every field of a sub-config is
    also readable (and assignable) as a flat attribute on the config —
    ``cfg.algorithm`` is ``cfg.solver.algorithm`` — so downstream code
    never chases nesting.  Passing those fields as *flat constructor
    keywords* (``RuntimeConfig(algorithm="cdpsm")``) still works but is
    deprecated: it emits a :class:`DeprecationWarning` naming the
    offending keywords and folds them into the sub-configs.

    Scenario-level fields (not part of any sub-config):

    * ``prices`` — per-replica electricity prices (also fixes N);
    * ``alpha``/``beta``/``gamma`` — the paper's energy-model constants;
    * ``power_model``, ``pdu_rate_hz`` — metering;
    * ``poll_interval``, ``batch_capacity_fraction`` — batching driver;
    * ``price_schedule``, ``solve_with_stale_prices`` — dynamic tariffs
      (when set, each batch is solved at the prices in force at schedule
      time unless ``solve_with_stale_prices`` keeps the static vector);
    * ``recorder`` — optional :class:`~repro.obs.Recorder` threaded
      through the whole runtime (``None`` = shared no-op recorder;
      tracing requires serial ``jobs=1`` sweeps);
    * ``horizon`` — safety cap on simulated seconds.
    """

    def __init__(self, *, solver: SolverOptions | None = None,
                 net: NetConfig | None = None,
                 faults: FaultConfig | None = None,
                 prices: Sequence[float] = (1, 8, 1, 6, 1, 5, 2, 3),
                 alpha: float = PAPER_ALPHA, beta: float = PAPER_BETA,
                 gamma: float = PAPER_GAMMA,
                 power_model: PowerModel = SYSTEMG_POWER_MODEL,
                 pdu_rate_hz: float = 50.0, poll_interval: float = 0.02,
                 batch_capacity_fraction: float = 0.8,
                 price_schedule: "PriceSchedule | None" = None,
                 solve_with_stale_prices: bool = False,
                 recorder: "object | None" = None,
                 horizon: float = 100000.0, **flat) -> None:
        overrides: dict[str, dict] = {"solver": {}, "net": {}, "faults": {}}
        for key, value in flat.items():
            sub = _FLAT_TO_SUB.get(key)
            if sub is None:
                raise TypeError(
                    f"RuntimeConfig got an unexpected keyword argument "
                    f"{key!r}")
            overrides[sub][key] = value
        if flat:
            import warnings
            warnings.warn(
                f"flat RuntimeConfig keyword(s) {sorted(flat)} are "
                f"deprecated; pass them via the "
                f"SolverOptions/NetConfig/FaultConfig sub-configs "
                f"(e.g. RuntimeConfig(solver=SolverOptions(...)))",
                DeprecationWarning, stacklevel=2)
        self.solver = dataclasses.replace(
            solver if solver is not None else SolverOptions(),
            **overrides["solver"])
        self.net = dataclasses.replace(
            net if net is not None else NetConfig(), **overrides["net"])
        self.faults = dataclasses.replace(
            faults if faults is not None else FaultConfig(),
            **overrides["faults"])
        self.prices = prices
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.power_model = power_model
        self.pdu_rate_hz = pdu_rate_hz
        self.poll_interval = poll_interval
        self.batch_capacity_fraction = batch_capacity_fraction
        self.price_schedule = price_schedule
        self.solve_with_stale_prices = solve_with_stale_prices
        self.recorder = recorder
        self.horizon = horizon
        self._validate()

    @classmethod
    def from_flat(cls, **kwargs) -> "RuntimeConfig":
        """Build a config from flat keywords without the deprecation shim.

        The programmatic constructor for callers holding a flat option
        dict (experiment sweeps, CLI argument namespaces): migrated
        keys fold into their sub-configs silently, everything else
        passes through.  Explicit ``solver=``/``net=``/``faults=``
        sub-configs may be mixed in; flat keys override their fields.
        """
        subs: dict[str, dict] = {"solver": {}, "net": {}, "faults": {}}
        direct: dict = {}
        for key, value in kwargs.items():
            sub = _FLAT_TO_SUB.get(key)
            if sub is None:
                direct[key] = value
            else:
                subs[sub][key] = value
        for name, klass in (("solver", SolverOptions), ("net", NetConfig),
                            ("faults", FaultConfig)):
            base = direct.pop(name, None)
            if subs[name] or base is not None:
                direct[name] = dataclasses.replace(
                    base if base is not None else klass(), **subs[name])
        return cls(**direct)

    def _validate(self) -> None:
        """Cross-field checks spanning sub-configs and scenario fields."""
        if self.algorithm == "weighted":
            if self.weights is None or len(self.weights) != len(self.prices):
                raise ValidationError(
                    "weighted scheduling needs one weight per replica")
            if min(self.weights) < 0 or sum(self.weights) <= 0:
                raise ValidationError("weights must be nonnegative, not all 0")
        if not 0 < self.batch_capacity_fraction <= 1:
            raise ValidationError("batch_capacity_fraction must be in (0, 1]")
        if self.price_schedule is not None \
                and self.price_schedule.n_replicas != len(self.prices):
            raise ValidationError(
                "price_schedule replica count must match prices length")
        if self.bandwidths is not None \
                and len(self.bandwidths) != len(self.prices):
            raise ValidationError(
                "bandwidths must have one entry per replica")

    def __repr__(self) -> str:
        return (f"RuntimeConfig(solver={self.solver!r}, net={self.net!r}, "
                f"faults={self.faults!r}, prices={self.prices!r})")

    def replica_bandwidths(self):
        """Per-replica NIC capacities as an array."""
        import numpy as _np
        if self.bandwidths is not None:
            return _np.asarray(self.bandwidths, dtype=float)
        return _np.full(len(self.prices), float(self.bandwidth))

    def prices_at(self, t: float):
        """Per-replica prices the *scheduler* sees at simulated time ``t``."""
        if self.price_schedule is not None and not self.solve_with_stale_prices:
            return self.price_schedule.prices_at(t)
        import numpy as _np
        return _np.asarray(self.prices, dtype=float)


def _mirror_flat(sub: str, name: str) -> property:
    """A flat RuntimeConfig attribute reading/writing through a sub-config."""
    def _get(self):
        return getattr(getattr(self, sub), name)

    def _set(self, value):
        setattr(getattr(self, sub), name, value)

    return property(_get, _set, doc=f"Mirror of ``{sub}.{name}``.")


for _sub_name, _sub_cls in (("solver", SolverOptions), ("net", NetConfig),
                            ("faults", FaultConfig)):
    for _f in dataclasses.fields(_sub_cls):
        setattr(RuntimeConfig, _f.name, _mirror_flat(_sub_name, _f.name))
del _sub_name, _sub_cls, _f


class EDRSystem:
    """One fully wired runtime scenario."""

    def __init__(self, trace: RequestTrace, config: RuntimeConfig | None = None,
                 n_replicas: int | None = None,
                 topology: Topology | None = None) -> None:
        self.config = config or RuntimeConfig()
        cfg = self.config
        self.recorder = cfg.recorder if cfg.recorder is not None \
            else NULL_RECORDER
        self.trace = trace
        n_rep = n_replicas if n_replicas is not None else len(cfg.prices)
        if len(cfg.prices) != n_rep:
            raise ValidationError("prices length must match replica count")
        self.replica_names = [f"replica{i + 1}" for i in range(n_rep)]
        self.client_names = list(trace.clients)
        if not self.client_names:
            raise ValidationError("trace has no requests")

        # -- substrate ------------------------------------------------------
        self.sim = Simulator()
        all_nodes = self.replica_names + self.client_names
        if topology is not None:
            self.topology = topology
        elif cfg.bandwidths is None:
            self.topology = Topology.lan(
                all_nodes, latency=cfg.lan_latency, capacity=cfg.bandwidth)
        else:
            n_all = len(all_nodes)
            lat = np.full((n_all, n_all), float(cfg.lan_latency))
            np.fill_diagonal(lat, 0.0)
            caps = np.concatenate([cfg.replica_bandwidths(),
                                   np.full(len(self.client_names),
                                           float(cfg.bandwidth))])
            self.topology = Topology(all_nodes, lat, caps)
        self.network = Network(self.sim, self.topology,
                               recorder=self.recorder)
        self.flows = FlowManager(self.sim, self.topology,
                                 crashed=self.network.is_crashed,
                                 kernel=cfg.flow_kernel,
                                 recorder=self.recorder)
        self.faults = FaultInjector(self.sim, self.network, self.flows,
                                    on_restore=self._on_node_restored)

        # -- cluster -----------------------------------------------------------
        self.nodes: dict[str, ReplicaNode] = {}
        self.sites: list[ReplicaSite] = []
        for i, name in enumerate(self.replica_names):
            node = ReplicaNode(
                name, cfg.power_model,
                net_probe=(lambda n=name: self.flows.utilization(n)))
            self.nodes[name] = node
            meter = PowerSampler(self.sim, node, rate_hz=cfg.pdu_rate_hz)
            self.sites.append(ReplicaSite(
                node=node, meter=meter,
                price_cents_per_kwh=float(cfg.prices[i]), index=i))

        # -- membership --------------------------------------------------------
        self.ring = MembershipRing(list(self.replica_names),
                                   recorder=self.recorder)
        self.heartbeats = None
        if cfg.heartbeats:
            self.heartbeats = HeartbeatProtocol(
                self.sim, self.network, self.ring,
                interval=cfg.hb_interval, timeout=cfg.hb_timeout)

        # -- agents -------------------------------------------------------------
        self._batch: list[dict] = []
        self.servers: dict[str, ReplicaServer] = {}
        for name in self.replica_names:
            server = ReplicaServer(self.sim, self.network, self.nodes[name],
                                   on_request=self._on_request)
            self.servers[name] = server
            self.faults.register_process(name, server._listener)
        self.stats = ResponseTimeStats()
        by_client = {c: [] for c in self.client_names}
        for req in trace:
            by_client[req.client].append(req)
        self.clients: dict[str, ClientAgent] = {}
        self._delivered_mb = 0.0
        self._transferred_mb: dict[str, float] = {}
        for cname in self.client_names:
            self.clients[cname] = ClientAgent(
                self.sim, self.network, self.flows, cname,
                by_client[cname], live_replicas=lambda: self.ring.live,
                stats=self.stats,
                on_transfer_event=self._on_transfer_event,
                on_delivered=self._on_delivered,
                coalesce=cfg.coalesce, recorder=self.recorder)
        # Crash hook: when the network declares a node crashed, take it off
        # the ring immediately unless heartbeats are doing the detection.
        self._batches_solved = 0
        self._solve_time_total = 0.0
        self._solve_iterations = 0
        # Per-replica execution windows (paper accounting: each replica's
        # energy is integrated until *it* finishes its work — selection
        # rounds plus its own transfers; see Figs. 3-4 where per-replica
        # execution times differ and unselected replicas stay short/low).
        self._busy_end: dict[str, float] = {n: 0.0 for n in self.replica_names}
        # Persistent round-robin state (only used by that algorithm): the
        # cursor and in-flight commitments live across batches.
        self._rr_sched: RoundRobinScheduler | None = None
        # Cross-batch warm-start state (LDDM/CDPSM): cache of converged
        # allocations + duals, the adaptive iteration budget, and the live
        # set the cache was built against (membership change -> flush).
        self._warm_cache = WarmStartCache(max_entries=cfg.warm_cache_entries)
        self._warm_budget = AdaptiveBudget(floor=cfg.warm_budget_floor)
        self._warm_live: tuple[str, ...] = tuple(self.ring.live)
        self._warm_solves = 0
        self._cold_solves = 0
        # Incremental event path: the converged class-space state from the
        # last batch solve, keyed to (live replicas, prices) like a warm
        # cache entry; rebuilt after every batch solve, dropped on decline.
        self._inc_state: "IncrementalState | None" = None
        self._inc_key: tuple | None = None
        self._inc_events = 0
        self._inc_chunks = 0
        self._inc_fallbacks = 0
        # Sharded control plane: a persistent coordinator keyed to (live
        # replicas, prices) like the incremental state, plus one
        # shard-local warm cache per shard (sized from the global
        # warm_cache_entries budget so shards don't multiply memory).
        self._shard_coord: "ShardCoordinator | None" = None
        self._shard_key: tuple | None = None
        self._shard_cfg: "ShardingConfig | None" = None
        self._shard_chunks = 0
        self._shard_events = 0
        self._shard_rounds = 0
        self._shard_refreshes = 0
        self._shard_fallbacks = 0
        self._shard_migrations = 0
        self._shard_caches: list[WarmStartCache] | None = None
        if cfg.sharding is not None:
            per_shard = cfg.sharding.warm_cache_entries \
                if cfg.sharding.warm_cache_entries is not None \
                else max(1, cfg.warm_cache_entries // cfg.sharding.n_shards)
            self._shard_caches = [WarmStartCache(max_entries=per_shard)
                                  for _ in range(cfg.sharding.n_shards)]
            # The runtime-level worker budget flows into the shard
            # config unless the latter pins its own.
            self._shard_cfg = cfg.sharding
            if cfg.max_workers is not None \
                    and cfg.sharding.max_workers is None:
                self._shard_cfg = dataclasses.replace(
                    cfg.sharding, max_workers=cfg.max_workers)
        if cfg.standby_after is not None:
            if cfg.standby_after <= 0:
                raise ValidationError("standby_after must be positive")
            for name in self.replica_names:
                self.sim.process(self._standby_watchdog(name))
        self._driver = self.sim.process(self._drive())

    def _standby_watchdog(self, name: str):
        """Drop ``name`` into standby after a sustained idle stretch."""
        from repro.cluster.node import NodeActivity
        node = self.nodes[name]
        timeout = self.config.standby_after
        idle_since = self.sim.now
        prev = node.activity
        while True:
            yield self.sim.timeout(timeout / 4.0)
            activity = node.activity
            if activity is not prev:
                prev = activity
                idle_since = self.sim.now
                continue
            if activity is NodeActivity.IDLE \
                    and self.sim.now - idle_since >= timeout:
                node.set_activity(NodeActivity.STANDBY, now=self.sim.now)
                prev = NodeActivity.STANDBY

    # -- callbacks -----------------------------------------------------------
    def lead(self) -> str:
        """The current lead replica (first live ring member)."""
        live = self.ring.live
        if not live:
            raise SimulationError("no live replicas remain")
        return live[0]

    def _on_request(self, server: ReplicaServer, msg) -> None:
        if server.name != self.lead():
            return  # every replica hears the broadcast; the lead batches it
        self._batch.append(dict(msg.payload))

    def _on_transfer_event(self, replica: str, what: str,
                           size_mb: float) -> None:
        server = self.servers.get(replica)
        if server is None:
            return
        if what == "start":
            server.transfer_started()
            self._transferred_mb[replica] = \
                self._transferred_mb.get(replica, 0.0) + size_mb
        else:
            server.transfer_finished()
            self._busy_end[replica] = max(self._busy_end[replica],
                                          self.sim.now)
            if self._rr_sched is not None:
                self._rr_sched.release(replica, size_mb)

    def _on_delivered(self, _client: str, mb: float) -> None:
        self._delivered_mb += mb

    # -- batching --------------------------------------------------------------
    def _live_bandwidths(self) -> np.ndarray:
        """NIC capacities of the live replicas, in ring order."""
        bw = self.config.replica_bandwidths()
        return np.array([bw[self.replica_names.index(r)]
                         for r in self.ring.live])

    def _sub_batches(self, batch: list[dict]) -> list[list[dict]]:
        """Split a batch so each chunk's demand fits live capacity."""
        live_bw = self._live_bandwidths()
        cap = self.config.batch_capacity_fraction \
            * float(live_bw.sum() if live_bw.size else
                    self.config.bandwidth)
        chunks: list[list[dict]] = []
        current: list[dict] = []
        load = 0.0
        for item in batch:
            if current and load + item["size"] > cap:
                chunks.append(current)
                current, load = [], 0.0
            current.append(item)
            load += item["size"]
        if current:
            chunks.append(current)
        return chunks

    def _build_problem(self, chunk: list[dict]
                       ) -> tuple[ReplicaSelectionProblem, list[str], dict]:
        """Problem instance over the chunk's clients and live replicas."""
        cfg = self.config
        live = self.ring.live
        demands: dict[str, float] = {}
        for item in chunk:
            demands[item["client"]] = demands.get(item["client"], 0.0) \
                + item["size"]
        clients = sorted(demands)
        mask = self.topology.eligibility(clients, live, cfg.max_latency)
        now_prices = cfg.prices_at(self.sim.now)
        data = ProblemData(
            demands=[demands[c] for c in clients],
            capacities=self._live_bandwidths(),
            prices=[now_prices[self.replica_names.index(r)] for r in live],
            alpha=cfg.alpha, beta=cfg.beta, gamma=cfg.gamma, mask=mask)
        return ReplicaSelectionProblem(data), clients, demands

    def _shares_per_request(self, chunk, clients, demands,
                            allocation, live) -> dict[str, dict]:
        """Split per-client allocations back to per-request shares.

        Shares smaller than ``min_share_fraction`` of the request are
        dropped and their mass redistributed proportionally over the kept
        replicas (see :class:`RuntimeConfig`).
        """
        min_frac = self.config.min_share_fraction
        out: dict[str, dict] = {}
        for item in chunk:
            c_idx = clients.index(item["client"])
            frac = item["size"] / demands[item["client"]]
            raw = {live[n]: float(allocation[c_idx, n]) * frac
                   for n in range(len(live))
                   if allocation[c_idx, n] * frac > 1e-12}
            total = sum(raw.values())
            kept = {r: v for r, v in raw.items()
                    if v >= min_frac * item["size"]}
            if not kept:  # degenerate: keep the single largest share
                best = max(raw, key=raw.get)
                kept = {best: raw[best]}
            scale = total / sum(kept.values())
            shares = {r: v * scale for r, v in kept.items()}
            out[item["uid"]] = {"client": item["client"], "shares": shares}
        return out

    # -- the epoch driver ---------------------------------------------------------
    def _drive(self):
        cfg = self.config
        total_mb = self.trace.total_mb()
        while True:
            if self._batch:
                batch, self._batch = self._batch, []
                for chunk in self._sub_batches(batch):
                    yield from self._schedule_chunk(chunk)
                continue
            done = (self.stats.pending == 0
                    and len(self.flows.active) == 0
                    and self._delivered_mb >= total_mb - 1e-6
                    and all(not c._issuer.is_alive
                            for c in self.clients.values()))
            if done:
                return
            yield self.sim.timeout(cfg.poll_interval)

    def _schedule_chunk(self, chunk: list[dict]):
        cfg = self.config
        live = self.ring.live
        problem, clients, demands = self._build_problem(chunk)
        if cfg.algorithm == "weighted":
            # Static proportional split: every request divided by the
            # fixed weights over its *eligible* replicas.  One RTT of
            # decision latency, like round-robin.
            yield self.sim.timeout(2 * cfg.lan_latency + 1e-4)
            w_all = np.asarray(cfg.weights, dtype=float)
            assignments = {}
            for item in chunk:
                elig = self.topology.eligibility(
                    [item["client"]], live, cfg.max_latency)[0]
                w = np.array([w_all[self.replica_names.index(r)]
                              for r in live]) * elig
                if w.sum() <= 0:
                    w = elig.astype(float)
                if w.sum() <= 0:
                    # No eligible live replica at all (every replica
                    # within the latency bound is dead): fail over to the
                    # nearest live one rather than divide by zero into
                    # NaN shares that corrupt transfer accounting.
                    nearest = int(np.argmin([
                        self.topology.latency(item["client"], r)
                        for r in live]))
                    w = np.zeros(len(live))
                    w[nearest] = 1.0
                w = w / w.sum()
                assignments[item["uid"]] = {
                    "client": item["client"],
                    "shares": {live[n]: float(w[n] * item["size"])
                               for n in range(len(live)) if w[n] > 0}}
        elif cfg.algorithm == "round_robin":
            # Per-request cyclic assignment; one RTT of decision latency.
            # The scheduler persists across batches (cursor + commitments)
            # but is rebuilt if the live replica set changed.
            if self._rr_sched is None or self._rr_sched.replicas != live:
                self._rr_sched = RoundRobinScheduler(
                    live, self._live_bandwidths(),
                    eligibility={
                        c: self.topology.eligibility(
                            [c], live, cfg.max_latency)[0]
                        for c in self.client_names})
            sched = self._rr_sched
            yield self.sim.timeout(2 * cfg.lan_latency + 1e-4)
            assignments = {}
            for item in chunk:
                from repro.workload.requests import Request
                replica = sched.assign(Request(
                    client=item["client"], arrival=self.sim.now,
                    size_mb=item["size"], app="runtime"))
                assignments[item["uid"]] = {
                    "client": item["client"],
                    "shares": {replica: item["size"]}}
        else:
            # Runtime defaults: bounded iteration budgets keep per-batch
            # decision latency in the paper's sub-200 ms regime (constant
            # steps reach a good neighborhood quickly; exact convergence
            # is not worth the decision latency at runtime).
            kwargs = {"max_iter": 150, "tol": 1e-3} \
                if cfg.algorithm == "lddm" else {"max_iter": 100, "tol": 1e-4}
            kwargs.update(cfg.solver_kwargs)
            # Class-space reduction: the solver (and the warm-start cache)
            # see one row per distinct eligibility pattern instead of one
            # per client; cache entries are keyed by the classes' packed
            # mask tokens, which outlive any particular client set.
            agg = problem.aggregated() if cfg.aggregate else None
            # Sharded control plane: the chunk retargets each shard's
            # own class rows against the other shards' loads; full
            # dual-price exchange rounds run only when the plane is
            # (re)built or the global residual drifts.
            if cfg.sharding is not None and agg is not None:
                yield from self._schedule_chunk_sharded(
                    chunk, clients, demands, problem, agg, live)
                return
            # Incremental event path: a small sub-batch is a per-class
            # demand delta on the last converged state — apply it on the
            # lead (one RTT + O(K*N) compute) instead of a batch solve.
            # The state is keyed to (live, prices) exactly like a warm
            # cache entry; any decline drops it and takes the batch path.
            inc_key = (tuple(live), problem.data.u.tobytes())
            if (cfg.incremental and agg is not None
                    and len(clients) <= cfg.incremental_max_clients
                    and self._inc_state is not None
                    and self._inc_key == inc_key):
                result = self._inc_state.retarget(
                    list(agg.structure.keys), agg.structure.masks,
                    agg.structure.demands)
                if result.ok:
                    # One RTT to the lead plus the O(K*N) update — no
                    # per-iteration solve rounds over the network.
                    delay = 2 * cfg.lan_latency + cfg.timing.event_time(
                        result.events, result.sweeps)
                    yield self.sim.timeout(delay)
                    tokens = list(agg.structure.keys)
                    rows = self._inc_state.rows_for(tokens)
                    self._inc_chunks += 1
                    self._inc_events += result.events
                    if cfg.warm_start:
                        # Keep the warm layer coherent: the next *batch*
                        # solve warm-starts from the updated allocation.
                        self._warm_cache.store(
                            live, problem.data.u, tokens, rows,
                            agg.structure.masks,
                            mu=self._inc_state.mu_for(tokens),
                            iterations=0, converged=True)
                    lead = live[0]
                    self._busy_end[lead] = max(self._busy_end[lead],
                                               self.sim.now)
                    rec = self.recorder
                    if rec.enabled:
                        rec.count("incremental.event", result.events)
                        rec.event(
                            "runtime.incremental", sim_time=self.sim.now,
                            n_requests=len(chunk), n_clients=len(clients),
                            events=result.events, sweeps=result.sweeps,
                            solve_sim_s=delay)
                    self._announce(self._shares_per_request(
                        chunk, clients, demands,
                        agg.structure.expand_rows(rows), live))
                    return
                self._inc_fallbacks += 1
                self._inc_state = None
                if self.recorder.enabled:
                    self.recorder.count("incremental.fallback",
                                        reason=result.reason)
            solve_problem = problem if agg is None else agg.problem
            warm_tokens = clients if agg is None else list(agg.structure.keys)
            warm_mask = solve_problem.data.mask
            initial = mu0 = None
            if cfg.warm_start:
                if tuple(live) != self._warm_live:
                    # Membership changed (death or rejoin): every cached
                    # allocation is stale — flush and cold start.
                    if len(self._warm_cache) and self.recorder.enabled:
                        self.recorder.count("warmstart.invalidation")
                    self._warm_cache.invalidate()
                    self._warm_budget.reset()
                    self._warm_live = tuple(live)
                entry = self._warm_cache.lookup(live, problem.data.u)
                if entry is not None:
                    initial = project_warm_start(entry, solve_problem,
                                                 warm_tokens)
                    if cfg.algorithm == "lddm":
                        mu0 = recover_mu(solve_problem, initial)
            warm = initial is not None
            base_iter = int(kwargs["max_iter"])
            if cfg.warm_start and cfg.adaptive_budget:
                kwargs["max_iter"] = self._warm_budget.budget(base_iter, warm)
            session = DistributedSolveSession(
                self.sim, self.network, problem, live, clients,
                cfg.algorithm, nodes=self.nodes, timing=cfg.timing,
                aggregation=agg, initial=initial, mu0=mu0,
                recorder=self.recorder, **kwargs)
            yield from session.run()
            self._solve_time_total += session.duration
            self._solve_iterations += session.iterations
            if warm:
                self._warm_solves += 1
            else:
                self._cold_solves += 1
            rec = self.recorder
            if rec.enabled:
                rec.count("warmstart.hit" if warm else "warmstart.miss")
                rec.event(
                    "runtime.batch", sim_time=self.sim.now,
                    algorithm=cfg.algorithm, n_requests=len(chunk),
                    n_clients=len(clients),
                    n_classes=None if agg is None else agg.n_classes,
                    iterations=session.iterations,
                    converged=session.converged, warm_started=warm,
                    solve_sim_s=session.duration)
            if cfg.warm_start:
                self._warm_budget.observe(
                    session.iterations, int(kwargs["max_iter"]),
                    session.converged, warm)
                self._warm_cache.store(
                    live, problem.data.u, warm_tokens,
                    session.solver_allocation, warm_mask,
                    mu=session.final_mu,
                    iterations=session.iterations,
                    converged=session.converged)
            for r in live:  # every live replica worked through the solve
                self._busy_end[r] = max(self._busy_end[r], self.sim.now)
            assignments = self._shares_per_request(
                chunk, clients, demands, session.allocation, live)
            if cfg.incremental and agg is not None:
                # Rebuild the event state from the converged class-space
                # allocation; subsequent small sub-batches at the same
                # (live, prices) key are absorbed as events.
                self._inc_state = IncrementalState(
                    solve_problem.data, list(agg.structure.keys),
                    session.solver_allocation,
                    drift_limit=cfg.incremental_drift_limit)
                self._inc_key = inc_key
        self._announce(assignments)

    def _schedule_chunk_sharded(self, chunk: list[dict], clients: list[str],
                                demands: dict, problem, agg, live):
        """Route one chunk through the sharded dual-price control plane.

        The coordinator persists across chunks under one (live replicas,
        prices) key — membership or price changes rebuild it (shard
        caches survive price rotations but not membership changes,
        mirroring the warm-start invalidation rules).  Decision latency
        charges one lead RTT plus the shard-local event work, plus one
        broadcast/gather RTT and the widest shard's compute per exchange
        round actually run.
        """
        cfg = self.config
        rec = self.recorder
        key = (tuple(live), problem.data.u.tobytes())
        tokens = list(agg.structure.keys)
        fallback_reason = None
        if self._shard_coord is None or self._shard_key != key:
            if self._shard_coord is not None:
                # Retire the stale plane: bank its migration count and
                # release its executors/shared memory before rebuilding.
                self._shard_migrations += self._shard_coord.migrations
                self._shard_coord.close()
            if self._shard_key is not None and self._shard_caches \
                    and self._shard_key[0] != key[0]:
                for cache in self._shard_caches:
                    cache.invalidate()
            coord = ShardCoordinator(
                agg.problem.data, tokens, self._shard_cfg,
                warm_caches=self._shard_caches, recorder=rec)
            warm = cfg.warm_start and coord.warm_seed(live, problem.data.u)
            res = coord.solve()
            self._shard_coord = coord
            self._shard_key = key
            if cfg.warm_start:
                coord.store_warm(live, problem.data.u, res.rounds,
                                 res.converged)
            if warm:
                self._warm_solves += 1
            else:
                self._cold_solves += 1
            events, sweeps = coord.n_classes, res.sweeps
            rounds, refreshed = res.rounds, True
        else:
            coord = self._shard_coord
            out = coord.retarget(tokens, agg.structure.masks,
                                 agg.structure.demands)
            events, sweeps = out.events, out.sweeps
            rounds, refreshed = out.rounds, out.refreshed
            fallback_reason = out.fallback_reason
            if fallback_reason is not None:
                self._shard_fallbacks += 1
            if cfg.warm_start and refreshed:
                coord.store_warm(live, problem.data.u, rounds, True)
        delay = 2 * cfg.lan_latency \
            + cfg.timing.event_time(events, sweeps) \
            + rounds * cfg.timing.round_time(coord.max_shard_rows,
                                             cfg.lan_latency)
        yield self.sim.timeout(delay)
        self._shard_chunks += 1
        self._shard_events += events
        self._shard_rounds += rounds
        if refreshed:
            self._shard_refreshes += 1
        self._solve_time_total += delay
        self._solve_iterations += rounds
        if rounds:
            # Exchange rounds involve every live replica (price
            # broadcast/gather); a shard-absorbed chunk only the lead.
            for r in live:
                self._busy_end[r] = max(self._busy_end[r], self.sim.now)
        else:
            lead = live[0]
            self._busy_end[lead] = max(self._busy_end[lead], self.sim.now)
        if rec.enabled:
            rec.count("shard.event", events)
            rec.event(
                "runtime.shard", sim_time=self.sim.now,
                n_requests=len(chunk), n_clients=len(clients),
                events=events, sweeps=sweeps, rounds=rounds,
                refreshed=refreshed, fallback=fallback_reason,
                solve_sim_s=delay)
        rows = coord.rows_for(tokens)
        self._announce(self._shares_per_request(
            chunk, clients, demands,
            agg.structure.expand_rows(rows), live))

    def _announce(self, assignments: dict) -> None:
        """Send a chunk's ASSIGN decisions from the lead replica."""
        self._batches_solved += 1
        if self.recorder.enabled:
            self.recorder.count("runtime.batches")
        lead_server = self.servers[self.lead()]
        per_client: dict[str, dict] = {}
        for uid, entry in assignments.items():
            per_client.setdefault(entry["client"], {})[uid] = entry["shares"]
        coalesce = self.config.coalesce
        for cname, shares in per_client.items():
            by_replica = None
            if coalesce:
                # Pre-group per source replica at the lead: the client
                # opens one aggregate download per entry.
                by_replica = {}
                for uid, req_shares in shares.items():
                    for replica, amount in req_shares.items():
                        if amount <= 0:
                            continue
                        by_replica.setdefault(replica, []).append(
                            (uid, amount))
            lead_server.send_assignment(cname, shares, self._batches_solved,
                                        by_replica=by_replica)

    # -- running ---------------------------------------------------------------------
    def crash_replica(self, name: str, at: float) -> None:
        """Schedule a crash of replica ``name`` at time ``at``.

        The crash drops its traffic and flows; the ring marks it dead —
        via heartbeats if enabled, else immediately (detection stand-in).
        """
        def _do():
            self.faults.crash(name)
            if not self.config.heartbeats:
                self.ring.mark_dead(name)
        self.sim.call_at(at, _do)

    def restore_replica(self, name: str, at: float) -> None:
        """Schedule a restore of replica ``name`` at time ``at``.

        The transport reconnects and the replica rejoins the ring — via
        the heartbeat protocol's rejoin path if enabled, else immediately.
        """
        self.sim.call_at(at, lambda: self.faults.restore(name))

    def _on_node_restored(self, name: str) -> None:
        """Fault-injector hook: re-admit restored replicas to the ring."""
        if name not in self.servers:
            return  # clients don't participate in the ring
        if self.heartbeats is not None:
            self.heartbeats.rejoin(name)
        else:
            self.ring.mark_alive(name)

    def run(self, app: str = "unknown") -> ExperimentResult:
        """Run to completion; returns the measured result."""
        cfg = self.config
        # Step until the driver finishes; PDUs/heartbeats tick forever, so
        # a plain run() would never drain the queue.
        while not self._driver.processed and self.sim.peek() <= cfg.horizon:
            self.sim.step()
        if not self._driver.triggered:
            raise SimulationError(
                f"run did not complete within horizon={cfg.horizon}s "
                f"(delivered {self._delivered_mb:.1f} MB of "
                f"{self.trace.total_mb():.1f})")
        makespan = self.sim.now
        for site in self.sites:
            site.meter.stop()
        if self.heartbeats is not None:
            self.heartbeats.stop()
        if self._shard_coord is not None:
            # Release the worker fleet's executors and shared memory;
            # the coordinator itself stays warm for a follow-up run.
            self._shard_coord.close()
        from repro.cluster.pricing import JOULES_PER_KWH
        # Paper accounting: integrate each replica's power over its own
        # execution window [0, busy_end] — a replica is "done" when it has
        # finished its selection work and its assigned transfers.
        joules = np.array([
            s.meter.profile.integrate_between(0.0, self._busy_end[s.name])
            for s in self.sites])
        if cfg.price_schedule is not None:
            cents = np.array([
                cfg.price_schedule.cost_cents(
                    i, s.meter.profile, self._busy_end[s.name])
                for i, s in enumerate(self.sites)])
        else:
            cents = np.array([
                j / JOULES_PER_KWH * s.price_cents_per_kwh
                for j, s in zip(joules, self.sites)])
        wall_joules = np.array([
            s.meter.profile.integrate_between(0.0, makespan)
            for s in self.sites])
        return ExperimentResult(
            method=cfg.algorithm, app=app,
            joules_by_replica=joules, cents_by_replica=cents,
            makespan=makespan,
            response_times=list(self.stats.samples),
            extras={
                "messages": self.network.messages_sent,
                "comm_mb": self.network.mb_sent,
                "batches": self._batches_solved,
                "solve_time": self._solve_time_total,
                "solve_iterations": self._solve_iterations,
                "warm_solves": self._warm_solves,
                "cold_solves": self._cold_solves,
                "incremental_chunks": self._inc_chunks,
                "incremental_events": self._inc_events,
                "incremental_fallbacks": self._inc_fallbacks,
                "shard_chunks": self._shard_chunks,
                "shard_events": self._shard_events,
                "shard_rounds": self._shard_rounds,
                "shard_refreshes": self._shard_refreshes,
                "shard_fallbacks": self._shard_fallbacks,
                "shard_migrations": self._shard_migrations + (
                    self._shard_coord.migrations
                    if self._shard_coord is not None else 0),
                "warm_cache_invalidations":
                    self._warm_cache.invalidations,
                "retries": sum(c.retries for c in self.clients.values()),
                "delivered_mb": self._delivered_mb,
                "flow_recomputes": self.flows.recomputes,
                "flows_settled": self.flows.parts_settled,
                "flows_coalesced": self.flows.parts_coalesced,
                "wall_clock_joules": wall_joules,
                "busy_end": dict(self._busy_end),
                "transferred_mb": dict(self._transferred_mb),
            })

    def power_profiles(self) -> dict[str, "np.ndarray"]:
        """Per-replica power profiles (the Fig. 3/4 time series)."""
        return {s.name: s.meter.profile for s in self.sites}

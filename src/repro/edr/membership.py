"""Ring membership and failure detection (Sec. III-C).

EDR guarantees reliability "by using a combination of time-out mechanism
and ring fault-tolerance structure": replicas heartbeat their ring
successor; a missed-heartbeat timeout marks the predecessor dead, the
survivor announces ``MEMBER_DEAD``, every replica drops the node from its
active member list, and the ring is rebuilt from the survivors.

:class:`MembershipRing` holds the shared membership logic;
:class:`HeartbeatProtocol` runs it over the network as simulated processes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.edr.messages import MsgKind, Ports
from repro.errors import MembershipError
from repro.net.transport import Network
from repro.obs import NULL_RECORDER
from repro.sim.process import Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["MembershipRing", "HeartbeatProtocol"]


class MembershipRing:
    """Active member list plus ring ordering.

    ``recorder`` (:mod:`repro.obs`) gets one ``membership`` event per
    transition — the churn signal runtime traces correlate with
    warm-start invalidations and solve-latency spikes.
    """

    def __init__(self, members: list[str], recorder=None) -> None:
        if not members:
            raise MembershipError("ring needs at least one member")
        if len(set(members)) != len(members):
            raise MembershipError("duplicate members")
        self._order = list(members)
        self._alive = set(members)
        self.events: list[tuple[str, str]] = []
        self.recorder = recorder if recorder is not None else NULL_RECORDER

    @property
    def live(self) -> list[str]:
        """Live members, in ring order."""
        return [m for m in self._order if m in self._alive]

    def is_alive(self, name: str) -> bool:
        """True while ``name`` is on the active member list."""
        return name in self._alive

    def successor(self, name: str) -> str:
        """The next live member clockwise from ``name``."""
        live = self.live
        if name not in live:
            raise MembershipError(f"{name} is not a live member")
        if len(live) == 1:
            return name
        return live[(live.index(name) + 1) % len(live)]

    def predecessor(self, name: str) -> str:
        """The previous live member counterclockwise from ``name``."""
        live = self.live
        if name not in live:
            raise MembershipError(f"{name} is not a live member")
        return live[(live.index(name) - 1) % len(live)]

    def mark_dead(self, name: str) -> None:
        """Remove ``name`` from the active member list (idempotent)."""
        if name in self._alive:
            self._alive.discard(name)
            self.events.append(("dead", name))
            if self.recorder.enabled:
                self.recorder.event("membership", change="dead", member=name)

    def mark_alive(self, name: str) -> None:
        """Re-admit a member (restart support)."""
        if name not in self._order:
            raise MembershipError(f"{name} was never a ring member")
        if name not in self._alive:
            self._alive.add(name)
            self.events.append(("alive", name))
            if self.recorder.enabled:
                self.recorder.event("membership", change="alive", member=name)


class HeartbeatProtocol:
    """Runs heartbeats around the ring and detects silent members.

    Each live replica sends a ``HEARTBEAT`` to its ring successor every
    ``interval`` seconds; each replica tracks the last heartbeat *it*
    received from its predecessor, and if nothing arrives within
    ``timeout`` seconds it declares the predecessor dead and broadcasts
    ``MEMBER_DEAD``.

    Detection state is purely local, as the paper's per-replica timeout
    requires: last-seen timestamps are keyed ``(observer, sender)``, so
    one member's observations never refresh another's window, and a
    watcher that gains a new predecessor (ring repair, startup, rejoin)
    opens a fresh window for it before judging it.

    Restored members are re-admitted with :meth:`rejoin`, which restarts
    the member's protocol processes and announces ``MEMBER_ALIVE``.
    """

    def __init__(self, sim: "Simulator", network: Network,
                 ring: MembershipRing, *, interval: float = 0.05,
                 timeout: float = 0.25,
                 on_death: Callable[[str], None] | None = None) -> None:
        if timeout <= interval:
            raise MembershipError("timeout must exceed heartbeat interval")
        self.sim = sim
        self.network = network
        self.ring = ring
        self.interval = float(interval)
        self.timeout = float(timeout)
        self.on_death = on_death
        #: (observer, sender) -> time the observer last heard the sender.
        self._last_seen: dict[tuple[str, str], float] = {}
        #: observer -> the predecessor its watch loop is currently timing.
        self._watching: dict[str, str] = {}
        self.processes = []
        self._procs: dict[str, list] = {}
        for member in ring.live:
            self._spawn(member)

    def _spawn(self, member: str) -> None:
        procs = [self.sim.process(self._beat(member)),
                 self.sim.process(self._listen(member)),
                 self.sim.process(self._watch(member))]
        self._procs[member] = procs
        self.processes.extend(procs)

    # -- per-member processes -------------------------------------------------
    def _participating(self, me: str) -> bool:
        """A member participates while alive on the ring and not crashed."""
        return self.ring.is_alive(me) and not self.network.is_crashed(me)

    def _beat(self, me: str):
        ep = self.network.endpoint(me)
        try:
            while self._participating(me):
                succ = self.ring.successor(me)
                if succ != me:
                    ep.send(succ, Ports.RING, MsgKind.HEARTBEAT, payload=me)
                yield self.sim.timeout(self.interval)
        except Interrupt:
            return

    def _listen(self, me: str):
        ep = self.network.endpoint(me)
        try:
            while True:
                msg = yield ep.recv(Ports.RING)
                if not self._participating(me):
                    return
                if msg.kind == MsgKind.HEARTBEAT:
                    self._last_seen[(me, msg.payload)] = self.sim.now
                elif msg.kind == MsgKind.MEMBER_DEAD:
                    self._declare_dead(msg.payload, announce=False)
                elif msg.kind == MsgKind.MEMBER_ALIVE:
                    self.ring.mark_alive(msg.payload)
        except Interrupt:
            return

    def _watch(self, me: str):
        try:
            while True:
                yield self.sim.timeout(self.interval)
                if not self._participating(me):
                    return
                pred = self.ring.predecessor(me)
                if self._watching.get(me) != pred:
                    # New predecessor (startup, ring repair, rejoin):
                    # open a fresh timeout window before judging it.
                    self._watching[me] = pred
                    self._last_seen[(me, pred)] = self.sim.now
                    continue
                if pred == me:
                    continue
                last = self._last_seen[(me, pred)]
                if self.sim.now - last > self.timeout:
                    self._declare_dead(pred, announce=True, reporter=me)
        except Interrupt:
            return

    def _declare_dead(self, name: str, announce: bool,
                      reporter: str | None = None) -> None:
        if not self.ring.is_alive(name):
            return
        self.ring.mark_dead(name)
        # Ring repair changes some watchers' predecessors; each watch loop
        # opens its own fresh window when it notices (no global re-seed —
        # refreshing *other* observers' timestamps here would let one
        # death postpone every pending detection indefinitely).
        if self.on_death is not None:
            self.on_death(name)
        if announce and reporter is not None:
            ep = self.network.endpoint(reporter)
            ep.broadcast(self.ring.live, Ports.RING, MsgKind.MEMBER_DEAD,
                         payload=name)

    # -- rejoin ----------------------------------------------------------------
    def rejoin(self, name: str) -> None:
        """Re-admit a restored member and restart its protocol processes.

        The member must be reachable again (transport restored).  Stale
        processes left over from before the crash are interrupted first —
        a still-blocked old listener would steal ring messages from the
        restarted one.  The member's own observation state is dropped (its
        watch loop re-seeds fresh windows lazily), and ``MEMBER_ALIVE`` is
        announced so the ring's watchers re-time their predecessors.
        """
        if self.network.is_crashed(name):
            raise MembershipError(f"{name} is still crashed")
        for proc in self._procs.get(name, []):
            if proc.is_alive:
                proc.defused = True
                proc.interrupt(f"rejoin:{name}")
        for key in [k for k in self._last_seen if k[0] == name]:
            del self._last_seen[key]
        self._watching.pop(name, None)
        self.ring.mark_alive(name)
        self._spawn(name)
        ep = self.network.endpoint(name)
        ep.broadcast(self.ring.live, Ports.RING, MsgKind.MEMBER_ALIVE,
                     payload=name)

    def stop(self) -> None:
        """Terminate all protocol processes."""
        for proc in self.processes:
            if proc.is_alive:
                proc.defused = True
                proc.interrupt("heartbeat stopped")

"""Ring membership and failure detection (Sec. III-C).

EDR guarantees reliability "by using a combination of time-out mechanism
and ring fault-tolerance structure": replicas heartbeat their ring
successor; a missed-heartbeat timeout marks the predecessor dead, the
survivor announces ``MEMBER_DEAD``, every replica drops the node from its
active member list, and the ring is rebuilt from the survivors.

:class:`MembershipRing` holds the shared membership logic;
:class:`HeartbeatProtocol` runs it over the network as simulated processes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.edr.messages import MsgKind, Ports
from repro.errors import MembershipError
from repro.net.transport import Network
from repro.sim.process import Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["MembershipRing", "HeartbeatProtocol"]


class MembershipRing:
    """Active member list plus ring ordering."""

    def __init__(self, members: list[str]) -> None:
        if not members:
            raise MembershipError("ring needs at least one member")
        if len(set(members)) != len(members):
            raise MembershipError("duplicate members")
        self._order = list(members)
        self._alive = set(members)
        self.events: list[tuple[str, str]] = []

    @property
    def live(self) -> list[str]:
        """Live members, in ring order."""
        return [m for m in self._order if m in self._alive]

    def is_alive(self, name: str) -> bool:
        """True while ``name`` is on the active member list."""
        return name in self._alive

    def successor(self, name: str) -> str:
        """The next live member clockwise from ``name``."""
        live = self.live
        if name not in live:
            raise MembershipError(f"{name} is not a live member")
        if len(live) == 1:
            return name
        return live[(live.index(name) + 1) % len(live)]

    def predecessor(self, name: str) -> str:
        """The previous live member counterclockwise from ``name``."""
        live = self.live
        if name not in live:
            raise MembershipError(f"{name} is not a live member")
        return live[(live.index(name) - 1) % len(live)]

    def mark_dead(self, name: str) -> None:
        """Remove ``name`` from the active member list (idempotent)."""
        if name in self._alive:
            self._alive.discard(name)
            self.events.append(("dead", name))

    def mark_alive(self, name: str) -> None:
        """Re-admit a member (restart support)."""
        if name not in self._order:
            raise MembershipError(f"{name} was never a ring member")
        if name not in self._alive:
            self._alive.add(name)
            self.events.append(("alive", name))


class HeartbeatProtocol:
    """Runs heartbeats around the ring and detects silent members.

    Each live replica sends a ``HEARTBEAT`` to its ring successor every
    ``interval`` seconds; each replica tracks the last heartbeat seen from
    its predecessor, and if nothing arrives within ``timeout`` seconds it
    declares the predecessor dead and broadcasts ``MEMBER_DEAD``.
    """

    def __init__(self, sim: "Simulator", network: Network,
                 ring: MembershipRing, *, interval: float = 0.05,
                 timeout: float = 0.25,
                 on_death: Callable[[str], None] | None = None) -> None:
        if timeout <= interval:
            raise MembershipError("timeout must exceed heartbeat interval")
        self.sim = sim
        self.network = network
        self.ring = ring
        self.interval = float(interval)
        self.timeout = float(timeout)
        self.on_death = on_death
        self._last_seen: dict[str, float] = {m: sim.now for m in ring.live}
        self.processes = []
        for member in ring.live:
            self.processes.append(sim.process(self._beat(member)))
            self.processes.append(sim.process(self._listen(member)))
            self.processes.append(sim.process(self._watch(member)))

    # -- per-member processes -------------------------------------------------
    def _participating(self, me: str) -> bool:
        """A member participates while alive on the ring and not crashed."""
        return self.ring.is_alive(me) and not self.network.is_crashed(me)

    def _beat(self, me: str):
        ep = self.network.endpoint(me)
        try:
            while self._participating(me):
                succ = self.ring.successor(me)
                if succ != me:
                    ep.send(succ, Ports.RING, MsgKind.HEARTBEAT, payload=me)
                yield self.sim.timeout(self.interval)
        except Interrupt:
            return

    def _listen(self, me: str):
        ep = self.network.endpoint(me)
        try:
            while True:
                msg = yield ep.recv(Ports.RING)
                if not self._participating(me):
                    return
                if msg.kind == MsgKind.HEARTBEAT:
                    self._last_seen[msg.payload] = self.sim.now
                elif msg.kind == MsgKind.MEMBER_DEAD:
                    self._declare_dead(msg.payload, announce=False)
        except Interrupt:
            return

    def _watch(self, me: str):
        try:
            while True:
                yield self.sim.timeout(self.interval)
                if not self._participating(me):
                    return
                pred = self.ring.predecessor(me)
                if pred == me:
                    continue
                last = self._last_seen.get(pred, 0.0)
                if self.sim.now - last > self.timeout:
                    self._declare_dead(pred, announce=True, reporter=me)
        except Interrupt:
            return

    def _declare_dead(self, name: str, announce: bool,
                      reporter: str | None = None) -> None:
        if not self.ring.is_alive(name):
            return
        self.ring.mark_dead(name)
        # Ring repair changes everyone's predecessor; grant the survivors a
        # fresh timeout window so stale timestamps don't cascade into
        # false positives.
        for member in self.ring.live:
            self._last_seen[member] = self.sim.now
        if self.on_death is not None:
            self.on_death(name)
        if announce and reporter is not None:
            ep = self.network.endpoint(reporter)
            ep.broadcast(self.ring.live, Ports.RING, MsgKind.MEMBER_DEAD,
                         payload=name)

    def stop(self) -> None:
        """Terminate all protocol processes."""
        for proc in self.processes:
            if proc.is_alive:
                proc.defused = True
                proc.interrupt("heartbeat stopped")

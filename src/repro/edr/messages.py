"""Protocol constants: ports (the paper's listener threads) and message kinds."""

from __future__ import annotations

__all__ = ["Ports", "MsgKind"]


class Ports:
    """Logical listener ports on each node (Fig. 2's threads)."""

    #: ClientListener — new client requests arrive here.
    CLIENT = "client"
    #: ReplicaListener — solver coordination between replicas.
    REPLICA = "replica"
    #: Client-side mailbox for scheduling decisions.
    ASSIGN = "assign"
    #: Membership/heartbeat traffic (the fault-tolerance ring).
    RING = "ring"


class MsgKind:
    """Application message type tags."""

    REQUEST = "REQUEST"            # client -> replicas: new demand
    SOLVE_SYNC = "SOLVE_SYNC"      # replica <-> replica: CDPSM solution share
    MU_UPDATE = "MU_UPDATE"        # client -> replica: LDDM dual price
    SOLUTION = "SOLUTION"          # replica -> client: LDDM column share
    ASSIGN = "ASSIGN"              # replica -> client: final share decision
    HEARTBEAT = "HEARTBEAT"        # ring liveness probe
    MEMBER_DEAD = "MEMBER_DEAD"    # failure announcement
    MEMBER_ALIVE = "MEMBER_ALIVE"  # rejoin announcement (restored member)

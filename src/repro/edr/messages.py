"""Protocol constants and typed wire schemas for the EDR control plane.

Two layers live here:

* the **in-sim protocol constants** (:class:`Ports`, :class:`MsgKind`) —
  the paper's listener threads and message tags used by the simulated
  transport; and
* the **typed wire models** — versioned, dataclass-based request/response
  schemas shared by the in-process control plane and the HTTP service
  (:mod:`repro.service`).  The library API and the wire API are the
  *same* contract: :class:`~repro.service.plane.ControlPlane`
  implementations exchange these models whether the transport is a
  function call or ``POST /v1/solve``.

Wire-model contract (enforced by ``tests/service/test_schemas.py``):

* ``to_json`` / ``from_json`` round-trip to an equal model;
* unknown fields in an incoming payload are tolerated (forward
  compatibility within a protocol version);
* a payload whose ``v`` field is missing, malformed, or newer than
  :data:`WIRE_VERSION` is rejected with
  :class:`~repro.errors.VersionMismatchError` — a peer speaking a newer
  protocol must not be half-parsed.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar

from repro.errors import VersionMismatchError, WireFormatError

__all__ = [
    "Ports",
    "MsgKind",
    "WIRE_VERSION",
    "WireModel",
    "SolveRequest",
    "SolveResponse",
    "WireEvent",
    "EventRequest",
    "EventResponse",
    "MembershipResponse",
    "RegisterRequest",
    "RegisterResponse",
    "HeartbeatRequest",
    "HeartbeatResponse",
    "HealthResponse",
    "ErrorResponse",
    "MODEL_TYPES",
    "parse_message",
]


class Ports:
    """Logical listener ports on each node (Fig. 2's threads)."""

    #: ClientListener — new client requests arrive here.
    CLIENT = "client"
    #: ReplicaListener — solver coordination between replicas.
    REPLICA = "replica"
    #: Client-side mailbox for scheduling decisions.
    ASSIGN = "assign"
    #: Membership/heartbeat traffic (the fault-tolerance ring).
    RING = "ring"


class MsgKind:
    """Application message type tags."""

    REQUEST = "REQUEST"            # client -> replicas: new demand
    SOLVE_SYNC = "SOLVE_SYNC"      # replica <-> replica: CDPSM solution share
    MU_UPDATE = "MU_UPDATE"        # client -> replica: LDDM dual price
    SOLUTION = "SOLUTION"          # replica -> client: LDDM column share
    ASSIGN = "ASSIGN"              # replica -> client: final share decision
    HEARTBEAT = "HEARTBEAT"        # ring liveness probe
    MEMBER_DEAD = "MEMBER_DEAD"    # failure announcement
    MEMBER_ALIVE = "MEMBER_ALIVE"  # rejoin announcement (restored member)


#: Wire protocol version this build speaks.  Bump on any incompatible
#: schema change; parsers reject payloads declaring a newer version.
WIRE_VERSION = 1

#: Payload keys consumed by the envelope, never mapped to model fields.
_ENVELOPE_KEYS = ("v", "type")


def _plain(value: Any) -> Any:
    """Recursively convert a field value to plain JSON-compatible types."""
    if isinstance(value, WireModel):
        return value.to_dict()
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return _plain(tolist())  # numpy array or scalar
    item = getattr(value, "item", None)
    if callable(item) and not isinstance(value, (str, bytes)):
        return _plain(item())  # other scalar wrappers
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise WireFormatError(
        f"field value of type {type(value).__name__} is not wire-encodable")


@dataclass
class WireModel:
    """Base for every wire request/response model.

    Subclasses are plain dataclasses whose fields hold JSON-compatible
    values (numbers, strings, bools, lists, dicts, nested models).  The
    envelope adds ``v`` (protocol version) and ``type`` (the model's
    :attr:`TYPE` tag); :meth:`from_dict` validates both, tolerates
    unknown fields, and rejects missing required fields.
    """

    #: Wire tag identifying the model; unique across the registry.
    TYPE: ClassVar[str] = ""
    #: Optional per-field parsers applied to incoming payload values.
    _CONVERTERS: ClassVar[dict[str, Callable[[Any], Any]]] = {}

    def to_dict(self) -> dict:
        """The enveloped plain-dict form of this model."""
        out: dict[str, Any] = {"v": WIRE_VERSION, "type": self.TYPE}
        for f in dataclasses.fields(self):
            out[f.name] = _plain(getattr(self, f.name))
        return out

    def to_json(self) -> str:
        """The enveloped JSON text form of this model."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, payload: Any) -> "WireModel":
        """Parse and validate an enveloped plain dict into a model."""
        if not isinstance(payload, dict):
            raise WireFormatError(
                f"{cls.TYPE or cls.__name__}: payload must be an object, "
                f"got {type(payload).__name__}")
        version = payload.get("v")
        if not isinstance(version, int) or isinstance(version, bool) \
                or version < 1:
            raise VersionMismatchError(
                f"{cls.TYPE or cls.__name__}: missing or malformed wire "
                f"version {version!r}", got=version, expected=WIRE_VERSION)
        if version > WIRE_VERSION:
            raise VersionMismatchError(
                f"{cls.TYPE or cls.__name__}: peer speaks wire version "
                f"{version}, this build speaks {WIRE_VERSION}",
                got=version, expected=WIRE_VERSION)
        tag = payload.get("type")
        if tag is not None and tag != cls.TYPE:
            raise WireFormatError(
                f"expected a {cls.TYPE!r} payload, got type {tag!r}")
        kwargs: dict[str, Any] = {}
        for f in dataclasses.fields(cls):
            if f.name in payload:
                value = payload[f.name]
                converter = cls._CONVERTERS.get(f.name)
                if converter is not None and value is not None:
                    value = converter(value)
                kwargs[f.name] = value
            elif f.default is dataclasses.MISSING \
                    and f.default_factory is dataclasses.MISSING:
                raise WireFormatError(
                    f"{cls.TYPE}: missing required field {f.name!r}")
        # Unknown payload fields are deliberately ignored (forward
        # compatibility within a protocol version).
        try:
            return cls(**kwargs)
        except (TypeError, ValueError) as exc:
            raise WireFormatError(f"{cls.TYPE}: {exc}") from exc

    @classmethod
    def from_json(cls, text: str | bytes) -> "WireModel":
        """Parse and validate enveloped JSON text into a model."""
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise WireFormatError(
                f"{cls.TYPE or cls.__name__}: invalid JSON: {exc}") from exc
        return cls.from_dict(payload)


def _float_rows(rows: Any) -> list:
    return [[float(x) for x in row] for row in rows]


def _bool_rows(rows: Any) -> list:
    return [[bool(x) for x in row] for row in rows]


def _floats(xs: Any) -> list:
    return [float(x) for x in xs]


@dataclass
class SolveRequest(WireModel):
    """``POST /v1/solve`` — one replica-selection instance.

    ``demands``/``prices`` are required; everything else defaults to the
    paper's calibration.  ``alpha``/``beta``/``gamma`` accept a scalar or
    one value per replica.  ``mask`` is the (C, N) eligibility matrix
    (``None`` = all-eligible).  ``clients`` optionally names the demand
    rows so a follow-up event stream (`/v1/events`) can address them.
    ``options`` is forwarded to the solver (``max_iter``, ``tol``, ...).
    """

    TYPE: ClassVar[str] = "solve_request"
    _CONVERTERS: ClassVar[dict] = {
        "demands": _floats, "prices": _floats, "capacities": _floats,
        "mask": _bool_rows,
        "clients": lambda v: [str(c) for c in v],
    }

    demands: list
    prices: list
    capacities: list | None = None
    alpha: float | list = None
    beta: float | list = None
    gamma: float | list = None
    mask: list | None = None
    algorithm: str = "lddm"
    aggregate: bool = True
    clients: list | None = None
    options: dict = field(default_factory=dict)


@dataclass
class SolveResponse(WireModel):
    """``POST /v1/solve`` result: allocation, duals, runtime fields."""

    TYPE: ClassVar[str] = "solve_response"
    _CONVERTERS: ClassVar[dict] = {
        "allocation": _float_rows, "loads": _floats, "duals": _floats,
        "clients": lambda v: [str(c) for c in v],
    }

    allocation: list
    objective: float
    iterations: int
    converged: bool
    loads: list = field(default_factory=list)
    duals: list | None = None
    method: str = ""
    solve_time_s: float | None = None
    warm_started: bool | None = None
    n_classes: int | None = None
    clients: list | None = None


@dataclass
class WireEvent(WireModel):
    """One client-granular churn event (arrival/departure/demand change).

    The wire twin of :class:`repro.core.incremental.ClientArrival` /
    :class:`~repro.core.incremental.ClientDeparture` /
    :class:`~repro.core.incremental.DemandChange` — see
    :meth:`from_core` / :meth:`to_core`.
    """

    TYPE: ClassVar[str] = "event"
    _CONVERTERS: ClassVar[dict] = {
        "eligibility": lambda v: [bool(x) for x in v],
    }

    kind: str                      # "arrival" | "departure" | "demand_change"
    client: str
    demand: float | None = None
    eligibility: list | None = None

    KINDS: ClassVar[tuple] = ("arrival", "departure", "demand_change")

    @classmethod
    def from_core(cls, event) -> "WireEvent":
        """Encode a :mod:`repro.core.incremental` event dataclass."""
        from repro.core.incremental import (
            ClientArrival, ClientDeparture, DemandChange,
        )
        if isinstance(event, ClientArrival):
            return cls(kind="arrival", client=event.client,
                       demand=float(event.demand),
                       eligibility=[bool(x) for x in event.eligibility])
        if isinstance(event, ClientDeparture):
            return cls(kind="departure", client=event.client)
        if isinstance(event, DemandChange):
            return cls(kind="demand_change", client=event.client,
                       demand=float(event.demand))
        raise WireFormatError(
            f"unknown event type {type(event).__name__}")

    def to_core(self):
        """Decode into the matching :mod:`repro.core.incremental` event."""
        import numpy as np

        from repro.core.incremental import (
            ClientArrival, ClientDeparture, DemandChange,
        )
        if self.kind == "arrival":
            if self.demand is None or self.eligibility is None:
                raise WireFormatError(
                    "arrival events need demand and eligibility")
            return ClientArrival(
                client=self.client, demand=float(self.demand),
                eligibility=np.asarray(self.eligibility, dtype=bool))
        if self.kind == "departure":
            return ClientDeparture(client=self.client)
        if self.kind == "demand_change":
            if self.demand is None:
                raise WireFormatError("demand_change events need demand")
            return DemandChange(client=self.client,
                                demand=float(self.demand))
        raise WireFormatError(f"unknown event kind {self.kind!r}")


@dataclass
class EventRequest(WireModel):
    """``POST /v1/events`` — a batch of churn events, applied in order."""

    TYPE: ClassVar[str] = "event_request"
    _CONVERTERS: ClassVar[dict] = {
        "events": lambda v: [WireEvent.from_dict(d) for d in v],
    }

    events: list = field(default_factory=list)


@dataclass
class EventResponse(WireModel):
    """``POST /v1/events`` result: what the incremental plane did.

    ``applied`` counts events absorbed in place; ``resolves`` counts the
    full (warm) re-solves fallback declines triggered.  The response
    carries the post-stream per-client allocation so callers can verify
    parity without a second round trip.
    """

    TYPE: ClassVar[str] = "event_response"
    _CONVERTERS: ClassVar[dict] = {
        "allocation": _float_rows, "loads": _floats,
        "clients": lambda v: [str(c) for c in v],
    }

    applied: int
    resolves: int
    sweeps: int
    objective: float
    loads: list = field(default_factory=list)
    clients: list = field(default_factory=list)
    allocation: list = field(default_factory=list)
    fallback_reasons: dict = field(default_factory=dict)


@dataclass
class MembershipResponse(WireModel):
    """``GET /v1/membership`` — registered agents and liveness."""

    TYPE: ClassVar[str] = "membership_response"
    _CONVERTERS: ClassVar[dict] = {
        "replicas": lambda v: [str(c) for c in v],
        "live": lambda v: [str(c) for c in v],
    }

    replicas: list = field(default_factory=list)
    live: list = field(default_factory=list)
    heartbeat_age_s: dict = field(default_factory=dict)
    hb_interval: float = 0.05
    hb_timeout: float = 0.25


@dataclass
class RegisterRequest(WireModel):
    """``POST /v1/agents/register`` — a replica agent joins the plane."""

    TYPE: ClassVar[str] = "register_request"

    agent: str
    capacity_mbps: float | None = None


@dataclass
class RegisterResponse(WireModel):
    """Registration ack; tells the agent its heartbeat cadence.

    Agents MUST adopt ``hb_interval``/``hb_timeout`` from this response
    (they come from the server's :class:`~repro.service.plane.
    ServiceConfig`) rather than hard-coding their own.
    """

    TYPE: ClassVar[str] = "register_response"
    _CONVERTERS: ClassVar[dict] = {
        "replicas": lambda v: [str(c) for c in v],
    }

    agent: str
    hb_interval: float
    hb_timeout: float
    replicas: list = field(default_factory=list)


@dataclass
class HeartbeatRequest(WireModel):
    """``POST /v1/agents/heartbeat`` — liveness probe from an agent."""

    TYPE: ClassVar[str] = "heartbeat_request"

    agent: str
    seq: int = 0


@dataclass
class HeartbeatResponse(WireModel):
    """Heartbeat ack; ``known`` is False for unregistered agents."""

    TYPE: ClassVar[str] = "heartbeat_response"

    agent: str
    known: bool = True


@dataclass
class HealthResponse(WireModel):
    """``GET /v1/health`` — liveness + version negotiation data."""

    TYPE: ClassVar[str] = "health_response"

    ok: bool = True
    version: str = ""
    wire_version: int = WIRE_VERSION


@dataclass
class ErrorResponse(WireModel):
    """Any failed endpoint call: typed error envelope."""

    TYPE: ClassVar[str] = "error_response"

    error: str
    detail: str = ""
    status: int = 400


#: Registry of every wire model by its ``type`` tag.
MODEL_TYPES: dict[str, type[WireModel]] = {
    model.TYPE: model
    for model in (
        SolveRequest, SolveResponse, WireEvent, EventRequest,
        EventResponse, MembershipResponse, RegisterRequest,
        RegisterResponse, HeartbeatRequest, HeartbeatResponse,
        HealthResponse, ErrorResponse,
    )
}


def parse_message(text: str | bytes) -> WireModel:
    """Parse enveloped JSON into whatever model its ``type`` tag names."""
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise WireFormatError(f"invalid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise WireFormatError("wire payload must be a JSON object")
    tag = payload.get("type")
    model = MODEL_TYPES.get(tag)
    if model is None:
        raise WireFormatError(f"unknown wire message type {tag!r}")
    return model.from_dict(payload)

"""The EDR replica server agent (Fig. 2's components).

Each replica runs a ClientListener (request intake), participates in solve
sessions (driven by :mod:`repro.edr.scheduler`), and serves FileDownload
transfers.  Transfer activity feeds the node's power state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.cluster.node import NodeActivity, ReplicaNode
from repro.edr.messages import MsgKind, Ports
from repro.net.transport import Network
from repro.sim.process import Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["ReplicaServer"]


class ReplicaServer:
    """One replica's server-side processes.

    Parameters
    ----------
    sim, network: the substrate.
    node: the emulated node (for power/activity bookkeeping).
    on_request: callback invoked with (server, message) whenever a client
        REQUEST lands here — the system's epoch driver uses the *lead*
        replica's intake as the batch source.
    """

    def __init__(self, sim: "Simulator", network: Network, node: ReplicaNode,
                 on_request: Callable | None = None) -> None:
        self.sim = sim
        self.network = network
        self.node = node
        self.name = node.name
        self.endpoint = network.endpoint(self.name)
        self.on_request = on_request
        self.requests_seen = 0
        self.active_transfers = 0
        self._listener = sim.process(self._client_listener())

    # -- ClientListener ----------------------------------------------------------
    def _client_listener(self):
        try:
            while True:
                msg = yield self.endpoint.recv(Ports.CLIENT)
                if msg.kind != MsgKind.REQUEST:
                    continue
                self.requests_seen += 1
                if self.on_request is not None:
                    self.on_request(self, msg)
        except Interrupt:
            return

    # -- FileDownload bookkeeping ----------------------------------------------
    def transfer_started(self) -> None:
        """A download from this replica began."""
        self.active_transfers += 1
        if self.node.activity is not NodeActivity.SELECTING:
            self.node.set_activity(NodeActivity.TRANSFERRING,
                                   now=self.sim.now)

    def transfer_finished(self) -> None:
        """A download from this replica completed or was cancelled."""
        self.active_transfers = max(0, self.active_transfers - 1)
        if self.active_transfers == 0 \
                and self.node.activity is NodeActivity.TRANSFERRING:
            self.node.set_activity(NodeActivity.IDLE, now=self.sim.now)

    def send_assignment(self, client: str, shares: dict,
                        batch_id: int, by_replica: dict | None = None) -> None:
        """Announce the computed split to a client (ASSIGN message).

        ``by_replica`` optionally ships the lead's precomputed
        ``{replica: [(uid, amount), ...]}`` grouping — one entry per
        (replica, client) pair in the batch — which a coalescing client
        turns directly into one aggregate download per source replica.
        Old-style payloads (without it) stay valid; the client regroups
        locally.
        """
        payload = {"batch": batch_id, "shares": shares}
        if by_replica is not None:
            payload["by_replica"] = by_replica
        self.endpoint.send(client, Ports.ASSIGN, MsgKind.ASSIGN,
                           payload=payload, size=1e-4)

    def shutdown(self) -> None:
        """Stop this server's processes (crash or end of run)."""
        if self._listener.is_alive:
            self._listener.defused = True
            self._listener.interrupt("server shutdown")

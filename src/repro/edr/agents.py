"""Fully agent-based LDDM execution.

:mod:`repro.edr.scheduler` computes solver iterations centrally and
simulates the communication around them (fast, used by the experiment
harness).  This module is the fidelity proof for that shortcut: every
replica and every client is an *independent simulated process* holding
only its own state, exchanging only the protocol's messages —

* ``REGISTER``  client -> replicas: its demand ``R_c``;
* ``INIT``      replica -> clients: its marginal cost at the uniform
  operating point (the clients' warm start needs only the min of these);
* ``MU``        client -> replicas: its dual price for round k;
* ``SOL``       replica -> clients: the client's entry of the replica's
  local solution for round k.

Rounds are tagged and agents proceed when they have heard from all their
peers, so execution is synchronous but coordinator-free.  The test suite
verifies this message-passing execution reproduces the matrix-form
:class:`~repro.core.lddm.LddmSolver` iterates *exactly* (same warm
start, same subproblems, same suffix averaging).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.params import ProblemData
from repro.core.stepsize import ConstantStep
from repro.core.subproblem import ReplicaSubproblem, solve_replica_subproblem
from repro.errors import ValidationError
from repro.net.transport import Network
from repro.sim.engine import Simulator

__all__ = ["AgentBasedLddm", "AgentBasedCdpsm"]

_PORT_REPLICA = "lddm.replica"
_PORT_CLIENT = "lddm.client"
_PORT_CDPSM = "cdpsm.replica"


@dataclass
class _RoundInbox:
    """Collects tagged messages until a round is complete."""

    expected: int
    buffers: dict = field(default_factory=dict)

    def add(self, round_no: int, sender: str, value) -> None:
        self.buffers.setdefault(round_no, {})[sender] = value

    def ready(self, round_no: int) -> bool:
        return len(self.buffers.get(round_no, {})) >= self.expected

    def take(self, round_no: int) -> dict:
        return self.buffers.pop(round_no)


class AgentBasedLddm:
    """Coordinator-free LDDM over the simulated network.

    Parameters
    ----------
    sim, network: the substrate; replica and client names must exist in
        the network's topology.
    data: the problem instance (row order = ``client_names``, column
        order = ``replica_names``).
    rounds: fixed iteration count (distributed convergence detection is
        orthogonal; the equivalence tests run fixed budgets).
    epsilon, step: as in :class:`~repro.core.lddm.LddmSolver`; defaults
        are computed identically so results line up.
    """

    def __init__(self, sim: Simulator, network: Network, data: ProblemData,
                 replica_names: list[str], client_names: list[str],
                 rounds: int = 60, epsilon: float | None = None,
                 step=None) -> None:
        if len(replica_names) != data.n_replicas:
            raise ValidationError("replica_names length mismatch")
        if len(client_names) != data.n_clients:
            raise ValidationError("client_names length mismatch")
        if rounds < 1:
            raise ValidationError("rounds must be >= 1")
        self.sim = sim
        self.network = network
        self.data = data
        self.replicas = list(replica_names)
        self.clients = list(client_names)
        self.rounds = int(rounds)
        from repro.core.lddm import default_lddm_parameters
        eps_default, step_default = default_lddm_parameters(data)
        self.epsilon = eps_default if epsilon is None else float(epsilon)
        self.step = step if step is not None else ConstantStep(step_default)
        #: Final per-client averaged rows, keyed by client name.
        self.rows: dict[str, np.ndarray] = {}
        self._procs = [sim.process(self._replica(i))
                       for i in range(len(self.replicas))]
        self._procs += [sim.process(self._client(i))
                        for i in range(len(self.clients))]

    @property
    def done(self):
        """Event-ish: all agent processes (joinable list)."""
        return self._procs

    def allocation(self) -> np.ndarray:
        """Assemble the (C, N) allocation from the clients' rows."""
        if len(self.rows) != len(self.clients):
            raise ValidationError("agents have not finished")
        return np.stack([self.rows[c] for c in self.clients])

    # -- replica agent ----------------------------------------------------------
    def _replica(self, n: int):
        data = self.data
        name = self.replicas[n]
        ep = self.network.endpoint(name)
        eligible = data.mask[:, n]
        C = data.n_clients
        inbox = _RoundInbox(expected=C)
        demands: dict[str, float] = {}
        # Phase 1: collect every client's demand (REGISTER).
        while len(demands) < C:
            msg = yield ep.recv(_PORT_REPLICA)
            if msg.kind == "REGISTER":
                demands[msg.src] = float(msg.payload)
            elif msg.kind == "MU":
                inbox.add(msg.payload["k"], msg.src, msg.payload["mu"])
        # Warm-start marginal at the uniform operating point (matches
        # LddmSolver._initial_mu: marginal of E_n at the uniform loads).
        counts = data.mask.sum(axis=1)
        uniform_load = sum(
            demands[self.clients[c]] / counts[c]
            for c in range(C) if data.mask[c, n] and counts[c] > 0)
        marginal = float(data.u[n] * (
            data.alpha[n] + data.beta[n] * data.gamma[n]
            * uniform_load ** (data.gamma[n] - 1.0)))
        for cname in self.clients:
            ep.send(cname, _PORT_CLIENT, "INIT",
                    payload={"replica": name, "marginal": marginal,
                             "eligible": True})
        # Phase 2: iterate.
        order = [c for c in range(C) if eligible[c]]
        prev = np.array([demands[self.clients[c]] / counts[c]
                         for c in order])  # uniform-allocation column
        for k in range(self.rounds):
            while not inbox.ready(k):
                msg = yield ep.recv(_PORT_REPLICA)
                if msg.kind == "MU":
                    inbox.add(msg.payload["k"], msg.src, msg.payload["mu"])
            mu_by_client = inbox.take(k)
            mu = np.array([mu_by_client[self.clients[c]] for c in order])
            if order:
                sub = ReplicaSubproblem(
                    price=float(data.u[n]), alpha=float(data.alpha[n]),
                    beta=float(data.beta[n]), gamma=float(data.gamma[n]),
                    bandwidth=float(data.B[n]), mu=mu, ref=prev,
                    epsilon=self.epsilon)
                p = solve_replica_subproblem(sub)
                prev = p
            for idx, c in enumerate(order):
                ep.send(self.clients[c], _PORT_CLIENT, "SOL",
                        payload={"k": k, "value": float(p[idx])
                                 if order else 0.0})
            for c in range(C):
                if not eligible[c]:
                    ep.send(self.clients[c], _PORT_CLIENT, "SOL",
                            payload={"k": k, "value": 0.0})

    # -- client agent -------------------------------------------------------------
    def _client(self, ci: int):
        data = self.data
        name = self.clients[ci]
        ep = self.network.endpoint(name)
        N = data.n_replicas
        # Phase 1: register demand, collect INIT marginals.
        ep.broadcast(self.replicas, _PORT_REPLICA, "REGISTER",
                     payload=float(data.R[ci]))
        marginals: dict[str, float] = {}
        inbox = _RoundInbox(expected=N)
        while len(marginals) < N:
            msg = yield ep.recv(_PORT_CLIENT)
            if msg.kind == "INIT":
                marginals[msg.payload["replica"]] = msg.payload["marginal"]
            elif msg.kind == "SOL":
                inbox.add(msg.payload["k"], msg.src, msg.payload["value"])
        eligible_marginals = [
            marginals[self.replicas[n]] for n in range(N)
            if data.mask[ci, n]]
        mu = -min(eligible_marginals) if eligible_marginals else 0.0
        # Phase 2: iterate (suffix averaging mirrors the matrix solver).
        average = np.zeros(N)
        avg_count = 0
        next_restart = 1
        for k in range(self.rounds):
            ep.broadcast(self.replicas, _PORT_REPLICA, "MU",
                         payload={"k": k, "mu": float(mu)})
            while not inbox.ready(k):
                msg = yield ep.recv(_PORT_CLIENT)
                if msg.kind == "SOL":
                    inbox.add(msg.payload["k"], msg.src, msg.payload["value"])
            sols = inbox.take(k)
            row = np.array([sols[r] for r in self.replicas])
            r_resid = float(row.sum() - data.R[ci])
            mu = mu + self.step(k) * r_resid
            if k == next_restart:
                average = np.zeros(N)
                avg_count = 0
                next_restart *= 2
            average = (average * avg_count + row) / (avg_count + 1)
            avg_count += 1
        self.rows[name] = average


class AgentBasedCdpsm:
    """Coordinator-free CDPSM: each replica is a process holding its own
    estimate of the full allocation matrix, exchanging it with every peer
    each round (the paper's consensus step), then stepping and projecting
    locally.  Verified identical to the matrix-form
    :class:`~repro.core.cdpsm.CdpsmSolver` with uniform weights.

    Clients are not part of this protocol (the paper's Algorithm 1 runs
    among replicas only; demands arrive with the requests), so only
    ``replica_names`` must exist in the network.
    """

    def __init__(self, sim: Simulator, network: Network, data: ProblemData,
                 replica_names: list[str], rounds: int = 60,
                 step=None, dykstra_iter: int = 60) -> None:
        if len(replica_names) != data.n_replicas:
            raise ValidationError("replica_names length mismatch")
        if data.n_replicas < 2:
            raise ValidationError("CDPSM needs at least two replicas")
        if rounds < 1:
            raise ValidationError("rounds must be >= 1")
        self.sim = sim
        self.network = network
        self.data = data
        self.replicas = list(replica_names)
        self.rounds = int(rounds)
        from repro.core.cdpsm import default_cdpsm_step
        self.step = step if step is not None else ConstantStep(
            default_cdpsm_step(data))
        self.dykstra_iter = int(dykstra_iter)
        #: Final per-replica estimates, keyed by replica name.
        self.estimates: dict[str, np.ndarray] = {}
        self._procs = [sim.process(self._replica(i))
                       for i in range(len(self.replicas))]

    def consensus_mean(self) -> np.ndarray:
        """Mean of the replicas' final estimates (the solver's output)."""
        if len(self.estimates) != len(self.replicas):
            raise ValidationError("agents have not finished")
        return np.mean([self.estimates[r] for r in self.replicas], axis=0)

    def _replica(self, n: int):
        from repro.core import model
        from repro.core.projection import project_local_set

        data = self.data
        name = self.replicas[n]
        ep = self.network.endpoint(name)
        peers = [r for r in self.replicas if r != name]
        N = data.n_replicas
        inbox = _RoundInbox(expected=N - 1)
        # Initial estimate: uniform allocation projected into the local set.
        counts = data.mask.sum(axis=1)
        base = np.zeros(data.shape)
        for c in range(data.n_clients):
            if counts[c]:
                base[c, data.mask[c]] = data.R[c] / counts[c]
        x = project_local_set(base, data.R, data.mask, n, float(data.B[n]),
                              max_iter=self.dykstra_iter)
        for k in range(self.rounds):
            # Consensus round: broadcast my estimate, gather everyone's.
            for peer in peers:
                ep.send(peer, _PORT_CDPSM, "EST",
                        payload={"k": k, "x": x.copy()},
                        size=x.size * 8e-6)
            while not inbox.ready(k):
                msg = yield ep.recv(_PORT_CDPSM)
                inbox.add(msg.payload["k"], msg.src, msg.payload["x"])
            others = inbox.take(k)
            v = (x + sum(others.values())) / N  # uniform weights
            marginal = model.load_marginal_cost(data, v.sum(axis=0))[n]
            stepped = v.copy()
            stepped[:, n] -= self.step(k) * marginal * data.mask[:, n]
            x = project_local_set(stepped, data.R, data.mask, n,
                                  float(data.B[n]),
                                  max_iter=self.dykstra_iter)
        self.estimates[name] = x

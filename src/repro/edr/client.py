"""The EDR client agent.

A client broadcasts each request to the live replicas (replica selection
is transparent — the client does not choose), waits for the runtime's
ASSIGN decision, then opens parallel downloads from every replica with a
positive share, exactly as the paper's client side does with its
per-replica download threads.  If a replica dies mid-download the client
re-requests the undelivered remainder.

With ``coalesce=True`` the per-request downloads of one ASSIGN batch are
grouped per source replica into a single weighted
:class:`~repro.net.flows.AggregateFlow` (weight = live request
multiplicity).  Under max-min fairness this is exactly equivalent to the
separate per-request flows — every internal request completes at the
same instant it would have on its own flow — while the flow table and
the fair-share recompute see one entry per (replica, client) pair per
epoch instead of one per request.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.edr.messages import MsgKind, Ports
from repro.metrics.latency import ResponseTimeStats
from repro.net.flows import FlowManager
from repro.net.transport import Network
from repro.obs import NULL_RECORDER
from repro.sim.process import Interrupt
from repro.workload.requests import Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["ClientAgent"]


class ClientAgent:
    """One client's request issuing + download processes."""

    def __init__(self, sim: "Simulator", network: Network, flows: FlowManager,
                 name: str, requests: list[Request],
                 live_replicas: Callable[[], list[str]],
                 stats: ResponseTimeStats,
                 on_transfer_event: Callable[[str, str, float], None] | None = None,
                 on_delivered: Callable[[str, float], None] | None = None,
                 coalesce: bool = False,
                 recorder=None) -> None:
        self.sim = sim
        self.network = network
        self.flows = flows
        self.name = name
        self.endpoint = network.endpoint(name)
        self.requests = sorted(requests, key=lambda r: r.arrival)
        self.live_replicas = live_replicas
        self.stats = stats
        self.on_transfer_event = on_transfer_event or (lambda *_: None)
        self.on_delivered = on_delivered or (lambda *_: None)
        self.coalesce = coalesce
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.delivered_mb = 0.0
        self.retries = 0
        self._req_seq = 0
        # Per-request bookkeeping on the coalesced path: parts still in
        # flight and bytes lost to cancellations, keyed by request uid.
        self._uid_left: dict[str, int] = {}
        self._uid_lost: dict[str, float] = {}
        self._issuer = sim.process(self._issue_requests())
        self._assignee = sim.process(self._assign_listener())

    # -- issuing ------------------------------------------------------------------
    def _request_id(self) -> str:
        self._req_seq += 1
        return f"{self.name}/r{self._req_seq}"

    def _broadcast_request(self, size_mb: float) -> str:
        uid = self._request_id()
        self.stats.issued(uid, self.sim.now)
        self.endpoint.broadcast(self.live_replicas(), Ports.CLIENT,
                                MsgKind.REQUEST,
                                payload={"uid": uid, "client": self.name,
                                         "size": size_mb})
        return uid

    def _issue_requests(self):
        try:
            for req in self.requests:
                delay = req.arrival - self.sim.now
                if delay > 0:
                    yield self.sim.timeout(delay)
                self._broadcast_request(req.size_mb)
        except Interrupt:
            return

    # -- receiving assignments & downloading --------------------------------------
    def _assign_listener(self):
        try:
            while True:
                msg = yield self.endpoint.recv(Ports.ASSIGN)
                if msg.kind != MsgKind.ASSIGN:
                    continue
                payload = msg.payload
                if self.coalesce:
                    for uid in payload["shares"]:
                        self.stats.answered(uid, self.sim.now)
                    self._download_coalesced(payload["shares"],
                                             payload.get("by_replica"))
                    continue
                for uid, shares in payload["shares"].items():
                    self.stats.answered(uid, self.sim.now)
                    self.sim.process(self._download(uid, shares))
        except Interrupt:
            return

    def _download(self, uid: str, shares: dict[str, float]):
        """Parallel downloads, one flow per replica with a positive share."""
        flows = []
        for replica, amount in shares.items():
            if amount <= 0:
                continue
            flow = self.flows.transfer(replica, self.name, amount)
            self.on_transfer_event(replica, "start", amount)
            # Notify at the flow's true completion instant — the download
            # loop below awaits flows in list order, which can be later.
            flow.done.add_callback(
                lambda _ev, r=replica, f=flow:
                self.on_transfer_event(r, "finish", f.size))
            flows.append((replica, flow))
        lost = 0.0
        for replica, flow in flows:
            yield flow.done
            if flow.completed:
                self.delivered_mb += flow.size
                self.on_delivered(self.name, flow.size)
            else:
                lost += flow.size - max(0.0, flow.size - flow.remaining)
                # Count the partial delivery that did land.
                got = flow.size - flow.remaining
                if got > 0:
                    self.delivered_mb += got
                    self.on_delivered(self.name, got)
        if lost > 1e-9:
            # Replica died mid-transfer: re-request the missing remainder.
            self.retries += 1
            self._broadcast_request(lost)

    def _download_coalesced(self, shares_map: dict[str, dict[str, float]],
                            by_replica: dict[str, list] | None) -> None:
        """One weighted aggregate flow per source replica for this batch.

        ``by_replica`` is the lead's precomputed ``{replica: [(uid,
        amount), ...]}`` grouping when present (old-style ASSIGN payloads
        carry only per-request shares, so the grouping falls back to a
        local pass).  Per-request accounting — delivery, transfer events,
        loss and retry — hangs off the aggregate's part resolutions,
        which fire at each request's true completion instant.
        """
        if by_replica is None:
            by_replica = {}
            for uid, shares in shares_map.items():
                for replica, amount in shares.items():
                    if amount <= 0:
                        continue
                    by_replica.setdefault(replica, []).append((uid, amount))
        n_parts = 0
        total_mb = 0.0
        for parts in by_replica.values():
            for uid, amount in parts:
                self._uid_left[uid] = self._uid_left.get(uid, 0) + 1
                n_parts += 1
                total_mb += amount
        for replica, parts in by_replica.items():
            flow = self.flows.transfer_aggregate(replica, self.name, parts)
            for _uid, amount in parts:
                self.on_transfer_event(replica, "start", amount)
            flow.on_part = (
                lambda uid, size, got, completed, r=replica:
                self._part_resolved(r, uid, size, got, completed))
        rec = self.recorder
        if rec.enabled:
            rec.event("runtime.traffic", sim_time=self.sim.now,
                      client=self.name, n_requests=len(shares_map),
                      n_parts=n_parts, n_flows=len(by_replica),
                      mb=total_mb)

    def _part_resolved(self, replica: str, uid: str, size: float,
                       got: float, completed: bool) -> None:
        """One request's share of one aggregate flow finished (or died)."""
        self.on_transfer_event(replica, "finish", size)
        if completed:
            self.delivered_mb += size
            self.on_delivered(self.name, size)
        else:
            if got > 0:
                self.delivered_mb += got
                self.on_delivered(self.name, got)
            self._uid_lost[uid] = self._uid_lost.get(uid, 0.0) + (size - got)
        left = self._uid_left.get(uid, 0) - 1
        if left > 0:
            self._uid_left[uid] = left
            return
        self._uid_left.pop(uid, None)
        lost = self._uid_lost.pop(uid, 0.0)
        if lost > 1e-9:
            # Replica died mid-transfer: re-request the missing remainder
            # once the request's last surviving share has resolved — the
            # same instant the per-flow download loop would have reached.
            self.retries += 1
            self._broadcast_request(lost)

    def shutdown(self) -> None:
        """Stop this client's processes."""
        for proc in (self._issuer, self._assignee):
            if proc.is_alive:
                proc.defused = True
                proc.interrupt("client shutdown")

"""The EDR client agent.

A client broadcasts each request to the live replicas (replica selection
is transparent — the client does not choose), waits for the runtime's
ASSIGN decision, then opens parallel downloads from every replica with a
positive share, exactly as the paper's client side does with its
per-replica download threads.  If a replica dies mid-download the client
re-requests the undelivered remainder.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.edr.messages import MsgKind, Ports
from repro.metrics.latency import ResponseTimeStats
from repro.net.flows import FlowManager
from repro.net.transport import Network
from repro.sim.process import Interrupt
from repro.workload.requests import Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["ClientAgent"]


class ClientAgent:
    """One client's request issuing + download processes."""

    def __init__(self, sim: "Simulator", network: Network, flows: FlowManager,
                 name: str, requests: list[Request],
                 live_replicas: Callable[[], list[str]],
                 stats: ResponseTimeStats,
                 on_transfer_event: Callable[[str, str, float], None] | None = None,
                 on_delivered: Callable[[str, float], None] | None = None) -> None:
        self.sim = sim
        self.network = network
        self.flows = flows
        self.name = name
        self.endpoint = network.endpoint(name)
        self.requests = sorted(requests, key=lambda r: r.arrival)
        self.live_replicas = live_replicas
        self.stats = stats
        self.on_transfer_event = on_transfer_event or (lambda *_: None)
        self.on_delivered = on_delivered or (lambda *_: None)
        self.delivered_mb = 0.0
        self.retries = 0
        self._req_seq = 0
        self._issuer = sim.process(self._issue_requests())
        self._assignee = sim.process(self._assign_listener())

    # -- issuing ------------------------------------------------------------------
    def _request_id(self) -> str:
        self._req_seq += 1
        return f"{self.name}/r{self._req_seq}"

    def _broadcast_request(self, size_mb: float) -> str:
        uid = self._request_id()
        self.stats.issued(uid, self.sim.now)
        self.endpoint.broadcast(self.live_replicas(), Ports.CLIENT,
                                MsgKind.REQUEST,
                                payload={"uid": uid, "client": self.name,
                                         "size": size_mb})
        return uid

    def _issue_requests(self):
        try:
            for req in self.requests:
                delay = req.arrival - self.sim.now
                if delay > 0:
                    yield self.sim.timeout(delay)
                self._broadcast_request(req.size_mb)
        except Interrupt:
            return

    # -- receiving assignments & downloading --------------------------------------
    def _assign_listener(self):
        try:
            while True:
                msg = yield self.endpoint.recv(Ports.ASSIGN)
                if msg.kind != MsgKind.ASSIGN:
                    continue
                payload = msg.payload
                for uid, shares in payload["shares"].items():
                    self.stats.answered(uid, self.sim.now)
                    self.sim.process(self._download(uid, shares))
        except Interrupt:
            return

    def _download(self, uid: str, shares: dict[str, float]):
        """Parallel downloads, one flow per replica with a positive share."""
        flows = []
        for replica, amount in shares.items():
            if amount <= 0:
                continue
            flow = self.flows.transfer(replica, self.name, amount)
            self.on_transfer_event(replica, "start", amount)
            # Notify at the flow's true completion instant — the download
            # loop below awaits flows in list order, which can be later.
            flow.done.add_callback(
                lambda _ev, r=replica, f=flow:
                self.on_transfer_event(r, "finish", f.size))
            flows.append((replica, flow))
        lost = 0.0
        for replica, flow in flows:
            yield flow.done
            if flow.completed:
                self.delivered_mb += flow.size
                self.on_delivered(self.name, flow.size)
            else:
                lost += flow.size - max(0.0, flow.size - flow.remaining)
                # Count the partial delivery that did land.
                got = flow.size - flow.remaining
                if got > 0:
                    self.delivered_mb += got
                    self.on_delivered(self.name, got)
        if lost > 1e-9:
            # Replica died mid-transfer: re-request the missing remainder.
            self.retries += 1
            self._broadcast_request(lost)

    def shutdown(self) -> None:
        """Stop this client's processes."""
        for proc in (self._issuer, self._assignee):
            if proc.is_alive:
                proc.defused = True
                proc.interrupt("client shutdown")

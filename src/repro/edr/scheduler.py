"""Distributed solve sessions: solver iterations driven over the network.

The numeric iterations come from the matrix-form solvers
(:class:`~repro.core.lddm.LddmSolver` / :class:`~repro.core.cdpsm.CdpsmSolver`
via their ``iterations()`` generators); this module adds what the testbed
adds on top of the math — per-round communication over the simulated
network (real messages with real latencies), local computation time, and
the node activity changes the PDU observes.  The message *pattern* per
iteration is exactly the paper's: all-pairs replica exchange for CDPSM
(``O(|C||N|^3)`` volume), replica<->client exchange for LDDM
(``O(|C||N|)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.cluster.node import NodeActivity, ReplicaNode
from repro.core.aggregate import AggregatedProblem
from repro.core.cdpsm import CdpsmSolver
from repro.core.lddm import LddmSolver
from repro.core.problem import ReplicaSelectionProblem
from repro.edr.messages import MsgKind, Ports
from repro.errors import ValidationError
from repro.net.transport import Network
from repro.obs import NULL_RECORDER

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["SolveTimingModel", "SessionCommPlan", "DistributedSolveSession"]

#: Bytes-in-MB of one float share in a coordination message.
_FLOAT_MB = 8e-6


@dataclass(frozen=True)
class SessionCommPlan:
    """Precomputed per-iteration messaging for one solve session.

    The message pattern, pairwise delays and sizes are fixed for a
    session's lifetime (the topology is immutable and the participant
    sets don't change mid-solve), so the endpoint handles, the send list
    and the round's max delay are all computed once at construction —
    the old per-iteration rebuild recomputed ``O(C*N)`` latency/capacity
    lookups on every round.

    ``sends`` holds ``(endpoint, dst, port, kind, size)`` tuples replayed
    verbatim each round; ``round_delay`` is the constant max one-round
    coordination delay.
    """

    sends: tuple
    round_delay: float

    @classmethod
    def build(cls, network: Network, algorithm: str,
              replicas: Sequence[str], clients: Sequence[str],
              n_clients: int, n_replicas: int) -> "SessionCommPlan":
        topo = network.topology
        ep = {name: network.endpoint(name)
              for name in set(replicas) | set(clients)}
        sends = []
        max_delay = 0.0
        if algorithm == "cdpsm":
            # All-pairs solution exchange: C*N floats per message.
            size = n_clients * n_replicas * _FLOAT_MB
            for src in replicas:
                for dst in replicas:
                    if src == dst:
                        continue
                    sends.append((ep[src], dst, Ports.REPLICA,
                                  MsgKind.SOLVE_SYNC, size))
                    delay = topo.latency(src, dst) \
                        + size / min(topo.capacity(src), topo.capacity(dst))
                    max_delay = max(max_delay, delay)
        else:
            # Replica -> client solution rows, client -> replica mu.
            for rep in replicas:
                for cli in clients:
                    if rep == cli:
                        continue
                    sends.append((ep[rep], cli, "solve",
                                  MsgKind.SOLUTION, _FLOAT_MB))
                    sends.append((ep[cli], rep, Ports.REPLICA,
                                  MsgKind.MU_UPDATE, _FLOAT_MB))
                    delay = 2 * topo.latency(rep, cli) \
                        + 2 * _FLOAT_MB / min(topo.capacity(rep),
                                              topo.capacity(cli))
                    max_delay = max(max_delay, delay)
        return cls(sends=tuple(sends), round_delay=max_delay)


@dataclass(frozen=True)
class SolveTimingModel:
    """Computation-time model for one solver iteration on one replica.

    ``per_client`` dominates: each local solve touches every client's
    variable (subproblem KKT for LDDM, projection rows for CDPSM), so the
    per-iteration CPU time grows linearly in the batch size — this is what
    makes Fig. 9's response time scale near-linearly in request count.
    CDPSM's constants are higher (Dykstra projection plus full-matrix
    consensus handling), matching its measured "higher workload intensity".
    """

    base: float = 2e-4            # fixed per-iteration overhead (s)
    per_client: float = 2e-5      # s per client per iteration
    cdpsm_factor: float = 3.0     # CDPSM's extra local work multiplier
    event_base: float = 1e-5      # fixed per-event-update overhead (s)
    per_event: float = 5e-6       # s per class-demand change applied
    per_sweep: float = 5e-6       # s per Gauss-Seidel refinement sweep

    def iteration_time(self, n_clients: int, algorithm: str) -> float:
        """Local computation seconds for one iteration."""
        t = self.base + self.per_client * n_clients
        if algorithm == "cdpsm":
            t *= self.cdpsm_factor
        return t

    def event_time(self, events: int, sweeps: int) -> float:
        """Local computation seconds for one incremental event update.

        The update is O(sweeps * K * N) on the lead replica — no
        per-iteration network rounds, which is why the event path's
        decision latency sits orders of magnitude under a batch solve's.
        """
        return self.event_base + self.per_event * events \
            + self.per_sweep * sweeps

    def round_time(self, max_shard_rows: int, lan_latency: float) -> float:
        """Wall seconds one sharded dual-price exchange round charges.

        Shards best-respond concurrently, so a round's compute cost is
        the *widest* shard's batched water-fill and polish — charged at
        the per-client iteration rate over that shard's class rows —
        plus one broadcast/gather round trip to the coordinator.
        """
        return 2.0 * lan_latency + self.base \
            + self.per_client * max(int(max_shard_rows), 0)


class DistributedSolveSession:
    """One batched replica-selection solve executed over the network.

    Parameters
    ----------
    sim, network: the substrate.
    problem: the batch's optimization instance (columns = live replicas).
    replica_names: node names of the live replicas (column order).
    client_names: node names of the batch's clients (row order).
    algorithm: ``"lddm"`` or ``"cdpsm"``.
    nodes: the emulated nodes, for activity/power bookkeeping.
    timing: per-iteration computation model.
    batched: use the stacked numpy kernels (:mod:`repro.core.kernels`)
        for the per-iteration numeric work; the scalar per-replica path
        remains available for oracle runs (``batched=False``).
    aggregation: optional class-space reduction of ``problem``
        (:class:`~repro.core.aggregate.AggregatedProblem`).  When given,
        the numeric iterations run on the reduced K-row instance —
        O(K*N) local work per round instead of O(C*N) — while the
        communication plan keeps the paper's per-client message pattern
        (every client still sends/receives its rows; aggregation is a
        local-computation optimization, not a protocol change).  The
        client-space allocation is expanded lazily on first read of
        :attr:`allocation`; ``solver_allocation`` holds the K-row result.
    initial: optional warm-start allocation (feasible, same shape as the
        *solved* instance — class space when ``aggregation`` is given) —
        typically the previous batch's projected solution from
        :mod:`repro.core.warmstart`.
    mu0: optional warm-start LDDM multipliers (one per solved row;
        ignored by CDPSM).
    recorder: optional :class:`~repro.obs.Recorder`; threaded into the
        underlying solver (per-iteration events) and given one
        ``session.solve`` event per run with the simulated-time duration
        and the session's exact message/byte totals.
    solver_kwargs: forwarded to the underlying solver.

    After :meth:`run` finishes, ``converged`` reports whether the solver's
    stopping rule fired within its budget and ``final_mu`` (LDDM only)
    holds the final multipliers — the state the runtime caches for the
    next batch's warm start (class-space when aggregating).
    """

    def __init__(self, sim: "Simulator", network: Network,
                 problem: ReplicaSelectionProblem,
                 replica_names: Sequence[str],
                 client_names: Sequence[str],
                 algorithm: str,
                 nodes: dict[str, ReplicaNode] | None = None,
                 timing: SolveTimingModel | None = None,
                 batched: bool = True,
                 aggregation: AggregatedProblem | None = None,
                 initial: np.ndarray | None = None,
                 mu0: np.ndarray | None = None,
                 recorder=None,
                 **solver_kwargs) -> None:
        if algorithm not in ("lddm", "cdpsm"):
            raise ValidationError(f"unknown algorithm {algorithm!r}")
        if len(replica_names) != problem.data.n_replicas:
            raise ValidationError("replica_names length mismatch")
        if len(client_names) != problem.data.n_clients:
            raise ValidationError("client_names length mismatch")
        if aggregation is not None \
                and aggregation.structure.class_of_client.shape[0] \
                != problem.data.n_clients:
            raise ValidationError("aggregation does not match problem rows")
        self.sim = sim
        self.network = network
        self.problem = problem
        self.aggregation = aggregation
        self._solve_problem = problem if aggregation is None \
            else aggregation.problem
        self.replicas = list(replica_names)
        self.clients = list(client_names)
        self.algorithm = algorithm
        self.nodes = nodes or {}
        self.timing = timing or SolveTimingModel()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        solver_kwargs.setdefault("batched", batched)
        solver_kwargs.setdefault("recorder", self.recorder)
        if algorithm == "lddm":
            self.solver = LddmSolver(self._solve_problem,
                                     track_objective=False, **solver_kwargs)
        else:
            self.solver = CdpsmSolver(self._solve_problem,
                                      track_objective=False, **solver_kwargs)
        C, N = problem.data.shape
        self.comm_plan = SessionCommPlan.build(
            network, algorithm, self.replicas, self.clients, C, N)
        self.initial = None if initial is None \
            else np.asarray(initial, dtype=float)
        self.mu0 = None if mu0 is None else np.asarray(mu0, dtype=float)
        # Results, populated by run():
        self.solver_allocation: np.ndarray | None = None
        self._allocation: np.ndarray | None = None
        self.iterations = 0
        self.duration = 0.0
        self.converged = False
        self.final_mu: np.ndarray | None = None

    @property
    def allocation(self) -> np.ndarray | None:
        """The client-space allocation, expanded lazily.

        In aggregated mode the solve produces only the K-row
        ``solver_allocation``; the full (C, N) matrix is materialized on
        first read — sessions whose per-client splits are never inspected
        never build it.
        """
        if self._allocation is None and self.solver_allocation is not None:
            if self.aggregation is None:
                self._allocation = self.solver_allocation
            else:
                self._allocation = self.aggregation.structure.expand_rows(
                    self.solver_allocation)
        return self._allocation

    # -- communication rounds ---------------------------------------------------
    def _round_messages(self) -> float:
        """Send one iteration's coordination messages; return max delay."""
        for ep, dst, port, kind, size in self.comm_plan.sends:
            ep.send(dst, port, kind, payload=None, size=size)
        return self.comm_plan.round_delay

    def _set_activity(self, activity: NodeActivity) -> None:
        for name in self.replicas:
            node = self.nodes.get(name)
            if node is not None:
                node.set_activity(activity, now=self.sim.now)
                if self.algorithm == "cdpsm" \
                        and activity is NodeActivity.SELECTING:
                    # Continuous all-pairs coordination keeps extra cores
                    # busy (observed as CDPSM's higher average power).
                    node.set_cpu_overlay(0.15)
                elif activity is not NodeActivity.SELECTING:
                    node.set_cpu_overlay(0.0)

    # -- the session process -------------------------------------------------------
    def run(self):
        """Simulated process: run the solve, leave results on ``self``."""
        start = self.sim.now
        self._set_activity(NodeActivity.SELECTING)
        # Local per-iteration work is proportional to the number of rows
        # the solver actually touches — K classes when aggregating.
        rows = self._solve_problem.data.n_clients
        candidate = self.initial if self.initial is not None \
            else self._solve_problem.uniform_allocation()
        if self.algorithm == "lddm":
            steps = self.solver.iterations(self.initial, mu0=self.mu0)
        else:
            steps = self.solver.iterations(self.initial)
        try:
            for k, candidate, _metric in steps:
                self.iterations = k + 1
                comm_delay = self._round_messages()
                compute = self.timing.iteration_time(rows, self.algorithm)
                yield self.sim.timeout(compute + comm_delay)
        finally:
            self._set_activity(NodeActivity.IDLE)
        self.converged = self.solver.converged_
        self.final_mu = getattr(self.solver, "mu_", None)
        self.solver_allocation = self._solve_problem.repair(candidate)
        self._allocation = None
        self.duration = self.sim.now - start
        rec = self.recorder
        if rec.enabled:
            C, N = self.problem.data.shape
            round_mb = sum(s[4] for s in self.comm_plan.sends)
            rec.event(
                "session.solve", algorithm=self.algorithm, rows=rows,
                n_clients=C, n_replicas=N, iterations=self.iterations,
                converged=self.converged, sim_start=start,
                sim_duration=self.duration,
                messages=self.iterations * len(self.comm_plan.sends),
                mb=self.iterations * round_mb,
                msgs_per_round=len(self.comm_plan.sends),
                mb_per_round=round_mb)
        return self.solver_allocation

"""Distributed solve sessions: solver iterations driven over the network.

The numeric iterations come from the matrix-form solvers
(:class:`~repro.core.lddm.LddmSolver` / :class:`~repro.core.cdpsm.CdpsmSolver`
via their ``iterations()`` generators); this module adds what the testbed
adds on top of the math — per-round communication over the simulated
network (real messages with real latencies), local computation time, and
the node activity changes the PDU observes.  The message *pattern* per
iteration is exactly the paper's: all-pairs replica exchange for CDPSM
(``O(|C||N|^3)`` volume), replica<->client exchange for LDDM
(``O(|C||N|)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.cluster.node import NodeActivity, ReplicaNode
from repro.core.cdpsm import CdpsmSolver
from repro.core.lddm import LddmSolver
from repro.core.problem import ReplicaSelectionProblem
from repro.edr.messages import MsgKind, Ports
from repro.errors import ValidationError
from repro.net.transport import Network

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["SolveTimingModel", "DistributedSolveSession"]

#: Bytes-in-MB of one float share in a coordination message.
_FLOAT_MB = 8e-6


@dataclass(frozen=True)
class SolveTimingModel:
    """Computation-time model for one solver iteration on one replica.

    ``per_client`` dominates: each local solve touches every client's
    variable (subproblem KKT for LDDM, projection rows for CDPSM), so the
    per-iteration CPU time grows linearly in the batch size — this is what
    makes Fig. 9's response time scale near-linearly in request count.
    CDPSM's constants are higher (Dykstra projection plus full-matrix
    consensus handling), matching its measured "higher workload intensity".
    """

    base: float = 2e-4            # fixed per-iteration overhead (s)
    per_client: float = 2e-5      # s per client per iteration
    cdpsm_factor: float = 3.0     # CDPSM's extra local work multiplier

    def iteration_time(self, n_clients: int, algorithm: str) -> float:
        """Local computation seconds for one iteration."""
        t = self.base + self.per_client * n_clients
        if algorithm == "cdpsm":
            t *= self.cdpsm_factor
        return t


class DistributedSolveSession:
    """One batched replica-selection solve executed over the network.

    Parameters
    ----------
    sim, network: the substrate.
    problem: the batch's optimization instance (columns = live replicas).
    replica_names: node names of the live replicas (column order).
    client_names: node names of the batch's clients (row order).
    algorithm: ``"lddm"`` or ``"cdpsm"``.
    nodes: the emulated nodes, for activity/power bookkeeping.
    timing: per-iteration computation model.
    batched: use the stacked numpy kernels (:mod:`repro.core.kernels`)
        for the per-iteration numeric work; the scalar per-replica path
        remains available for oracle runs (``batched=False``).
    solver_kwargs: forwarded to the underlying solver.
    """

    def __init__(self, sim: "Simulator", network: Network,
                 problem: ReplicaSelectionProblem,
                 replica_names: Sequence[str],
                 client_names: Sequence[str],
                 algorithm: str,
                 nodes: dict[str, ReplicaNode] | None = None,
                 timing: SolveTimingModel | None = None,
                 batched: bool = True,
                 **solver_kwargs) -> None:
        if algorithm not in ("lddm", "cdpsm"):
            raise ValidationError(f"unknown algorithm {algorithm!r}")
        if len(replica_names) != problem.data.n_replicas:
            raise ValidationError("replica_names length mismatch")
        if len(client_names) != problem.data.n_clients:
            raise ValidationError("client_names length mismatch")
        self.sim = sim
        self.network = network
        self.problem = problem
        self.replicas = list(replica_names)
        self.clients = list(client_names)
        self.algorithm = algorithm
        self.nodes = nodes or {}
        self.timing = timing or SolveTimingModel()
        solver_kwargs.setdefault("batched", batched)
        if algorithm == "lddm":
            self.solver = LddmSolver(problem, track_objective=False,
                                     **solver_kwargs)
        else:
            self.solver = CdpsmSolver(problem, track_objective=False,
                                      **solver_kwargs)
        # Results, populated by run():
        self.allocation: np.ndarray | None = None
        self.iterations = 0
        self.duration = 0.0

    # -- communication rounds ---------------------------------------------------
    def _round_messages(self) -> float:
        """Send one iteration's coordination messages; return max delay."""
        C, N = self.problem.data.shape
        ep = {name: self.network.endpoint(name) for name in self.replicas}
        max_delay = 0.0
        if self.algorithm == "cdpsm":
            # All-pairs solution exchange: C*N floats per message.
            size = C * N * _FLOAT_MB
            for src in self.replicas:
                for dst in self.replicas:
                    if src == dst:
                        continue
                    ep[src].send(dst, Ports.REPLICA, MsgKind.SOLVE_SYNC,
                                 payload=None, size=size)
                    delay = self.network.topology.latency(src, dst) \
                        + size / min(self.network.topology.capacity(src),
                                     self.network.topology.capacity(dst))
                    max_delay = max(max_delay, delay)
        else:
            # Replica -> client solution rows, client -> replica mu.
            for rep in self.replicas:
                for cli in self.clients:
                    if rep == cli:
                        continue
                    ep[rep].send(cli, "solve", MsgKind.SOLUTION,
                                 payload=None, size=_FLOAT_MB)
                    delay = 2 * self.network.topology.latency(rep, cli) \
                        + 2 * _FLOAT_MB / min(
                            self.network.topology.capacity(rep),
                            self.network.topology.capacity(cli))
                    max_delay = max(max_delay, delay)
                    self.network.endpoint(cli).send(
                        rep, Ports.REPLICA, MsgKind.MU_UPDATE,
                        payload=None, size=_FLOAT_MB)
        return max_delay

    def _set_activity(self, activity: NodeActivity) -> None:
        for name in self.replicas:
            node = self.nodes.get(name)
            if node is not None:
                node.set_activity(activity, now=self.sim.now)
                if self.algorithm == "cdpsm" \
                        and activity is NodeActivity.SELECTING:
                    # Continuous all-pairs coordination keeps extra cores
                    # busy (observed as CDPSM's higher average power).
                    node.set_cpu_overlay(0.15)
                elif activity is not NodeActivity.SELECTING:
                    node.set_cpu_overlay(0.0)

    # -- the session process -------------------------------------------------------
    def run(self):
        """Simulated process: run the solve, leave results on ``self``."""
        start = self.sim.now
        self._set_activity(NodeActivity.SELECTING)
        C = self.problem.data.n_clients
        candidate = self.problem.uniform_allocation()
        try:
            for k, candidate, _metric in self.solver.iterations():
                self.iterations = k + 1
                comm_delay = self._round_messages()
                compute = self.timing.iteration_time(C, self.algorithm)
                yield self.sim.timeout(compute + comm_delay)
        finally:
            self._set_activity(NodeActivity.IDLE)
        self.allocation = self.problem.repair(candidate)
        self.duration = self.sim.now - start
        return self.allocation

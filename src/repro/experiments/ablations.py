"""Ablation studies for the design choices DESIGN.md calls out.

* **Step-size schedule** (Sec. III-D's closing remark): constant vs
  diminishing vs 1/sqrt(k) for both solvers.
* **Consensus topology** for CDPSM: complete graph (the paper's choice)
  vs ring vs Metropolis on a random graph.
* **LDDM stabilizations**: proximal term and suffix averaging on/off,
  warm-started duals on/off.
* **Communication complexity**: measured floats per iteration vs N,
  confirming O(C*N) (LDDM) against O(C*N^3) (CDPSM).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cdpsm import CdpsmSolver, default_cdpsm_step
from repro.core.consensus import metropolis_weights, ring_weights
from repro.core.lddm import LddmSolver
from repro.core.params import ProblemData
from repro.core.problem import ReplicaSelectionProblem
from repro.core.reference import solve_reference
from repro.core.stepsize import ConstantStep, DiminishingStep, SqrtStep
from repro.util.rng import make_rng
from repro.util.tables import render_table

__all__ = ["AblationResult", "run_stepsize", "run_topology",
           "run_lddm_variants", "run_comm_complexity", "run_all"]


@dataclass
class AblationResult:
    """One ablation table."""

    title: str
    headers: list[str]
    rows: list[list]
    notes: str = ""

    def render(self) -> str:
        out = render_table(self.headers, self.rows, title=self.title)
        if self.notes:
            out += "\n" + self.notes
        return out


def _instance(n_clients=6, n_replicas=8, seed=0) -> ReplicaSelectionProblem:
    rng = make_rng(seed)
    demands = rng.uniform(20, 60, size=n_clients)
    # Keep total demand at ~60% of aggregate capacity so every replica
    # count in a sweep yields a feasible instance.
    demands *= 0.6 * n_replicas * 100.0 / demands.sum()
    prices = rng.integers(1, 21, size=n_replicas).astype(float)
    return ReplicaSelectionProblem(
        ProblemData.paper_defaults(demands=demands, prices=prices))


def run_stepsize(max_iter: int = 300) -> AblationResult:
    """Constant vs diminishing vs sqrt schedules for both solvers."""
    prob = _instance()
    ref = solve_reference(prob).objective
    d0 = default_cdpsm_step(prob.data)
    rows = []
    for label, mk in (("constant", lambda: ConstantStep(d0)),
                      ("1/k", lambda: DiminishingStep(d0 * 4)),
                      ("1/sqrt(k)", lambda: SqrtStep(d0 * 4))):
        sol = CdpsmSolver(prob, step=mk(), max_iter=max_iter,
                          track_objective=False).solve()
        rows.append(["cdpsm", label, sol.iterations,
                     round(100 * (sol.objective / ref - 1), 3)])
    lddm_default = LddmSolver(prob)
    base = lddm_default.step(0)
    for label, mk in (("constant", lambda: ConstantStep(base)),
                      ("1/k", lambda: DiminishingStep(base * 4)),
                      ("1/sqrt(k)", lambda: SqrtStep(base * 4))):
        sol = LddmSolver(prob, step=mk(), max_iter=max_iter,
                         track_objective=False).solve()
        rows.append(["lddm", label, sol.iterations,
                     round(100 * (sol.objective / ref - 1), 3)])
    return AblationResult(
        title="Ablation — step-size schedule (gap to optimum after "
              f"<= {max_iter} iterations)",
        headers=["solver", "schedule", "iterations", "gap_%"],
        rows=rows,
        notes="paper uses constant steps for both (fair comparison)")


def run_topology(max_iter: int = 400) -> AblationResult:
    """CDPSM consensus graph: complete vs ring vs random Metropolis."""
    prob = _instance()
    ref = solve_reference(prob).objective
    n = prob.data.n_replicas
    rng = make_rng(1)
    adj = rng.random((n, n)) < 0.4
    adj = np.triu(adj, 1)
    adj = adj | adj.T
    # Ensure connectivity by adding a ring backbone.
    for i in range(n):
        adj[i, (i + 1) % n] = adj[(i + 1) % n, i] = True
    rows = []
    for label, weights in (("complete (paper)", None),
                           ("ring", ring_weights(n)),
                           ("metropolis(random)", metropolis_weights(adj))):
        sol = CdpsmSolver(prob, weights=weights, max_iter=max_iter,
                          track_objective=False).solve()
        rows.append([label, sol.iterations,
                     round(100 * (sol.objective / ref - 1), 3)])
    return AblationResult(
        title="Ablation — CDPSM consensus topology",
        headers=["topology", "iterations", "gap_%"],
        rows=rows,
        notes="sparser graphs mix information more slowly")


def run_lddm_variants(max_iter: int = 2000) -> AblationResult:
    """LDDM stabilizations on/off."""
    prob = _instance()
    ref = solve_reference(prob).objective
    variants = [
        ("full (prox + suffix-avg + warm mu)", {}),
        ("no averaging", {"averaging": False}),
        ("exact subproblem (paper)", {"exact_subproblem": True}),
        ("cold-start mu", {"warm_start_mu": False}),
    ]
    rows = []
    for label, kwargs in variants:
        sol = LddmSolver(prob, max_iter=max_iter, track_objective=False,
                         **kwargs).solve()
        rows.append([label, sol.iterations, sol.converged,
                     round(100 * (sol.objective / ref - 1), 3),
                     f"{prob.violation(sol.allocation):.2e}"])
    return AblationResult(
        title="Ablation — LDDM stabilizations",
        headers=["variant", "iterations", "converged", "gap_%", "violation"],
        rows=rows)


def run_comm_complexity(sizes=(2, 4, 8, 12)) -> AblationResult:
    """Measured communication volume per iteration vs replica count."""
    rows = []
    for n in sizes:
        prob = _instance(n_clients=6, n_replicas=n, seed=3)
        lddm = LddmSolver(prob, max_iter=5, tol=0.0,
                          track_objective=False).solve()
        cdpsm = CdpsmSolver(prob, max_iter=5, tol=0.0,
                            track_objective=False).solve()
        rows.append([n,
                     lddm.comm_floats // lddm.iterations,
                     cdpsm.comm_floats // cdpsm.iterations])
    return AblationResult(
        title="Ablation — communication floats per iteration vs N "
              "(C = 6 clients)",
        headers=["N", "lddm O(CN)", "cdpsm O(CN^3)"],
        rows=rows,
        notes="lddm column grows linearly in N; cdpsm column cubically")


def run_gossip(max_iter: int = 4000) -> AblationResult:
    """Synchronous all-pairs CDPSM vs randomized gossip (extension).

    Gossip removes the global synchronization barrier (one random pair
    per round) at the price of many more rounds; total communication
    volume stays comparable, but no round ever waits for the slowest
    replica — attractive in the wide-area deployments EDR targets.
    """
    from repro.core.gossip import GossipCdpsmSolver

    prob = _instance()
    ref = solve_reference(prob).objective
    sync = CdpsmSolver(prob, max_iter=400, track_objective=False).solve()
    gossip = GossipCdpsmSolver(prob, make_rng(42),
                               max_iter=max_iter).solve()
    rows = [
        ["cdpsm complete-graph (paper)", sync.iterations,
         round(100 * (sync.objective / ref - 1), 3), sync.comm_floats,
         "yes"],
        ["gossip (random pair/round)", gossip.iterations,
         round(100 * (gossip.objective / ref - 1), 3), gossip.comm_floats,
         "no"],
    ]
    return AblationResult(
        title="Ablation — synchronous vs gossip consensus (N = 8)",
        headers=["variant", "rounds", "gap_%", "comm_floats",
                 "needs barrier"],
        rows=rows,
        notes="gossip pays rounds for asynchrony; volume stays comparable")


def run_all() -> list[AblationResult]:
    """Run every ablation (used by the CLI)."""
    return [run_stepsize(), run_topology(), run_lddm_variants(),
            run_comm_complexity(), run_gossip()]

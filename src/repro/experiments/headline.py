"""The headline numbers: average savings over randomized configurations.

The paper: "Through all the runs, the LDDM-based EDR can save an average
of 12% energy cost compared to the Round-Robin method, while CDPSM-based
EDR can save an average of 22.64% energy consumption" (40 runs under
various configurations, prices randomized as integers in [1, 20]).

We sweep seeded configurations varying prices, request mix, and client
counts, and report the distribution of savings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.pricing import random_prices
from repro.experiments.runtime_common import run_runtime
from repro.experiments.scenarios import Scenario
from repro.util.rng import RngFactory
from repro.util.stats import summarize
from repro.util.tables import render_table
from repro.workload.apps import FILE_SERVICE, VIDEO_STREAMING

__all__ = ["HeadlineResult", "run"]


@dataclass
class HeadlineResult:
    """Savings distributions over the randomized sweep."""

    lddm_cost_savings: list[float]
    cdpsm_cost_savings: list[float]
    lddm_energy_savings: list[float]
    cdpsm_energy_savings: list[float]
    n_runs: int
    #: Coefficient of variation of each run's price vector — savings
    #: correlate with price dispersion (EDR's premise: prices "vary
    #: widely by region"; with near-uniform prices there is nothing to
    #: exploit and the coordination overhead shows).
    price_dispersion: list[float] = None

    def render(self) -> str:
        rows = []
        for label, sample in (
                ("LDDM cost saving %", self.lddm_cost_savings),
                ("CDPSM cost saving %", self.cdpsm_cost_savings),
                ("LDDM energy saving %", self.lddm_energy_savings),
                ("CDPSM energy saving %", self.cdpsm_energy_savings)):
            s = summarize([100 * v for v in sample])
            rows.append([label, round(s.mean, 2), round(s.min, 2),
                         round(s.p50, 2), round(s.max, 2)])
        table = render_table(
            ["metric", "mean", "min", "median", "max"], rows,
            title=(f"Headline sweep over {self.n_runs} randomized runs "
                   f"(savings vs Round-Robin)"))
        out = (table + "\npaper: avg 12% LDDM cost saving; "
               "avg 22.64% CDPSM energy saving")
        if self.price_dispersion and len(self.price_dispersion) >= 3:
            corr = float(np.corrcoef(self.price_dispersion,
                                     self.lddm_cost_savings)[0, 1])
            out += (f"\ncorrelation(price dispersion, LDDM cost saving) = "
                    f"{corr:+.2f} — EDR's win grows with regional price "
                    f"spread, its premise")
        return out


def run(n_runs: int = 40, seed: int = 7) -> HeadlineResult:
    """Run the randomized sweep (``n_runs`` independent configurations)."""
    factory = RngFactory(seed)
    lddm_cost, cdpsm_cost = [], []
    lddm_joules, cdpsm_joules = [], []
    dispersion = []
    for i in range(n_runs):
        rng = factory.stream(f"run{i}")
        prices = tuple(random_prices(rng, 8))
        app = VIDEO_STREAMING if i % 2 == 0 else FILE_SERVICE
        n_requests = int(rng.integers(16, 33)) if app is VIDEO_STREAMING \
            else int(rng.integers(160, 330))
        scenario = Scenario(
            name=f"headline{i}", app=app, n_requests=n_requests,
            n_clients=24, arrival_rate=n_requests / 2.0, prices=prices,
            seed=int(rng.integers(0, 2 ** 31)))
        results = {algo: run_runtime(scenario, algo)
                   for algo in ("lddm", "cdpsm", "round_robin")}
        rr = results["round_robin"]
        lddm_cost.append(results["lddm"].savings_vs(rr, "cents"))
        cdpsm_cost.append(results["cdpsm"].savings_vs(rr, "cents"))
        lddm_joules.append(results["lddm"].savings_vs(rr, "joules"))
        cdpsm_joules.append(results["cdpsm"].savings_vs(rr, "joules"))
        p = np.asarray(prices, dtype=float)
        dispersion.append(float(p.std() / p.mean()))
    return HeadlineResult(
        lddm_cost_savings=lddm_cost,
        cdpsm_cost_savings=cdpsm_cost,
        lddm_energy_savings=lddm_joules,
        cdpsm_energy_savings=cdpsm_joules,
        n_runs=n_runs,
        price_dispersion=dispersion)

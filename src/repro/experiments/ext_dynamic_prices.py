"""Extension — time-of-use electricity tariffs.

The paper's future work targets commercial clouds, where electricity
prices change through the day.  This experiment runs two bursts of video
requests separated by a tariff flip (the cheap and expensive regions swap)
and compares:

* **tariff-aware EDR** — each batch solved at the prices in force;
* **stale-tariff EDR** — the scheduler keeps using the old prices
  (accounting follows the true tariff in both cases);
* **Round-Robin** — price-blind, as ever.

Expected shape: the aware scheduler shifts the second burst's load onto
the newly-cheap replicas and beats both baselines on total cost.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.cluster.pricing import PriceSchedule
from repro.edr.system import EDRSystem, RuntimeConfig, SolverOptions
from repro.metrics.report import ExperimentResult
from repro.util.rng import RngFactory
from repro.util.tables import render_table
from repro.workload.apps import VIDEO_STREAMING
from repro.workload.clients import ClientPopulation
from repro.workload.generator import WorkloadGenerator
from repro.workload.requests import Request, RequestTrace
from repro.workload.youtube import YoutubeTrafficModel

__all__ = ["DynamicPricesResult", "run", "PHASE1_PRICES", "PHASE2_PRICES"]

#: Fig. 6 prices, and the same vector reversed — the cheap regions swap.
PHASE1_PRICES = (1.0, 8.0, 1.0, 6.0, 1.0, 5.0, 2.0, 3.0)
PHASE2_PRICES = tuple(reversed(PHASE1_PRICES))


@dataclass
class DynamicPricesResult:
    """Costs of the three schedulers under the tariff flip."""

    aware: ExperimentResult
    stale: ExperimentResult
    round_robin: ExperimentResult
    switch_at: float

    def render(self) -> str:
        rows = [
            ["EDR (tariff-aware)", self.aware.total_cents,
             self.aware.total_joules],
            ["EDR (stale tariff)", self.stale.total_cents,
             self.stale.total_joules],
            ["Round-Robin", self.round_robin.total_cents,
             self.round_robin.total_joules],
        ]
        table = render_table(
            ["scheduler", "total cents", "total J"], rows,
            title=(f"Extension — tariff flip at t={self.switch_at:g}s "
                   f"(cheap and expensive regions swap)"))
        save_stale = 1 - self.aware.total_cents / self.stale.total_cents
        save_rr = 1 - self.aware.total_cents / self.round_robin.total_cents
        return (table +
                f"\ntariff-aware saving vs stale EDR: {100 * save_stale:+.1f}%"
                f"\ntariff-aware saving vs Round-Robin: {100 * save_rr:+.1f}%")


def _two_burst_trace(switch_at: float, per_burst: int, n_clients: int,
                     seed: int) -> RequestTrace:
    """Two video bursts: one in each tariff phase."""
    factory = RngFactory(seed)
    gen = WorkloadGenerator(
        traffic=YoutubeTrafficModel(base_rate=per_burst, amplitude=0.0,
                                    period=1000.0),
        clients=ClientPopulation.uniform(n_clients),
        app=VIDEO_STREAMING)
    first = gen.generate(factory.stream("burst1"), count=per_burst)
    second = gen.generate(factory.stream("burst2"), count=per_burst)
    shifted = [Request(client=r.client, arrival=r.arrival + switch_at + 0.1,
                       size_mb=r.size_mb, app=r.app, object_id=r.object_id)
               for r in second]
    return RequestTrace(list(first) + shifted)


def run(switch_at: float = 15.0, per_burst: int = 24,
        n_clients: int = 24, seed: int = 11) -> DynamicPricesResult:
    """Run the tariff-flip experiment."""
    schedule = PriceSchedule.two_phase(PHASE1_PRICES, PHASE2_PRICES,
                                       switch_at)
    trace = _two_burst_trace(switch_at, per_burst, n_clients, seed)

    def make(algorithm: str, stale: bool) -> ExperimentResult:
        cfg = RuntimeConfig(
            solver=SolverOptions(algorithm=algorithm), prices=PHASE1_PRICES,
            price_schedule=schedule, solve_with_stale_prices=stale,
            batch_capacity_fraction=0.35)
        return EDRSystem(trace, cfg).run(app="video")

    return DynamicPricesResult(
        aware=make("lddm", stale=False),
        stale=make("lddm", stale=True),
        round_robin=make("round_robin", stale=False),
        switch_at=switch_at)

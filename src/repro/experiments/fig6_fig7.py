"""Figs. 6-7 — per-replica energy cost under LDDM / CDPSM / Round-Robin.

Fig. 6: video streaming; Fig. 7: distributed file service; prices fixed
to ``[1, 8, 1, 6, 1, 5, 2, 3]`` ¢/kWh.  The published shape: EDR steers
traffic toward the low-price replicas (1, 3, 5, then 7), so their share
of the energy cost rises while the expensive replicas' bars shrink
relative to Round-Robin's price-blind spread.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.edr.system import EDRSystem, NetConfig, RuntimeConfig, \
    SolverOptions
from repro.experiments.parallel import parallel_map
from repro.experiments.runtime_common import ALGORITHMS, run_runtime
from repro.experiments.scenarios import (
    PAPER_DFS,
    PAPER_VIDEO,
    Scenario,
    make_trace,
)
from repro.metrics.report import ExperimentResult, compare_table
from repro.util.tables import render_series
from repro.workload.apps import ApplicationProfile

__all__ = ["PerReplicaCostResult", "run",
           "TRAFFIC_APP", "TrafficPoint", "TrafficScalingResult",
           "traffic_scenario", "run_traffic_scaling"]


def _run_algo(item: tuple, recorder=None) -> ExperimentResult:
    # Module-level so it pickles into ProcessPoolExecutor workers.
    scenario, algo = item
    if recorder is not None and recorder.enabled:
        recorder.event("experiment.point", figure=scenario.app.name,
                       algorithm=algo)
    return run_runtime(scenario, algo, recorder=recorder)


@dataclass
class PerReplicaCostResult:
    """All three schedulers' per-replica costs on one application."""

    scenario: Scenario
    results: dict[str, ExperimentResult]

    def replica_names(self) -> list[str]:
        n = len(self.scenario.prices)
        return [f"replica{i + 1}" for i in range(n)]

    def render(self) -> str:
        fig = "6" if self.scenario.app.name == "video" else "7"
        table = compare_table(
            self.results, self.replica_names(), quantity="cents",
            title=(f"Fig. {fig} — per-replica energy cost (cents), "
                   f"{self.scenario.app.name}, prices "
                   f"{list(self.scenario.prices)}"))
        rr = self.results["round_robin"]
        lines = [table, ""]
        for algo in ("lddm", "cdpsm"):
            s = self.results[algo].savings_vs(rr, "cents")
            lines.append(f"{algo} total cost saving vs round-robin: "
                         f"{100 * s:+.1f}%")
        return "\n".join(lines)

    def cheap_replica_share(self, algorithm: str) -> float:
        """Fraction of that scheduler's cost carried by price<=2 replicas."""
        res = self.results[algorithm]
        prices = np.asarray(self.scenario.prices, dtype=float)
        cheap = res.cents_by_replica[prices <= 2].sum()
        return float(cheap / res.total_cents)


def run(scenario: Scenario | None = None, app: str = "video",
        jobs: int = 1, recorder=None) -> PerReplicaCostResult:
    """Run Fig. 6 (``app="video"``) or Fig. 7 (``app="dfs"``).

    The three schedulers are independent runs over the same trace seed,
    so ``jobs > 1`` executes them in parallel processes.  An enabled
    ``recorder`` forces serial execution — events captured inside worker
    processes would be lost.
    """
    if scenario is None:
        scenario = PAPER_VIDEO if app == "video" else PAPER_DFS
    algo_fn = _run_algo
    if recorder is not None and getattr(recorder, "enabled", False):
        jobs = 1
        algo_fn = partial(_run_algo, recorder=recorder)
    outs = parallel_map(algo_fn, [(scenario, a) for a in ALGORITHMS],
                        jobs=jobs)
    results = dict(zip(ALGORITHMS, outs))
    return PerReplicaCostResult(scenario=scenario, results=results)


# -- request-scaling sweep (the traffic-engine counterpart of fig9) ---------

#: Small-object traffic: ~1 MB requests, the CDN-style regime where the
#: data plane sees many concurrent downloads per (replica, client) pair
#: inside one scheduling epoch.
TRAFFIC_APP = ApplicationProfile(name="traffic", mean_size_mb=1.0)


def traffic_scenario(n_requests: int, n_clients: int = 24,
                     arrival_rate: float = 450.0) -> Scenario:
    """A high-request-rate scenario for the traffic-scaling sweep."""
    return Scenario(name=f"traffic-{n_requests}", app=TRAFFIC_APP,
                    n_requests=n_requests, n_clients=n_clients,
                    arrival_rate=arrival_rate)


def _traffic_config(legacy: bool, poll_interval: float) -> RuntimeConfig:
    """Runtime config for one scaling run.

    ``legacy=True`` restores the old data-plane cost profile: one flow
    per request and the scalar dict-based fair-share allocator.  The
    control plane is identical in both — the incremental delta-event
    re-solve, so per-epoch solver traffic stays cheap and the wall-clock
    delta isolates the traffic engine.
    """
    return RuntimeConfig(
        solver=SolverOptions(incremental=True, incremental_max_clients=64),
        net=NetConfig(coalesce=not legacy,
                      flow_kernel="scalar" if legacy else "vector"),
        poll_interval=poll_interval)


@dataclass
class TrafficPoint:
    """One scaling point: the same trace through both engine paths."""

    n_requests: int
    wall_new_s: float
    result_new: ExperimentResult
    wall_legacy_s: float | None = None
    result_legacy: ExperimentResult | None = None

    @property
    def speedup(self) -> float | None:
        """Legacy wall / new wall (None where legacy was skipped)."""
        if self.wall_legacy_s is None:
            return None
        return self.wall_legacy_s / self.wall_new_s

    @property
    def cents_gap(self) -> float | None:
        """Max per-replica |cents delta| between the two paths."""
        if self.result_legacy is None:
            return None
        return float(np.max(np.abs(self.result_new.cents_by_replica
                                   - self.result_legacy.cents_by_replica)))

    @property
    def response_gap(self) -> float | None:
        """|mean response delta| between the two paths (seconds)."""
        if self.result_legacy is None:
            return None
        return abs(self.result_new.mean_response
                   - self.result_legacy.mean_response)


@dataclass
class TrafficScalingResult:
    """The request-scaling sweep (EXPERIMENTS.md "traffic engine")."""

    points: list[TrafficPoint] = field(default_factory=list)
    legacy_limit: int = 10_000

    def point(self, n_requests: int) -> TrafficPoint:
        for p in self.points:
            if p.n_requests == n_requests:
                return p
        raise KeyError(n_requests)

    def speedup_at(self, n_requests: int) -> float | None:
        return self.point(n_requests).speedup

    def render(self) -> str:
        xs = [p.n_requests for p in self.points]
        series = {
            "new wall (s)": [p.wall_new_s for p in self.points],
            "legacy wall (s)": [p.wall_legacy_s if p.wall_legacy_s is not None
                                else float("nan") for p in self.points],
            "speedup": [p.speedup if p.speedup is not None else float("nan")
                        for p in self.points],
            "coalesced": [p.result_new.extras["flows_coalesced"]
                          for p in self.points],
            "recomputes": [p.result_new.extras["flow_recomputes"]
                           for p in self.points],
        }
        return render_series(
            series, x=xs, x_label="requests",
            title=("Traffic engine scaling — EDRSystem.run wall clock, "
                   "coalesced+vector vs legacy per-request scalar "
                   f"(legacy beyond {self.legacy_limit} requests skipped)"))


def _run_traffic_point(item: tuple) -> tuple[float, ExperimentResult]:
    # Module-level so it pickles into ProcessPoolExecutor workers.
    scenario, legacy, poll_interval = item
    trace = make_trace(scenario)
    system = EDRSystem(trace, _traffic_config(legacy, poll_interval))
    t0 = time.perf_counter()
    result = system.run(app=scenario.app.name)
    return time.perf_counter() - t0, result


def run_traffic_scaling(request_counts=(1_000, 10_000, 100_000),
                        legacy_limit: int = 10_000,
                        n_clients: int = 24,
                        arrival_rate: float = 450.0,
                        poll_interval: float = 0.25,
                        jobs: int = 1) -> TrafficScalingResult:
    """Replay growing request traces through the full ``EDRSystem``.

    Every point runs the coalesced + vectorized engine; points up to
    ``legacy_limit`` requests also run the legacy per-request scalar
    path on the *same trace* for the wall-clock ratio and the exactness
    gaps (per-replica cents, mean response).  ``poll_interval`` is the
    scheduling epoch — larger epochs mean more same-pair downloads per
    ASSIGN batch, i.e. more coalescing.  ``jobs=2`` runs a point's two
    engine paths in parallel processes (CI smoke); keep the default
    serial run when the wall-clock *ratio* is the measurement.
    """
    out = TrafficScalingResult(legacy_limit=legacy_limit)
    for n in request_counts:
        scenario = traffic_scenario(n, n_clients=n_clients,
                                    arrival_rate=arrival_rate)
        items = [(scenario, False, poll_interval)]
        if n <= legacy_limit:
            items.append((scenario, True, poll_interval))
        results = parallel_map(_run_traffic_point, items,
                               jobs=min(jobs, len(items)))
        wall_new, res_new = results[0]
        point = TrafficPoint(n_requests=n, wall_new_s=wall_new,
                             result_new=res_new)
        if len(results) == 2:
            point.wall_legacy_s, point.result_legacy = results[1]
        out.points.append(point)
    return out

"""Figs. 6-7 — per-replica energy cost under LDDM / CDPSM / Round-Robin.

Fig. 6: video streaming; Fig. 7: distributed file service; prices fixed
to ``[1, 8, 1, 6, 1, 5, 2, 3]`` ¢/kWh.  The published shape: EDR steers
traffic toward the low-price replicas (1, 3, 5, then 7), so their share
of the energy cost rises while the expensive replicas' bars shrink
relative to Round-Robin's price-blind spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.experiments.parallel import parallel_map
from repro.experiments.runtime_common import ALGORITHMS, run_runtime
from repro.experiments.scenarios import PAPER_DFS, PAPER_VIDEO, Scenario
from repro.metrics.report import ExperimentResult, compare_table

__all__ = ["PerReplicaCostResult", "run"]


def _run_algo(item: tuple, recorder=None) -> ExperimentResult:
    # Module-level so it pickles into ProcessPoolExecutor workers.
    scenario, algo = item
    if recorder is not None and recorder.enabled:
        recorder.event("experiment.point", figure=scenario.app.name,
                       algorithm=algo)
    return run_runtime(scenario, algo, recorder=recorder)


@dataclass
class PerReplicaCostResult:
    """All three schedulers' per-replica costs on one application."""

    scenario: Scenario
    results: dict[str, ExperimentResult]

    def replica_names(self) -> list[str]:
        n = len(self.scenario.prices)
        return [f"replica{i + 1}" for i in range(n)]

    def render(self) -> str:
        fig = "6" if self.scenario.app.name == "video" else "7"
        table = compare_table(
            self.results, self.replica_names(), quantity="cents",
            title=(f"Fig. {fig} — per-replica energy cost (cents), "
                   f"{self.scenario.app.name}, prices "
                   f"{list(self.scenario.prices)}"))
        rr = self.results["round_robin"]
        lines = [table, ""]
        for algo in ("lddm", "cdpsm"):
            s = self.results[algo].savings_vs(rr, "cents")
            lines.append(f"{algo} total cost saving vs round-robin: "
                         f"{100 * s:+.1f}%")
        return "\n".join(lines)

    def cheap_replica_share(self, algorithm: str) -> float:
        """Fraction of that scheduler's cost carried by price<=2 replicas."""
        res = self.results[algorithm]
        prices = np.asarray(self.scenario.prices, dtype=float)
        cheap = res.cents_by_replica[prices <= 2].sum()
        return float(cheap / res.total_cents)


def run(scenario: Scenario | None = None, app: str = "video",
        jobs: int = 1, recorder=None) -> PerReplicaCostResult:
    """Run Fig. 6 (``app="video"``) or Fig. 7 (``app="dfs"``).

    The three schedulers are independent runs over the same trace seed,
    so ``jobs > 1`` executes them in parallel processes.  An enabled
    ``recorder`` forces serial execution — events captured inside worker
    processes would be lost.
    """
    if scenario is None:
        scenario = PAPER_VIDEO if app == "video" else PAPER_DFS
    algo_fn = _run_algo
    if recorder is not None and getattr(recorder, "enabled", False):
        jobs = 1
        algo_fn = partial(_run_algo, recorder=recorder)
    outs = parallel_map(algo_fn, [(scenario, a) for a in ALGORITHMS],
                        jobs=jobs)
    results = dict(zip(ALGORITHMS, outs))
    return PerReplicaCostResult(scenario=scenario, results=results)

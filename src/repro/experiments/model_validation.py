"""Validation — does the planning model predict the physical cost?

EDR's whole premise (Sec. III-A) is that optimizing the abstract Eq. (1)
objective reduces the *measured* energy cost of the real system.  This
experiment samples random static split-weight vectors, runs the emulated
cluster under each (``algorithm="weighted"``), and compares the planning
model's predicted cost ordering with the measured one (Spearman rank
correlation).  The LDDM allocation should also land at or below every
random split's measured cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.core.model import replica_energy
from repro.core.params import ProblemData
from repro.edr.system import EDRSystem, RuntimeConfig, SolverOptions
from repro.experiments.scenarios import Scenario, make_trace
from repro.util.rng import RngFactory
from repro.util.tables import render_table
from repro.workload.apps import VIDEO_STREAMING

__all__ = ["ModelValidationResult", "run"]


@dataclass
class ModelValidationResult:
    """Predicted vs measured cost across random split policies."""

    predicted: list[float]      # planning-model cost per policy
    measured: list[float]       # emulated cents per policy
    spearman: float
    lddm_measured: float
    best_random_measured: float
    beta_sweep: dict[float, float]  # planning beta -> measured LDDM cents

    def render(self) -> str:
        rows = [[i, round(p, 1), round(m * 1e3, 4)]
                for i, (p, m) in enumerate(zip(self.predicted,
                                               self.measured))]
        table = render_table(
            ["policy", "planning cost (Eq. 1)", "measured cost (m¢)"],
            rows, title="Validation — planning model vs emulated cluster")
        beta_rows = [[b, round(c * 1e3, 4)]
                     for b, c in sorted(self.beta_sweep.items())]
        beta_table = render_table(
            ["planning beta", "LDDM measured cost (m¢)"], beta_rows,
            title="Planning-beta calibration (paper: beta = 0.01)")
        return (table +
                f"\nSpearman rank correlation: {self.spearman:+.2f} "
                f"(the model orders policies like the meter does)"
                f"\nLDDM measured: {1e3 * self.lddm_measured:.4f} m¢ vs "
                f"best random policy {1e3 * self.best_random_measured:.4f} "
                f"m¢\n\n" + beta_table +
                "\nsmaller beta = stronger concentration on cheap "
                "replicas; the paper's beta over-spreads on our substrate "
                "(the cubic NIC term is ~6% of node power)")


def run(n_policies: int = 8, seed: int = 21) -> ModelValidationResult:
    """Run the validation sweep."""
    scenario = Scenario(name="validation", app=VIDEO_STREAMING,
                        n_requests=24, n_clients=24, arrival_rate=12.0)
    trace = make_trace(scenario)
    factory = RngFactory(seed)
    rng = factory.stream("weights")
    prices = np.asarray(scenario.prices, dtype=float)
    demands_total = trace.total_mb()

    predicted, measured = [], []
    for i in range(n_policies):
        w = rng.dirichlet(np.ones(len(prices)))
        # Planning prediction: Eq. (1) at the loads this policy implies
        # for a representative batch (total demand scaled to a batch).
        batch = demands_total / 10.0
        data = ProblemData.paper_defaults(
            demands=[batch], prices=prices)
        loads = w * batch
        predicted.append(float(replica_energy(data, loads).sum()))
        cfg = RuntimeConfig(
            solver=SolverOptions(algorithm="weighted", weights=tuple(w)),
            batch_capacity_fraction=0.35)
        res = EDRSystem(trace, cfg).run(app="video")
        measured.append(res.total_cents)
    lddm = EDRSystem(trace, RuntimeConfig(
        batch_capacity_fraction=0.35)).run(app="video")
    rho = float(stats.spearmanr(predicted, measured).statistic)
    beta_sweep = {}
    for beta in (0.01, 0.003, 0.001):
        res = EDRSystem(trace, RuntimeConfig(
            beta=beta,
            batch_capacity_fraction=0.35)).run(app="video")
        beta_sweep[beta] = res.total_cents
    return ModelValidationResult(
        predicted=predicted, measured=measured, spearman=rho,
        lddm_measured=lddm.total_cents,
        best_random_measured=min(measured),
        beta_sweep=beta_sweep)

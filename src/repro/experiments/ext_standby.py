"""Extension — standby power states (energy proportionality).

The paper's related work motivates "reduc[ing] the number of machines
powered on 24x7"; its own testbed keeps every replica drawing ~215 W
idle.  This extension lets replicas drop to a deep low-power state after
a sustained idle stretch, and measures *wall-clock* energy (the
datacenter operator's view: every provisioned node, all run long).

Expected shape: EDR's price-driven load concentration leaves the
expensive replicas idle for long stretches, so standby converts its
concentration into a *joule* win too — recovering the direction of the
paper's Fig. 8(b) claim that our always-on substrate can't show
(see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.edr.system import EDRSystem, FaultConfig, RuntimeConfig, \
    SolverOptions
from repro.experiments.scenarios import Scenario, make_trace
from repro.util.tables import render_table
from repro.workload.apps import VIDEO_STREAMING

__all__ = ["StandbyResult", "run"]


@dataclass
class StandbyResult:
    """Wall-clock joules with and without standby, per scheduler."""

    joules_on: dict[str, float]       # always-on (paper setup)
    joules_standby: dict[str, float]  # with the standby extension
    standby_after: float

    def render(self) -> str:
        rows = []
        for algo in self.joules_on:
            on = self.joules_on[algo]
            sb = self.joules_standby[algo]
            rows.append([algo, round(on), round(sb),
                         round(100 * (1 - sb / on), 1)])
        table = render_table(
            ["scheduler", "always-on J", "standby J", "saved %"],
            rows,
            title=(f"Extension — standby after {self.standby_after:g}s idle "
                   f"(wall-clock energy, whole cluster)"))
        edr = 1 - self.joules_standby["lddm"] / self.joules_standby[
            "round_robin"]
        gap_on = 1 - self.joules_on["lddm"] / self.joules_on["round_robin"]
        return (table +
                f"\nLDDM wall-clock energy vs Round-Robin: "
                f"{100 * gap_on:+.1f}% always-on -> {100 * edr:+.1f}% with "
                f"standby — concentration creates the sleep opportunities, "
                f"closing EDR's joule gap")


def run(standby_after: float = 0.75, n_requests: int = 24,
        n_clients: int = 24) -> StandbyResult:
    """Run the standby comparison on a video burst."""
    scenario = Scenario(name="standby", app=VIDEO_STREAMING,
                        n_requests=n_requests, n_clients=n_clients,
                        arrival_rate=n_requests / 2.0)
    trace = make_trace(scenario)
    joules_on: dict[str, float] = {}
    joules_standby: dict[str, float] = {}
    for algo in ("lddm", "round_robin"):
        for standby, sink in ((None, joules_on),
                              (standby_after, joules_standby)):
            cfg = RuntimeConfig(solver=SolverOptions(algorithm=algo),
                                faults=FaultConfig(standby_after=standby),
                                batch_capacity_fraction=0.35)
            res = EDRSystem(trace, cfg).run(app="video")
            sink[algo] = float(np.sum(res.extras["wall_clock_joules"]))
    return StandbyResult(joules_on=joules_on,
                         joules_standby=joules_standby,
                         standby_after=standby_after)

"""Command-line experiment runner.

Usage::

    python -m repro.experiments fig5
    python -m repro.experiments fig3 fig4 fig6
    python -m repro.experiments all --quick
    python -m repro.experiments headline --runs 10
    python -m repro.experiments fig9 --counts 24 --trace out.jsonl
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    ablations,
    ext_dynamic_prices,
    ext_geo_latency,
    fig3_fig4,
    fig5,
    fig6_fig7,
    fig8,
    fig9,
)
from repro.experiments import headline as headline_mod
from repro.experiments.scenarios import PAPER_DFS, PAPER_VIDEO

__all__ = ["main"]

_ALL = ("fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
        "traffic", "headline", "ablations", "ext_prices", "ext_geo",
        "ext_standby", "validation")


def _scaled(scenario, quick: bool):
    return scenario.scaled(0.5) if quick else scenario


def run_one(name: str, args, recorder=None) -> str:
    """Run one experiment by name; returns its rendered report.

    ``recorder`` (a :class:`repro.obs.TraceRecorder` from ``--trace``)
    is threaded through the experiments that support runtime tracing
    (fig6/fig7/fig9); the others run untraced.
    """
    quick = args.quick
    if recorder is not None and recorder.enabled:
        recorder.event("experiment.figure", figure=name)
    if name in ("fig3", "fig4"):
        results = fig3_fig4.run(_scaled(PAPER_DFS, quick))
        key = "cdpsm" if name == "fig3" else "lddm"
        return results[key].render()
    if name == "fig5":
        return fig5.run(max_iter=100 if quick else 300).render()
    if name == "fig6":
        return fig6_fig7.run(_scaled(PAPER_VIDEO, quick), app="video",
                             jobs=args.jobs, recorder=recorder).render()
    if name == "fig7":
        return fig6_fig7.run(_scaled(PAPER_DFS, quick), app="dfs",
                             jobs=args.jobs, recorder=recorder).render()
    if name == "fig8":
        return fig8.run(video=_scaled(PAPER_VIDEO, quick),
                        dfs=_scaled(PAPER_DFS, quick)).render()
    if name == "fig9":
        counts = tuple(args.counts) if getattr(args, "counts", None) \
            else ((24, 48, 96) if quick else fig9.DEFAULT_REQUEST_COUNTS)
        return fig9.run(request_counts=counts, jobs=args.jobs,
                        recorder=recorder).render()
    if name == "traffic":
        counts = tuple(args.counts) if getattr(args, "counts", None) \
            else ((1_000, 5_000) if quick else (1_000, 10_000, 100_000))
        return fig6_fig7.run_traffic_scaling(request_counts=counts,
                                             jobs=args.jobs).render()
    if name == "headline":
        runs = args.runs if args.runs else (6 if quick else 40)
        return headline_mod.run(n_runs=runs).render()
    if name == "ablations":
        return "\n\n".join(r.render() for r in ablations.run_all())
    if name == "ext_prices":
        per_burst = 12 if quick else 24
        return ext_dynamic_prices.run(per_burst=per_burst).render()
    if name == "ext_geo":
        return ext_geo_latency.run().render()
    if name == "ext_standby":
        from repro.experiments import ext_standby
        n = 12 if quick else 24
        return ext_standby.run(n_requests=n, n_clients=n).render()
    if name == "validation":
        from repro.experiments import model_validation
        return model_validation.run(
            n_policies=4 if quick else 8).render()
    raise SystemExit(f"unknown experiment {name!r}; choose from {_ALL}")


def _reports_dir():
    """The bench-report ledger directory (created on demand)."""
    from pathlib import Path
    root = Path(__file__).resolve().parents[3]
    reports = root / "benchmarks" / "reports"
    if not reports.parent.is_dir():  # installed outside the repo tree
        reports = Path.cwd() / "profiles"
    reports.mkdir(parents=True, exist_ok=True)
    return reports


def _profiled(name: str, args, recorder=None) -> str:
    """Run one experiment under cProfile; dump pstats + print hot spots."""
    import cProfile
    import io
    import pstats

    prof = cProfile.Profile()
    prof.enable()
    try:
        report = run_one(name, args, recorder=recorder)
    finally:
        prof.disable()
    path = _reports_dir() / f"profile_{name}.pstats"
    prof.dump_stats(path)
    buf = io.StringIO()
    stats = pstats.Stats(prof, stream=buf).sort_stats("cumulative")
    stats.print_stats(15)
    print(f"profile: {path}")
    print("\n".join(buf.getvalue().splitlines()[:25]))
    return report


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's figures.")
    parser.add_argument("experiments", nargs="+",
                        help=f"experiment names: {', '.join(_ALL)}, or 'all'")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads for a fast pass")
    parser.add_argument("--runs", type=int, default=0,
                        help="override run count for the headline sweep")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for sweep points "
                             "(1 = serial; results are identical)")
    parser.add_argument("--counts", type=int, nargs="+", default=None,
                        help="override fig9's request-count sweep points")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="capture a runtime telemetry trace "
                             "(repro.obs) and write it as JSONL; forces "
                             "serial sweeps for traced experiments")
    parser.add_argument("--profile", action="store_true",
                        help="run each experiment under cProfile and "
                             "write a pstats dump next to the bench "
                             "reports (benchmarks/reports/)")
    args = parser.parse_args(argv)
    names = list(args.experiments)
    if names == ["all"]:
        names = list(_ALL)
    recorder = None
    if args.trace:
        from repro.obs import TraceRecorder
        recorder = TraceRecorder()
    for name in names:
        t0 = time.time()
        if args.profile:
            report = _profiled(name, args, recorder)
        else:
            report = run_one(name, args, recorder=recorder)
        elapsed = time.time() - t0
        print(f"\n=== {name} ({elapsed:.1f}s) " + "=" * 40)
        print(report)
    if recorder is not None:
        from repro.obs import summary, to_jsonl
        lines = to_jsonl(recorder, args.trace)
        print(f"\ntrace: {lines} records -> {args.trace}")
        s = summary(recorder)
        for section in ("sessions", "net", "warm_start", "aggregation"):
            if section in s:
                print(f"  {section}: {s[section]}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Canonical experiment scenarios (Sec. IV-A system setup).

The paper: 8 SystemG nodes as replicas; 100 MB/s Ethernet; T = 1.8 ms;
``alpha = 1``, ``beta = 0.01``, ``gamma = 3``; per-replica electricity
prices random integers in [1, 20] ¢/kWh (fixed to ``[1,8,1,6,1,5,2,3]``
for the Fig. 6/7 case study); requests follow the YouTube pattern with
~100 MB (video streaming) or ~10 MB (distributed file service) each.

We issue requests in a short burst (the paper's batch-style runs) against
a cluster whose aggregate capacity comfortably exceeds any single burst —
the "peak service hours" regime where placement drives per-replica
execution windows and therefore energy cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.pricing import PAPER_PRICES
from repro.errors import ValidationError
from repro.util.rng import RngFactory
from repro.workload.apps import (
    FILE_SERVICE,
    VIDEO_STREAMING,
    ApplicationProfile,
)
from repro.workload.clients import ClientPopulation
from repro.workload.generator import WorkloadGenerator
from repro.workload.requests import RequestTrace
from repro.workload.youtube import YoutubeTrafficModel

__all__ = ["Scenario", "PAPER_VIDEO", "PAPER_DFS", "make_trace"]


@dataclass(frozen=True)
class Scenario:
    """One workload scenario description."""

    name: str
    app: ApplicationProfile
    n_requests: int
    n_clients: int
    arrival_rate: float           # requests/second during the burst
    prices: tuple = PAPER_PRICES
    diurnal_amplitude: float = 0.0
    diurnal_period: float = 1000.0
    seed: int = 2013              # CLUSTER 2013

    def __post_init__(self) -> None:
        if self.n_requests < 1 or self.n_clients < 1:
            raise ValidationError("need at least one request and client")
        if self.arrival_rate <= 0:
            raise ValidationError("arrival_rate must be positive")

    def scaled(self, factor: float) -> "Scenario":
        """A smaller/larger variant (used by --quick runs and benches)."""
        if factor <= 0:
            raise ValidationError("scale factor must be positive")
        return Scenario(
            name=f"{self.name}(x{factor:g})",
            app=self.app,
            n_requests=max(1, int(round(self.n_requests * factor))),
            n_clients=max(1, int(round(self.n_clients * factor))),
            arrival_rate=self.arrival_rate * factor,
            prices=self.prices,
            diurnal_amplitude=self.diurnal_amplitude,
            diurnal_period=self.diurnal_period,
            seed=self.seed)


#: Video streaming: 24 clients, one ~100 MB request each, ~2 s burst.
PAPER_VIDEO = Scenario(
    name="video", app=VIDEO_STREAMING, n_requests=24, n_clients=24,
    arrival_rate=12.0)

#: Distributed file service: ~10 MB requests at 10x the video count.
PAPER_DFS = Scenario(
    name="dfs", app=FILE_SERVICE, n_requests=240, n_clients=24,
    arrival_rate=120.0)


def make_trace(scenario: Scenario, seed: int | None = None) -> RequestTrace:
    """Materialize a scenario into a request trace (deterministic)."""
    rng = RngFactory(scenario.seed if seed is None else seed)
    gen = WorkloadGenerator(
        traffic=YoutubeTrafficModel(
            base_rate=scenario.arrival_rate,
            amplitude=scenario.diurnal_amplitude,
            period=scenario.diurnal_period),
        clients=ClientPopulation.uniform(scenario.n_clients),
        app=scenario.app)
    return gen.generate(rng.stream("trace"), count=scenario.n_requests)

"""Fig. 9 — system performance: EDR vs DONAR response time scaling.

Three EDR replicas (LDDM) against three DONAR mapping nodes; the request
count sweeps 24..192 (YouTube-patterned).  Published shape: the two
systems' response times are very close, under ~200 ms per request, and
grow near-linearly with the request count; EDR's asymptotic communication
complexity is lower, so it wins at scale.

Beyond the paper's sweep, :func:`run_solver_scaling` pushes the *solver*
(the batched replica-selection step that dominates EDR's decision
latency) into the 10^4-10^5-client range, comparing the direct per-client
path against the exact class-space aggregation of
:mod:`repro.core.aggregate` — the regime the ROADMAP's "millions of
users" north star cares about, where the full runtime's dense topology
matrices are no longer the bottleneck that matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.core.aggregate import ClassStructure, solve_aggregated
from repro.core.lddm import solve_lddm
from repro.core.params import ProblemData
from repro.core.problem import ReplicaSelectionProblem
from repro.edr.coordinator import ShardCoordinator, ShardingConfig, \
    solve_sharded
from repro.edr.donar_runtime import DonarRuntime, DonarRuntimeConfig
from repro.edr.system import EDRSystem, RuntimeConfig, SolverOptions
from repro.errors import ValidationError
from repro.experiments.parallel import parallel_map
from repro.experiments.scenarios import Scenario, make_trace
from repro.util.rng import make_rng
from repro.util.tables import render_series
from repro.workload.apps import FILE_SERVICE

__all__ = ["Fig9Result", "run", "run_point", "DEFAULT_REQUEST_COUNTS",
           "SolverScalingResult", "scaling_problem", "run_scaling_point",
           "run_solver_scaling", "DEFAULT_SCALING_CLIENTS",
           "IncrementalEventResult", "run_incremental_events",
           "ShardScalingResult", "run_sharded_point",
           "run_sharded_scaling", "ShardEventResult",
           "run_sharded_events", "DEFAULT_SHARD_CLIENTS",
           "FleetResult", "run_persistent_fleet",
           "SkewResult", "run_elastic_skew"]

DEFAULT_REQUEST_COUNTS = (24, 48, 72, 96, 120, 144, 168, 192)

#: Client counts for the large-C solver scaling sweep (fig. 9 regime,
#: pushed to the 10^5 clients the aggregated path makes tractable).
DEFAULT_SCALING_CLIENTS = (2_000, 10_000, 20_000, 50_000, 100_000)

#: Largest client count the direct O(C*N) path is timed at by default.
DEFAULT_DIRECT_LIMIT = 20_000

#: 3-replica price vector (prices do not affect response time).
_PRICES_3 = (1.0, 8.0, 1.0)


@dataclass
class Fig9Result:
    """Mean response time per request count for both systems."""

    request_counts: list[int]
    edr_mean_response: list[float]
    donar_mean_response: list[float]
    edr_total_response: list[float] = field(default_factory=list)
    donar_total_response: list[float] = field(default_factory=list)
    #: Simulated seconds EDR spent inside LDDM solves, per request count.
    edr_solve_time: list[float] = field(default_factory=list)
    #: Total LDDM iterations across all of EDR's solves, per request count.
    edr_solve_iterations: list[int] = field(default_factory=list)

    def render(self) -> str:
        table = render_series(
            {"EDR_ms": [1000 * v for v in self.edr_mean_response],
             "DONAR_ms": [1000 * v for v in self.donar_mean_response],
             "EDR_total_s": self.edr_total_response,
             "DONAR_total_s": self.donar_total_response},
            x=self.request_counts, x_label="requests",
            title=("Fig. 9 — response time vs request count, "
                   "EDR (3 replicas, LDDM) vs DONAR (3 mapping nodes)"))
        worst = max(self.edr_mean_response) * 1000
        return (table + f"\nworst EDR mean response: {worst:.1f} ms "
                "(paper: < 200 ms per request, near-linear growth)")


def _scenario(count: int, max_clients: int = 24) -> Scenario:
    # All requests submitted (nearly) together, as in the paper's sweep:
    # the whole count lands within ~20 ms, so the systems must schedule
    # one large backlog and later requests queue behind earlier chunks —
    # this is what makes response time grow with the request count.
    return Scenario(name=f"fig9-{count}", app=FILE_SERVICE,
                    n_requests=count, n_clients=min(count, max_clients),
                    arrival_rate=count * 50.0)


def run_point(point: int | tuple, recorder=None) -> dict:
    """One sweep point: both systems at one request count.

    Module-level and driven entirely by its argument — a count, or a
    ``(count, warm_start[, aggregate[, max_clients[, sharding]]])``
    tuple — so it pickles cleanly into worker processes and gives
    bit-identical results at any ``--jobs`` level (every random draw
    derives from the scenario's fixed seed).  ``sharding`` routes EDR's
    scheduling through the sharded control plane: a shard count or a
    :class:`~repro.edr.coordinator.ShardingConfig`.  ``recorder``
    threads a :class:`~repro.obs.Recorder` through the EDR runtime
    (serial sweeps only — events captured in worker processes would be
    lost).
    """
    defaults = (True, True, 24, None)
    vals = (point,) if isinstance(point, int) else tuple(point)
    count, warm, aggregate, max_clients, sharding = \
        (vals + defaults[len(vals) - 1:])[:5]
    shard_cfg = None
    if sharding:
        shard_cfg = sharding if isinstance(sharding, ShardingConfig) \
            else ShardingConfig(n_shards=int(sharding))
    scenario = _scenario(int(count), max_clients=int(max_clients))
    trace = make_trace(scenario)
    if recorder is not None and recorder.enabled:
        recorder.event("experiment.point", figure="fig9",
                       requests=int(count))
    edr = EDRSystem(trace, RuntimeConfig(
        solver=SolverOptions(warm_start=warm, aggregate=aggregate,
                             sharding=shard_cfg),
        prices=_PRICES_3, batch_capacity_fraction=0.35,
        recorder=recorder)).run(app="dfs")
    donar = DonarRuntime(trace, DonarRuntimeConfig(
        n_replicas=3, n_mapping_nodes=3)).run(app="dfs")
    return {
        "count": int(count),
        "edr_mean": edr.mean_response,
        "donar_mean": donar.mean_response,
        "edr_total": sum(edr.response_times),
        "donar_total": sum(donar.response_times),
        "edr_solve_time": float(edr.extras.get("solve_time", 0.0)),
        "edr_solve_iterations": int(edr.extras.get("solve_iterations", 0)),
    }


def run(request_counts=DEFAULT_REQUEST_COUNTS, jobs: int = 1,
        warm_start: bool = True, aggregate: bool = True,
        max_clients: int = 24, sharding=None, recorder=None) -> Fig9Result:
    """Sweep the request count for both systems.

    ``jobs > 1`` spreads the (independent) sweep points over worker
    processes; ``warm_start=False`` forces every EDR batch to cold-start,
    for the warm-vs-cold regression and benchmarks; ``aggregate=False``
    disables the class-space solve; ``max_clients`` lifts the paper's
    24-client population cap so the sweep can grow the client count with
    the request count; ``sharding`` (a shard count or a
    :class:`~repro.edr.coordinator.ShardingConfig`) routes EDR through
    the sharded dual-price control plane.  An enabled ``recorder``
    forces ``jobs=1`` — events captured inside worker processes would
    be lost.
    """
    counts = [int(c) for c in request_counts]
    if not counts or min(counts) < 1:
        raise ValidationError("request_counts must be positive")
    point_fn = run_point
    if recorder is not None and getattr(recorder, "enabled", False):
        jobs = 1
        point_fn = partial(run_point, recorder=recorder)
    points = parallel_map(
        point_fn,
        [(c, warm_start, aggregate, int(max_clients), sharding)
         for c in counts],
        jobs=jobs)
    return Fig9Result(
        request_counts=counts,
        edr_mean_response=[p["edr_mean"] for p in points],
        donar_mean_response=[p["donar_mean"] for p in points],
        edr_total_response=[p["edr_total"] for p in points],
        donar_total_response=[p["donar_total"] for p in points],
        edr_solve_time=[p["edr_solve_time"] for p in points],
        edr_solve_iterations=[p["edr_solve_iterations"] for p in points])


# -- large-C solver scaling (the aggregation regime) -------------------------

#: Solver budget used by the runtime's LDDM batches (see EDRSystem).
_RUNTIME_LDDM_KWARGS = {"max_iter": 150, "tol": 1e-3,
                        "track_objective": False}


@dataclass
class SolverScalingResult:
    """Direct vs aggregated LDDM solve times across client counts.

    ``direct_solve_s`` entries are ``None`` where the direct path was not
    timed (above ``direct_limit``).
    """

    client_counts: list[int]
    n_classes: list[int]
    aggregate_solve_s: list[float]
    aggregate_objective: list[float]
    aggregate_iterations: list[int]
    direct_solve_s: list[float | None]
    direct_objective: list[float | None]
    direct_iterations: list[int | None]

    def speedup(self) -> float | None:
        """Direct/aggregated wall-time ratio at the largest count with both."""
        best = None
        for i, c in enumerate(self.client_counts):
            if self.direct_solve_s[i] is not None \
                    and self.aggregate_solve_s[i] > 0:
                if best is None or c > self.client_counts[best]:
                    best = i
        if best is None:
            return None
        return self.direct_solve_s[best] / self.aggregate_solve_s[best]

    def render(self) -> str:
        table = render_series(
            {"K": self.n_classes,
             "agg_ms": [1000 * v for v in self.aggregate_solve_s],
             "direct_ms": [None if v is None else 1000 * v
                           for v in self.direct_solve_s]},
            x=self.client_counts, x_label="clients",
            title=("Fig. 9 extension — LDDM solve time vs client count, "
                   "class-space aggregation vs direct"))
        sp = self.speedup()
        tail = "" if sp is None else \
            f"\nspeedup at largest common size: {sp:.1f}x"
        return table + tail


def scaling_problem(n_clients: int, seed: int = 2013, *,
                    n_replicas: int = 3, n_patterns: int = 4
                    ) -> ReplicaSelectionProblem:
    """A fig9-style batch instance with ``n_clients`` clients.

    By default three replicas at the sweep's prices, per-client demands
    drawn from the DFS profile's lognormal size distribution (drawn
    vectorized — same distribution as ``FILE_SERVICE.sample_size``),
    and four latency-eligibility patterns standing in for client
    regions; replica capacities scale with total demand so every count
    stays feasible.  ``n_replicas`` / ``n_patterns`` widen the instance
    for the sharded sweeps (more class rows to partition); the default
    ``(3, 4)`` instance is byte-identical to what this function has
    always produced.
    """
    if n_clients < 1:
        raise ValidationError("n_clients must be positive")
    if n_replicas < 1 or n_patterns < 1:
        raise ValidationError("n_replicas and n_patterns must be positive")
    rng = make_rng(seed)
    sigma = FILE_SERVICE.size_sigma
    mu = float(np.log(FILE_SERVICE.mean_size_mb)) - sigma ** 2 / 2.0
    demands = rng.lognormal(mean=mu, sigma=sigma, size=n_clients)
    if (n_replicas, n_patterns) == (3, 4):
        patterns = np.array([[1, 1, 1], [1, 1, 0], [0, 1, 1], [1, 0, 1]],
                            dtype=bool)
        prices = _PRICES_3
    else:
        # All-ones first, then random patterns with >= 2 eligible
        # replicas each (>= 2 keeps every demand split feasible under
        # the 0.6*total per-column capacity, by Hall's condition).
        patterns = np.ones((n_patterns, n_replicas), dtype=bool)
        lo = min(2, n_replicas)
        for p in range(1, n_patterns):
            k = int(rng.integers(lo, n_replicas + 1))
            off = rng.choice(n_replicas, size=n_replicas - k, replace=False)
            patterns[p, off] = False
        prices = tuple(np.resize(np.asarray(_PRICES_3, dtype=float),
                                 n_replicas))
    mask = patterns[rng.integers(0, len(patterns), size=n_clients)]
    total = float(demands.sum())
    data = ProblemData.paper_defaults(
        demands=demands, prices=prices, bandwidth=0.6 * total, mask=mask)
    return ReplicaSelectionProblem(data)


def run_scaling_point(point: int | tuple) -> dict:
    """Time one client count (module-level: pickles into workers).

    ``point`` is a count or a ``(count, time_direct[, seed])`` tuple.
    """
    count, time_direct, seed = \
        ((point, True, 2013) if isinstance(point, int)
         else (tuple(point) + (True, 2013))[:3])
    problem = scaling_problem(int(count), seed=int(seed))
    agg_sol = solve_lddm(problem, aggregate=True, **_RUNTIME_LDDM_KWARGS)
    out = {
        "count": int(count),
        "n_classes": agg_sol.n_classes,
        "agg_s": agg_sol.solve_time_s,
        "agg_objective": agg_sol.objective,
        "agg_iterations": agg_sol.iterations,
        "direct_s": None, "direct_objective": None,
        "direct_iterations": None,
    }
    if time_direct:
        direct_sol = solve_lddm(problem, **_RUNTIME_LDDM_KWARGS)
        out["direct_s"] = direct_sol.solve_time_s
        out["direct_objective"] = direct_sol.objective
        out["direct_iterations"] = direct_sol.iterations
    return out


# -- per-event incremental updates (the delta-event regime) -------------------

@dataclass
class IncrementalEventResult:
    """Per-event incremental update cost vs the warm full re-solve.

    One :func:`run_incremental_events` run applies a churn stream —
    client arrivals, departures and demand changes — to an
    :class:`~repro.core.incremental.IncrementalState` built from a
    converged fig9-style instance, timing every ``apply_event`` and,
    at every compared event, the warm full LDDM re-solve of the *same*
    post-event instance (warm-started from the incremental state's rows
    and recovered multipliers, at the runtime's solver budget) plus the
    relative objective gap between the two answers.
    """

    n_clients: int
    n_classes: int
    event_ms: list[float]            # per-event apply_event wall time
    resolve_ms: list[float]          # warm full re-solve wall time
    rel_gaps: list[float]            # |obj_inc - obj_solve| / |obj_solve|
    fallbacks: int                   # events the state declined
    arrivals: int
    departures: int
    demand_changes: int
    #: Open side-channel; ``extras["fallback_reasons"]`` histograms the
    #: decline triggers (capacity / drift / convergence / stale).
    extras: dict = field(default_factory=dict)

    @property
    def n_events(self) -> int:
        return len(self.event_ms)

    def event_p(self, q: float) -> float:
        """``q``-th percentile of the per-event latency, in ms."""
        return float(np.percentile(self.event_ms, q))

    def mean_event_ms(self) -> float:
        return float(np.mean(self.event_ms))

    def mean_resolve_ms(self) -> float:
        return float(np.mean(self.resolve_ms))

    def speedup(self) -> float:
        """Warm-full-re-solve mean cost over per-event mean cost."""
        return self.mean_resolve_ms() / max(self.mean_event_ms(), 1e-12)

    def worst_gap(self) -> float:
        return max(self.rel_gaps, default=0.0)

    def render(self) -> str:
        lines = [
            ("Fig. 9 extension — per-event incremental update vs warm "
             "full re-solve"),
            (f"clients {self.n_clients}  classes {self.n_classes}  "
             f"events {self.n_events} "
             f"(arrive {self.arrivals} / depart {self.departures} / "
             f"demand {self.demand_changes})"),
            (f"event   mean {self.mean_event_ms():.3f} ms   "
             f"p50 {self.event_p(50):.3f} ms   "
             f"p99 {self.event_p(99):.3f} ms"),
            (f"resolve mean {self.mean_resolve_ms():.3f} ms   "
             f"speedup {self.speedup():.1f}x   "
             f"worst gap {self.worst_gap():.2e}   "
             f"fallbacks {self.fallbacks}{self._reasons_suffix()}"),
        ]
        return "\n".join(lines)

    def _reasons_suffix(self) -> str:
        reasons = self.extras.get("fallback_reasons") or {}
        if not reasons:
            return ""
        inner = ", ".join(f"{k} {v}" for k, v in sorted(reasons.items()))
        return f" ({inner})"


def run_incremental_events(n_clients: int = 10_000, n_events: int = 200,
                           seed: int = 2013, event_seed: int = 7,
                           compare_every: int = 1,
                           drift_limit: float = 10.0
                           ) -> IncrementalEventResult:
    """Apply a churn stream to an incremental state and time every event.

    Builds the fig9-style instance at ``n_clients``, solves it in class
    space at the runtime's LDDM budget, seeds an
    :class:`~repro.core.incremental.IncrementalState` with every client
    registered, then applies ``n_events`` drawn from a fixed-seed mix —
    half demand changes, a quarter arrivals (fresh clients on random
    eligibility patterns), a quarter departures.  Every
    ``compare_every``-th event also runs the warm full re-solve of the
    post-event instance for the latency baseline and the objective-gap
    check.  A declined event (fallback) runs the full solve and rebuilds
    the state from it, exactly as the runtime would.
    """
    from repro.core.aggregate import ClassStructure
    from repro.core.incremental import (
        ClientArrival, ClientDeparture, DemandChange, IncrementalState)
    import time

    if n_events < 1:
        raise ValidationError("n_events must be positive")
    if compare_every < 1:
        raise ValidationError("compare_every must be >= 1")
    problem = scaling_problem(int(n_clients), seed=int(seed))
    data = problem.data
    structure = ClassStructure.from_mask(data.mask, data.R)
    reduced = structure.reduce_data(data)
    base = solve_lddm(ReplicaSelectionProblem(reduced),
                      **_RUNTIME_LDDM_KWARGS)
    tokens = list(structure.keys)
    clients = {f"c{i}": (tokens[structure.class_of_client[i]],
                         float(data.R[i]))
               for i in range(data.n_clients)}
    state = IncrementalState(reduced, tokens, base.allocation,
                             clients=clients, drift_limit=drift_limit)
    rng = make_rng(int(event_seed))
    names = list(clients)
    patterns = np.array([[1, 1, 1], [1, 1, 0], [0, 1, 1], [1, 0, 1]],
                        dtype=bool)
    sigma = FILE_SERVICE.size_sigma
    mu = float(np.log(FILE_SERVICE.mean_size_mb)) - sigma ** 2 / 2.0

    registry = dict(clients)   # mirror of the state's client registry
    event_ms, resolve_ms, gaps = [], [], []
    fallbacks = arrivals = departures = demand_changes = 0
    fallback_reasons: dict[str, int] = {}
    for i in range(int(n_events)):
        kind = rng.random()
        if kind < 0.25 and names:
            departures += 1
            victim = names.pop(int(rng.integers(len(names))))
            event = ClientDeparture(victim)
        elif kind < 0.5:
            arrivals += 1
            fresh = f"x{i}"
            event = ClientArrival(
                fresh, float(rng.lognormal(mean=mu, sigma=sigma)),
                patterns[int(rng.integers(len(patterns)))])
        else:
            demand_changes += 1
            event = DemandChange(
                names[int(rng.integers(len(names)))],
                float(rng.lognormal(mean=mu, sigma=sigma)))
        t0 = time.perf_counter()
        result = state.apply_event(event)
        event_ms.append(1e3 * (time.perf_counter() - t0))
        if result.ok:
            # apply_event registers only on success; mirror it.
            if isinstance(event, ClientArrival):
                names.append(event.client)
                registry[event.client] = (
                    np.asarray(event.eligibility,
                               dtype=bool).tobytes(),
                    float(event.demand))
            elif isinstance(event, ClientDeparture):
                del registry[event.client]
            else:
                token, _ = registry[event.client]
                registry[event.client] = (token, float(event.demand))
        else:
            fallbacks += 1
            reason = result.reason or "unknown"
            fallback_reasons[reason] = fallback_reasons.get(reason, 0) + 1
            if isinstance(event, ClientDeparture):
                names.append(event.client)   # still registered
        if not result.ok or i % int(compare_every) == 0:
            post = ReplicaSelectionProblem(state.class_data())
            warm = state.Q.copy()
            mu0 = state.mu()
            t0 = time.perf_counter()
            sol = solve_lddm(post, warm_start=warm, mu0=mu0,
                             **_RUNTIME_LDDM_KWARGS)
            resolve_ms.append(1e3 * (time.perf_counter() - t0))
            if result.ok:
                gaps.append(abs(state.objective() - sol.objective)
                            / max(abs(sol.objective), 1e-12))
            else:
                # The runtime path: rebuild the state from the solve.
                state = IncrementalState(
                    state.class_data(), list(state.tokens),
                    sol.allocation, clients=registry,
                    drift_limit=drift_limit)
    return IncrementalEventResult(
        n_clients=int(n_clients), n_classes=state.n_classes,
        event_ms=event_ms, resolve_ms=resolve_ms, rel_gaps=gaps,
        fallbacks=fallbacks, arrivals=arrivals, departures=departures,
        demand_changes=demand_changes,
        extras={"fallback_reasons": fallback_reasons})


def run_solver_scaling(client_counts=DEFAULT_SCALING_CLIENTS,
                       direct_limit: int = DEFAULT_DIRECT_LIMIT,
                       jobs: int = 1, seed: int = 2013
                       ) -> SolverScalingResult:
    """Time aggregated vs direct LDDM solves across client counts.

    Every point runs the aggregated path; the direct path is only timed
    up to ``direct_limit`` clients (beyond that it is minutes-per-solve —
    the point of the aggregation).  Uses the runtime's LDDM budget, so
    the timings are the decision-latency the EDR scheduler would see.
    """
    counts = [int(c) for c in client_counts]
    if not counts or min(counts) < 1:
        raise ValidationError("client_counts must be positive")
    points = parallel_map(
        run_scaling_point,
        [(c, c <= int(direct_limit), int(seed)) for c in counts],
        jobs=jobs)
    return SolverScalingResult(
        client_counts=counts,
        n_classes=[p["n_classes"] for p in points],
        aggregate_solve_s=[p["agg_s"] for p in points],
        aggregate_objective=[p["agg_objective"] for p in points],
        aggregate_iterations=[p["agg_iterations"] for p in points],
        direct_solve_s=[p["direct_s"] for p in points],
        direct_objective=[p["direct_objective"] for p in points],
        direct_iterations=[p["direct_iterations"] for p in points])


# -- sharded control plane (the 10^6-10^7-client regime) ----------------------

#: Client counts for the sharded scaling sweep.
DEFAULT_SHARD_CLIENTS = (100_000, 1_000_000)

#: A tight monolithic baseline: the aggregated LDDM pushed well past
#: the runtime budget, the reference the sharded gap is measured against.
_TIGHT_LDDM_KWARGS = {"max_iter": 5000, "tol": 1e-10,
                      "track_objective": False}


@dataclass
class ShardScalingResult:
    """Sharded dual-price solve vs tight monolithic aggregated LDDM.

    One row per client count: end-to-end wall time of
    :func:`~repro.edr.coordinator.solve_sharded` (aggregation +
    exchange rounds + expansion), the tight monolithic baseline's wall
    time, the relative objective gap between the two, the exchange
    rounds used, and whether a second execution mode reproduced the
    serial allocation bit-for-bit.
    """

    client_counts: list[int]
    n_shards: int
    n_classes: list[int]
    sharded_solve_s: list[float]
    monolithic_solve_s: list[float]
    rel_gaps: list[float]
    rounds: list[int]
    modes_identical: list[bool]

    def worst_gap(self) -> float:
        return max(self.rel_gaps, default=0.0)

    def render(self) -> str:
        table = render_series(
            {"K": self.n_classes,
             "shard_ms": [1000 * v for v in self.sharded_solve_s],
             "mono_ms": [1000 * v for v in self.monolithic_solve_s],
             "rounds": self.rounds,
             "gap": self.rel_gaps},
            x=self.client_counts, x_label="clients",
            title=(f"Fig. 9 extension — sharded plane ({self.n_shards} "
                   "shards) vs tight monolithic aggregated LDDM"))
        modes = "yes" if all(self.modes_identical) else "NO"
        return (table + f"\nworst objective gap: {self.worst_gap():.2e}   "
                f"execution modes bit-identical: {modes}")


def run_sharded_point(point: int | tuple) -> dict:
    """One sharded scaling point (module-level: pickles into workers).

    ``point`` is a count or a ``(count, n_shards[, seed[, n_replicas[,
    n_patterns[, check_mode]]]])`` tuple.  ``check_mode`` names a second
    execution mode whose allocation is compared bit-for-bit against the
    serial one (empty string skips the check).
    """
    defaults = (4, 2013, 6, 24, "thread")
    vals = (point,) if isinstance(point, int) else tuple(point)
    count, n_shards, seed, n_replicas, n_patterns, check_mode = \
        (vals + defaults[len(vals) - 1:])[:6]
    problem = scaling_problem(int(count), seed=int(seed),
                              n_replicas=int(n_replicas),
                              n_patterns=int(n_patterns))
    import time
    t0 = time.perf_counter()
    sharded = solve_sharded(problem, int(n_shards))
    shard_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    mono = solve_aggregated(problem, "lddm", **_TIGHT_LDDM_KWARGS)
    mono_s = time.perf_counter() - t0
    gap = abs(sharded.objective - mono.objective) \
        / max(abs(mono.objective), 1e-12)
    identical = True
    if check_mode:
        other = solve_sharded(problem, int(n_shards), mode=str(check_mode))
        identical = bool(np.array_equal(sharded.allocation,
                                        other.allocation))
    return {
        "count": int(count),
        "n_classes": sharded.n_classes,
        "shard_s": shard_s,
        "mono_s": mono_s,
        "gap": float(gap),
        "rounds": int(sharded.iterations),
        "identical": identical,
    }


def run_sharded_scaling(client_counts=DEFAULT_SHARD_CLIENTS,
                        n_shards: int = 4, seed: int = 2013,
                        n_replicas: int = 6, n_patterns: int = 24,
                        check_mode: str = "thread",
                        jobs: int = 1) -> ShardScalingResult:
    """Compare the sharded plane against the tight monolithic solve.

    Every point builds the widened fig9-style instance (``n_replicas``
    replicas, ``n_patterns`` eligibility patterns, so the class space is
    worth partitioning), solves it through
    :func:`~repro.edr.coordinator.solve_sharded` and through the tight
    monolithic aggregated LDDM, and records walls, the relative
    objective gap and the ``check_mode`` bit-identity verdict.
    """
    counts = [int(c) for c in client_counts]
    if not counts or min(counts) < 1:
        raise ValidationError("client_counts must be positive")
    if n_shards < 1:
        raise ValidationError("n_shards must be >= 1")
    points = parallel_map(
        run_sharded_point,
        [(c, int(n_shards), int(seed), int(n_replicas), int(n_patterns),
          str(check_mode)) for c in counts],
        jobs=jobs)
    return ShardScalingResult(
        client_counts=counts,
        n_shards=int(n_shards),
        n_classes=[p["n_classes"] for p in points],
        sharded_solve_s=[p["shard_s"] for p in points],
        monolithic_solve_s=[p["mono_s"] for p in points],
        rel_gaps=[p["gap"] for p in points],
        rounds=[p["rounds"] for p in points],
        modes_identical=[p["identical"] for p in points])


@dataclass
class ShardEventResult:
    """Per-event cost of the shard-routed churn stream.

    Events route to exactly one shard and are absorbed incrementally
    against the other shards' (fixed) loads, so the per-event wall time
    depends on the owning shard's class rows — *not* on the total client
    count.  :func:`run_sharded_events` at two counts demonstrates that
    independence; the bench gate pins it.
    """

    n_clients: int
    n_classes: int
    n_shards: int
    event_ms: list[float]            # per-event apply_event wall time
    refreshes: int                   # residual-triggered exchange refreshes
    fallbacks: int                   # shard declines recovered in place
    rounds: int                      # exchange rounds across all refreshes
    arrivals: int
    departures: int
    demand_changes: int
    final_residual: float

    @property
    def n_events(self) -> int:
        return len(self.event_ms)

    def event_p(self, q: float) -> float:
        """``q``-th percentile of the per-event latency, in ms."""
        return float(np.percentile(self.event_ms, q))

    def mean_event_ms(self) -> float:
        return float(np.mean(self.event_ms))

    def render(self) -> str:
        lines = [
            ("Fig. 9 extension — shard-routed per-event updates "
             f"({self.n_shards} shards)"),
            (f"clients {self.n_clients}  classes {self.n_classes}  "
             f"events {self.n_events} "
             f"(arrive {self.arrivals} / depart {self.departures} / "
             f"demand {self.demand_changes})"),
            (f"event mean {self.mean_event_ms():.3f} ms   "
             f"p50 {self.event_p(50):.3f} ms   "
             f"p99 {self.event_p(99):.3f} ms"),
            (f"refreshes {self.refreshes}   fallbacks {self.fallbacks}   "
             f"rounds {self.rounds}   "
             f"final residual {self.final_residual:.2e}"),
        ]
        return "\n".join(lines)


def run_sharded_events(n_clients: int = 100_000, n_events: int = 200,
                       n_shards: int = 4, seed: int = 2013,
                       event_seed: int = 7, n_replicas: int = 3,
                       n_patterns: int = 4) -> ShardEventResult:
    """Apply a churn stream through the sharded plane and time every event.

    Builds the fig9-style instance, aggregates it, stands up a
    :class:`~repro.edr.coordinator.ShardCoordinator` with every client
    registered, converges it, then applies ``n_events`` drawn from the
    same fixed-seed mix as :func:`run_incremental_events` — half demand
    changes, a quarter arrivals, a quarter departures — via
    :meth:`~repro.edr.coordinator.ShardCoordinator.apply_event`.
    Declines and residual drift are recovered inside the coordinator
    (counted, not special-cased here), so the timing is the cost the
    runtime would actually pay per event.
    """
    import time

    if n_events < 1:
        raise ValidationError("n_events must be positive")
    problem = scaling_problem(int(n_clients), seed=int(seed),
                              n_replicas=int(n_replicas),
                              n_patterns=int(n_patterns))
    data = problem.data
    structure = ClassStructure.from_mask(data.mask, data.R)
    reduced = structure.reduce_data(data)
    tokens = list(structure.keys)
    clients = {f"c{i}": (tokens[structure.class_of_client[i]],
                         float(data.R[i]))
               for i in range(data.n_clients)}
    coord = ShardCoordinator(reduced, tokens,
                             ShardingConfig(n_shards=int(n_shards)),
                             clients=clients)
    coord.solve()

    from repro.core.incremental import (
        ClientArrival, ClientDeparture, DemandChange)
    rng = make_rng(int(event_seed))
    names = list(clients)
    patterns = np.asarray(data.mask[
        np.unique(structure.class_of_client,
                  return_index=True)[1]], dtype=bool)
    sigma = FILE_SERVICE.size_sigma
    mu = float(np.log(FILE_SERVICE.mean_size_mb)) - sigma ** 2 / 2.0

    event_ms = []
    arrivals = departures = demand_changes = 0
    for i in range(int(n_events)):
        kind = rng.random()
        if kind < 0.25 and names:
            departures += 1
            victim = names.pop(int(rng.integers(len(names))))
            event = ClientDeparture(victim)
        elif kind < 0.5:
            arrivals += 1
            fresh = f"x{i}"
            event = ClientArrival(
                fresh, float(rng.lognormal(mean=mu, sigma=sigma)),
                patterns[int(rng.integers(len(patterns)))])
            names.append(fresh)
        else:
            demand_changes += 1
            event = DemandChange(
                names[int(rng.integers(len(names)))],
                float(rng.lognormal(mean=mu, sigma=sigma)))
        t0 = time.perf_counter()
        coord.apply_event(event)
        event_ms.append(1e3 * (time.perf_counter() - t0))
    return ShardEventResult(
        n_clients=int(n_clients), n_classes=coord.n_classes,
        n_shards=coord.n_shards, event_ms=event_ms,
        refreshes=coord.refreshes, fallbacks=coord.fallbacks,
        rounds=coord.rounds_total, arrivals=arrivals,
        departures=departures, demand_changes=demand_changes,
        final_residual=coord.residual())


# -- persistent worker fleet & elasticity (the long-lived-plane regime) -------

@dataclass
class FleetResult:
    """Persistent worker fleet vs per-solve pool across consecutive solves.

    One :func:`run_persistent_fleet` run drives the *same* retarget +
    solve cycles through three coordinators — process mode with the
    persistent shared-memory fleet, process mode with the legacy
    per-solve pool, and the serial reference — on one long-lived
    coordinator each.  ``round_bytes_per_solve`` / ``rounds_per_solve``
    come from the fleet's shipped-byte accounting: their ratio is the
    per-round wire cost, which must not grow with how many rounds a
    solve runs (the delta-only contract).
    """

    n_clients: int
    n_classes: int
    n_shards: int
    fleet_walls: list[float]         # persistent fleet, per cycle
    baseline_walls: list[float]      # per-solve pool, per cycle
    serial_identical: bool           # fleet rows == serial rows, bitwise
    static_bytes: int                # geometry shipped (all versions)
    round_bytes: int                 # delta bytes across all rounds
    rounds_shipped: int
    reships: int
    round_bytes_per_solve: list[int]
    rounds_per_solve: list[int]

    @property
    def n_solves(self) -> int:
        return len(self.fleet_walls)

    def speedup(self) -> float:
        """Per-solve-pool total wall over persistent-fleet total wall."""
        return sum(self.baseline_walls) / max(sum(self.fleet_walls), 1e-12)

    def bytes_per_round(self) -> list[float]:
        """Mean shipped bytes per exchange round, one entry per solve."""
        return [b / r for b, r in zip(self.round_bytes_per_solve,
                                      self.rounds_per_solve) if r > 0]

    def render(self) -> str:
        bpr = self.bytes_per_round()
        spread = (f"{min(bpr):.0f}..{max(bpr):.0f} B/round"
                  if bpr else "n/a")
        return "\n".join([
            ("Fig. 9 extension — persistent worker fleet vs per-solve "
             f"pool ({self.n_shards} shards, {self.n_solves} solves)"),
            (f"clients {self.n_clients}  classes {self.n_classes}  "
             f"fleet {sum(self.fleet_walls) * 1000:.1f} ms   "
             f"baseline {sum(self.baseline_walls) * 1000:.1f} ms   "
             f"speedup {self.speedup():.1f}x"),
            (f"static {self.static_bytes} B ({self.reships} reships)   "
             f"delta {spread} over {self.rounds_shipped} rounds   "
             f"serial bit-identical: "
             f"{'yes' if self.serial_identical else 'NO'}"),
        ])


def run_persistent_fleet(n_clients: int = 20_000, n_solves: int = 8,
                         n_shards: int = 2, seed: int = 2013,
                         target_seed: int = 29, n_replicas: int = 6,
                         n_patterns: int = 12, perturbation: float = 0.02,
                         tol: float = 1e-6,
                         max_workers: int | None = 2) -> FleetResult:
    """Time consecutive solves on one coordinator, fleet vs per-solve pool.

    Builds the widened fig9-style instance once, converges a warm-up
    solve (both process variants pay their first pool spin-up there),
    then drives ``n_solves`` identical cycles — a demand retarget drawn
    from a fixed-seed perturbation, followed by exchange rounds back to
    tolerance — through each coordinator.  The persistent fleet keeps
    its workers and shared-memory geometry across cycles; the baseline
    re-creates its pool and re-pickles full payloads inside every solve.
    The serial reference pins bit-identity of the final allocation.

    The defaults deliberately pick the regime this optimisation exists
    for: mild retargets (``perturbation``) that re-converge in one or
    two exchange rounds at a practical tolerance (``tol``), so a
    per-solve pool's spin-up and full-payload pickling — not the shared
    round arithmetic — dominate each cycle's wall time.
    """
    import time

    if n_solves < 1:
        raise ValidationError("n_solves must be positive")
    if not 0.0 < perturbation < 1.0:
        raise ValidationError("perturbation must be in (0, 1)")
    problem = scaling_problem(int(n_clients), seed=int(seed),
                              n_replicas=int(n_replicas),
                              n_patterns=int(n_patterns))
    data = problem.data
    structure = ClassStructure.from_mask(data.mask, data.R)
    reduced = structure.reduce_data(data)
    tokens = list(structure.keys)
    rng = make_rng(int(target_seed))
    # Mild perturbations: each solve re-converges in a few exchange
    # rounds, the regime where per-solve pool spin-up dominates.
    lo, hi = 1.0 - float(perturbation), 1.0 + float(perturbation)
    targets = [structure.demands
               * rng.uniform(lo, hi, size=len(tokens))
               for _ in range(int(n_solves))]

    def cycle(mode: str, persistent: bool):
        cfg = ShardingConfig(n_shards=int(n_shards), mode=mode,
                             persistent_workers=persistent,
                             max_workers=max_workers)
        walls, dbytes, drounds = [], [], []
        with ShardCoordinator(reduced, tokens, cfg) as coord:
            coord.solve()
            for target in targets:
                # Target installation is identical parent-side work in
                # every variant — only the solve itself is timed.
                coord.install_target(tokens, structure.masks, target)
                pool = coord.worker_pool
                b0 = ((pool.round_bytes, pool.rounds_shipped)
                      if pool else (0, 0))
                t0 = time.perf_counter()
                coord.solve(tol=float(tol))
                walls.append(time.perf_counter() - t0)
                pool = coord.worker_pool
                b1 = ((pool.round_bytes, pool.rounds_shipped)
                      if pool else (0, 0))
                dbytes.append(b1[0] - b0[0])
                drounds.append(b1[1] - b0[1])
            rows = coord.rows_for(tokens)
            pool = coord.worker_pool
            stats = ((pool.static_bytes, pool.round_bytes,
                      pool.rounds_shipped, pool.reships)
                     if pool else (0, 0, 0, 0))
        return walls, rows, dbytes, drounds, stats

    fleet_walls, fleet_rows, dbytes, drounds, stats = cycle("process", True)
    baseline_walls, baseline_rows, _, _, _ = cycle("process", False)
    _, serial_rows, _, _, _ = cycle("serial", True)
    identical = bool(np.array_equal(fleet_rows, serial_rows)
                     and np.array_equal(baseline_rows, serial_rows))
    return FleetResult(
        n_clients=int(n_clients), n_classes=len(tokens),
        n_shards=int(n_shards), fleet_walls=fleet_walls,
        baseline_walls=baseline_walls, serial_identical=identical,
        static_bytes=stats[0], round_bytes=stats[1],
        rounds_shipped=stats[2], reships=stats[3],
        round_bytes_per_solve=dbytes, rounds_per_solve=drounds)


@dataclass
class SkewResult:
    """Online re-partitioning under a skewed arrival hot-spot.

    :func:`run_elastic_skew` concentrates arrivals onto one class until
    the owning shard's demand skews past the rebalance threshold; the
    coordinator must migrate classes off that shard *while* the stream
    runs — no plane teardown (``resizes`` stays 0), no allocation jump
    (migration conserves loads), and a second execution mode must still
    reproduce the serial allocation bit-for-bit afterwards.
    """

    n_clients: int
    n_classes: int
    n_shards: int
    events: int
    migrations: int
    resizes: int
    refreshes: int
    fallbacks: int
    skew_before: float
    skew_peak: float
    skew_after: float
    modes_identical: bool
    final_residual: float

    def render(self) -> str:
        return "\n".join([
            ("Fig. 9 extension — elastic online re-partitioning "
             f"({self.n_shards} shards)"),
            (f"clients {self.n_clients}  classes {self.n_classes}  "
             f"hot-spot events {self.events}"),
            (f"skew {self.skew_before:.2f} -> peak {self.skew_peak:.2f} "
             f"-> {self.skew_after:.2f}   migrations {self.migrations}   "
             f"resizes {self.resizes}"),
            (f"refreshes {self.refreshes}   fallbacks {self.fallbacks}   "
             f"final residual {self.final_residual:.2e}   "
             f"modes bit-identical: "
             f"{'yes' if self.modes_identical else 'NO'}"),
        ])


def run_elastic_skew(n_clients: int = 20_000, n_events: int = 60,
                     n_shards: int = 3, seed: int = 2013,
                     n_replicas: int = 6, n_patterns: int = 12,
                     rebalance_skew: float = 1.5,
                     check_mode: str = "process") -> SkewResult:
    """Drive a hot-spot arrival stream until online migration fires.

    Every arrival lands on the single heaviest class (the all-eligible
    pattern), each carrying a fixed fraction of the instance's total
    demand, so one shard's share grows steadily while the others stand
    still — the skewed-demand scenario the elasticity exists for.  The
    identical stream runs through a serial and a ``check_mode``
    coordinator; both must migrate the same classes at the same events
    and end bit-identical.
    """
    from repro.core.incremental import ClientArrival

    if n_events < 1:
        raise ValidationError("n_events must be positive")
    problem = scaling_problem(int(n_clients), seed=int(seed),
                              n_replicas=int(n_replicas),
                              n_patterns=int(n_patterns))
    data = problem.data
    structure = ClassStructure.from_mask(data.mask, data.R)
    reduced = structure.reduce_data(data)
    tokens = list(structure.keys)
    clients = {f"c{i}": (tokens[structure.class_of_client[i]],
                         float(data.R[i]))
               for i in range(data.n_clients)}
    # Hot class: the largest class on the *crowded* shard (most rows),
    # so the growing skew is repairable — the shard's sibling classes
    # can migrate off while the hot class itself stays put.  Uses the
    # same deterministic partition the coordinator builds.
    from repro.core.shard import partition_classes
    shard_of = partition_classes(structure.demands, int(n_shards))
    crowded = int(np.argmax(np.bincount(shard_of, minlength=int(n_shards))))
    idx = np.flatnonzero(shard_of == crowded)
    hot = int(idx[np.argmax(structure.demands[idx])])
    hot_elig = np.asarray(structure.masks[hot], dtype=bool)
    # Per-event demand sized so the stream pushes the crowded shard
    # well past the threshold within n_events.
    per_event = float(structure.demands.sum()) * 0.5 / int(n_events)

    def stream(mode: str):
        cfg = ShardingConfig(n_shards=int(n_shards), mode=mode,
                             rebalance_skew=float(rebalance_skew))
        with ShardCoordinator(reduced, tokens, cfg,
                              clients=dict(clients)) as coord:
            coord.solve()
            skew0 = coord.demand_skew()
            peak = skew0
            for i in range(int(n_events)):
                coord.apply_event(ClientArrival(
                    f"hot{i}", per_event, hot_elig.copy()))
                peak = max(peak, coord.demand_skew())
            rows = coord.rows_for(tokens)
            out = SkewResult(
                n_clients=int(n_clients), n_classes=coord.n_classes,
                n_shards=coord.n_shards, events=int(n_events),
                migrations=coord.migrations, resizes=coord.resizes,
                refreshes=coord.refreshes, fallbacks=coord.fallbacks,
                skew_before=skew0, skew_peak=peak,
                skew_after=coord.demand_skew(), modes_identical=True,
                final_residual=coord.residual())
        return out, rows

    result, serial_rows = stream("serial")
    if check_mode:
        other, other_rows = stream(str(check_mode))
        result.modes_identical = bool(
            np.array_equal(serial_rows, other_rows)
            and other.migrations == result.migrations)
    return result

"""Fig. 9 — system performance: EDR vs DONAR response time scaling.

Three EDR replicas (LDDM) against three DONAR mapping nodes; the request
count sweeps 24..192 (YouTube-patterned).  Published shape: the two
systems' response times are very close, under ~200 ms per request, and
grow near-linearly with the request count; EDR's asymptotic communication
complexity is lower, so it wins at scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.edr.donar_runtime import DonarRuntime, DonarRuntimeConfig
from repro.edr.system import EDRSystem, RuntimeConfig
from repro.errors import ValidationError
from repro.experiments.parallel import parallel_map
from repro.experiments.scenarios import Scenario, make_trace
from repro.util.tables import render_series
from repro.workload.apps import FILE_SERVICE

__all__ = ["Fig9Result", "run", "run_point", "DEFAULT_REQUEST_COUNTS"]

DEFAULT_REQUEST_COUNTS = (24, 48, 72, 96, 120, 144, 168, 192)

#: 3-replica price vector (prices do not affect response time).
_PRICES_3 = (1.0, 8.0, 1.0)


@dataclass
class Fig9Result:
    """Mean response time per request count for both systems."""

    request_counts: list[int]
    edr_mean_response: list[float]
    donar_mean_response: list[float]
    edr_total_response: list[float] = field(default_factory=list)
    donar_total_response: list[float] = field(default_factory=list)
    #: Simulated seconds EDR spent inside LDDM solves, per request count.
    edr_solve_time: list[float] = field(default_factory=list)
    #: Total LDDM iterations across all of EDR's solves, per request count.
    edr_solve_iterations: list[int] = field(default_factory=list)

    def render(self) -> str:
        table = render_series(
            {"EDR_ms": [1000 * v for v in self.edr_mean_response],
             "DONAR_ms": [1000 * v for v in self.donar_mean_response],
             "EDR_total_s": self.edr_total_response,
             "DONAR_total_s": self.donar_total_response},
            x=self.request_counts, x_label="requests",
            title=("Fig. 9 — response time vs request count, "
                   "EDR (3 replicas, LDDM) vs DONAR (3 mapping nodes)"))
        worst = max(self.edr_mean_response) * 1000
        return (table + f"\nworst EDR mean response: {worst:.1f} ms "
                "(paper: < 200 ms per request, near-linear growth)")


def _scenario(count: int) -> Scenario:
    # All requests submitted (nearly) together, as in the paper's sweep:
    # the whole count lands within ~20 ms, so the systems must schedule
    # one large backlog and later requests queue behind earlier chunks —
    # this is what makes response time grow with the request count.
    return Scenario(name=f"fig9-{count}", app=FILE_SERVICE,
                    n_requests=count, n_clients=min(count, 24),
                    arrival_rate=count * 50.0)


def run_point(point: int | tuple) -> dict:
    """One sweep point: both systems at one request count.

    Module-level and driven entirely by its argument — a count, or a
    ``(count, warm_start)`` pair — so it pickles cleanly into worker
    processes and gives bit-identical results at any ``--jobs`` level
    (every random draw derives from the scenario's fixed seed).
    """
    count, warm = (point, True) if isinstance(point, int) else point
    scenario = _scenario(int(count))
    trace = make_trace(scenario)
    edr = EDRSystem(trace, RuntimeConfig(
        algorithm="lddm", prices=_PRICES_3,
        batch_capacity_fraction=0.35, warm_start=warm)).run(app="dfs")
    donar = DonarRuntime(trace, DonarRuntimeConfig(
        n_replicas=3, n_mapping_nodes=3)).run(app="dfs")
    return {
        "count": int(count),
        "edr_mean": edr.mean_response,
        "donar_mean": donar.mean_response,
        "edr_total": sum(edr.response_times),
        "donar_total": sum(donar.response_times),
        "edr_solve_time": float(edr.extras.get("solve_time", 0.0)),
        "edr_solve_iterations": int(edr.extras.get("solve_iterations", 0)),
    }


def run(request_counts=DEFAULT_REQUEST_COUNTS, jobs: int = 1,
        warm_start: bool = True) -> Fig9Result:
    """Sweep the request count for both systems.

    ``jobs > 1`` spreads the (independent) sweep points over worker
    processes; ``warm_start=False`` forces every EDR batch to cold-start,
    for the warm-vs-cold regression and benchmarks.
    """
    counts = [int(c) for c in request_counts]
    if not counts or min(counts) < 1:
        raise ValidationError("request_counts must be positive")
    points = parallel_map(run_point, [(c, warm_start) for c in counts],
                          jobs=jobs)
    return Fig9Result(
        request_counts=counts,
        edr_mean_response=[p["edr_mean"] for p in points],
        donar_mean_response=[p["donar_mean"] for p in points],
        edr_total_response=[p["edr_total"] for p in points],
        donar_total_response=[p["donar_total"] for p in points],
        edr_solve_time=[p["edr_solve_time"] for p in points],
        edr_solve_iterations=[p["edr_solve_iterations"] for p in points])

"""Fig. 9 — system performance: EDR vs DONAR response time scaling.

Three EDR replicas (LDDM) against three DONAR mapping nodes; the request
count sweeps 24..192 (YouTube-patterned).  Published shape: the two
systems' response times are very close, under ~200 ms per request, and
grow near-linearly with the request count; EDR's asymptotic communication
complexity is lower, so it wins at scale.

Beyond the paper's sweep, :func:`run_solver_scaling` pushes the *solver*
(the batched replica-selection step that dominates EDR's decision
latency) into the 10^4-10^5-client range, comparing the direct per-client
path against the exact class-space aggregation of
:mod:`repro.core.aggregate` — the regime the ROADMAP's "millions of
users" north star cares about, where the full runtime's dense topology
matrices are no longer the bottleneck that matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.core.lddm import solve_lddm
from repro.core.params import ProblemData
from repro.core.problem import ReplicaSelectionProblem
from repro.edr.donar_runtime import DonarRuntime, DonarRuntimeConfig
from repro.edr.system import EDRSystem, RuntimeConfig
from repro.errors import ValidationError
from repro.experiments.parallel import parallel_map
from repro.experiments.scenarios import Scenario, make_trace
from repro.util.rng import make_rng
from repro.util.tables import render_series
from repro.workload.apps import FILE_SERVICE

__all__ = ["Fig9Result", "run", "run_point", "DEFAULT_REQUEST_COUNTS",
           "SolverScalingResult", "scaling_problem", "run_scaling_point",
           "run_solver_scaling", "DEFAULT_SCALING_CLIENTS",
           "IncrementalEventResult", "run_incremental_events"]

DEFAULT_REQUEST_COUNTS = (24, 48, 72, 96, 120, 144, 168, 192)

#: Client counts for the large-C solver scaling sweep (fig. 9 regime,
#: pushed to the 10^5 clients the aggregated path makes tractable).
DEFAULT_SCALING_CLIENTS = (2_000, 10_000, 20_000, 50_000, 100_000)

#: Largest client count the direct O(C*N) path is timed at by default.
DEFAULT_DIRECT_LIMIT = 20_000

#: 3-replica price vector (prices do not affect response time).
_PRICES_3 = (1.0, 8.0, 1.0)


@dataclass
class Fig9Result:
    """Mean response time per request count for both systems."""

    request_counts: list[int]
    edr_mean_response: list[float]
    donar_mean_response: list[float]
    edr_total_response: list[float] = field(default_factory=list)
    donar_total_response: list[float] = field(default_factory=list)
    #: Simulated seconds EDR spent inside LDDM solves, per request count.
    edr_solve_time: list[float] = field(default_factory=list)
    #: Total LDDM iterations across all of EDR's solves, per request count.
    edr_solve_iterations: list[int] = field(default_factory=list)

    def render(self) -> str:
        table = render_series(
            {"EDR_ms": [1000 * v for v in self.edr_mean_response],
             "DONAR_ms": [1000 * v for v in self.donar_mean_response],
             "EDR_total_s": self.edr_total_response,
             "DONAR_total_s": self.donar_total_response},
            x=self.request_counts, x_label="requests",
            title=("Fig. 9 — response time vs request count, "
                   "EDR (3 replicas, LDDM) vs DONAR (3 mapping nodes)"))
        worst = max(self.edr_mean_response) * 1000
        return (table + f"\nworst EDR mean response: {worst:.1f} ms "
                "(paper: < 200 ms per request, near-linear growth)")


def _scenario(count: int, max_clients: int = 24) -> Scenario:
    # All requests submitted (nearly) together, as in the paper's sweep:
    # the whole count lands within ~20 ms, so the systems must schedule
    # one large backlog and later requests queue behind earlier chunks —
    # this is what makes response time grow with the request count.
    return Scenario(name=f"fig9-{count}", app=FILE_SERVICE,
                    n_requests=count, n_clients=min(count, max_clients),
                    arrival_rate=count * 50.0)


def run_point(point: int | tuple, recorder=None) -> dict:
    """One sweep point: both systems at one request count.

    Module-level and driven entirely by its argument — a count, or a
    ``(count, warm_start[, aggregate[, max_clients]])`` tuple — so it
    pickles cleanly into worker processes and gives bit-identical results
    at any ``--jobs`` level (every random draw derives from the
    scenario's fixed seed).  ``recorder`` threads a
    :class:`~repro.obs.Recorder` through the EDR runtime (serial sweeps
    only — events captured in worker processes would be lost).
    """
    count, warm, aggregate, max_clients = \
        ((point, True, True, 24) if isinstance(point, int)
         else (tuple(point) + (True, True, 24))[:4])
    scenario = _scenario(int(count), max_clients=int(max_clients))
    trace = make_trace(scenario)
    if recorder is not None and recorder.enabled:
        recorder.event("experiment.point", figure="fig9",
                       requests=int(count))
    edr = EDRSystem(trace, RuntimeConfig(
        algorithm="lddm", prices=_PRICES_3,
        batch_capacity_fraction=0.35, warm_start=warm,
        aggregate=aggregate, recorder=recorder)).run(app="dfs")
    donar = DonarRuntime(trace, DonarRuntimeConfig(
        n_replicas=3, n_mapping_nodes=3)).run(app="dfs")
    return {
        "count": int(count),
        "edr_mean": edr.mean_response,
        "donar_mean": donar.mean_response,
        "edr_total": sum(edr.response_times),
        "donar_total": sum(donar.response_times),
        "edr_solve_time": float(edr.extras.get("solve_time", 0.0)),
        "edr_solve_iterations": int(edr.extras.get("solve_iterations", 0)),
    }


def run(request_counts=DEFAULT_REQUEST_COUNTS, jobs: int = 1,
        warm_start: bool = True, aggregate: bool = True,
        max_clients: int = 24, recorder=None) -> Fig9Result:
    """Sweep the request count for both systems.

    ``jobs > 1`` spreads the (independent) sweep points over worker
    processes; ``warm_start=False`` forces every EDR batch to cold-start,
    for the warm-vs-cold regression and benchmarks; ``aggregate=False``
    disables the class-space solve; ``max_clients`` lifts the paper's
    24-client population cap so the sweep can grow the client count with
    the request count.  An enabled ``recorder`` forces ``jobs=1`` —
    events captured inside worker processes would be lost.
    """
    counts = [int(c) for c in request_counts]
    if not counts or min(counts) < 1:
        raise ValidationError("request_counts must be positive")
    point_fn = run_point
    if recorder is not None and getattr(recorder, "enabled", False):
        jobs = 1
        point_fn = partial(run_point, recorder=recorder)
    points = parallel_map(
        point_fn,
        [(c, warm_start, aggregate, int(max_clients)) for c in counts],
        jobs=jobs)
    return Fig9Result(
        request_counts=counts,
        edr_mean_response=[p["edr_mean"] for p in points],
        donar_mean_response=[p["donar_mean"] for p in points],
        edr_total_response=[p["edr_total"] for p in points],
        donar_total_response=[p["donar_total"] for p in points],
        edr_solve_time=[p["edr_solve_time"] for p in points],
        edr_solve_iterations=[p["edr_solve_iterations"] for p in points])


# -- large-C solver scaling (the aggregation regime) -------------------------

#: Solver budget used by the runtime's LDDM batches (see EDRSystem).
_RUNTIME_LDDM_KWARGS = {"max_iter": 150, "tol": 1e-3,
                        "track_objective": False}


@dataclass
class SolverScalingResult:
    """Direct vs aggregated LDDM solve times across client counts.

    ``direct_solve_s`` entries are ``None`` where the direct path was not
    timed (above ``direct_limit``).
    """

    client_counts: list[int]
    n_classes: list[int]
    aggregate_solve_s: list[float]
    aggregate_objective: list[float]
    aggregate_iterations: list[int]
    direct_solve_s: list[float | None]
    direct_objective: list[float | None]
    direct_iterations: list[int | None]

    def speedup(self) -> float | None:
        """Direct/aggregated wall-time ratio at the largest count with both."""
        best = None
        for i, c in enumerate(self.client_counts):
            if self.direct_solve_s[i] is not None \
                    and self.aggregate_solve_s[i] > 0:
                if best is None or c > self.client_counts[best]:
                    best = i
        if best is None:
            return None
        return self.direct_solve_s[best] / self.aggregate_solve_s[best]

    def render(self) -> str:
        table = render_series(
            {"K": self.n_classes,
             "agg_ms": [1000 * v for v in self.aggregate_solve_s],
             "direct_ms": [None if v is None else 1000 * v
                           for v in self.direct_solve_s]},
            x=self.client_counts, x_label="clients",
            title=("Fig. 9 extension — LDDM solve time vs client count, "
                   "class-space aggregation vs direct"))
        sp = self.speedup()
        tail = "" if sp is None else \
            f"\nspeedup at largest common size: {sp:.1f}x"
        return table + tail


def scaling_problem(n_clients: int, seed: int = 2013
                    ) -> ReplicaSelectionProblem:
    """A fig9-style batch instance with ``n_clients`` clients.

    Three replicas at the sweep's prices, per-client demands drawn from
    the DFS profile's lognormal size distribution (drawn vectorized —
    same distribution as ``FILE_SERVICE.sample_size``), and four
    latency-eligibility patterns standing in for client regions; replica
    capacities scale with total demand so every count stays feasible.
    """
    if n_clients < 1:
        raise ValidationError("n_clients must be positive")
    rng = make_rng(seed)
    sigma = FILE_SERVICE.size_sigma
    mu = float(np.log(FILE_SERVICE.mean_size_mb)) - sigma ** 2 / 2.0
    demands = rng.lognormal(mean=mu, sigma=sigma, size=n_clients)
    patterns = np.array([[1, 1, 1], [1, 1, 0], [0, 1, 1], [1, 0, 1]],
                        dtype=bool)
    mask = patterns[rng.integers(0, len(patterns), size=n_clients)]
    total = float(demands.sum())
    data = ProblemData.paper_defaults(
        demands=demands, prices=_PRICES_3, bandwidth=0.6 * total, mask=mask)
    return ReplicaSelectionProblem(data)


def run_scaling_point(point: int | tuple) -> dict:
    """Time one client count (module-level: pickles into workers).

    ``point`` is a count or a ``(count, time_direct[, seed])`` tuple.
    """
    count, time_direct, seed = \
        ((point, True, 2013) if isinstance(point, int)
         else (tuple(point) + (True, 2013))[:3])
    problem = scaling_problem(int(count), seed=int(seed))
    agg_sol = solve_lddm(problem, aggregate=True, **_RUNTIME_LDDM_KWARGS)
    out = {
        "count": int(count),
        "n_classes": agg_sol.n_classes,
        "agg_s": agg_sol.solve_time_s,
        "agg_objective": agg_sol.objective,
        "agg_iterations": agg_sol.iterations,
        "direct_s": None, "direct_objective": None,
        "direct_iterations": None,
    }
    if time_direct:
        direct_sol = solve_lddm(problem, **_RUNTIME_LDDM_KWARGS)
        out["direct_s"] = direct_sol.solve_time_s
        out["direct_objective"] = direct_sol.objective
        out["direct_iterations"] = direct_sol.iterations
    return out


# -- per-event incremental updates (the delta-event regime) -------------------

@dataclass
class IncrementalEventResult:
    """Per-event incremental update cost vs the warm full re-solve.

    One :func:`run_incremental_events` run applies a churn stream —
    client arrivals, departures and demand changes — to an
    :class:`~repro.core.incremental.IncrementalState` built from a
    converged fig9-style instance, timing every ``apply_event`` and,
    at every compared event, the warm full LDDM re-solve of the *same*
    post-event instance (warm-started from the incremental state's rows
    and recovered multipliers, at the runtime's solver budget) plus the
    relative objective gap between the two answers.
    """

    n_clients: int
    n_classes: int
    event_ms: list[float]            # per-event apply_event wall time
    resolve_ms: list[float]          # warm full re-solve wall time
    rel_gaps: list[float]            # |obj_inc - obj_solve| / |obj_solve|
    fallbacks: int                   # events the state declined
    arrivals: int
    departures: int
    demand_changes: int

    @property
    def n_events(self) -> int:
        return len(self.event_ms)

    def event_p(self, q: float) -> float:
        """``q``-th percentile of the per-event latency, in ms."""
        return float(np.percentile(self.event_ms, q))

    def mean_event_ms(self) -> float:
        return float(np.mean(self.event_ms))

    def mean_resolve_ms(self) -> float:
        return float(np.mean(self.resolve_ms))

    def speedup(self) -> float:
        """Warm-full-re-solve mean cost over per-event mean cost."""
        return self.mean_resolve_ms() / max(self.mean_event_ms(), 1e-12)

    def worst_gap(self) -> float:
        return max(self.rel_gaps, default=0.0)

    def render(self) -> str:
        lines = [
            ("Fig. 9 extension — per-event incremental update vs warm "
             "full re-solve"),
            (f"clients {self.n_clients}  classes {self.n_classes}  "
             f"events {self.n_events} "
             f"(arrive {self.arrivals} / depart {self.departures} / "
             f"demand {self.demand_changes})"),
            (f"event   mean {self.mean_event_ms():.3f} ms   "
             f"p50 {self.event_p(50):.3f} ms   "
             f"p99 {self.event_p(99):.3f} ms"),
            (f"resolve mean {self.mean_resolve_ms():.3f} ms   "
             f"speedup {self.speedup():.1f}x   "
             f"worst gap {self.worst_gap():.2e}   "
             f"fallbacks {self.fallbacks}"),
        ]
        return "\n".join(lines)


def run_incremental_events(n_clients: int = 10_000, n_events: int = 200,
                           seed: int = 2013, event_seed: int = 7,
                           compare_every: int = 1,
                           drift_limit: float = 10.0
                           ) -> IncrementalEventResult:
    """Apply a churn stream to an incremental state and time every event.

    Builds the fig9-style instance at ``n_clients``, solves it in class
    space at the runtime's LDDM budget, seeds an
    :class:`~repro.core.incremental.IncrementalState` with every client
    registered, then applies ``n_events`` drawn from a fixed-seed mix —
    half demand changes, a quarter arrivals (fresh clients on random
    eligibility patterns), a quarter departures.  Every
    ``compare_every``-th event also runs the warm full re-solve of the
    post-event instance for the latency baseline and the objective-gap
    check.  A declined event (fallback) runs the full solve and rebuilds
    the state from it, exactly as the runtime would.
    """
    from repro.core.aggregate import ClassStructure
    from repro.core.incremental import (
        ClientArrival, ClientDeparture, DemandChange, IncrementalState)
    import time

    if n_events < 1:
        raise ValidationError("n_events must be positive")
    if compare_every < 1:
        raise ValidationError("compare_every must be >= 1")
    problem = scaling_problem(int(n_clients), seed=int(seed))
    data = problem.data
    structure = ClassStructure.from_mask(data.mask, data.R)
    reduced = structure.reduce_data(data)
    base = solve_lddm(ReplicaSelectionProblem(reduced),
                      **_RUNTIME_LDDM_KWARGS)
    tokens = list(structure.keys)
    clients = {f"c{i}": (tokens[structure.class_of_client[i]],
                         float(data.R[i]))
               for i in range(data.n_clients)}
    state = IncrementalState(reduced, tokens, base.allocation,
                             clients=clients, drift_limit=drift_limit)
    rng = make_rng(int(event_seed))
    names = list(clients)
    patterns = np.array([[1, 1, 1], [1, 1, 0], [0, 1, 1], [1, 0, 1]],
                        dtype=bool)
    sigma = FILE_SERVICE.size_sigma
    mu = float(np.log(FILE_SERVICE.mean_size_mb)) - sigma ** 2 / 2.0

    registry = dict(clients)   # mirror of the state's client registry
    event_ms, resolve_ms, gaps = [], [], []
    fallbacks = arrivals = departures = demand_changes = 0
    for i in range(int(n_events)):
        kind = rng.random()
        if kind < 0.25 and names:
            departures += 1
            victim = names.pop(int(rng.integers(len(names))))
            event = ClientDeparture(victim)
        elif kind < 0.5:
            arrivals += 1
            fresh = f"x{i}"
            event = ClientArrival(
                fresh, float(rng.lognormal(mean=mu, sigma=sigma)),
                patterns[int(rng.integers(len(patterns)))])
        else:
            demand_changes += 1
            event = DemandChange(
                names[int(rng.integers(len(names)))],
                float(rng.lognormal(mean=mu, sigma=sigma)))
        t0 = time.perf_counter()
        result = state.apply_event(event)
        event_ms.append(1e3 * (time.perf_counter() - t0))
        if result.ok:
            # apply_event registers only on success; mirror it.
            if isinstance(event, ClientArrival):
                names.append(event.client)
                registry[event.client] = (
                    np.asarray(event.eligibility,
                               dtype=bool).tobytes(),
                    float(event.demand))
            elif isinstance(event, ClientDeparture):
                del registry[event.client]
            else:
                token, _ = registry[event.client]
                registry[event.client] = (token, float(event.demand))
        else:
            fallbacks += 1
            if isinstance(event, ClientDeparture):
                names.append(event.client)   # still registered
        if not result.ok or i % int(compare_every) == 0:
            post = ReplicaSelectionProblem(state.class_data())
            warm = state.Q.copy()
            mu0 = state.mu()
            t0 = time.perf_counter()
            sol = solve_lddm(post, warm_start=warm, mu0=mu0,
                             **_RUNTIME_LDDM_KWARGS)
            resolve_ms.append(1e3 * (time.perf_counter() - t0))
            if result.ok:
                gaps.append(abs(state.objective() - sol.objective)
                            / max(abs(sol.objective), 1e-12))
            else:
                # The runtime path: rebuild the state from the solve.
                state = IncrementalState(
                    state.class_data(), list(state.tokens),
                    sol.allocation, clients=registry,
                    drift_limit=drift_limit)
    return IncrementalEventResult(
        n_clients=int(n_clients), n_classes=state.n_classes,
        event_ms=event_ms, resolve_ms=resolve_ms, rel_gaps=gaps,
        fallbacks=fallbacks, arrivals=arrivals, departures=departures,
        demand_changes=demand_changes)


def run_solver_scaling(client_counts=DEFAULT_SCALING_CLIENTS,
                       direct_limit: int = DEFAULT_DIRECT_LIMIT,
                       jobs: int = 1, seed: int = 2013
                       ) -> SolverScalingResult:
    """Time aggregated vs direct LDDM solves across client counts.

    Every point runs the aggregated path; the direct path is only timed
    up to ``direct_limit`` clients (beyond that it is minutes-per-solve —
    the point of the aggregation).  Uses the runtime's LDDM budget, so
    the timings are the decision-latency the EDR scheduler would see.
    """
    counts = [int(c) for c in client_counts]
    if not counts or min(counts) < 1:
        raise ValidationError("client_counts must be positive")
    points = parallel_map(
        run_scaling_point,
        [(c, c <= int(direct_limit), int(seed)) for c in counts],
        jobs=jobs)
    return SolverScalingResult(
        client_counts=counts,
        n_classes=[p["n_classes"] for p in points],
        aggregate_solve_s=[p["agg_s"] for p in points],
        aggregate_objective=[p["agg_objective"] for p in points],
        aggregate_iterations=[p["agg_iterations"] for p in points],
        direct_solve_s=[p["direct_s"] for p in points],
        direct_objective=[p["direct_objective"] for p in points],
        direct_iterations=[p["direct_iterations"] for p in points])

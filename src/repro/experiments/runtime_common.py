"""Shared runtime-experiment machinery for Figs. 3/4/6/7/8."""

from __future__ import annotations

from repro.edr.system import EDRSystem, RuntimeConfig
from repro.experiments.scenarios import Scenario, make_trace

__all__ = ["run_runtime", "ALGORITHMS"]

ALGORITHMS = ("lddm", "cdpsm", "round_robin")


def run_runtime(scenario: Scenario, algorithm: str,
                prices=None, seed: int | None = None,
                keep_system: bool = False,
                **config_kwargs):
    """Run one runtime scenario under one scheduler.

    Returns the :class:`ExperimentResult`, or ``(result, system)`` when
    ``keep_system`` is true (for power-profile extraction).
    """
    trace = make_trace(scenario, seed=seed)
    cfg = RuntimeConfig.from_flat(
        algorithm=algorithm,
        prices=tuple(prices) if prices is not None else scenario.prices,
        batch_capacity_fraction=config_kwargs.pop(
            "batch_capacity_fraction", 0.35),
        **config_kwargs)
    system = EDRSystem(trace, cfg)
    result = system.run(app=scenario.app.name)
    if keep_system:
        return result, system
    return result

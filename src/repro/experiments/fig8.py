"""Fig. 8 — total energy cost (a) and total energy consumption (b).

Published shape: (a) LDDM achieves the lowest total *cost* for both
applications, Round-Robin the highest; (b) total *joules* tell a
different story — minimizing cents is not minimizing joules (for video
streaming the paper even measures CDPSM below LDDM on joules), which the
authors highlight as evidence the objective really is cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runtime_common import ALGORITHMS, run_runtime
from repro.experiments.scenarios import PAPER_DFS, PAPER_VIDEO, Scenario
from repro.metrics.report import ExperimentResult
from repro.util.tables import render_table

__all__ = ["Fig8Result", "run"]


@dataclass
class Fig8Result:
    """Totals for both applications under all three schedulers."""

    results: dict[tuple[str, str], ExperimentResult]  # (app, algo) -> result

    def apps(self) -> list[str]:
        return sorted({app for app, _ in self.results})

    def render(self) -> str:
        rows_cost, rows_joules = [], []
        for app in self.apps():
            rows_cost.append([app] + [
                self.results[(app, algo)].total_cents for algo in ALGORITHMS])
            rows_joules.append([app] + [
                self.results[(app, algo)].total_joules
                for algo in ALGORITHMS])
        a = render_table(["app"] + list(ALGORITHMS), rows_cost,
                         title="Fig. 8(a) — total energy cost (cents)")
        b = render_table(["app"] + list(ALGORITHMS), rows_joules,
                         title="Fig. 8(b) — total energy consumption (J)")
        lines = [a, "", b, ""]
        for app in self.apps():
            rr = self.results[(app, "round_robin")]
            for algo in ("lddm", "cdpsm"):
                res = self.results[(app, algo)]
                lines.append(
                    f"{app}/{algo}: cost saving vs RR "
                    f"{100 * res.savings_vs(rr, 'cents'):+.1f}%, "
                    f"energy saving vs RR "
                    f"{100 * res.savings_vs(rr, 'joules'):+.1f}%")
        return "\n".join(lines)


def run(video: Scenario | None = None,
        dfs: Scenario | None = None) -> Fig8Result:
    """Run both applications under all three schedulers."""
    scenarios = {"video": video or PAPER_VIDEO, "dfs": dfs or PAPER_DFS}
    results = {}
    for app, scenario in scenarios.items():
        for algo in ALGORITHMS:
            results[(app, algo)] = run_runtime(scenario, algo)
    return Fig8Result(results=results)

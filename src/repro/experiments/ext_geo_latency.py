"""Extension — geo-distributed deployment with a binding latency bound.

On the paper's single-cluster testbed every replica satisfies
``l[c,n] <= T``; in the geo-distributed clouds EDR targets, the latency
constraint actually bites.  This experiment places replicas and clients
on a plane, derives the eligibility mask from the paper's T, and shows:

* EDR never assigns load across an ineligible pair;
* the cost-optimal placement degrades gracefully as T tightens (fewer
  eligible cheap replicas => higher cost);
* infeasible bounds are detected and certified by max-flow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.params import ProblemData
from repro.core.problem import ReplicaSelectionProblem
from repro.core.lddm import solve_lddm
from repro.errors import InfeasibleProblemError
from repro.net.topology import Topology
from repro.util.rng import make_rng
from repro.util.tables import render_table

__all__ = ["GeoLatencyResult", "run"]

_PRICES = (1.0, 8.0, 1.0, 6.0, 1.0, 5.0, 2.0, 3.0)


@dataclass
class GeoLatencyResult:
    """Cost and eligibility as the latency bound tightens."""

    bounds_ms: list[float]
    costs: list[float]
    eligible_pairs: list[int]
    infeasible_below_ms: float

    def render(self) -> str:
        table = render_table(
            ["T (ms)", "eligible pairs", "LDDM objective"],
            [[round(1000 * b, 2), e,
              round(c, 1) if np.isfinite(c) else "infeasible"]
             for b, e, c in zip(self.bounds_ms, self.eligible_pairs,
                                self.costs)],
            title="Extension — geo topology: cost vs latency bound T")
        return (table + f"\ninstances become infeasible below "
                f"T ~ {1000 * self.infeasible_below_ms:.2f} ms "
                "(certified by bipartite max-flow)")


def run(n_clients: int = 10, seed: int = 5) -> GeoLatencyResult:
    """Sweep the latency bound on a random geo layout."""
    replicas = [f"replica{i + 1}" for i in range(len(_PRICES))]
    clients = [f"client{i}" for i in range(n_clients)]
    topo = Topology.random_geo(replicas + clients, make_rng(seed),
                               extent=10.0, seconds_per_unit=0.0002,
                               base_latency=0.0001)
    rng = make_rng(seed + 1)
    demands = rng.uniform(15.0, 40.0, size=n_clients)

    bounds = [0.0030, 0.0022, 0.0018, 0.0014, 0.0010, 0.0007]
    costs: list[float] = []
    eligible: list[int] = []
    infeasible_below = 0.0
    for T in bounds:
        mask = topo.eligibility(clients, replicas, T)
        eligible.append(int(mask.sum()))
        data = ProblemData.paper_defaults(
            demands=demands, prices=_PRICES, mask=mask)
        problem = ReplicaSelectionProblem(data)
        try:
            problem.require_feasible()
            sol = solve_lddm(problem)
            assert sol.mask_violation(data) == 0.0
            costs.append(sol.objective)
        except InfeasibleProblemError:
            costs.append(float("inf"))
            infeasible_below = max(infeasible_below, T)
    return GeoLatencyResult(
        bounds_ms=bounds, costs=costs, eligible_pairs=eligible,
        infeasible_below_ms=infeasible_below)

"""Figs. 3-4 — runtime power profiles per replica (DFS application).

Fig. 3 shows all eight replicas' 50 Hz power traces under CDPSM;
Fig. 4 the same under LDDM.  The published shapes:

* profiles live between ~215 W (idle "valleys": listening / pure
  selection) and ~225-240 W ("peaks": serving transfers);
* LDDM finishes earlier than CDPSM for the same request load and draws
  lower average power (less coordination work);
* under LDDM, replicas that never get selected as download targets stay
  near the idle floor for the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runtime_common import run_runtime
from repro.experiments.scenarios import PAPER_DFS, Scenario
from repro.util.tables import render_table
from repro.util.timeseries import TimeSeries

__all__ = ["PowerProfileResult", "run"]


@dataclass
class PowerProfileResult:
    """Per-replica power traces for one algorithm."""

    algorithm: str
    profiles: dict[str, TimeSeries]
    busy_end: dict[str, float]
    makespan: float

    def summary_rows(self):
        rows = []
        for name, series in self.profiles.items():
            window = series.window(0.0, self.busy_end[name] + 1e-9)
            rows.append([
                name,
                round(self.busy_end[name], 2),
                round(window.mean() if len(window) else 0.0, 2),
                round(window.max() if len(window) else 0.0, 2),
                round(window.min() if len(window) else 0.0, 2),
            ])
        return rows

    def render(self) -> str:
        from repro.util.sparkline import profile_panel

        fig = "3" if self.algorithm == "cdpsm" else "4"
        table = render_table(
            ["replica", "exec_time_s", "avg_W", "peak_W", "min_W"],
            self.summary_rows(),
            title=(f"Fig. {fig} — runtime power profile summary "
                   f"({self.algorithm}, distributed file service)"))
        windows = {
            name: series.window(0.0, self.busy_end[name] + 1e-9)
            for name, series in self.profiles.items()}
        windows = {n: s for n, s in windows.items() if len(s)}
        panel = profile_panel(
            windows, width=64,
            title=f"power profiles (each replica over its execution window)")
        return table + "\n\n" + panel


def run(scenario: Scenario | None = None) -> dict[str, PowerProfileResult]:
    """Run the DFS workload under CDPSM (Fig. 3) and LDDM (Fig. 4)."""
    scenario = scenario or PAPER_DFS
    out: dict[str, PowerProfileResult] = {}
    for algorithm in ("cdpsm", "lddm"):
        result, system = run_runtime(scenario, algorithm, keep_system=True)
        out[algorithm] = PowerProfileResult(
            algorithm=algorithm,
            profiles=system.power_profiles(),
            busy_end=result.extras["busy_end"],
            makespan=result.makespan)
    return out

"""Process-level parallelism for embarrassingly-parallel sweeps.

The figure sweeps (Fig. 9's request counts, Fig. 6/7's schedulers, the
headline runs) are independent single-threaded simulations, so they
scale linearly over processes.  :func:`parallel_map` is the one shared
entry point: ``jobs <= 1`` runs serially in-process (identical results,
no pickling), ``jobs > 1`` fans out over a ``ProcessPoolExecutor`` while
preserving input order.

Determinism: every sweep point must derive its random state from its own
*inputs* (scenario seed, request count, run index), never from process
or submission state, so serial and parallel runs are bit-identical —
see :func:`point_seed` for the canonical derivation.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import ValidationError

__all__ = ["parallel_map", "point_seed"]

T = TypeVar("T")
R = TypeVar("R")


def point_seed(base_seed: int, *coords: int) -> int:
    """Deterministic per-point seed from a base seed and sweep coordinates.

    A tiny splitmix-style mix keeps distinct coordinates from colliding
    even when sweeps overlap arithmetically (e.g. counts 24 and 48 with
    base seeds 24 apart).
    """
    h = int(base_seed) & 0xFFFFFFFFFFFFFFFF
    for coord in coords:
        h = (h ^ (int(coord) + 0x9E3779B97F4A7C15)) \
            * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
        h ^= h >> 31
    return h & 0x7FFFFFFF


def parallel_map(fn: Callable[[T], R], items: Iterable[T],
                 jobs: int = 1) -> list[R]:
    """Map ``fn`` over ``items``, optionally across processes.

    Results come back in input order.  ``fn`` and every item must be
    picklable when ``jobs > 1`` (use module-level functions and plain
    data); with ``jobs <= 1`` the map runs serially in-process.
    """
    if jobs < 0:
        raise ValidationError("jobs must be nonnegative")
    work: Sequence[T] = list(items)
    n_jobs = min(jobs, len(work))
    if n_jobs <= 1:
        return [fn(item) for item in work]
    with ProcessPoolExecutor(max_workers=n_jobs) as pool:
        return list(pool.map(fn, work))

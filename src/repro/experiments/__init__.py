"""Experiment drivers: one module per paper figure, plus the 40-run
headline sweep and ablations.  Run from the command line::

    python -m repro.experiments fig5
    python -m repro.experiments all --quick
"""

from repro.experiments.scenarios import (
    Scenario,
    PAPER_VIDEO,
    PAPER_DFS,
    make_trace,
)

__all__ = ["Scenario", "PAPER_VIDEO", "PAPER_DFS", "make_trace"]

"""Fig. 5 — simulated convergence rates: CDPSM vs LDDM, 3 replicas.

The paper's MATLAB simulation solves one optimization instance with both
distributed methods and plots objective vs. iteration, showing LDDM
converging faster.  We reproduce it on a 3-replica instance with the
centralized optimum as the reference line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cdpsm import solve_cdpsm
from repro.core.lddm import solve_lddm
from repro.core.params import ProblemData
from repro.core.problem import ReplicaSelectionProblem
from repro.core.reference import solve_reference
from repro.util.tables import render_series

__all__ = ["Fig5Result", "run"]


@dataclass
class Fig5Result:
    """Convergence histories of both methods plus the optimum."""

    lddm_history: list[float]
    cdpsm_history: list[float]
    optimum: float
    lddm_iterations_to_1pct: int
    cdpsm_iterations_to_1pct: int

    def render(self, max_rows: int = 25) -> str:
        n = max(len(self.lddm_history), len(self.cdpsm_history))
        stride = max(1, n // max_rows)
        idx = list(range(0, n, stride))

        def pick(hist):
            return [hist[i] if i < len(hist) else hist[-1] for i in idx]

        table = render_series(
            {"LDDM": pick(self.lddm_history),
             "CDPSM": pick(self.cdpsm_history),
             "optimum": [self.optimum] * len(idx)},
            x=[i + 1 for i in idx], x_label="iteration",
            title="Fig. 5 — objective vs iteration (3 replicas)")
        summary = (
            f"\niterations to within 1% of optimum: "
            f"LDDM={self.lddm_iterations_to_1pct}, "
            f"CDPSM={self.cdpsm_iterations_to_1pct} "
            f"(paper: LDDM converges faster)")
        return table + summary


def _iters_to(history: list[float], target: float) -> int:
    for i, v in enumerate(history):
        if v <= target:
            return i + 1
    return len(history) + 1


def run(max_iter: int = 300) -> Fig5Result:
    """Run the Fig. 5 experiment; returns the convergence histories."""
    data = ProblemData.paper_defaults(
        demands=[40.0, 55.0, 25.0], prices=[2.0, 9.0, 4.0])
    problem = ReplicaSelectionProblem(data)
    optimum = solve_reference(problem).objective
    lddm = solve_lddm(problem, max_iter=max_iter, tol=1e-9)
    cdpsm = solve_cdpsm(problem, max_iter=max_iter, tol=1e-9)
    target = optimum * 1.01
    return Fig5Result(
        lddm_history=lddm.objective_history,
        cdpsm_history=cdpsm.objective_history,
        optimum=optimum,
        lddm_iterations_to_1pct=_iters_to(lddm.objective_history, target),
        cdpsm_iterations_to_1pct=_iters_to(cdpsm.objective_history, target),
    )

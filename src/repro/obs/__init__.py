"""Runtime telemetry: typed event recording for solvers and the runtime.

Zero-dependency (stdlib only).  Every instrumented component takes a
``recorder=`` that defaults to the shared :data:`NULL_RECORDER` — a
no-op whose per-call cost is one attribute check, so the hot paths pay
nothing when tracing is off.  :class:`TraceRecorder` captures typed
events (per-iteration solver samples, solve sessions, runtime batches,
membership changes), aggregated counters (message/byte counts,
warm-start hits/misses), and timing spans; exporters render the capture
as JSONL, Prometheus text, or a summary dict.

Quick start::

    from repro.obs import TraceRecorder, summary, to_jsonl

    rec = TraceRecorder()
    solution = solve(problem, recorder=rec)
    to_jsonl(rec, "trace.jsonl")
    print(summary(rec)["solves"])
"""

from repro.obs.events import (
    COUNTER_NAMES,
    EVENT_SCHEMAS,
    validate_record,
)
from repro.obs.export import (
    from_jsonl,
    iter_records,
    summary,
    to_jsonl,
    to_prometheus_text,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    TraceRecorder,
)

__all__ = [
    "Recorder",
    "NullRecorder",
    "TraceRecorder",
    "NULL_RECORDER",
    "COUNTER_NAMES",
    "EVENT_SCHEMAS",
    "validate_record",
    "iter_records",
    "to_jsonl",
    "from_jsonl",
    "to_prometheus_text",
    "summary",
]

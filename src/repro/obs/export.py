"""Exporters: JSONL, Prometheus text exposition, and a summary dict."""

from __future__ import annotations

import json
import os
from typing import IO, Iterator, Union

from repro.obs.events import validate_record
from repro.obs.recorder import TraceRecorder

__all__ = ["iter_records", "to_jsonl", "from_jsonl", "to_prometheus_text",
           "summary"]


def _json_default(value):
    """Serialize numpy scalars (and anything else stringifiable)."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


def iter_records(recorder: TraceRecorder) -> Iterator[dict]:
    """All of a recorder's records: captures first, then counter totals.

    Counters aggregate in place during recording, so they are
    materialized here — one ``{"kind": "counter", "name", "value",
    "labels": {...}}`` record per series, in sorted order for
    determinism.  Labels stay nested: a label called ``kind`` (the
    transport's per-message-kind series) must not clobber the record
    kind.
    """
    yield from recorder.records
    for (name, labels) in sorted(recorder.counters):
        record = {"kind": "counter", "name": name,
                  "value": recorder.counters[(name, labels)]}
        if labels:
            record["labels"] = dict(labels)
        yield record


def to_jsonl(recorder: TraceRecorder,
             target: Union[str, os.PathLike, IO[str]]) -> int:
    """Write every record plus a trailing summary line; returns the count.

    ``target`` is a path (opened for writing) or an open text file.  One
    JSON object per line; the last line is ``{"kind": "summary", ...}``
    (see :func:`summary`).
    """
    def _write(fh: IO[str]) -> int:
        n = 0
        for record in iter_records(recorder):
            fh.write(json.dumps(record, default=_json_default) + "\n")
            n += 1
        fh.write(json.dumps({"kind": "summary", **summary(recorder)},
                            default=_json_default) + "\n")
        return n + 1

    if hasattr(target, "write"):
        return _write(target)
    with open(target, "w", encoding="utf-8") as fh:
        return _write(fh)


def from_jsonl(source: Union[str, os.PathLike, IO[str]]) -> list[dict]:
    """Parse a trace back into records, validating each line's schema."""
    def _read(fh: IO[str]) -> list[dict]:
        records = []
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            validate_record(record)
            records.append(record)
        return records

    if hasattr(source, "read"):
        return _read(source)
    with open(source, "r", encoding="utf-8") as fh:
        return _read(fh)


def _metric_name(name: str) -> str:
    """Dotted internal name -> Prometheus-legal metric name."""
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_"
                      for ch in name)
    return f"repro_{cleaned}"


def _label_text(labels: tuple) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


def to_prometheus_text(recorder: TraceRecorder) -> str:
    """Counters (and event counts) in Prometheus text exposition format.

    Each metric family gets its ``# HELP`` and ``# TYPE`` comment lines
    before its samples, per the text exposition format; metric names are
    sanitized to ``[a-zA-Z_:][a-zA-Z0-9_:]*``.
    """
    lines: list[str] = []
    by_name: dict[str, list[tuple[tuple, float]]] = {}
    for (name, labels), value in recorder.counters.items():
        by_name.setdefault(name, []).append((labels, value))
    for name in sorted(by_name):
        metric = _metric_name(name) + "_total"
        lines.append(f"# HELP {metric} "
                     f"Total of the {name!r} recorder counter.")
        lines.append(f"# TYPE {metric} counter")
        for labels, value in sorted(by_name[name]):
            lines.append(f"{metric}{_label_text(labels)} {value:g}")
    event_counts: dict[str, int] = {}
    for record in recorder.records:
        if record["kind"] == "event":
            event_counts[record["name"]] = \
                event_counts.get(record["name"], 0) + 1
    if event_counts:
        lines.append("# HELP repro_events_total "
                     "Occurrences of each recorded trace event.")
        lines.append("# TYPE repro_events_total counter")
        for name in sorted(event_counts):
            lines.append(f'repro_events_total{{name="{name}"}} '
                         f"{event_counts[name]}")
    return "\n".join(lines) + "\n"


def summary(recorder: TraceRecorder) -> dict:
    """Aggregate view of one capture (what ``--trace`` prints).

    Keys:

    - ``counters``: flattened ``name{label=value}`` -> total
    - ``events``: event name -> occurrence count
    - ``solves``: in-process solver runs (count, iterations, converged)
    - ``sessions``: distributed solve sessions (count, iterations,
      simulated seconds, exact message/byte totals)
    - ``warm_start``: hits, misses, hit_rate, invalidations
    - ``net``: transport-level message/MB totals
    - ``aggregation``: class counts seen by runtime batches (min/max)
    """
    counters: dict[str, float] = {}
    for (name, labels) in sorted(recorder.counters):
        key = name + _label_text(labels)
        counters[key] = recorder.counters[(name, labels)]
    events: dict[str, int] = {}
    for record in recorder.records:
        if record["kind"] == "event":
            events[record["name"]] = events.get(record["name"], 0) + 1

    solves = recorder.events_named("solver.solve")
    sessions = recorder.events_named("session.solve")
    batches = recorder.events_named("runtime.batch")
    hits = recorder.counter_total("warmstart.hit")
    misses = recorder.counter_total("warmstart.miss")
    classes = [b["n_classes"] for b in batches
               if b.get("n_classes") is not None]
    out = {
        "counters": counters,
        "events": dict(sorted(events.items())),
        "solves": {
            "count": len(solves),
            "iterations": int(sum(s["iterations"] for s in solves)),
            "converged": int(sum(bool(s["converged"]) for s in solves)),
        },
        "sessions": {
            "count": len(sessions),
            "iterations": int(sum(s["iterations"] for s in sessions)),
            "sim_s": float(sum(s["sim_duration"] for s in sessions)),
            "messages": int(sum(s["messages"] for s in sessions)),
            "mb": float(sum(s["mb"] for s in sessions)),
        },
        "warm_start": {
            "hits": int(hits),
            "misses": int(misses),
            "hit_rate": (hits / (hits + misses)) if hits + misses else None,
            "invalidations":
                int(recorder.counter_total("warmstart.invalidation")),
        },
        "net": {
            "messages": int(recorder.counter_total("net.messages")),
            "mb": float(recorder.counter_total("net.mb")),
        },
    }
    if classes:
        out["aggregation"] = {"min_classes": int(min(classes)),
                              "max_classes": int(max(classes)),
                              "batches": len(classes)}
    return out

"""Recorder protocol, the no-op default, and the in-memory tracer."""

from __future__ import annotations

import time
from typing import Callable, Protocol, runtime_checkable

__all__ = ["Recorder", "NullRecorder", "TraceRecorder", "NULL_RECORDER"]


@runtime_checkable
class Recorder(Protocol):
    """What instrumented components require of a ``recorder=``.

    Hot loops gate their recording on :attr:`enabled` so the disabled
    path costs one attribute check — never a dict or string build::

        rec = self.recorder
        ...
        if rec.enabled:
            rec.event("lddm.iteration", k=k, residual=res, ...)
    """

    #: False on the no-op recorder; instrumentation skips work when unset.
    enabled: bool

    def count(self, name: str, value: float = 1.0, **labels) -> None:
        """Increment the aggregated counter ``name`` (labels form series)."""
        ...

    def sample(self, name: str, value: float, **labels) -> None:
        """Record one point-in-time measurement."""
        ...

    def event(self, name: str, **fields) -> None:
        """Record one typed discrete event (see :mod:`repro.obs.events`)."""
        ...

    def span(self, name: str, **labels):
        """Context manager timing a block; records a ``span`` on exit."""
        ...


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The default recorder: records nothing, costs (almost) nothing."""

    __slots__ = ()
    enabled = False

    def count(self, name: str, value: float = 1.0, **labels) -> None:
        pass

    def sample(self, name: str, value: float, **labels) -> None:
        pass

    def event(self, name: str, **fields) -> None:
        pass

    def span(self, name: str, **labels) -> _NullSpan:
        return _NULL_SPAN


#: Shared no-op instance — components normalize ``recorder=None`` to this.
NULL_RECORDER = NullRecorder()


class _TraceSpan:
    __slots__ = ("_recorder", "_name", "_labels", "_start")

    def __init__(self, recorder: "TraceRecorder", name: str,
                 labels: dict) -> None:
        self._recorder = recorder
        self._name = name
        self._labels = labels
        self._start = 0.0

    def __enter__(self) -> "_TraceSpan":
        self._start = self._recorder._now()
        return self

    def __exit__(self, *_exc) -> bool:
        rec = self._recorder
        rec.records.append({
            "kind": "span", "t": self._start, "name": self._name,
            "duration": rec._now() - self._start, **self._labels})
        return False


class TraceRecorder:
    """In-memory capture of typed events, samples, spans, and counters.

    Timestamps are seconds since construction on ``clock`` (default
    ``time.perf_counter``; monotonic, so orderings survive system clock
    jumps).  Simulated-time instrumentation additionally carries explicit
    ``sim_time``/``sim_start`` fields — the recorder itself never reads
    the simulation clock.

    Counters aggregate in place (one cell per ``(name, labels)`` series)
    rather than appending a record per increment, so per-message counting
    in the transport stays cheap.  Everything else appends one flat dict
    to :attr:`records`, ready for :func:`repro.obs.export.to_jsonl`.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._t0 = clock()
        #: Timestamped records, in capture order.
        self.records: list[dict] = []
        #: ``(name, sorted labels tuple) -> running total``.
        self.counters: dict[tuple, float] = {}

    def _now(self) -> float:
        return self._clock() - self._t0

    # -- Recorder protocol ---------------------------------------------------
    def count(self, name: str, value: float = 1.0, **labels) -> None:
        key = (name, tuple(sorted(labels.items())))
        self.counters[key] = self.counters.get(key, 0.0) + value

    def sample(self, name: str, value: float, **labels) -> None:
        self.records.append({"kind": "sample", "t": self._now(),
                             "name": name, "value": float(value), **labels})

    def event(self, name: str, **fields) -> None:
        self.records.append({"kind": "event", "t": self._now(),
                             "name": name, **fields})

    def span(self, name: str, **labels) -> _TraceSpan:
        return _TraceSpan(self, name, labels)

    # -- views ---------------------------------------------------------------
    def counter_total(self, name: str) -> float:
        """Sum of a counter across all label series."""
        return sum(v for (n, _labels), v in self.counters.items()
                   if n == name)

    def counter_series(self, name: str) -> dict[tuple, float]:
        """``labels tuple -> value`` for one counter name."""
        return {labels: v for (n, labels), v in self.counters.items()
                if n == name}

    def events_named(self, name: str) -> list[dict]:
        """All ``event`` records with the given name, in capture order."""
        return [r for r in self.records
                if r["kind"] == "event" and r["name"] == name]

"""Event taxonomy: the names and required fields instrumentation emits.

The schemas are documentation *and* the contract the exporter round-trip
tests pin: every record a :class:`~repro.obs.recorder.TraceRecorder`
captures is a flat JSON-serializable dict with a ``kind`` ("event",
"sample", "span", or "counter"), a monotonic timestamp ``t`` (seconds
since the recorder was created; counters are aggregates and carry no
timestamp), and a ``name``.  Known event names additionally guarantee
the fields listed in :data:`EVENT_SCHEMAS`.

Counters (aggregated in-recorder, exported once):

==========================  ====================================================
``net.messages``            control messages accepted by the transport
                            (label ``kind``: REQUEST, SOLVE_SYNC, ...)
``net.mb``                  control-message megabytes (label ``kind``)
``runtime.batches``         sub-batches the EDR driver scheduled
``warmstart.hit``           solves seeded from the warm-start cache
``warmstart.miss``          cold-started solves
``warmstart.invalidation``  cache flushes (membership changes)
``incremental.event``       sub-batches absorbed by the incremental
                            delta-event path (no batch solve)
``incremental.fallback``    incremental updates declined (capacity /
                            drift / convergence) -> full warm solve
``shard.event``             events/chunk deltas absorbed inside one
                            solve shard (label ``shard``)
``shard.fallback``          shard declines recovered by force-target +
                            exchange rounds (label ``reason``)
``coordinator.refresh``     residual-triggered full exchange-round
                            refreshes of the sharded plane
``coordinator.migration``   classes migrated between shards by the
                            online re-partitioner (no plane teardown)
``shard.bytes_static``      bytes of shard geometry shipped to the
                            persistent worker fleet via shared memory
``shard.bytes_round``       per-round delta bytes crossing the process
                            boundary (task dicts + returned rows)
``net.fair_recompute``      fair-share rate recomputations in the flow
                            manager (one per start/finish/cancel batch)
``net.flows_settled``       transfers settled to completion (aggregate
                            flows count one per internal request)
``net.flows_coalesced``     downloads absorbed into an existing
                            aggregate flow (k parts -> k-1 absorbed)
==========================  ====================================================
"""

from __future__ import annotations

__all__ = ["RECORD_KINDS", "COUNTER_NAMES", "EVENT_SCHEMAS",
           "validate_record"]

#: Every record kind an exporter may emit.
RECORD_KINDS = ("event", "sample", "span", "counter", "summary")

#: Counter names the built-in instrumentation increments.
COUNTER_NAMES = (
    "net.messages",
    "net.mb",
    "runtime.batches",
    "warmstart.hit",
    "warmstart.miss",
    "warmstart.invalidation",
    "incremental.event",
    "incremental.fallback",
    "shard.event",
    "shard.fallback",
    "coordinator.refresh",
    "coordinator.migration",
    "shard.bytes_static",
    "shard.bytes_round",
    "net.fair_recompute",
    "net.flows_settled",
    "net.flows_coalesced",
)

#: Known event names -> fields guaranteed to be present (beyond
#: ``kind``/``t``/``name``).  Instrumentation may add more fields;
#: unknown names are allowed (the taxonomy is open).
EVENT_SCHEMAS: dict[str, tuple[str, ...]] = {
    # One per solver iteration (LDDM): dual residual, dual step, max |mu|.
    "lddm.iteration": ("k", "residual", "step", "mu_max"),
    # One per solver iteration (CDPSM): consensus disagreement, step.
    "cdpsm.iteration": ("k", "change", "step"),
    # One per finished in-process solve (both solvers + reference).
    "solver.solve": ("method", "iterations", "converged", "objective",
                     "solve_time_s", "warm_started"),
    # One per DistributedSolveSession.run(): simulated-time solve stats
    # plus the session's exact per-round message/byte plan.
    "session.solve": ("algorithm", "rows", "n_clients", "n_replicas",
                      "iterations", "converged", "sim_start", "sim_duration",
                      "messages", "mb", "msgs_per_round", "mb_per_round"),
    # One per EDR runtime sub-batch solved by an optimizing scheduler.
    "runtime.batch": ("sim_time", "algorithm", "n_requests", "n_clients",
                      "n_classes", "iterations", "converged", "warm_started",
                      "solve_sim_s"),
    # One per sub-batch absorbed by the incremental delta-event path
    # (class-demand changes applied + refinement sweeps, no batch solve).
    "runtime.incremental": ("sim_time", "n_requests", "n_clients",
                            "events", "sweeps", "solve_sim_s"),
    # One per shard best-response inside a dual-price exchange round
    # (demand_share feeds the elasticity skew diagnostics).
    "shard.solve": ("shard", "rows", "sweeps", "converged", "demand_share"),
    # One per dual-price exchange round (global residual after gather;
    # wall_s feeds the advisory shard-count tuner).
    "coordinator.round": ("round", "residual", "n_shards", "wall_s"),
    # One per ShardCoordinator.solve() call.
    "coordinator.solve": ("rounds", "residual", "converged", "n_shards",
                          "n_classes"),
    # One per rebalance() that migrated classes (online re-partition).
    "coordinator.repartition": ("moves", "n_shards", "skew_before",
                                "skew_after"),
    # One per explicit shard-count resize (auto_tune or direct).
    "coordinator.resize": ("from_shards", "to_shards", "n_classes"),
    # One per EDR runtime chunk routed through the sharded plane.
    "runtime.shard": ("sim_time", "n_requests", "n_clients", "events",
                      "sweeps", "rounds", "refreshed", "solve_sim_s"),
    # One per coalesced ASSIGN batch a client turned into downloads.
    "runtime.traffic": ("sim_time", "client", "n_requests", "n_parts",
                        "n_flows", "mb"),
    # Ring membership transition ("dead" or "alive").
    "membership": ("change", "member"),
    # Experiment-runner marker: everything after belongs to this figure.
    "experiment.figure": ("figure",),
    # Sweep-point marker emitted inside a figure run.
    "experiment.point": ("figure",),
}

#: ``sample`` records: name -> labels beyond ``value``.
SAMPLE_SCHEMAS: dict[str, tuple[str, ...]] = {
    # Objective of the repaired candidate at iteration ``k`` (only when
    # the producing solve tracks objectives).
    "solver.objective": ("k", "value"),
}


def validate_record(record: dict) -> None:
    """Raise ``ValueError`` if ``record`` violates the export contract.

    Used by the schema round-trip tests and by :func:`~repro.obs.export.
    from_jsonl` (exporting code keeps the hot path validation-free).
    """
    if not isinstance(record, dict):
        raise ValueError(f"record must be a dict, got {type(record)!r}")
    kind = record.get("kind")
    if kind not in RECORD_KINDS:
        raise ValueError(f"unknown record kind {kind!r}")
    if kind == "summary":
        return
    name = record.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError(f"record needs a nonempty string name: {record!r}")
    if kind == "counter":
        if not isinstance(record.get("value"), (int, float)):
            raise ValueError(f"counter needs a numeric value: {record!r}")
        return
    if not isinstance(record.get("t"), (int, float)):
        raise ValueError(f"{kind} record needs a numeric t: {record!r}")
    if kind == "span" and not isinstance(record.get("duration"),
                                         (int, float)):
        raise ValueError(f"span record needs a duration: {record!r}")
    if kind == "sample":
        required = ("value",) + SAMPLE_SCHEMAS.get(name, ())
    else:
        required = EVENT_SCHEMAS.get(name, ())
    missing = [f for f in required if f not in record]
    if missing:
        raise ValueError(f"{kind} {name!r} missing fields {missing}")

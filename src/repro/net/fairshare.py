"""Vectorized weighted max-min fair-share kernel.

Progressive filling over flat endpoint-index/weight/capacity arrays —
the data-plane twin of :mod:`repro.core.kernels`: the dict-of-Flow
scalar allocator (:func:`repro.net.flows.max_min_fair_rates`) stays as
the behavioral oracle, and this kernel reproduces it to <=1e-9 while
costing a handful of numpy passes per freeze level instead of Python
set algebra per node per level.

The *weighted* generalization is what makes epoch coalescing exact: a
flow of weight ``k`` receives exactly the bandwidth ``k`` unit-weight
flows between the same endpoints would, at every instant, because
progressive filling raises one common per-unit level ``t`` and gives
every unfrozen flow ``w_f * t`` until a node bottlenecks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fair_share_rates"]


def fair_share_rates(src: np.ndarray, dst: np.ndarray, weights: np.ndarray,
                     capacities: np.ndarray) -> np.ndarray:
    """Weighted max-min fair rates by vectorized progressive filling.

    Parameters
    ----------
    src, dst:
        ``(F,)`` integer endpoint indices into ``capacities``.  Each
        flow consumes capacity at both endpoints (half-duplex NIC).
    weights:
        ``(F,)`` nonnegative share weights; a zero-weight flow gets
        rate zero.
    capacities:
        ``(N,)`` per-node NIC capacities.

    Returns
    -------
    ``(F,)`` aggregate rates: ``weights * level`` at each flow's frozen
    per-unit level.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    w = np.asarray(weights, dtype=float)
    n_nodes = len(capacities)
    n_flows = src.size
    rates = np.zeros(n_flows)
    if n_flows == 0:
        return rates
    cap_left = np.maximum(np.asarray(capacities, dtype=float), 0.0).copy()
    active = w > 0.0
    # Each pass freezes every flow touching the tightest node(s); there
    # are at most N distinct bottleneck levels, so at most N passes.
    while active.any():
        w_node = (np.bincount(src[active], weights=w[active],
                              minlength=n_nodes)
                  + np.bincount(dst[active], weights=w[active],
                                minlength=n_nodes))
        carrying = w_node > 0.0
        if not carrying.any():  # pragma: no cover - defensive
            break
        level = np.full(n_nodes, np.inf)
        level[carrying] = np.maximum(cap_left[carrying], 0.0) \
            / w_node[carrying]
        tight = level.min()
        bottleneck = level <= tight
        hit = active & (bottleneck[src] | bottleneck[dst])
        rates[hit] = w[hit] * tight
        active &= ~hit
        if tight > 0.0:
            cap_left -= np.bincount(src[hit], weights=rates[hit],
                                    minlength=n_nodes)
            cap_left -= np.bincount(dst[hit], weights=rates[hit],
                                    minlength=n_nodes)
            # Guard tiny negative residue from float subtraction.
            np.maximum(cap_left, -1e-6, out=cap_left)
    return rates

"""Control-plane message transport.

Reliable, ordered-per-pair delivery with one-way propagation latency from
the :class:`~repro.net.topology.Topology` plus a serialization delay
``size / min(src_capacity, dst_capacity)``.  Each node registers named
*ports* (mailboxes); the EDR server's ClientListener and ReplicaListener
threads map to processes blocked on different ports of the same node.

Crashed nodes (see :class:`~repro.net.faults.FaultInjector`) silently drop
traffic in both directions, which is what lets the ring failure detector
observe timeouts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.errors import ValidationError
from repro.net.message import Message
from repro.net.topology import Topology
from repro.obs import NULL_RECORDER
from repro.sim.events import Event
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["Network", "Endpoint"]


class Endpoint:
    """A node's handle on the network: send messages, receive per port."""

    def __init__(self, network: "Network", name: str) -> None:
        self._network = network
        self.name = name

    def send(self, dst: str, port: str, kind: str, payload=None,
             size: float = 1e-4) -> None:
        """Fire-and-forget a message to ``dst``'s ``port``."""
        msg = Message(src=self.name, dst=dst, port=port, kind=kind,
                      payload=payload, size=size,
                      sent_at=self._network.sim.now)
        self._network.deliver(msg)

    def broadcast(self, dsts: Iterable[str], port: str, kind: str,
                  payload=None, size: float = 1e-4) -> None:
        """Send the same message to every destination (excluding self)."""
        for dst in dsts:
            if dst != self.name:
                self.send(dst, port, kind, payload, size)

    def recv(self, port: str) -> Event:
        """Event firing with the next message on ``port`` (yield it)."""
        return self._network.mailbox(self.name, port).get()

    def pending(self, port: str) -> int:
        """Number of queued, undelivered messages on ``port``."""
        return len(self._network.mailbox(self.name, port))


class Network:
    """Message switch over a topology.

    Statistics (message and byte counters, per node and total) feed the
    communication-complexity comparisons between CDPSM, LDDM and DONAR.
    An optional ``recorder`` (:mod:`repro.obs`) additionally aggregates
    per-message-kind counters (``net.messages`` / ``net.mb``) so traces
    can split solver coordination from heartbeats and data-plane control.
    """

    def __init__(self, sim: "Simulator", topology: Topology,
                 recorder=None) -> None:
        self.sim = sim
        self.topology = topology
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._mailboxes: dict[tuple[str, str], Store] = {}
        self._crashed: set[str] = set()
        self._cut: set[tuple[str, str]] = set()
        self.messages_sent = 0
        self.messages_delivered = 0
        self.mb_sent = 0.0
        self.sent_by_node: dict[str, int] = {n: 0 for n in topology.nodes}

    # -- wiring ----------------------------------------------------------------
    def endpoint(self, name: str) -> Endpoint:
        """Handle for node ``name`` (must exist in the topology)."""
        self.topology.index(name)  # validates
        return Endpoint(self, name)

    def mailbox(self, node: str, port: str) -> Store:
        """The (auto-created) mailbox for ``(node, port)``."""
        key = (node, port)
        box = self._mailboxes.get(key)
        if box is None:
            self.topology.index(node)  # validates
            box = Store(self.sim)
            self._mailboxes[key] = box
        return box

    # -- fault hooks -------------------------------------------------------------
    def crash(self, node: str) -> None:
        """Drop all traffic to and from ``node`` until :meth:`restore`."""
        self.topology.index(node)
        self._crashed.add(node)

    def restore(self, node: str) -> None:
        """Reconnect a crashed node."""
        self._crashed.discard(node)

    def is_crashed(self, node: str) -> bool:
        """True while ``node`` is crash-faulted."""
        return node in self._crashed

    def cut_link(self, src: str, dst: str) -> None:
        """Silently drop ``src`` -> ``dst`` messages (directed partition).

        Only the one direction is cut; the reverse link and both nodes'
        other links keep working — the partial-partition case a purely
        local failure detector must still resolve.
        """
        self.topology.index(src)
        self.topology.index(dst)
        self._cut.add((src, dst))

    def heal_link(self, src: str, dst: str) -> None:
        """Restore a previously cut directed link."""
        self._cut.discard((src, dst))

    def is_link_cut(self, src: str, dst: str) -> bool:
        """True while the directed link ``src`` -> ``dst`` is cut."""
        return (src, dst) in self._cut

    # -- delivery ---------------------------------------------------------------
    def transit_delay(self, msg: Message) -> float:
        """Propagation + serialization delay for ``msg``."""
        prop = self.topology.latency(msg.src, msg.dst)
        line = min(self.topology.capacity(msg.src),
                   self.topology.capacity(msg.dst))
        return prop + msg.size / line

    def deliver(self, msg: Message) -> None:
        """Accept a message for delivery (used by :class:`Endpoint`)."""
        if msg.src == msg.dst:
            raise ValidationError("cannot send a message to self")
        self.messages_sent += 1
        self.mb_sent += msg.size
        self.sent_by_node[msg.src] = self.sent_by_node.get(msg.src, 0) + 1
        rec = self.recorder
        if rec.enabled:
            rec.count("net.messages", kind=msg.kind)
            rec.count("net.mb", msg.size, kind=msg.kind)
        if msg.src in self._crashed:
            return  # sender is dead: message never leaves
        if (msg.src, msg.dst) in self._cut:
            return  # directed link is partitioned: message is lost
        delay = self.transit_delay(msg)
        ev = self.sim.timeout(delay, msg)
        ev.add_callback(self._arrive)

    def _arrive(self, ev: Event) -> None:
        msg: Message = ev.value
        if msg.dst in self._crashed:
            return  # receiver is dead: drop silently
        self.mailbox(msg.dst, msg.port).put(msg)
        self.messages_delivered += 1

"""Typed message envelopes carried by the transport."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message"]

_message_counter = itertools.count()


@dataclass(frozen=True)
class Message:
    """A control-plane message.

    Attributes
    ----------
    src, dst:
        Node names.
    port:
        Logical listener the message is addressed to — the EDR server's
        ``"client"`` (ClientListener) or ``"replica"`` (ReplicaListener)
        ports, for example.
    kind:
        Application-level message type tag (e.g. ``"REQUEST"``).
    payload:
        Arbitrary application data.
    size:
        Serialized size in MB (control messages are small; the transport
        adds ``size / capacity`` serialization delay).
    sent_at:
        Simulation time the message entered the network.
    uid:
        Monotone per-process unique id (diagnostics, dedup in tests).
    """

    src: str
    dst: str
    port: str
    kind: str
    payload: Any = None
    size: float = 1e-4  # 100 bytes expressed in MB
    sent_at: float = 0.0
    uid: int = field(default_factory=lambda: next(_message_counter))

    def reply_to(self, kind: str, payload: Any = None, *, port: str | None = None,
                 size: float = 1e-4) -> "Message":
        """Build a response addressed back to this message's sender."""
        return Message(src=self.dst, dst=self.src,
                       port=port if port is not None else self.port,
                       kind=kind, payload=payload, size=size)

"""Bulk data transfers with weighted max-min fair bandwidth sharing.

Every node's NIC is a single capacity shared by all flows touching it
(ingress and egress combined, matching a half-duplex 100 MB/s Ethernet
budget).  Active flows get the max-min fair allocation computed by
progressive filling; rates are recomputed whenever a flow starts,
finishes, or is cancelled.  Between recomputations rates are constant,
so remaining bytes settle exactly and the power model can read
instantaneous per-node throughput at any sample time.

The manager keeps the active set in flat endpoint-index/weight/
remaining/rate arrays: settling is one vector op, the next-completion
horizon is one reduction, all completions landing at the same instant
are serviced with a *single* recompute, and the recompute itself runs
the vectorized kernel of :mod:`repro.net.fairshare` (``kernel="scalar"``
keeps the dict-based oracle allocator in the loop for parity benches).

:class:`AggregateFlow` carries many same-pair downloads as one weighted
flow (weight = live request multiplicity).  Under max-min fairness this
is *exact*: progressive filling gives a weight-``k`` flow precisely the
bandwidth ``k`` separate unit flows would get, every internal request
receives the common per-unit rate, so requests finish smallest-first at
exactly the instants the separate flows would have — each completion
decrements the weight, just as a separate flow's completion would have
removed it.  See docs/ARCHITECTURE.md ("Traffic engine").
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.net.fairshare import fair_share_rates
from repro.net.topology import Topology
from repro.obs import NULL_RECORDER
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["Flow", "AggregateFlow", "FlowManager", "max_min_fair_rates"]

_EPS = 1e-9

#: Relative completion tolerance (legacy semantics): a transfer whose
#: shortfall is below ``_REL_TOL * max(1, size)`` MB when some flow's
#: timer fires is settled in the same batch.
_REL_TOL = 1e-6


class Flow:
    """One bulk transfer.

    Attributes
    ----------
    src, dst: node names.
    size: total MB to move.
    weight: relative fair-share weight (1.0 for a plain transfer; an
        aggregate carrying ``k`` live requests has weight ``k``).
    remaining: MB still to move (settled as of the manager's last update).
    rate: current fair-share rate in MB/s (aggregate total for weighted
        flows).
    done: event fired on completion *or* cancellation; check
        :attr:`completed` to distinguish.
    """

    def __init__(self, sim, src: str, dst: str, size: float,
                 weight: float = 1.0) -> None:
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.weight = float(weight)
        self.done: Event = Event(sim)
        self.started_at = sim.now
        self.finished_at: float | None = None
        self.cancelled = False
        self._mgr: "FlowManager | None" = None
        self._slot = -1
        self._remaining = float(size)
        self._rate = 0.0

    @property
    def completed(self) -> bool:
        """True once all bytes moved (False for cancelled flows)."""
        return self.finished_at is not None and not self.cancelled

    @property
    def remaining(self) -> float:
        """MB still to move (live while active, final once finished)."""
        mgr = self._mgr
        if mgr is None:
            return self._remaining
        return self._external_remaining(mgr._stage_now(self._slot))

    @property
    def rate(self) -> float:
        """Current fair-share rate in MB/s (0 once finished)."""
        mgr = self._mgr
        if mgr is None:
            return self._rate
        return float(mgr._rate[self._slot])

    # -- manager protocol ---------------------------------------------------
    def _initial_stage(self) -> tuple[float, float]:
        """(stage bytes, stage tolerance) when the flow attaches."""
        return self.size, _REL_TOL * max(1.0, self.size)

    def _external_remaining(self, stage: float) -> float:
        return max(0.0, stage)

    def _drain(self, mgr: "FlowManager", strict: bool) -> bool:
        """The current stage hit zero; True means the flow is done."""
        mgr._count_settled(1)
        return True

    def _finalize(self, now: float, cancelled: bool,
                  remaining: float) -> None:
        self._mgr = None
        self._slot = -1
        self._remaining = max(0.0, remaining)
        self._rate = 0.0
        self.cancelled = cancelled
        self.finished_at = now
        self.done.succeed(self)

    def _cancel(self, mgr: "FlowManager", stage: float) -> None:
        self._finalize(mgr.sim.now, cancelled=True, remaining=stage)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Flow({self.src}->{self.dst}, size={self.size:g}, "
                f"remaining={self.remaining:g}, rate={self.rate:g})")


class AggregateFlow(Flow):
    """Many same-pair downloads coalesced into one weighted flow.

    ``parts`` is a list of ``(key, size_mb)`` internal requests.  Every
    live part receives the common per-unit rate, so parts complete
    smallest-first at exactly the instants separate unit flows would
    have; each completion decrements :attr:`weight`.  Set
    :attr:`on_part` to observe resolutions: it is called as
    ``on_part(key, size_mb, got_mb, completed)`` once per part, at the
    part's true completion (or cancellation) instant.
    """

    def __init__(self, sim, src: str, dst: str,
                 parts: Sequence[tuple[object, float]]) -> None:
        ordered = sorted(enumerate(parts), key=lambda kv: (kv[1][1], kv[0]))
        self._keys = [p[0] for _, p in ordered]
        self._sizes = [float(p[1]) for _, p in ordered]
        # Suffix sums make the live-byte total O(1) for `remaining`.
        suffix = [0.0] * (len(self._sizes) + 1)
        for i in range(len(self._sizes) - 1, -1, -1):
            suffix[i] = suffix[i + 1] + self._sizes[i]
        self._suffix = suffix
        self._next = 0          # index of the smallest live part
        self._unit_done = 0.0   # per-unit MB delivered to every live part
        self.on_part: Callable[[object, float, float, bool], None] | None \
            = None
        super().__init__(sim, src, dst, suffix[0], weight=len(self._sizes))

    @property
    def n_parts(self) -> int:
        """Total internal requests carried by this aggregate."""
        return len(self._sizes)

    @property
    def parts_live(self) -> int:
        """Internal requests not yet resolved."""
        if self.finished_at is not None:
            return 0
        return len(self._sizes) - self._next

    # -- manager protocol ---------------------------------------------------
    def _initial_stage(self) -> tuple[float, float]:
        k = len(self._sizes)
        s_next = self._sizes[0]
        return k * s_next, k * _REL_TOL * max(1.0, s_next)

    def _external_remaining(self, stage: float) -> float:
        k = len(self._sizes) - self._next
        if k <= 0:
            return 0.0
        u = self._sizes[self._next] - max(0.0, stage) / k
        return max(0.0, self._suffix[self._next] - k * u)

    def _drain(self, mgr: "FlowManager", strict: bool) -> bool:
        sizes = self._sizes
        u = sizes[self._next]
        self._unit_done = u
        resolved = []
        i = self._next
        n = len(sizes)
        while i < n:
            slack = _EPS if strict else _REL_TOL * max(1.0, sizes[i])
            if sizes[i] - u > slack:
                break
            resolved.append((self._keys[i], sizes[i], sizes[i], True))
            i += 1
        self._next = i
        mgr._count_settled(len(resolved))
        mgr._emit_parts(self, resolved)
        if i >= n:
            return True
        k = n - i
        self.weight = float(k)
        slot = self._slot
        mgr._w[slot] = k
        mgr._rem0[slot] = k * (sizes[i] - u)
        mgr._tol[slot] = k * _REL_TOL * max(1.0, sizes[i])
        return False

    def _cancel(self, mgr: "FlowManager", stage: float) -> None:
        k = len(self._sizes) - self._next
        if k > 0:
            u = self._sizes[self._next] - max(0.0, stage) / k
            u = min(max(u, self._unit_done), self._sizes[self._next])
            self._unit_done = u
            resolved = [(self._keys[i], self._sizes[i], u, False)
                        for i in range(self._next, len(self._sizes))]
            mgr._emit_parts(self, resolved)
            left = self._suffix[self._next] - k * u
        else:
            left = 0.0
        self._finalize(mgr.sim.now, cancelled=True, remaining=left)

    def _resolve_all(self, mgr: "FlowManager", got_full: bool) -> None:
        """Fast-path resolution (zero-size or born-dead aggregates)."""
        resolved = [(self._keys[i], self._sizes[i],
                     self._sizes[i] if got_full else 0.0, got_full)
                    for i in range(self._next, len(self._sizes))]
        self._next = len(self._sizes)
        if got_full:
            mgr._count_settled(len(resolved))
        mgr._emit_parts(self, resolved)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AggregateFlow({self.src}->{self.dst}, "
                f"parts={self.parts_live}/{self.n_parts}, "
                f"remaining={self.remaining:g}, rate={self.rate:g})")


def max_min_fair_rates(flows: Iterable[Flow],
                       capacity: dict[str, float]) -> dict[Flow, float]:
    """Progressive-filling weighted max-min fair allocation (oracle).

    Each flow consumes capacity at both its endpoints; each node's total
    is bounded by ``capacity[node]``.  A flow's share of a bottleneck is
    proportional to its ``weight`` (1.0 when absent).  Returns the fair
    aggregate rate per flow.

    This is the scalar reference for the vectorized kernel in
    :mod:`repro.net.fairshare`.  The node index is built once and
    maintained incrementally — nodes drop out as their last unfrozen
    flow freezes — so one call costs O(levels * live nodes + flows)
    instead of rescanning every node's full flow set per freeze level.
    """
    flows = list(flows)
    rates: dict[Flow, float] = {}
    if not flows:
        return rates
    cap_left = dict(capacity)
    touching: dict[str, set[Flow]] = {}
    weight_live: dict[str, float] = {}
    n_unfrozen = 0
    for f in flows:
        w = getattr(f, "weight", 1.0)
        if w <= 0:
            rates[f] = 0.0   # zero-weight flows carry nothing
            continue
        n_unfrozen += 1
        for node in (f.src, f.dst):
            touching.setdefault(node, set()).add(f)
            weight_live[node] = weight_live.get(node, 0.0) + w
    while n_unfrozen:
        # Fair per-unit share at each node still carrying unfrozen flows.
        best_node = None
        best_share = math.inf
        for node, live_w in weight_live.items():
            share = max(cap_left.get(node, math.inf), 0.0) / live_w
            if share < best_share:
                best_share = share
                best_node = node
        if best_node is None:  # pragma: no cover - defensive
            break
        emptied = []
        for f in list(touching[best_node]):
            w = getattr(f, "weight", 1.0)
            rates[f] = w * best_share
            n_unfrozen -= 1
            for node in (f.src, f.dst):
                fset = touching.get(node)
                if fset is None:
                    continue
                fset.discard(f)
                if fset:
                    weight_live[node] -= w
                else:
                    emptied.append(node)
                cap_left[node] = cap_left.get(node, math.inf) - w * best_share
                # Guard tiny negative residue from float subtraction.
                if cap_left[node] < 0:
                    cap_left[node] = max(cap_left[node], -1e-6)
        for node in emptied:
            touching.pop(node, None)
            weight_live.pop(node, None)
    return rates


class FlowManager:
    """Tracks active flows, assigns fair rates, fires completion events.

    ``crashed`` is an optional oracle (``name -> bool``): transfers whose
    endpoint is already crashed are born cancelled — a dead server cannot
    serve bytes, even if a stale assignment still names it.

    ``kernel`` selects the rate allocator: ``"vector"`` (default) runs
    :func:`repro.net.fairshare.fair_share_rates` over the manager's flat
    arrays; ``"scalar"`` keeps the dict-based oracle in the loop (the
    legacy cost profile, used by parity benches).  ``recorder`` threads
    :mod:`repro.obs` counters (``net.fair_recompute`` /
    ``net.flows_settled`` / ``net.flows_coalesced``).
    """

    def __init__(self, sim: "Simulator", topology: Topology,
                 crashed=None, kernel: str = "vector",
                 recorder=None) -> None:
        if kernel not in ("vector", "scalar"):
            raise ValidationError(f"unknown flow kernel {kernel!r}")
        self.sim = sim
        self.topology = topology
        self.crashed = crashed or (lambda name: False)
        self.kernel = kernel
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._caps_vec = np.array([topology.capacity(n)
                                   for n in topology.nodes])
        self._caps_dict = {n: float(c)
                           for n, c in zip(topology.nodes, self._caps_vec)}
        # Flat state of the active set; `_n` live slots, doubled on demand.
        size0 = 8
        self._srci = np.zeros(size0, dtype=np.int64)
        self._dsti = np.zeros(size0, dtype=np.int64)
        self._w = np.zeros(size0)
        self._rem0 = np.zeros(size0)   # stage MB left as of _last_update
        self._rate = np.zeros(size0)
        self._tol = np.zeros(size0)
        self._n = 0
        self._flows: list[Flow] = []
        self._last_update = sim.now
        self._generation = 0
        self.total_mb = 0.0
        self.completed_flows = 0
        #: Fair-share recomputations (one per flow start/finish/cancel
        #: *batch*, not one per same-instant completion).
        self.recomputes = 0
        #: Per-request completions settled (aggregate parts count one each).
        self.parts_settled = 0
        #: Downloads absorbed into an existing aggregate (k parts -> k-1).
        self.parts_coalesced = 0

    @property
    def active(self) -> frozenset[Flow]:
        """Currently running flows."""
        return frozenset(self._flows)

    # -- public operations --------------------------------------------------
    def transfer(self, src: str, dst: str, size: float) -> Flow:
        """Start a transfer of ``size`` MB from ``src`` to ``dst``.

        Returns the :class:`Flow`; wait on ``flow.done`` for completion.
        Zero-size transfers complete at the propagation latency alone.
        """
        if size < 0:
            raise ValidationError("flow size must be nonnegative")
        self.topology.index(src)
        self.topology.index(dst)
        if src == dst:
            raise ValidationError("flow endpoints must differ")
        flow = Flow(self.sim, src, dst, size)
        prop = self.topology.latency(src, dst)
        if self.crashed(src) or self.crashed(dst):
            # Born dead: the caller's completion handling (retry logic)
            # sees a cancelled flow after the usual propagation delay.
            flow.cancelled = True

            def _finish_dead(_ev, flow=flow):
                flow._finalize(self.sim.now, cancelled=True,
                               remaining=flow.size)

            self.sim.timeout(prop).add_callback(_finish_dead)
            return flow
        if size <= _EPS:
            def _finish_empty(_ev, flow=flow):
                flow._finalize(self.sim.now, cancelled=False, remaining=0.0)

            self.sim.timeout(prop).add_callback(_finish_empty)
            return flow
        self._settle()
        self._attach(flow)
        self.total_mb += size
        self._reschedule()
        return flow

    def transfer_aggregate(self, src: str, dst: str,
                           parts: Sequence[tuple[object, float]]
                           ) -> AggregateFlow:
        """Start one weighted flow carrying many ``(key, size_mb)`` parts.

        Exactly equivalent to one :meth:`transfer` per part (see the
        class docstring), at one flow's bookkeeping cost.  Set
        ``flow.on_part`` before the simulation advances to observe
        per-part resolutions.
        """
        if not parts:
            raise ValidationError("aggregate transfer needs at least one part")
        if any(size < 0 for _, size in parts):
            raise ValidationError("flow size must be nonnegative")
        self.topology.index(src)
        self.topology.index(dst)
        if src == dst:
            raise ValidationError("flow endpoints must differ")
        flow = AggregateFlow(self.sim, src, dst, parts)
        self.parts_coalesced += flow.n_parts - 1
        rec = self.recorder
        if rec.enabled and flow.n_parts > 1:
            rec.count("net.flows_coalesced", flow.n_parts - 1)
        prop = self.topology.latency(src, dst)
        if self.crashed(src) or self.crashed(dst):
            flow.cancelled = True

            def _finish_dead(_ev, flow=flow):
                flow._resolve_all(self, got_full=False)
                flow._finalize(self.sim.now, cancelled=True,
                               remaining=flow.size)

            self.sim.timeout(prop).add_callback(_finish_dead)
            return flow
        if flow.size <= _EPS:
            def _finish_empty(_ev, flow=flow):
                flow._resolve_all(self, got_full=True)
                flow._finalize(self.sim.now, cancelled=False, remaining=0.0)

            self.sim.timeout(prop).add_callback(_finish_empty)
            return flow
        self._settle()
        self._attach(flow)
        self.total_mb += flow.size
        self._reschedule()
        return flow

    def cancel_node(self, node: str) -> list[Flow]:
        """Abort every flow touching ``node`` (crash semantics).

        Aborted flows get ``cancelled=True`` and their ``done`` event
        fires; aggregate flows resolve every live part with its partial
        delivery.  Returns the aborted flows.
        """
        self._settle()
        nid = self.topology.index(node)
        n = self._n
        if n == 0:
            return []
        mask = (self._srci[:n] == nid) | (self._dsti[:n] == nid)
        hit = [self._flows[i] for i in np.flatnonzero(mask)]
        for f in hit:
            stage = float(self._rem0[f._slot])
            self._detach(f)
            f._cancel(self, stage)
        if hit:
            self._reschedule()
        return hit

    def node_throughput(self, node: str) -> float:
        """Instantaneous MB/s through ``node``'s NIC (all active flows)."""
        n = self._n
        if n == 0:
            return 0.0
        nid = self.topology.index(node)
        mask = (self._srci[:n] == nid) | (self._dsti[:n] == nid)
        return float(self._rate[:n][mask].sum())

    def utilization(self, node: str) -> float:
        """``node_throughput / capacity`` in [0, 1] (clipped)."""
        cap = self.topology.capacity(node)
        return min(1.0, self.node_throughput(node) / cap)

    # -- internals -------------------------------------------------------------
    def _attach(self, flow: Flow) -> None:
        n = self._n
        if n == self._srci.size:
            for name in ("_srci", "_dsti", "_w", "_rem0", "_rate", "_tol"):
                arr = getattr(self, name)
                grown = np.zeros(2 * arr.size, dtype=arr.dtype)
                grown[:n] = arr
                setattr(self, name, grown)
        stage, tol = flow._initial_stage()
        self._srci[n] = self.topology.index(flow.src)
        self._dsti[n] = self.topology.index(flow.dst)
        self._w[n] = flow.weight
        self._rem0[n] = stage
        self._rate[n] = 0.0
        self._tol[n] = tol
        flow._mgr = self
        flow._slot = n
        self._flows.append(flow)
        self._n += 1

    def _detach(self, flow: Flow) -> None:
        slot = flow._slot
        last = self._n - 1
        if slot != last:
            mover = self._flows[last]
            for arr in (self._srci, self._dsti, self._w, self._rem0,
                        self._rate, self._tol):
                arr[slot] = arr[last]
            self._flows[slot] = mover
            mover._slot = slot
        self._flows.pop()
        self._n -= 1
        flow._mgr = None
        flow._slot = -1

    def _stage_now(self, slot: int) -> float:
        dt = self.sim.now - self._last_update
        stage = float(self._rem0[slot])
        if dt > 0:
            stage -= float(self._rate[slot]) * dt
        return max(0.0, stage)

    def _settle(self) -> None:
        """Account bytes moved since the last rate change."""
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0 and self._n:
            rem = self._rem0[:self._n]
            rem -= self._rate[:self._n] * dt
            np.maximum(rem, 0.0, out=rem)
        self._last_update = now

    def _count_settled(self, n_parts: int) -> None:
        if n_parts <= 0:
            return
        self.parts_settled += n_parts
        rec = self.recorder
        if rec.enabled:
            rec.count("net.flows_settled", n_parts)

    def _emit_parts(self, flow: AggregateFlow, resolved: list) -> None:
        """Fire part resolutions on a fresh queue step (event semantics
        match a plain flow's ``done`` callbacks)."""
        if not resolved:
            return
        ev = self.sim.timeout(0.0)
        ev.add_callback(lambda _ev, f=flow, r=tuple(resolved):
                        f.on_part and [f.on_part(*part) for part in r])

    def _recompute(self) -> None:
        self.recomputes += 1
        rec = self.recorder
        if rec.enabled:
            rec.count("net.fair_recompute")
        n = self._n
        if n == 0:
            return
        if self.kernel == "vector":
            self._rate[:n] = fair_share_rates(
                self._srci[:n], self._dsti[:n], self._w[:n], self._caps_vec)
        else:
            rates = max_min_fair_rates(self._flows, self._caps_dict)
            for f in self._flows:
                self._rate[f._slot] = rates.get(f, 0.0)

    def _service(self, flows: list[Flow], strict: bool) -> None:
        """Advance/complete every flow whose stage has drained."""
        for f in flows:
            if f._drain(self, strict):
                self._detach(f)
                self.completed_flows += 1
                f._finalize(self.sim.now, cancelled=False, remaining=0.0)

    def _reschedule(self) -> None:
        """Recompute fair rates and arm the next completion timer."""
        self._generation += 1
        self._recompute()
        # Fire any flows that already hit zero remaining (all of them in
        # one batch per recompute, not one recompute per flow).
        while self._n:
            n = self._n
            drained = np.flatnonzero(self._rem0[:n] <= _EPS)
            if drained.size == 0:
                break
            self._service([self._flows[i] for i in drained], strict=True)
            self._generation += 1
            self._recompute()
        n = self._n
        if n == 0:
            return
        rate = self._rate[:n]
        pos = rate > 0
        if not pos.any():
            return
        horizon = float((self._rem0[:n][pos] / rate[pos]).min())
        generation = self._generation
        ev = self.sim.timeout(horizon)
        ev.add_callback(lambda _ev: self._on_timer(generation))

    def _on_timer(self, generation: int) -> None:
        if generation != self._generation:
            return  # superseded by a later rate change
        self._settle()
        n = self._n
        if n == 0:  # pragma: no cover - defensive
            return
        drained = np.flatnonzero(self._rem0[:n] <= self._tol[:n])
        if drained.size:
            self._service([self._flows[i] for i in drained], strict=False)
        else:
            # Numerical drift: force the closest flow to completion.
            slot = int(np.argmin(self._rem0[:n]))
            self._rem0[slot] = 0.0
            self._service([self._flows[slot]], strict=True)
        self._reschedule()

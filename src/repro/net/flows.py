"""Bulk data transfers with max-min fair bandwidth sharing.

Every node's NIC is a single capacity shared by all flows touching it
(ingress and egress combined, matching a half-duplex 100 MB/s Ethernet
budget).  Active flows get the max-min fair allocation computed by
progressive filling; rates are recomputed whenever a flow starts, finishes,
or is cancelled.  Between recomputations rates are constant, so remaining
bytes settle exactly and the power model can read instantaneous per-node
throughput at any sample time.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable

from repro.errors import ValidationError
from repro.net.topology import Topology
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["Flow", "FlowManager"]

_EPS = 1e-9


class Flow:
    """One bulk transfer.

    Attributes
    ----------
    src, dst: node names.
    size: total MB to move.
    remaining: MB still to move (settled as of the manager's last update).
    rate: current fair-share rate in MB/s.
    done: event fired on completion *or* cancellation; check
        :attr:`completed` to distinguish.
    """

    def __init__(self, sim, src: str, dst: str, size: float) -> None:
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.done: Event = Event(sim)
        self.started_at = sim.now
        self.finished_at: float | None = None
        self.cancelled = False

    @property
    def completed(self) -> bool:
        """True once all bytes moved (False for cancelled flows)."""
        return self.finished_at is not None and not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Flow({self.src}->{self.dst}, size={self.size:g}, "
                f"remaining={self.remaining:g}, rate={self.rate:g})")


def max_min_fair_rates(flows: Iterable[Flow],
                       capacity: dict[str, float]) -> dict[Flow, float]:
    """Progressive-filling max-min fair allocation.

    Each flow consumes capacity at both its endpoints; each node's total
    is bounded by ``capacity[node]``.  Returns the fair rate per flow.
    """
    flows = list(flows)
    rates: dict[Flow, float] = {}
    if not flows:
        return rates
    cap_left = dict(capacity)
    unfrozen = set(flows)
    touching: dict[str, set[Flow]] = {}
    for f in flows:
        touching.setdefault(f.src, set()).add(f)
        touching.setdefault(f.dst, set()).add(f)
    while unfrozen:
        # Fair share at each node still carrying unfrozen flows.
        best_node = None
        best_share = math.inf
        for node, fset in touching.items():
            live = fset & unfrozen
            if not live:
                continue
            share = max(cap_left.get(node, math.inf), 0.0) / len(live)
            if share < best_share:
                best_share = share
                best_node = node
        if best_node is None:  # pragma: no cover - defensive
            break
        for f in touching[best_node] & unfrozen:
            rates[f] = best_share
            unfrozen.discard(f)
            cap_left[f.src] = cap_left.get(f.src, math.inf) - best_share
            cap_left[f.dst] = cap_left.get(f.dst, math.inf) - best_share
        # Guard tiny negative residue from float subtraction.
        for node in (f.src, f.dst):
            if node in cap_left and cap_left[node] < 0:
                cap_left[node] = max(cap_left[node], -1e-6)
    return rates


class FlowManager:
    """Tracks active flows, assigns fair rates, fires completion events.

    ``crashed`` is an optional oracle (``name -> bool``): transfers whose
    endpoint is already crashed are born cancelled — a dead server cannot
    serve bytes, even if a stale assignment still names it.
    """

    def __init__(self, sim: "Simulator", topology: Topology,
                 crashed=None) -> None:
        self.sim = sim
        self.topology = topology
        self.crashed = crashed or (lambda name: False)
        self._flows: set[Flow] = set()
        self._last_update = sim.now
        self._generation = 0
        self.total_mb = 0.0
        self.completed_flows = 0

    @property
    def active(self) -> frozenset[Flow]:
        """Currently running flows."""
        return frozenset(self._flows)

    # -- public operations --------------------------------------------------
    def transfer(self, src: str, dst: str, size: float) -> Flow:
        """Start a transfer of ``size`` MB from ``src`` to ``dst``.

        Returns the :class:`Flow`; wait on ``flow.done`` for completion.
        Zero-size transfers complete at the propagation latency alone.
        """
        if size < 0:
            raise ValidationError("flow size must be nonnegative")
        self.topology.index(src)
        self.topology.index(dst)
        if src == dst:
            raise ValidationError("flow endpoints must differ")
        flow = Flow(self.sim, src, dst, size)
        prop = self.topology.latency(src, dst)
        if self.crashed(src) or self.crashed(dst):
            # Born dead: the caller's completion handling (retry logic)
            # sees a cancelled flow after the usual propagation delay.
            flow.cancelled = True

            def _finish_dead(_ev, flow=flow):
                flow.finished_at = self.sim.now
                flow.done.succeed(flow)

            self.sim.timeout(prop).add_callback(_finish_dead)
            return flow
        if size <= _EPS:
            flow.remaining = 0.0

            def _finish_empty(_ev, flow=flow):
                flow.finished_at = self.sim.now
                flow.done.succeed(flow)

            self.sim.timeout(prop).add_callback(_finish_empty)
            return flow
        self._settle()
        self._flows.add(flow)
        self.total_mb += size
        self._reschedule()
        return flow

    def cancel_node(self, node: str) -> list[Flow]:
        """Abort every flow touching ``node`` (crash semantics).

        Aborted flows get ``cancelled=True`` and their ``done`` event fires.
        Returns the aborted flows.
        """
        self._settle()
        hit = [f for f in self._flows if node in (f.src, f.dst)]
        for f in hit:
            self._flows.discard(f)
            f.cancelled = True
            f.finished_at = self.sim.now
            f.rate = 0.0
            f.done.succeed(f)
        if hit:
            self._reschedule()
        return hit

    def node_throughput(self, node: str) -> float:
        """Instantaneous MB/s through ``node``'s NIC (all active flows)."""
        return sum(f.rate for f in self._flows if node in (f.src, f.dst))

    def utilization(self, node: str) -> float:
        """``node_throughput / capacity`` in [0, 1] (clipped)."""
        cap = self.topology.capacity(node)
        return min(1.0, self.node_throughput(node) / cap)

    # -- internals -------------------------------------------------------------
    def _settle(self) -> None:
        """Account bytes moved since the last rate change."""
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0:
            for f in self._flows:
                f.remaining = max(0.0, f.remaining - f.rate * dt)
        self._last_update = now

    def _reschedule(self) -> None:
        """Recompute fair rates and arm the next completion timer."""
        self._generation += 1
        caps = {n: self.topology.capacity(n) for n in self.topology.nodes}
        rates = max_min_fair_rates(self._flows, caps)
        for f in self._flows:
            f.rate = rates.get(f, 0.0)
        # Fire any flows that already hit zero remaining.
        finished = [f for f in self._flows if f.remaining <= _EPS]
        for f in finished:
            self._complete(f)
        if finished:
            # Completion changed the flow set; recurse once to re-arm.
            self._reschedule()
            return
        horizon = math.inf
        for f in self._flows:
            if f.rate > 0:
                horizon = min(horizon, f.remaining / f.rate)
        if math.isinf(horizon):
            return
        generation = self._generation
        ev = self.sim.timeout(horizon)
        ev.add_callback(lambda _ev: self._on_timer(generation))

    def _on_timer(self, generation: int) -> None:
        if generation != self._generation:
            return  # superseded by a later rate change
        self._settle()
        done = [f for f in self._flows if f.remaining <= 1e-6 * max(1.0, f.size)]
        if not done:
            # Numerical drift: force the closest flow to completion.
            done = [min(self._flows, key=lambda f: f.remaining)]
        for f in done:
            f.remaining = 0.0
            self._complete(f)
        self._reschedule()

    def _complete(self, flow: Flow) -> None:
        self._flows.discard(flow)
        flow.finished_at = self.sim.now
        flow.rate = 0.0
        self.completed_flows += 1
        flow.done.succeed(flow)

"""Network topology: node inventory, latency matrix, NIC capacities.

Latencies are one-way propagation delays in seconds; capacities are NIC
line rates in MB/s.  The latency-eligibility mask required by the paper's
constraint ``l[c,n] <= T`` is derived here.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["Topology"]


class Topology:
    """Immutable node inventory with pairwise latency and per-node capacity.

    Parameters
    ----------
    nodes:
        Ordered node names (clients and replicas alike).
    latency:
        ``(n, n)`` matrix of one-way delays in seconds.  The diagonal must
        be zero; the matrix need not be symmetric (paths can be asymmetric).
    capacity:
        Per-node NIC capacity in MB/s (applies to ingress and egress).
    """

    def __init__(self, nodes: Sequence[str], latency, capacity) -> None:
        if len(set(nodes)) != len(nodes):
            raise ValidationError("duplicate node names in topology")
        self._nodes = tuple(str(n) for n in nodes)
        n = len(self._nodes)
        lat = check_nonnegative(latency, "latency")
        if lat.shape != (n, n):
            raise ValidationError(
                f"latency must be shape ({n}, {n}), got {lat.shape}")
        if np.any(np.diag(lat) != 0):
            raise ValidationError("latency diagonal must be zero")
        cap = check_positive(capacity, "capacity")
        if cap.shape != (n,):
            raise ValidationError(f"capacity must have length {n}")
        self._latency = lat.copy()
        self._latency.setflags(write=False)
        self._capacity = cap.copy()
        self._capacity.setflags(write=False)
        self._index = {name: i for i, name in enumerate(self._nodes)}

    # -- inventory -----------------------------------------------------------
    @property
    def nodes(self) -> tuple[str, ...]:
        """Ordered node names."""
        return self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def index(self, name: str) -> int:
        """Position of ``name`` in the node ordering."""
        try:
            return self._index[name]
        except KeyError:
            raise ValidationError(f"unknown node {name!r}") from None

    # -- quantities ------------------------------------------------------------
    @property
    def latency_matrix(self) -> np.ndarray:
        """Read-only ``(n, n)`` latency matrix in seconds."""
        return self._latency

    def latency(self, src: str, dst: str) -> float:
        """One-way delay from ``src`` to ``dst`` in seconds."""
        return float(self._latency[self.index(src), self.index(dst)])

    def capacity(self, name: str) -> float:
        """NIC capacity of ``name`` in MB/s."""
        return float(self._capacity[self.index(name)])

    def eligibility(self, clients: Sequence[str], replicas: Sequence[str],
                    max_latency: float) -> np.ndarray:
        """Boolean ``(C, N)`` mask: True where ``l[c, n] <= max_latency``.

        This is the paper's latency constraint ``e_{c,n}(P) = l_{c,n} - T <= 0``
        realized as a variable-support mask.
        """
        if max_latency < 0:
            raise ValidationError("max_latency must be nonnegative")
        ci = [self.index(c) for c in clients]
        ri = [self.index(r) for r in replicas]
        return self._latency[np.ix_(ci, ri)] <= max_latency

    # -- builders ----------------------------------------------------------------
    @classmethod
    def lan(cls, nodes: Sequence[str], latency: float = 0.0005,
            capacity: float = 100.0) -> "Topology":
        """Uniform switched-LAN topology (the paper's SystemG setup).

        Every distinct pair has the same one-way ``latency`` (default
        0.5 ms, below the paper's T = 1.8 ms bound) and every node the same
        NIC ``capacity`` (default 100 MB/s Ethernet).
        """
        n = len(nodes)
        lat = np.full((n, n), float(latency))
        np.fill_diagonal(lat, 0.0)
        return cls(nodes, lat, np.full(n, float(capacity)))

    @classmethod
    def geo(cls, nodes: Sequence[str], positions: Mapping[str, tuple[float, float]],
            *, seconds_per_unit: float = 0.001, base_latency: float = 0.0002,
            capacity: float = 100.0) -> "Topology":
        """Geometric topology: latency proportional to Euclidean distance.

        Used by the geo-distributed experiments; ``positions`` maps node
        name to a 2-D coordinate, and latency(src, dst) =
        ``base_latency + seconds_per_unit * dist(src, dst)``.
        """
        n = len(nodes)
        pts = np.array([positions[name] for name in nodes], dtype=float)
        diff = pts[:, None, :] - pts[None, :, :]
        dist = np.sqrt(np.sum(diff * diff, axis=2))
        lat = base_latency + seconds_per_unit * dist
        np.fill_diagonal(lat, 0.0)
        return cls(nodes, lat, np.full(n, float(capacity)))

    @classmethod
    def random_geo(cls, nodes: Sequence[str], rng: np.random.Generator,
                   *, extent: float = 10.0, seconds_per_unit: float = 0.0002,
                   base_latency: float = 0.0001,
                   capacity: float = 100.0) -> "Topology":
        """Random geometric topology with nodes uniform in a square."""
        positions = {name: tuple(rng.uniform(0, extent, size=2))
                     for name in nodes}
        return cls.geo(nodes, positions, seconds_per_unit=seconds_per_unit,
                       base_latency=base_latency, capacity=capacity)

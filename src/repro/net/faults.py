"""Crash-fault injection for replicas.

Crashing a node (1) drops all its control messages in both directions,
(2) aborts its in-flight bulk flows, and (3) interrupts its registered
server processes — the combination the EDR ring failure detector must
survive (Sec. III-C of the paper).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import SimulationError
from repro.net.flows import FlowManager
from repro.net.transport import Network
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["FaultInjector"]


class FaultInjector:
    """Coordinates crash/restore of nodes across transport, flows, processes.

    ``on_restore`` (if given) is called with the node name after a
    :meth:`restore` reconnects its transport — the hook the membership
    layer uses to rejoin restored replicas to the ring.
    """

    def __init__(self, sim: "Simulator", network: Network,
                 flows: FlowManager | None = None,
                 on_restore: Callable[[str], None] | None = None) -> None:
        self.sim = sim
        self.network = network
        self.flows = flows
        self.on_restore = on_restore
        self._processes: dict[str, list[Process]] = {}
        self.crash_log: list[tuple[float, str, str]] = []

    def register_process(self, node: str, process: Process) -> None:
        """Associate a process with ``node`` so crashes interrupt it."""
        self._processes.setdefault(node, []).append(process)

    def crash(self, node: str) -> None:
        """Crash ``node`` now."""
        if self.network.is_crashed(node):
            raise SimulationError(f"{node} is already crashed")
        self.network.crash(node)
        if self.flows is not None:
            self.flows.cancel_node(node)
        for proc in self._processes.get(node, []):
            if proc.is_alive:
                proc.defused = True  # intentional kill: don't crash the sim
                proc.interrupt(f"crash:{node}")
        self.crash_log.append((self.sim.now, node, "crash"))

    def restore(self, node: str) -> None:
        """Reconnect ``node`` and fire the ``on_restore`` hook.

        Server processes are not restarted automatically; protocol-level
        re-admission (ring rejoin, process respawn) is the hook's job.
        """
        if not self.network.is_crashed(node):
            raise SimulationError(f"{node} is not crashed")
        self.network.restore(node)
        self.crash_log.append((self.sim.now, node, "restore"))
        if self.on_restore is not None:
            self.on_restore(node)

    def cut_link(self, src: str, dst: str) -> None:
        """Cut the directed ``src`` -> ``dst`` link (partial partition)."""
        self.network.cut_link(src, dst)
        self.crash_log.append((self.sim.now, f"{src}->{dst}", "cut"))

    def heal_link(self, src: str, dst: str) -> None:
        """Restore a previously cut directed link."""
        self.network.heal_link(src, dst)
        self.crash_log.append((self.sim.now, f"{src}->{dst}", "heal"))

    def crash_at(self, time: float, node: str) -> None:
        """Schedule a crash of ``node`` at absolute simulated ``time``."""
        self.sim.call_at(time, lambda: self.crash(node))

    def restore_at(self, time: float, node: str) -> None:
        """Schedule a restore of ``node`` at absolute simulated ``time``."""
        self.sim.call_at(time, lambda: self.restore(node))

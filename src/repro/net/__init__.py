"""Network substrate: topology, message transport, bulk-data flows, faults.

Control messages (requests, solver iterations, heartbeats) travel through
:class:`~repro.net.transport.Network` with per-pair propagation latency plus
serialization delay.  Bulk data (the actual replica downloads) travels
through :class:`~repro.net.flows.FlowManager`, which shares each node's NIC
capacity among concurrent transfers with max-min fairness and exposes the
instantaneous per-node throughput that drives the power model.
"""

from repro.net.topology import Topology
from repro.net.message import Message
from repro.net.transport import Network, Endpoint
from repro.net.flows import FlowManager, Flow
from repro.net.faults import FaultInjector

__all__ = [
    "Topology",
    "Message",
    "Network",
    "Endpoint",
    "FlowManager",
    "Flow",
    "FaultInjector",
]

"""The simulation engine: clock + event loop.

The engine fires triggered events in nondecreasing time order; processes
(:mod:`repro.sim.process`) are resumed from event callbacks.  Time never
moves backwards, and two events scheduled for the same instant fire in the
order they were scheduled — both properties are enforced and tested.
"""

from __future__ import annotations

import math
from typing import Callable, Generator, Optional

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, EventQueue, Timeout
from repro.sim.process import Process

__all__ = ["Simulator"]


class Simulator:
    """Discrete-event simulator: owns the clock and the pending-event heap.

    Examples
    --------
    >>> sim = Simulator()
    >>> log = []
    >>> def proc(sim):
    ...     yield sim.timeout(1.5)
    ...     log.append(sim.now)
    >>> _ = sim.process(proc(sim))
    >>> sim.run()
    >>> log
    [1.5]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._active: Optional[Event] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event construction --------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered one-shot event."""
        return Event(self)

    def timeout(self, delay: float, value=None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def any_of(self, events) -> AnyOf:
        """Fires when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events) -> AllOf:
        """Fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def process(self, generator: Generator) -> Process:
        """Launch ``generator`` as a simulated process; returns its handle."""
        return Process(self, generator)

    def call_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` at absolute simulated ``time`` (>= now)."""
        if time < self._now:
            raise SimulationError(f"call_at({time}) is in the past (now={self._now})")
        ev = self.timeout(time - self._now)
        ev.add_callback(lambda _ev: fn())
        return ev

    # -- scheduling (internal) ------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._queue.push(self._now + delay, event)

    # -- running ---------------------------------------------------------------
    def step(self) -> None:
        """Process the single earliest pending event."""
        time, event = self._queue.pop()
        if time < self._now:
            raise SimulationError("event queue returned a past event")
        self._now = time
        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        if callbacks:
            for fn in callbacks:
                fn(event)
        elif not event.ok and not getattr(event, "defused", False):
            # A failed event nobody waited on: surface the error rather than
            # silently dropping it (matching SimPy semantics).
            raise event.value

    def peek(self) -> float:
        """Time of the next pending event, or +inf if none."""
        if len(self._queue) == 0:
            return math.inf
        return self._queue.peek_time()

    def run(self, until: float | Event | None = None) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            ``None`` — run until no events remain.
            ``float`` — run until the clock would pass this time; the clock
            is then set to exactly ``until``.
            :class:`Event` — run until this event has been processed.
        """
        if until is None:
            while len(self._queue):
                self.step()
            return
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if len(self._queue) == 0:
                    raise SimulationError(
                        "run(until=event): queue drained before event fired")
                self.step()
            return
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(f"run(until={horizon}) is in the past")
        while len(self._queue) and self._queue.peek_time() <= horizon:
            self.step()
        self._now = horizon

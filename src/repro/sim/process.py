"""Generator-coroutine processes.

A process wraps a generator; every value it yields must be an
:class:`~repro.sim.events.Event` (timeouts, plain events, other processes,
or ``AnyOf``/``AllOf`` combinators).  The process resumes with the event's
value when it fires, or has the exception thrown in if the event failed.
A process is itself an event that succeeds with the generator's return
value, so processes can wait on each other (join).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Thrown inside a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value given by the interrupter.
    Used for fault injection (crashing a replica server mid-protocol).
    """

    def __init__(self, cause=None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running simulated activity; also an event (fires on completion)."""

    def __init__(self, sim: "Simulator", generator: Generator) -> None:
        super().__init__(sim)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError("Process requires a generator")
        self._generator = generator
        self._waiting_on: Event | None = None
        # Kick off at the current instant (priority of a zero timeout).
        start = Event(sim)
        start.succeed()
        start.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause=None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        No-op scheduling-wise if the process already finished (raises), and
        the event the process was waiting on is abandoned.
        """
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        ev = Event(self.sim)
        ev.fail(Interrupt(cause))
        ev.defused = True
        # Detach from whatever the process was waiting on.
        waiting = self._waiting_on
        if waiting is not None and waiting.callbacks is not None:
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        ev.add_callback(self._resume)

    # -- engine plumbing ------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event.ok:
                target = self._generator.send(event.value)
            else:
                # Mark handled so the engine does not re-raise it.
                event.defused = True
                target = self._generator.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An unhandled interrupt terminates the process "successfully
            # killed": fail the process event so joiners see it.
            self.fail(exc)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self._generator.close()
            self.fail(SimulationError(f"process yielded non-event {target!r}"))
            return
        if target.processed:
            # Already fired & processed: resume at the current instant.
            relay = Event(self.sim)
            if target.ok:
                relay.succeed(target.value)
            else:
                relay.fail(target.value)
                relay.defused = True
            target = relay
        self._waiting_on = target
        target.add_callback(self._resume)

"""Shared resources for simulated processes: FIFO stores and semaphores.

``Store`` is the mailbox primitive the EDR protocol uses — each listener
thread in the paper's multithreaded server maps to a process blocked on a
store ``get``.  ``Resource`` is a counting semaphore used e.g. to model a
bounded pool of download slots.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque

from repro.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["Store", "Resource"]


class Store:
    """Unbounded FIFO queue of items with blocking ``get``.

    ``put`` never blocks (the network substrate applies backpressure
    elsewhere, through bandwidth-limited flows); ``get`` returns an event
    that fires with the oldest item once one is available.  Pending getters
    are served in request order.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._items: Deque = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item) -> None:
        """Deposit ``item``; wakes the oldest waiting getter, if any."""
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered:  # abandoned (e.g. waiter interrupted)
                continue
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item (immediately if available)."""
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self):
        """Pop and return the oldest item, or ``None`` if empty (non-blocking)."""
        if self._items:
            return self._items.popleft()
        return None


class Resource:
    """Counting semaphore with FIFO handoff.

    ``request()`` yields an event that fires when a unit is granted;
    ``release()`` returns one unit.  Used to bound concurrency (e.g. a
    replica's simultaneous FileDownload workers).
    """

    def __init__(self, sim: "Simulator", capacity: int) -> None:
        if capacity < 1:
            raise SimulationError("Resource capacity must be >= 1")
        self.sim = sim
        self.capacity = int(capacity)
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Units currently granted."""
        return self._in_use

    @property
    def available(self) -> int:
        """Units currently free."""
        return self.capacity - self._in_use

    def request(self) -> Event:
        """Event that fires when a unit is granted to the caller."""
        ev = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return one unit; grants it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without matching request()")
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.triggered:
                continue
            waiter.succeed()
            return
        self._in_use -= 1

"""Periodic sampling of simulation state.

:class:`PeriodicSampler` polls a probe function at a fixed rate and appends
``(time, value)`` samples to a :class:`~repro.util.timeseries.TimeSeries`.
The cluster PDU (:mod:`repro.cluster.pdu`) is a sampler at 50 Hz, matching
the Dominion PX units used on SystemG in the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import ValidationError
from repro.sim.process import Interrupt
from repro.util.timeseries import TimeSeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["PeriodicSampler"]


class PeriodicSampler:
    """Samples ``probe()`` every ``period`` seconds into a time series.

    Parameters
    ----------
    sim: the simulator to run on.
    probe: zero-argument callable returning the instantaneous value.
    period: sampling period in simulated seconds (e.g. ``0.02`` for 50 Hz).
    start: absolute time of the first sample (default: creation time).

    The sampler runs until :meth:`stop` is called or the simulation ends.
    """

    def __init__(self, sim: "Simulator", probe: Callable[[], float],
                 period: float, start: float | None = None) -> None:
        if period <= 0:
            raise ValidationError("sampling period must be positive")
        self.sim = sim
        self.probe = probe
        self.period = float(period)
        self.series = TimeSeries()
        self._stopped = False
        delay = 0.0 if start is None else max(0.0, start - sim.now)
        self._process = sim.process(self._run(delay))

    def _run(self, initial_delay: float):
        if initial_delay > 0:
            yield self.sim.timeout(initial_delay)
        try:
            while not self._stopped:
                self.series.append(self.sim.now, float(self.probe()))
                yield self.sim.timeout(self.period)
        except Interrupt:
            return

    def stop(self) -> None:
        """Stop sampling; the series keeps all samples taken so far."""
        if not self._stopped:
            self._stopped = True
            if self._process.is_alive:
                self._process.interrupt("sampler stopped")

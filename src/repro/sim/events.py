"""Events and the simulation event queue.

An :class:`Event` is a one-shot future: it can *succeed* with a value or
*fail* with an exception, after which its callbacks run inside the engine
loop.  :class:`EventQueue` is the time-ordered heap the engine drains;
entries at equal times fire in FIFO scheduling order (stable ties), which
keeps runs deterministic.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.engine import Simulator

__all__ = ["Event", "Timeout", "Condition", "AnyOf", "AllOf", "EventQueue"]

_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    States: *pending* -> *triggered* (scheduled to fire) -> *processed*
    (callbacks ran).  ``succeed``/``fail`` move it to triggered exactly once.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value = _PENDING
        self._ok = True

    # -- state inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not have fired yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self._ok

    @property
    def value(self):
        """The success value or failure exception."""
        if self._value is _PENDING:
            raise SimulationError("event value read before trigger")
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value=None, delay: float = 0.0) -> "Event":
        """Mark the event successful; callbacks fire after ``delay``."""
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        self._value = value
        self._ok = True
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Mark the event failed; waiting processes get the exception thrown."""
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self.sim._schedule(self, delay)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when this event fires (immediately if already fired)."""
        if self.callbacks is None:
            # Already processed: run inline so late waiters don't hang.
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    def __init__(self, sim: "Simulator", delay: float, value=None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        self._ok = True
        sim._schedule(self, delay)


class Condition(Event):
    """Base for AnyOf / AllOf combinators over a set of events."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = tuple(events)
        if not self.events:
            self.succeed({})
            return
        self._fired: list[Event] = []
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            self.fail(child.value)
            return
        self._fired.append(child)
        if self._satisfied():
            self.succeed({ev: ev.value for ev in self._fired})

    @property
    def _done(self) -> int:
        return len(self._fired)


class AnyOf(Condition):
    """Fires when any child event fires; value maps fired events to values."""

    def _satisfied(self) -> bool:
        return self._done >= 1


class AllOf(Condition):
    """Fires when every child event has fired; value maps events to values."""

    def _satisfied(self) -> bool:
        return self._done == len(self.events)


class EventQueue:
    """Time-ordered heap of (time, seq, event); stable at equal times."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, event: Event) -> None:
        """Insert ``event`` to fire at ``time``."""
        heapq.heappush(self._heap, (time, self._seq, event))
        self._seq += 1

    def pop(self) -> tuple[float, Event]:
        """Remove and return the earliest ``(time, event)`` pair."""
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        time, _seq, event = heapq.heappop(self._heap)
        return time, event

    def peek_time(self) -> float:
        """Time stamp of the earliest entry."""
        if not self._heap:
            raise SimulationError("peek on empty event queue")
        return self._heap[0][0]

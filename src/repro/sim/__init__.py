"""Discrete-event simulation substrate.

A compact, deterministic process-based simulator in the style of SimPy:
processes are Python generators that ``yield`` events (timeouts, one-shot
events, other processes, or combinators) and are resumed when those events
trigger.  The EDR runtime (:mod:`repro.edr`), the network substrate
(:mod:`repro.net`) and the cluster emulation (:mod:`repro.cluster`) are all
built on this engine.
"""

from repro.sim.events import Event, EventQueue, Timeout, AnyOf, AllOf
from repro.sim.engine import Simulator
from repro.sim.process import Process, Interrupt
from repro.sim.resources import Store, Resource
from repro.sim.monitor import PeriodicSampler

__all__ = [
    "Event",
    "EventQueue",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Simulator",
    "Process",
    "Interrupt",
    "Store",
    "Resource",
    "PeriodicSampler",
]

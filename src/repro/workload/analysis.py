"""Trace analysis: verify a workload exhibits its configured statistics.

Used by tests and by users validating their own traces against the
paper's assumptions (YouTube-like arrival pattern, Zipf popularity,
application request sizes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.workload.requests import RequestTrace

__all__ = ["TraceStats", "analyze", "fit_zipf_exponent",
           "arrival_rate_series"]


@dataclass(frozen=True)
class TraceStats:
    """First-order statistics of a request trace."""

    n_requests: int
    n_clients: int
    span: float
    total_mb: float
    mean_size_mb: float
    mean_rate: float          # requests/second over the span
    zipf_exponent: float      # fitted popularity skew (nan if < 10 objects)
    client_balance: float     # max/mean of per-client request counts

    def render(self) -> str:
        return (f"requests={self.n_requests} clients={self.n_clients} "
                f"span={self.span:.2f}s total={self.total_mb:.1f}MB "
                f"mean_size={self.mean_size_mb:.2f}MB "
                f"rate={self.mean_rate:.2f}/s "
                f"zipf~{self.zipf_exponent:.2f} "
                f"balance={self.client_balance:.2f}")


def fit_zipf_exponent(object_ids, n_grid: int = 200) -> float:
    """MLE fit of the Zipf exponent from observed object ids.

    Grid-searches the discrete-Zipf log-likelihood over s in [0, 3];
    object ids are ranks (0 = most popular), as produced by
    :class:`~repro.workload.youtube.ZipfPopularity`.
    """
    ids = np.asarray(object_ids, dtype=int)
    if ids.size == 0:
        raise ValidationError("no object ids to fit")
    n_objects = int(ids.max()) + 1
    if n_objects < 2:
        return 0.0
    ranks = np.arange(1, n_objects + 1, dtype=float)
    observed = np.log(ids + 1.0)
    best_s, best_ll = 0.0, -np.inf
    for s in np.linspace(0.0, 3.0, n_grid):
        log_z = np.log(np.sum(ranks ** (-s)))
        ll = -s * float(observed.sum()) - ids.size * log_z
        if ll > best_ll:
            best_s, best_ll = s, ll
    return best_s


def arrival_rate_series(trace: RequestTrace, bins: int = 20):
    """Requests/second per time bin — reveals the diurnal shape."""
    if len(trace) == 0:
        raise ValidationError("empty trace")
    if bins < 1:
        raise ValidationError("bins must be >= 1")
    times = np.array([r.arrival for r in trace])
    t0, t1 = times.min(), times.max()
    if t1 <= t0:
        return np.array([float(len(trace))])
    counts, edges = np.histogram(times, bins=bins, range=(t0, t1))
    return counts / np.diff(edges)


def analyze(trace: RequestTrace) -> TraceStats:
    """Compute :class:`TraceStats` for a nonempty trace."""
    if len(trace) == 0:
        raise ValidationError("empty trace")
    sizes = np.array([r.size_mb for r in trace])
    counts: dict[str, int] = {}
    for r in trace:
        counts[r.client] = counts.get(r.client, 0) + 1
    per_client = np.array(list(counts.values()), dtype=float)
    span = trace.span
    object_ids = [r.object_id for r in trace]
    try:
        zipf = fit_zipf_exponent(object_ids) \
            if max(object_ids) >= 9 else float("nan")
    except ValidationError:
        zipf = float("nan")
    return TraceStats(
        n_requests=len(trace),
        n_clients=len(trace.clients),
        span=span,
        total_mb=trace.total_mb(),
        mean_size_mb=float(sizes.mean()),
        mean_rate=len(trace) / span if span > 0 else float("inf"),
        zipf_exponent=zipf,
        client_balance=float(per_client.max() / per_client.mean()),
    )

"""Client populations.

A :class:`ClientPopulation` names the client nodes and assigns each a
traffic weight (how much of the arrival stream it originates).  Weights
default to uniform; a skewed population models hot regions.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ValidationError
from repro.util.validation import check_positive

__all__ = ["ClientPopulation"]


class ClientPopulation:
    """Named clients with request-origination weights."""

    def __init__(self, names: Sequence[str], weights: Sequence[float] | None = None) -> None:
        if len(names) < 1:
            raise ValidationError("need at least one client")
        if len(set(names)) != len(names):
            raise ValidationError("duplicate client names")
        self._names = tuple(str(n) for n in names)
        if weights is None:
            w = np.full(len(self._names), 1.0)
        else:
            w = check_positive(weights, "weights")
            if w.shape != (len(self._names),):
                raise ValidationError("weights length must match names")
        self._probs = w / w.sum()

    @property
    def names(self) -> tuple[str, ...]:
        """Client node names."""
        return self._names

    @property
    def probabilities(self) -> np.ndarray:
        """Per-client origination probability (sums to 1)."""
        return self._probs

    def __len__(self) -> int:
        return len(self._names)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw originating client name(s) for arrivals."""
        idx = rng.choice(len(self._names), size=size, p=self._probs)
        if size is None:
            return self._names[int(idx)]
        return [self._names[int(i)] for i in np.atleast_1d(idx)]

    @classmethod
    def uniform(cls, n: int, prefix: str = "client") -> "ClientPopulation":
        """``n`` equally weighted clients named ``{prefix}{i}``."""
        return cls([f"{prefix}{i}" for i in range(n)])

"""YouTube-like traffic model (Gill et al., IMC'07).

The paper drives its experiments with "the pattern of data-intensive
requests following YouTube commercial workload patterns".  The cited
characterization's first-order properties are:

* a strong *diurnal* arrival-rate cycle (evening peak, early-morning
  trough, peak-to-trough ratio around 2-5x);
* *Zipf-like content popularity* with exponent near 1.

:class:`YoutubeTrafficModel` provides a non-homogeneous Poisson arrival
process (sampled exactly by thinning) with a sinusoidal diurnal rate, and
:class:`ZipfPopularity` provides the object popularity distribution.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ValidationError

__all__ = ["YoutubeTrafficModel", "ZipfPopularity"]

_DAY_SECONDS = 86400.0


class ZipfPopularity:
    """Zipf(s) popularity over a finite catalog of objects.

    ``pmf(k) ∝ 1 / (k+1)**s`` for ``k = 0..n_objects-1``.
    """

    def __init__(self, n_objects: int, exponent: float = 1.0) -> None:
        if n_objects < 1:
            raise ValidationError("catalog needs at least one object")
        if exponent < 0:
            raise ValidationError("Zipf exponent must be nonnegative")
        self.n_objects = int(n_objects)
        self.exponent = float(exponent)
        ranks = np.arange(1, self.n_objects + 1, dtype=float)
        weights = ranks ** (-self.exponent)
        self._pmf = weights / weights.sum()
        self._cdf = np.cumsum(self._pmf)

    @property
    def pmf(self) -> np.ndarray:
        """Probability of each object id, most popular first."""
        return self._pmf

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw object id(s) by inverse-CDF."""
        u = rng.random(size)
        return np.searchsorted(self._cdf, u, side="right")


class YoutubeTrafficModel:
    """Diurnal non-homogeneous Poisson arrival process.

    Instantaneous rate (requests/second):

        rate(t) = base_rate * (1 + amplitude * sin(2*pi*(t/day) + phase))

    Parameters
    ----------
    base_rate: mean arrival rate over a full day.
    amplitude: relative swing in [0, 1); 0.6 gives a ~4x peak/trough
        ratio, matching the cited characterization.
    period: cycle length in seconds (a day by default; experiments often
        compress it so a run covers a full cycle).
    phase: radians offset of the peak.
    """

    def __init__(self, base_rate: float, amplitude: float = 0.6,
                 period: float = _DAY_SECONDS, phase: float = 0.0) -> None:
        if base_rate <= 0:
            raise ValidationError("base_rate must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ValidationError("amplitude must lie in [0, 1)")
        if period <= 0:
            raise ValidationError("period must be positive")
        self.base_rate = float(base_rate)
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.phase = float(phase)

    def rate(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t``."""
        return self.base_rate * (
            1.0 + self.amplitude * math.sin(
                2.0 * math.pi * t / self.period + self.phase))

    @property
    def peak_rate(self) -> float:
        """Upper bound on the instantaneous rate (thinning envelope)."""
        return self.base_rate * (1.0 + self.amplitude)

    def arrivals(self, rng: np.random.Generator, t0: float, t1: float) -> np.ndarray:
        """Exact arrival times in ``[t0, t1)`` by Lewis-Shedler thinning."""
        if t1 < t0:
            raise ValidationError("need t0 <= t1")
        out: list[float] = []
        lam_max = self.peak_rate
        t = t0
        while True:
            t += rng.exponential(1.0 / lam_max)
            if t >= t1:
                break
            if rng.random() * lam_max <= self.rate(t):
                out.append(t)
        return np.asarray(out, dtype=float)

    def expected_count(self, t0: float, t1: float, n_grid: int = 2048) -> float:
        """Integral of the rate over ``[t0, t1]`` (trapezoid on a grid)."""
        if t1 < t0:
            raise ValidationError("need t0 <= t1")
        ts = np.linspace(t0, t1, n_grid)
        rates = self.base_rate * (
            1.0 + self.amplitude * np.sin(
                2.0 * np.pi * ts / self.period + self.phase))
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        return float(trapezoid(rates, ts))

"""Request records and traces."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = ["Request", "RequestTrace"]


@dataclass(frozen=True)
class Request:
    """One client request for a replicated object.

    Attributes
    ----------
    client: requesting client's node name.
    arrival: arrival time in simulated seconds.
    size_mb: requested data volume in MB (``R_c`` contribution).
    app: application tag (``"video"`` / ``"dfs"``).
    object_id: which replicated object is requested (Zipf-popular).
    """

    client: str
    arrival: float
    size_mb: float
    app: str
    object_id: int = 0

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValidationError("arrival time must be nonnegative")
        if self.size_mb <= 0:
            raise ValidationError("request size must be positive")


class RequestTrace:
    """An ordered collection of requests with aggregate views.

    Iterable in arrival order; provides the per-client demand vector
    ``R_c`` the optimization layer consumes.
    """

    def __init__(self, requests: Iterable[Request]) -> None:
        reqs = sorted(requests, key=lambda r: (r.arrival, r.client))
        self._requests: tuple[Request, ...] = tuple(reqs)

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self._requests)

    def __getitem__(self, i: int) -> Request:
        return self._requests[i]

    @property
    def clients(self) -> tuple[str, ...]:
        """Distinct client names, sorted."""
        return tuple(sorted({r.client for r in self._requests}))

    @property
    def span(self) -> float:
        """Time between first and last arrival (0 for <2 requests)."""
        if len(self._requests) < 2:
            return 0.0
        return self._requests[-1].arrival - self._requests[0].arrival

    def total_mb(self) -> float:
        """Total requested volume."""
        return sum(r.size_mb for r in self._requests)

    def demand_vector(self, clients: Sequence[str]) -> np.ndarray:
        """Aggregate demand ``R_c`` (MB) per client, in ``clients`` order.

        Clients absent from the trace get zero demand.
        """
        demand = {c: 0.0 for c in clients}
        for r in self._requests:
            if r.client in demand:
                demand[r.client] += r.size_mb
            else:
                raise ValidationError(
                    f"trace contains unknown client {r.client!r}")
        return np.array([demand[c] for c in clients], dtype=float)

    def window(self, t0: float, t1: float) -> "RequestTrace":
        """Requests with ``t0 <= arrival < t1``."""
        return RequestTrace(r for r in self._requests
                            if t0 <= r.arrival < t1)

    def by_app(self, app: str) -> "RequestTrace":
        """Requests of one application type."""
        return RequestTrace(r for r in self._requests if r.app == app)

"""Application profiles.

The paper evaluates two data-intensive applications (Sec. IV-A-2):

* **video streaming** — ~100 MB per request;
* **distributed file service (DFS)** — ~10 MB per request.

Request sizes get mild lognormal jitter around the nominal size — a
first-order match to the heavy-tailed sizes in the cited YouTube
characterization (Gill et al., IMC'07) without changing the mean workload
the paper specifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError

__all__ = ["ApplicationProfile", "VIDEO_STREAMING", "FILE_SERVICE"]


@dataclass(frozen=True)
class ApplicationProfile:
    """Size distribution and identity of one application.

    Attributes
    ----------
    name: application tag used on :class:`~repro.workload.requests.Request`.
    mean_size_mb: nominal request size.
    size_sigma: lognormal shape parameter for jitter (0 disables jitter).
    """

    name: str
    mean_size_mb: float
    size_sigma: float = 0.25

    def __post_init__(self) -> None:
        if self.mean_size_mb <= 0:
            raise ValidationError("mean request size must be positive")
        if self.size_sigma < 0:
            raise ValidationError("size sigma must be nonnegative")

    def sample_size(self, rng: np.random.Generator) -> float:
        """Draw one request size in MB (mean preserved under jitter)."""
        if self.size_sigma == 0:
            return self.mean_size_mb
        # Lognormal with E[X] = mean: mu = ln(mean) - sigma^2/2.
        mu = np.log(self.mean_size_mb) - self.size_sigma ** 2 / 2.0
        return float(rng.lognormal(mu, self.size_sigma))


#: Video streaming: ~100 MB per request (Sec. IV-A-2).
VIDEO_STREAMING = ApplicationProfile(name="video", mean_size_mb=100.0)

#: Distributed file service: ~10 MB per request (Sec. IV-A-2).
FILE_SERVICE = ApplicationProfile(name="dfs", mean_size_mb=10.0)

"""Workload generation: YouTube-patterned request streams for the two
data-intensive applications the paper evaluates (video streaming at
~100 MB/request, distributed file service at ~10 MB/request)."""

from repro.workload.requests import Request, RequestTrace
from repro.workload.apps import (
    ApplicationProfile,
    VIDEO_STREAMING,
    FILE_SERVICE,
)
from repro.workload.youtube import YoutubeTrafficModel, ZipfPopularity
from repro.workload.clients import ClientPopulation
from repro.workload.generator import WorkloadGenerator

__all__ = [
    "Request",
    "RequestTrace",
    "ApplicationProfile",
    "VIDEO_STREAMING",
    "FILE_SERVICE",
    "YoutubeTrafficModel",
    "ZipfPopularity",
    "ClientPopulation",
    "WorkloadGenerator",
]

"""End-to-end workload generation.

Combines the diurnal arrival process, the client population, the
application size profile and Zipf popularity into a
:class:`~repro.workload.requests.RequestTrace`, plus CSV-ish export /
replay so experiments can pin an exact trace.
"""

from __future__ import annotations

import io

import numpy as np

from repro.errors import ValidationError
from repro.workload.apps import ApplicationProfile
from repro.workload.clients import ClientPopulation
from repro.workload.requests import Request, RequestTrace
from repro.workload.youtube import YoutubeTrafficModel, ZipfPopularity

__all__ = ["WorkloadGenerator"]


class WorkloadGenerator:
    """Generates YouTube-patterned request traces.

    Parameters
    ----------
    traffic: the arrival-rate model.
    clients: who originates requests.
    app: request-size profile (video streaming or DFS).
    popularity: object popularity (defaults to Zipf(1.0) over 1000 objects).
    """

    def __init__(self, traffic: YoutubeTrafficModel, clients: ClientPopulation,
                 app: ApplicationProfile,
                 popularity: ZipfPopularity | None = None) -> None:
        self.traffic = traffic
        self.clients = clients
        self.app = app
        self.popularity = popularity or ZipfPopularity(1000, 1.0)

    def generate(self, rng: np.random.Generator, t0: float = 0.0,
                 t1: float | None = None, *, count: int | None = None) -> RequestTrace:
        """Generate a trace over ``[t0, t1)``, or exactly ``count`` requests.

        Exactly one of ``t1`` / ``count`` must be given.  With ``count``,
        arrivals are drawn from the same process and truncated/extended to
        the requested number (used by the Fig. 9 request-count sweep).
        """
        if (t1 is None) == (count is None):
            raise ValidationError("provide exactly one of t1 or count")
        if t1 is not None:
            times = self.traffic.arrivals(rng, t0, t1)
        else:
            times_list: list[float] = []
            horizon = t0
            # Expand the window until enough arrivals, then truncate.
            chunk = max(1.0, count / self.traffic.base_rate)
            while len(times_list) < count:
                new = self.traffic.arrivals(rng, horizon, horizon + chunk)
                times_list.extend(new.tolist())
                horizon += chunk
            times = np.asarray(times_list[:count])
        n = len(times)
        origins = self.clients.sample(rng, size=n) if n else []
        objects = self.popularity.sample(rng, size=n) if n else []
        requests = [
            Request(client=origins[i], arrival=float(times[i]),
                    size_mb=self.app.sample_size(rng), app=self.app.name,
                    object_id=int(objects[i]))
            for i in range(n)
        ]
        return RequestTrace(requests)

    # -- trace (de)serialization ------------------------------------------------
    @staticmethod
    def dump(trace: RequestTrace) -> str:
        """Serialize a trace to a CSV string (header + one row per request)."""
        buf = io.StringIO()
        buf.write("client,arrival,size_mb,app,object_id\n")
        for r in trace:
            buf.write(f"{r.client},{r.arrival!r},{r.size_mb!r},{r.app},"
                      f"{r.object_id}\n")
        return buf.getvalue()

    @staticmethod
    def load(text: str) -> RequestTrace:
        """Parse a trace produced by :meth:`dump`."""
        lines = [l for l in text.strip().splitlines() if l]
        if not lines or lines[0] != "client,arrival,size_mb,app,object_id":
            raise ValidationError("bad trace header")
        requests = []
        for line in lines[1:]:
            parts = line.split(",")
            if len(parts) != 5:
                raise ValidationError(f"bad trace row: {line!r}")
            requests.append(Request(
                client=parts[0], arrival=float(parts[1]),
                size_mb=float(parts[2]), app=parts[3],
                object_id=int(parts[4])))
        return RequestTrace(requests)

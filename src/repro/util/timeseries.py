"""A small append-friendly time-series container.

Used throughout the cluster emulation for power profiles (watts vs. seconds)
and by the metrics layer for energy integration.  Samples are kept in growing
NumPy buffers (amortized O(1) append) and exposed as views, per the
"views, not copies" guidance for numeric Python.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ValidationError

__all__ = ["TimeSeries"]

_INITIAL_CAPACITY = 64


class TimeSeries:
    """Monotone-time sequence of ``(t, value)`` samples.

    Parameters
    ----------
    times, values:
        Optional initial samples; ``times`` must be nondecreasing.

    Notes
    -----
    * ``append`` enforces nondecreasing time stamps — simulation monitors
      sample forward in time only.
    * :meth:`integrate` uses step ("zero-order hold") integration by
      default, matching how a PDU sample stream is turned into energy:
      the instrument reports the power level that held *since the previous
      sample*.  Trapezoidal integration is available for smooth signals.
    """

    def __init__(self, times: Iterable[float] = (), values: Iterable[float] = ()) -> None:
        t = np.asarray(list(times), dtype=float)
        v = np.asarray(list(values), dtype=float)
        if t.shape != v.shape:
            raise ValidationError("times and values must have equal length")
        if t.size > 1 and np.any(np.diff(t) < 0):
            raise ValidationError("times must be nondecreasing")
        cap = max(_INITIAL_CAPACITY, t.size)
        self._t = np.empty(cap, dtype=float)
        self._v = np.empty(cap, dtype=float)
        self._n = t.size
        self._t[: t.size] = t
        self._v[: t.size] = v

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._n == 0:
            return "TimeSeries(empty)"
        return (f"TimeSeries(n={self._n}, t=[{self._t[0]:g}, "
                f"{self._t[self._n - 1]:g}])")

    @property
    def times(self) -> np.ndarray:
        """View of the time stamps (do not mutate)."""
        return self._t[: self._n]

    @property
    def values(self) -> np.ndarray:
        """View of the sample values (do not mutate)."""
        return self._v[: self._n]

    # -- building -----------------------------------------------------------
    def append(self, t: float, value: float) -> None:
        """Append one sample; ``t`` must be >= the last time stamp."""
        if self._n and t < self._t[self._n - 1]:
            raise ValidationError(
                f"time {t} precedes last sample {self._t[self._n - 1]}")
        if self._n == self._t.size:
            self._grow()
        self._t[self._n] = t
        self._v[self._n] = value
        self._n += 1

    def extend(self, times: Iterable[float], values: Iterable[float]) -> None:
        """Append many samples (pairwise)."""
        for t, v in zip(times, values):
            self.append(t, v)

    def _grow(self) -> None:
        cap = max(_INITIAL_CAPACITY, self._t.size * 2)
        t = np.empty(cap, dtype=float)
        v = np.empty(cap, dtype=float)
        t[: self._n] = self._t[: self._n]
        v[: self._n] = self._v[: self._n]
        self._t, self._v = t, v

    # -- analysis -----------------------------------------------------------
    def integrate(self, method: str = "step") -> float:
        """Integral of value over time.

        ``method="step"`` holds each sample until the next time stamp
        (zero-order hold; the last sample contributes nothing).
        ``method="trapezoid"`` uses the trapezoid rule.
        """
        if self._n < 2:
            return 0.0
        t = self._t[: self._n]
        v = self._v[: self._n]
        dt = np.diff(t)
        if method == "step":
            return float(np.sum(v[:-1] * dt))
        if method == "trapezoid":
            trapezoid = getattr(np, "trapezoid", None) or np.trapz
            return float(trapezoid(v, t))
        raise ValidationError(f"unknown integration method {method!r}")

    def integrate_between(self, t0: float, t1: float) -> float:
        """Exact zero-order-hold integral over ``[t0, t1]``.

        Unlike ``window(...).integrate("step")`` this accounts for the
        partial spans at both ends: each sample's value holds until the
        next sample (or ``t1``), and time before the first sample
        contributes zero.
        """
        if t1 < t0:
            raise ValidationError("integrate_between requires t0 <= t1")
        if self._n == 0 or t1 <= self._t[0]:
            return 0.0
        t = self._t[: self._n]
        v = self._v[: self._n]
        start = max(t0, float(t[0]))
        # Breakpoints: start, interior sample times, end.
        lo = int(np.searchsorted(t, start, side="right"))
        hi = int(np.searchsorted(t, t1, side="left"))
        points = np.concatenate(([start], t[lo:hi], [t1]))
        # Value held on [points[i], points[i+1]) is value_at(points[i]).
        idx = np.clip(np.searchsorted(t, points[:-1], side="right") - 1,
                      0, self._n - 1)
        return float(np.sum(v[idx] * np.diff(points)))

    def mean(self) -> float:
        """Time-weighted mean value (step interpretation).

        Falls back to the arithmetic mean when the series spans zero time.
        """
        if self._n == 0:
            raise ValidationError("mean of empty TimeSeries")
        span = self._t[self._n - 1] - self._t[0]
        if span <= 0:
            return float(np.mean(self._v[: self._n]))
        return self.integrate("step") / span

    def max(self) -> float:
        """Maximum sample value."""
        if self._n == 0:
            raise ValidationError("max of empty TimeSeries")
        return float(np.max(self._v[: self._n]))

    def min(self) -> float:
        """Minimum sample value."""
        if self._n == 0:
            raise ValidationError("min of empty TimeSeries")
        return float(np.min(self._v[: self._n]))

    def value_at(self, t: float) -> float:
        """Sample value holding at time ``t`` (zero-order hold).

        Returns the value of the latest sample with time stamp ``<= t``.
        """
        if self._n == 0:
            raise ValidationError("value_at on empty TimeSeries")
        idx = int(np.searchsorted(self._t[: self._n], t, side="right")) - 1
        if idx < 0:
            raise ValidationError(f"time {t} precedes first sample")
        return float(self._v[idx])

    def window(self, t0: float, t1: float) -> "TimeSeries":
        """Samples with ``t0 <= t < t1`` as a new TimeSeries."""
        if t1 < t0:
            raise ValidationError("window requires t0 <= t1")
        t = self._t[: self._n]
        mask = (t >= t0) & (t < t1)
        return TimeSeries(t[mask], self._v[: self._n][mask])

    def resample(self, period: float) -> "TimeSeries":
        """Zero-order-hold resample onto a uniform grid of ``period`` seconds."""
        if period <= 0:
            raise ValidationError("period must be positive")
        if self._n == 0:
            return TimeSeries()
        t = self._t[: self._n]
        grid = np.arange(t[0], t[-1] + period * 0.5, period)
        idx = np.clip(np.searchsorted(t, grid, side="right") - 1, 0, self._n - 1)
        return TimeSeries(grid, self._v[: self._n][idx])

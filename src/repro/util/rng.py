"""Deterministic random-number streams.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator` obtained through :class:`RngFactory`, which
derives independent child streams from a single root seed using NumPy's
``SeedSequence`` spawning.  Two runs with the same root seed therefore
produce bit-identical traces regardless of the order in which components
are constructed, because children are keyed by *name* rather than by
creation order.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["RngFactory", "make_rng"]


def _key_to_ints(key: str) -> list[int]:
    """Map a stream name to a stable list of 32-bit integers."""
    data = key.encode("utf-8")
    # Pack bytes into uint32 words; pad with the length to avoid collisions
    # between e.g. "ab" + padding and "ab\x00\x00".
    words = [len(data)]
    for i in range(0, len(data), 4):
        chunk = data[i:i + 4].ljust(4, b"\x00")
        words.append(int.from_bytes(chunk, "little"))
    return words


def make_rng(seed: int | None = 0) -> np.random.Generator:
    """Return a fresh :class:`numpy.random.Generator` for ``seed``."""
    return np.random.default_rng(seed)


class RngFactory:
    """Derives named, independent random streams from one root seed.

    Parameters
    ----------
    seed:
        Root seed.  ``None`` gives OS entropy (not reproducible); every
        experiment in this repository passes an explicit integer.

    Examples
    --------
    >>> f = RngFactory(1234)
    >>> a = f.stream("workload")
    >>> b = f.stream("prices")
    >>> a is not b
    True
    >>> f2 = RngFactory(1234)
    >>> float(a.random()) == float(f2.stream("workload").random())
    True
    """

    def __init__(self, seed: int | None = 0) -> None:
        self._seed = seed
        self._root = np.random.SeedSequence(seed)

    @property
    def seed(self) -> int | None:
        """The root seed this factory was constructed with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return a generator for the named stream.

        Calling ``stream`` twice with the same name returns two generators
        with identical state (same sequence), so components should call it
        once and keep the result.
        """
        child = np.random.SeedSequence(
            entropy=self._root.entropy,
            spawn_key=tuple(self._root.spawn_key) + tuple(_key_to_ints(name)),
        )
        return np.random.default_rng(child)

    def streams(self, names: Iterable[str]) -> dict[str, np.random.Generator]:
        """Return a dict of named streams, one per entry of ``names``."""
        return {n: self.stream(n) for n in names}

    def child(self, name: str) -> "RngFactory":
        """Return a sub-factory whose streams are namespaced under ``name``."""
        sub = RngFactory.__new__(RngFactory)
        sub._seed = self._seed
        sub._root = np.random.SeedSequence(
            entropy=self._root.entropy,
            spawn_key=tuple(_key_to_ints("ns:" + name)),
        )
        return sub

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(seed={self._seed!r})"

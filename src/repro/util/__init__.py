"""Shared utilities: RNG, time series, validation, stats, tables, CPUs."""

from repro.util.cpus import available_cpus, resolve_workers
from repro.util.rng import RngFactory, make_rng
from repro.util.timeseries import TimeSeries
from repro.util.validation import (
    check_finite,
    check_nonnegative,
    check_positive,
    check_probability,
    check_shape,
)
from repro.util.stats import Summary, summarize, percentile
from repro.util.tables import render_table, render_series

__all__ = [
    "available_cpus",
    "resolve_workers",
    "RngFactory",
    "make_rng",
    "TimeSeries",
    "check_finite",
    "check_nonnegative",
    "check_positive",
    "check_probability",
    "check_shape",
    "Summary",
    "summarize",
    "percentile",
    "render_table",
    "render_series",
]

"""ASCII sparklines for rendering time series in terminal reports.

The benchmark harness is terminal-first; the paper's Figs. 3-4 are
per-replica power *time series*, so the reports render each profile as a
sparkline row in addition to the summary statistics.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.util.timeseries import TimeSeries

__all__ = ["sparkline", "profile_panel"]

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 60, lo: float | None = None,
              hi: float | None = None) -> str:
    """Render ``values`` as a fixed-width unicode sparkline.

    Values are bucketed to ``width`` columns (bucket mean) and scaled
    into ``[lo, hi]`` (data range by default).
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return " " * width
    if width < 1:
        raise ValidationError("width must be >= 1")
    if arr.size >= width:
        # Bucket means; with size >= width every bucket is nonempty.
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        cols = np.array([arr[edges[i]:edges[i + 1]].mean()
                         for i in range(width)])
    else:
        # Sample-and-hold: stretch the few points across the width.
        pick = np.minimum((np.arange(width) * arr.size) // width,
                          arr.size - 1)
        cols = arr[pick]
    cols = cols.astype(float)
    lo = float(np.nanmin(cols)) if lo is None else float(lo)
    hi = float(np.nanmax(cols)) if hi is None else float(hi)
    if hi <= lo:
        return _BARS[1] * width
    idx = np.clip(((cols - lo) / (hi - lo) * (len(_BARS) - 1)).round(),
                  0, len(_BARS) - 1).astype(int)
    return "".join(_BARS[i] for i in idx)


def profile_panel(profiles: dict[str, TimeSeries], width: int = 60,
                  lo: float | None = None, hi: float | None = None,
                  title: str | None = None) -> str:
    """Render several named time series as aligned sparkline rows.

    All rows share one vertical scale so shapes are comparable, matching
    how the paper plots all eight replicas on common axes.
    """
    if not profiles:
        raise ValidationError("no profiles to render")
    if lo is None:
        lo = min(s.min() for s in profiles.values() if len(s))
    if hi is None:
        hi = max(s.max() for s in profiles.values() if len(s))
    name_w = max(len(n) for n in profiles)
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'':{name_w}}  scale: {lo:.1f} .. {hi:.1f} W")
    for name, series in profiles.items():
        spark = sparkline(series.values, width=width, lo=lo, hi=hi)
        lines.append(f"{name:>{name_w}}  {spark}")
    return "\n".join(lines)

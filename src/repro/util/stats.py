"""Summary statistics for experiment reporting."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError

__all__ = ["Summary", "summarize", "percentile"]


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    n: int
    mean: float
    std: float
    min: float
    p50: float
    p95: float
    p99: float
    max: float

    def __str__(self) -> str:
        return (f"n={self.n} mean={self.mean:.4g} std={self.std:.4g} "
                f"min={self.min:.4g} p50={self.p50:.4g} p95={self.p95:.4g} "
                f"p99={self.p99:.4g} max={self.max:.4g}")


def percentile(sample, q: float) -> float:
    """The ``q``-th percentile (0..100) of ``sample`` (linear interpolation)."""
    arr = np.asarray(sample, dtype=float)
    if arr.size == 0:
        raise ValidationError("percentile of empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValidationError("percentile q must lie in [0, 100]")
    return float(np.percentile(arr, q))


def summarize(sample) -> Summary:
    """Compute a :class:`Summary` of a nonempty sample."""
    arr = np.asarray(sample, dtype=float)
    if arr.size == 0:
        raise ValidationError("summarize of empty sample")
    return Summary(
        n=int(arr.size),
        mean=float(np.mean(arr)),
        std=float(np.std(arr)),
        min=float(np.min(arr)),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
        max=float(np.max(arr)),
    )

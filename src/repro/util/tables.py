"""Plain-text rendering of tables and figure series.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_table", "render_series"]


def _fmt(value, ndigits: int = 4) -> str:
    if isinstance(value, float):
        return f"{value:.{ndigits}g}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str | None = None, ndigits: int = 4) -> str:
    """Render rows as a fixed-width ASCII table.

    Parameters
    ----------
    headers: column names.
    rows: sequences of cells, one per row; floats are formatted to
        ``ndigits`` significant digits.
    title: optional caption printed above the table.
    """
    cells = [[_fmt(c, ndigits) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in cells:
        out.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def render_series(series: Mapping[str, Sequence[float]],
                  x: Sequence, x_label: str = "x",
                  title: str | None = None, ndigits: int = 4) -> str:
    """Render several named y-series against a shared x-axis as a table."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, xv in enumerate(x):
        row = [xv]
        for name in series:
            ys = series[name]
            row.append(ys[i] if i < len(ys) else float("nan"))
        rows.append(row)
    return render_table(headers, rows, title=title, ndigits=ndigits)

"""Argument-validation helpers.

Numerical code fails late and confusingly when fed NaNs, negative
capacities or mis-shaped matrices; these helpers make public entry points
fail early with a uniform error type (:class:`repro.errors.ValidationError`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "check_finite",
    "check_nonnegative",
    "check_positive",
    "check_probability",
    "check_shape",
    "as_float_array",
]


def as_float_array(x, name: str = "array") -> np.ndarray:
    """Convert ``x`` to a float64 ndarray, rejecting non-numeric input."""
    try:
        arr = np.asarray(x, dtype=float)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} is not numeric: {exc}") from exc
    return arr


def check_finite(x, name: str = "value") -> np.ndarray:
    """Require every element of ``x`` to be finite; return it as ndarray."""
    arr = as_float_array(x, name)
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinity")
    return arr


def check_nonnegative(x, name: str = "value") -> np.ndarray:
    """Require ``x`` finite and elementwise ``>= 0``; return it as ndarray."""
    arr = check_finite(x, name)
    if np.any(arr < 0):
        raise ValidationError(f"{name} must be nonnegative, got min "
                              f"{float(arr.min())}")
    return arr


def check_positive(x, name: str = "value") -> np.ndarray:
    """Require ``x`` finite and elementwise ``> 0``; return it as ndarray."""
    arr = check_finite(x, name)
    if np.any(arr <= 0):
        raise ValidationError(f"{name} must be strictly positive, got min "
                              f"{float(arr.min())}")
    return arr


def check_probability(x, name: str = "value") -> float:
    """Require scalar ``x`` in ``[0, 1]``; return it as float."""
    val = float(check_finite(x, name))
    if not 0.0 <= val <= 1.0:
        raise ValidationError(f"{name} must lie in [0, 1], got {val}")
    return val


def check_shape(x, shape: Sequence[int], name: str = "array") -> np.ndarray:
    """Require ``x`` to have exactly ``shape``; return it as ndarray.

    A ``-1`` in ``shape`` matches any extent along that axis.
    """
    arr = as_float_array(x, name)
    if arr.ndim != len(shape):
        raise ValidationError(
            f"{name} must have {len(shape)} dimensions, got {arr.ndim}")
    for axis, (have, want) in enumerate(zip(arr.shape, shape)):
        if want != -1 and have != want:
            raise ValidationError(
                f"{name} axis {axis} must have extent {want}, got {have}")
    return arr

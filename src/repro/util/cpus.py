"""CPU-budget helpers for sizing worker pools.

``os.cpu_count()`` reports the machine, not the process: under a
cgroup/affinity restriction (CI runners, containers, ``taskset``) it
happily over-reports, and a pool sized from it oversubscribes the few
cores the scheduler will actually grant.  Pool sizing throughout the
repo goes through :func:`available_cpus`, which prefers the scheduling
affinity mask when the platform exposes one.
"""

from __future__ import annotations

import os

__all__ = ["available_cpus", "resolve_workers"]


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware, >= 1)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # platforms without affinity masks
        return max(1, os.cpu_count() or 1)


def resolve_workers(n_tasks: int, max_workers: int | None = None) -> int:
    """Worker count for ``n_tasks`` parallel tasks under the CPU budget.

    ``max_workers`` caps the pool explicitly (a runtime knob); ``None``
    defers to :func:`available_cpus`.  Never below 1, never above
    ``n_tasks`` — idle workers only cost startup time.
    """
    budget = int(max_workers) if max_workers is not None \
        else available_cpus()
    return max(1, min(int(n_tasks), budget))

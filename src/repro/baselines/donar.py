"""DONAR reimplementation (Wendell et al., SIGCOMM 2010).

DONAR is the best prior *decentralized* replica-selection system and the
paper's performance yardstick (Fig. 9).  A set of mapping nodes divides
the client population; each node repeatedly solves a local optimization
given the *aggregate* loads contributed by the other mapping nodes —
shared through small summary messages — and the scheme converges to the
global optimum of a convex program.  Crucially for this paper, DONAR's
objective is *network performance* (latency-weighted assignment plus a
split-deviation penalty under bandwidth caps); electricity prices do not
appear, which is why EDR beats it on cost while matching its speed.

This module implements DONAR's decomposition in matrix form:

    minimize  sum_{c,n} P[c,n] * cost[c,n]
              + (lam/2) * sum_n (L_n - w_n * S)^2
              + (rho/2) * sum_n max(0, L_n - B_n)^2
    s.t.      P >= 0 on mask,  sum_n P[c,n] = R_c

where ``L_n = sum_c P[c,n]``, ``S = sum_c R_c`` and ``w`` are the
operator's split weights (capacity-proportional by default).  Each mapping
node updates only its own clients' rows by projected gradient, Gauss-
Seidel style across nodes, matching DONAR's per-node local solves.
"""

from __future__ import annotations

import numpy as np

from repro.core.projection import project_demands
from repro.core.solution import Solution
from repro.errors import InfeasibleProblemError, ValidationError
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["DonarSolver", "solve_donar"]


class DonarSolver:
    """Decentralized mapping-node execution of DONAR's update rule.

    Parameters
    ----------
    cost: (C, N) per-unit assignment cost — normally the client-replica
        latency matrix.
    demands, capacities: the same ``R`` / ``B`` vectors EDR uses.
    mask: latency-eligibility mask.
    split_weights: operator split preferences ``w`` (sum to 1); default
        proportional to capacity.
    n_mapping_nodes: how many DONAR mapping nodes share the client set.
    lam: split-deviation penalty weight.
    rho: capacity penalty weight.
    sweeps: Gauss-Seidel sweeps over the mapping nodes.
    inner_steps: projected-gradient steps per local solve.
    """

    method = "donar"

    def __init__(self, cost, demands, capacities, mask=None,
                 split_weights=None, n_mapping_nodes: int = 3,
                 lam: float = 1.0, rho: float = 50.0,
                 sweeps: int = 40, inner_steps: int = 25) -> None:
        self.cost = check_nonnegative(cost, "cost")
        if self.cost.ndim != 2:
            raise ValidationError("cost must be a (C, N) matrix")
        C, N = self.cost.shape
        self.R = check_nonnegative(demands, "demands")
        if self.R.shape != (C,):
            raise ValidationError("demands length mismatch")
        self.B = check_positive(capacities, "capacities")
        if self.B.shape != (N,):
            raise ValidationError("capacities length mismatch")
        if mask is None:
            self.mask = np.ones((C, N), dtype=bool)
        else:
            self.mask = np.asarray(mask, dtype=bool)
            if self.mask.shape != (C, N):
                raise ValidationError("mask shape mismatch")
        if split_weights is None:
            w = self.B / self.B.sum()
        else:
            w = check_nonnegative(split_weights, "split_weights")
            if w.shape != (N,):
                raise ValidationError("split_weights length mismatch")
            total = w.sum()
            if total <= 0:
                raise ValidationError("split_weights must not be all zero")
            w = w / total
        self.w = w
        if n_mapping_nodes < 1:
            raise ValidationError("need at least one mapping node")
        self.n_mapping_nodes = int(n_mapping_nodes)
        if lam < 0 or rho < 0:
            raise ValidationError("penalty weights must be nonnegative")
        self.lam = float(lam)
        self.rho = float(rho)
        self.sweeps = int(sweeps)
        self.inner_steps = int(inner_steps)
        # Client partition: round-robin over mapping nodes (DONAR hashes).
        self.partition = [
            np.arange(C)[np.arange(C) % self.n_mapping_nodes == m]
            for m in range(self.n_mapping_nodes)
        ]

    # -- objective pieces ------------------------------------------------------
    def _objective(self, P: np.ndarray) -> float:
        L = P.sum(axis=0)
        S = self.R.sum()
        val = float(np.sum(P * self.cost))
        val += 0.5 * self.lam * float(np.sum((L - self.w * S) ** 2))
        over = np.maximum(L - self.B, 0.0)
        val += 0.5 * self.rho * float(np.sum(over ** 2))
        return val

    def _grad_rows(self, P: np.ndarray, rows: np.ndarray) -> np.ndarray:
        L = P.sum(axis=0)
        S = self.R.sum()
        g_load = self.lam * (L - self.w * S) \
            + self.rho * np.maximum(L - self.B, 0.0)
        return self.cost[rows] + g_load[None, :]

    # -- main loop ----------------------------------------------------------------
    def sweeps_iter(self, initial: np.ndarray | None = None):
        """Generator over Gauss-Seidel sweeps (the runtime steps this).

        Yields ``(sweep_index, P, objective)`` after every sweep; stops at
        convergence or after ``self.sweeps`` sweeps.  ``P`` is the live
        allocation (copy before mutating).
        """
        C, N = self.cost.shape
        for c in range(C):
            if self.R[c] > 0 and not self.mask[c].any():
                raise InfeasibleProblemError(
                    f"client {c} has no eligible replica")
        if initial is None:
            P = np.zeros((C, N))
            counts = self.mask.sum(axis=1)
            for c in range(C):
                if counts[c]:
                    P[c, self.mask[c]] = self.R[c] / counts[c]
        else:
            P = np.asarray(initial, dtype=float).copy()
        # Gradient Lipschitz bound for the load terms: (lam+rho)*C per entry.
        step = 1.0 / ((self.lam + self.rho) * max(C, 1) + 1e-12)
        prev_obj = self._objective(P)
        for k in range(self.sweeps):
            for rows in self.partition:
                if rows.size == 0:
                    continue
                for _ in range(self.inner_steps):
                    g = self._grad_rows(P, rows)
                    cand = P[rows] - step * g
                    P[rows] = project_demands(cand, self.R[rows],
                                              self.mask[rows])
            obj = self._objective(P)
            yield k, P, obj
            if abs(prev_obj - obj) <= 1e-9 * max(1.0, prev_obj):
                return
            prev_obj = obj

    def solve(self, initial: np.ndarray | None = None) -> Solution:
        """Run the mapping-node decomposition; returns a :class:`Solution`."""
        C, N = self.cost.shape
        history = []
        messages = 0
        comm_floats = 0
        P = np.zeros((C, N))
        for _k, P, obj in self.sweeps_iter(initial):
            history.append(obj)
            # Each mapping node publishes its per-replica aggregate.
            active = sum(1 for rows in self.partition if rows.size)
            messages += active * (self.n_mapping_nodes - 1)
            comm_floats += active * (self.n_mapping_nodes - 1) * N
        if not history:
            history = [self._objective(P)]
        # Final capacity rounding (the penalty leaves tiny overshoot).
        L = P.sum(axis=0)
        over = L > self.B
        if over.any():
            scale = np.where(over, self.B / np.maximum(L, 1e-300), 1.0)
            P = project_demands(P * scale, self.R, self.mask)
        return Solution(
            allocation=P,
            objective=history[-1],
            iterations=len(history),
            converged=len(history) < self.sweeps,
            objective_history=history,
            messages=messages,
            comm_floats=comm_floats,
            method=self.method,
        )


def solve_donar(cost, demands, capacities, **kwargs) -> Solution:
    """One-call convenience wrapper around :class:`DonarSolver`."""
    return DonarSolver(cost, demands, capacities, **kwargs).solve()

"""Round-Robin replica selection — the paper's baseline.

Requests (or, in matrix form, equal demand shares) are assigned cyclically
over each client's latency-eligible replicas, skipping replicas whose
bandwidth cap is already saturated.  Energy prices are ignored entirely —
that ignorance is precisely the cost gap the paper's Figs. 6-8 quantify.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import ReplicaSelectionProblem
from repro.core.solution import Solution
from repro.errors import InfeasibleProblemError
from repro.workload.requests import Request

__all__ = ["RoundRobinScheduler", "solve_round_robin"]


class RoundRobinScheduler:
    """Stateful per-request round-robin over eligible replicas.

    Used by the runtime simulation: each incoming request is handed whole
    to the next eligible replica in cyclic order (capacity permitting).
    """

    def __init__(self, replica_names: list[str], capacities: np.ndarray,
                 eligibility: dict[str, np.ndarray] | None = None) -> None:
        self.replicas = list(replica_names)
        self.capacities = np.asarray(capacities, dtype=float)
        self.eligibility = eligibility or {}
        self._cursor = 0
        self._committed = np.zeros(len(self.replicas))

    def assign(self, request: Request) -> str:
        """Pick the next replica for ``request`` (whole-request assignment).

        Walks the ring from the cursor, skipping ineligible replicas and
        replicas whose committed load would exceed capacity; if all are
        saturated, the least-loaded eligible replica is used (graceful
        overload rather than rejection, matching a best-effort server).
        """
        n = len(self.replicas)
        eligible = self.eligibility.get(request.client,
                                        np.ones(n, dtype=bool))
        if not eligible.any():
            raise InfeasibleProblemError(
                f"client {request.client} has no eligible replica")
        for offset in range(n):
            idx = (self._cursor + offset) % n
            if not eligible[idx]:
                continue
            if self._committed[idx] + request.size_mb <= self.capacities[idx]:
                self._cursor = (idx + 1) % n
                self._committed[idx] += request.size_mb
                return self.replicas[idx]
        # Every eligible replica saturated: least-loaded fallback.
        loads = np.where(eligible, self._committed, np.inf)
        idx = int(np.argmin(loads))
        self._cursor = (idx + 1) % n
        self._committed[idx] += request.size_mb
        return self.replicas[idx]

    def release(self, replica: str, size_mb: float) -> None:
        """Return committed capacity when a transfer finishes."""
        idx = self.replicas.index(replica)
        self._committed[idx] = max(0.0, self._committed[idx] - size_mb)


def solve_round_robin(problem: ReplicaSelectionProblem) -> Solution:
    """Matrix-form round-robin allocation for the optimization benchmarks.

    Each client's demand is split equally across its eligible replicas —
    the steady-state load pattern cyclic assignment produces — then
    repaired onto capacity.
    """
    problem.require_feasible()
    P = problem.uniform_allocation()
    P = problem.repair(P)
    return Solution(
        allocation=P,
        objective=problem.objective(P),
        iterations=1,
        converged=True,
        method="round_robin",
    )

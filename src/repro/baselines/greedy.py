"""Price-greedy waterfill — an ablation baseline.

A naive centralized "energy-aware" heuristic: pour every client's demand
into its eligible replicas in increasing order of electricity price,
filling each to capacity before moving on.  It sees prices but ignores the
convex network-energy term, so it over-concentrates load; the gap between
greedy and LDDM isolates the value of actually solving problem (2) rather
than ranking by price.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import ReplicaSelectionProblem
from repro.core.solution import Solution

__all__ = ["solve_price_greedy"]


def solve_price_greedy(problem: ReplicaSelectionProblem) -> Solution:
    """Waterfill demand into price-sorted eligible replicas."""
    problem.require_feasible()
    data = problem.data
    C, N = data.shape
    order = np.argsort(data.u * data.alpha, kind="stable")
    residual = data.B.astype(float).copy()
    P = np.zeros((C, N))
    # Clients in decreasing demand: big demands get first pick of cheap
    # capacity, mirroring how a greedy operator would triage.
    for c in sorted(range(C), key=lambda c: -data.R[c]):
        need = float(data.R[c])
        for n in order:
            if need <= 0:
                break
            if not data.mask[c, n] or residual[n] <= 0:
                continue
            take = min(need, residual[n])
            P[c, n] += take
            residual[n] -= take
            need -= take
        if need > 1e-9:
            # Feasibility certified above, so this is float residue only;
            # push the remainder onto the least-loaded eligible replica.
            eligible = np.nonzero(data.mask[c])[0]
            n = eligible[int(np.argmax(residual[eligible]))]
            P[c, n] += need
    P = problem.repair(P)
    return Solution(
        allocation=P,
        objective=problem.objective(P),
        iterations=1,
        converged=True,
        method="price_greedy",
    )

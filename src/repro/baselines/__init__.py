"""Baseline replica-selection algorithms the paper compares against:
Round-Robin (energy-oblivious) and DONAR (performance-aware, decentralized,
energy-oblivious), plus a price-greedy waterfill ablation."""

from repro.baselines.round_robin import RoundRobinScheduler, solve_round_robin
from repro.baselines.donar import DonarSolver, solve_donar
from repro.baselines.greedy import solve_price_greedy

__all__ = [
    "RoundRobinScheduler",
    "solve_round_robin",
    "DonarSolver",
    "solve_donar",
    "solve_price_greedy",
]

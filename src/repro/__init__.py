"""repro — a complete reproduction of *EDR: An Energy-Aware Runtime Load
Distribution System for Data-Intensive Applications in the Cloud*
(Li, Song, Bezakova, Cameron; IEEE CLUSTER 2013).

Three entry levels:

* **Optimization only** — :class:`repro.core.ProblemData` /
  :class:`repro.core.ReplicaSelectionProblem` with
  :func:`repro.core.solve_lddm`, :func:`repro.core.solve_cdpsm`,
  :func:`repro.core.solve_reference`.
* **Full runtime** — :class:`repro.edr.system.EDRSystem` runs the
  emulated cluster, agents, power meters, and fault-tolerance ring.
* **Service** — :func:`repro.serve` starts the control-plane HTTP
  server; :func:`repro.connect` returns a typed client for one.
* **Paper figures** — ``python -m repro.experiments <fig...>``.

The three promoted entry points::

    solution = repro.solve(problem)          # optimize in process
    server = repro.serve()                   # expose the control plane
    client = repro.connect(server.url)       # speak to one over HTTP
"""

from repro.core import (
    ProblemData,
    ReplicaParams,
    ReplicaSelectionProblem,
    Solution,
    solve,
    solve_cdpsm,
    solve_lddm,
    solve_reference,
)
from repro.edr.system import (
    EDRSystem,
    FaultConfig,
    NetConfig,
    RuntimeConfig,
    SolverOptions,
)
from repro.errors import (
    ConvergenceError,
    InfeasibleProblemError,
    ReproError,
    ServiceError,
    SimulationError,
    ValidationError,
    VersionMismatchError,
    WireFormatError,
)
from repro.service import (
    EDRClient,
    ReplicaAgent,
    ServiceConfig,
    connect,
    serve,
)

__version__ = "1.0.0"

__all__ = [
    # optimization core
    "ProblemData",
    "ReplicaParams",
    "ReplicaSelectionProblem",
    "Solution",
    "solve",
    "solve_cdpsm",
    "solve_lddm",
    "solve_reference",
    # runtime
    "EDRSystem",
    "RuntimeConfig",
    "SolverOptions",
    "NetConfig",
    "FaultConfig",
    # service
    "serve",
    "connect",
    "EDRClient",
    "ReplicaAgent",
    "ServiceConfig",
    # errors
    "ReproError",
    "ValidationError",
    "InfeasibleProblemError",
    "ConvergenceError",
    "SimulationError",
    "ServiceError",
    "WireFormatError",
    "VersionMismatchError",
    "__version__",
]

"""repro — a complete reproduction of *EDR: An Energy-Aware Runtime Load
Distribution System for Data-Intensive Applications in the Cloud*
(Li, Song, Bezakova, Cameron; IEEE CLUSTER 2013).

Three entry levels:

* **Optimization only** — :class:`repro.core.ProblemData` /
  :class:`repro.core.ReplicaSelectionProblem` with
  :func:`repro.core.solve_lddm`, :func:`repro.core.solve_cdpsm`,
  :func:`repro.core.solve_reference`.
* **Full runtime** — :class:`repro.edr.system.EDRSystem` runs the
  emulated cluster, agents, power meters, and fault-tolerance ring.
* **Paper figures** — ``python -m repro.experiments <fig...>``.
"""

from repro.core import (
    ProblemData,
    ReplicaParams,
    ReplicaSelectionProblem,
    Solution,
    solve_cdpsm,
    solve_lddm,
    solve_reference,
)
from repro.edr.system import EDRSystem, RuntimeConfig
from repro.errors import (
    ConvergenceError,
    InfeasibleProblemError,
    ReproError,
    SimulationError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "ProblemData",
    "ReplicaParams",
    "ReplicaSelectionProblem",
    "Solution",
    "solve_cdpsm",
    "solve_lddm",
    "solve_reference",
    "EDRSystem",
    "RuntimeConfig",
    "ReproError",
    "ValidationError",
    "InfeasibleProblemError",
    "ConvergenceError",
    "SimulationError",
    "__version__",
]

"""Node power model.

Instantaneous node power is a weighted combination of a linear server
(CPU) term and a degree-``gamma`` polynomial network term over NIC
utilization — the physical-layer mirror of the paper's Eq. (1):

    P(u_cpu, u_net) = idle_w + cpu_w * u_cpu + net_w * u_net**gamma

Calibration follows the SystemG power profiles in Figs. 3-4: ~215 W idle,
low-220s during the replica-selection (compute+coordination) phase, and
peaks near 240 W when a node computes while saturating its NIC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["PowerModel", "SYSTEMG_POWER_MODEL"]


@dataclass(frozen=True)
class PowerModel:
    """Maps (cpu utilization, NIC utilization) to watts.

    Attributes
    ----------
    idle_w: baseline draw with the node powered on but idle.
    cpu_w: additional draw at 100% CPU (linear in utilization — the
        paper's server-term assumption, Sec. III-A-1).
    net_w: additional draw at 100% NIC utilization.
    gamma: polynomial degree of the network term (Sec. III-A-2; "Cubic"
        for the data-intensive workloads, i.e. gamma = 3).
    """

    idle_w: float = 215.0
    cpu_w: float = 10.0
    net_w: float = 15.0
    gamma: float = 3.0

    def __post_init__(self) -> None:
        if self.idle_w < 0 or self.cpu_w < 0 or self.net_w < 0:
            raise ValidationError("power coefficients must be nonnegative")
        if self.gamma < 1:
            raise ValidationError("gamma must be >= 1 (convexity)")

    def power(self, cpu_util: float, net_util: float) -> float:
        """Instantaneous watts at the given utilizations (clipped to [0,1])."""
        u_cpu = min(1.0, max(0.0, cpu_util))
        u_net = min(1.0, max(0.0, net_util))
        return self.idle_w + self.cpu_w * u_cpu + self.net_w * u_net ** self.gamma

    @property
    def peak_w(self) -> float:
        """Watts at full CPU and NIC utilization."""
        return self.idle_w + self.cpu_w + self.net_w


#: Calibrated to the runtime power profiles of Figs. 3-4 (SystemG nodes).
SYSTEMG_POWER_MODEL = PowerModel(idle_w=215.0, cpu_w=10.0, net_w=15.0, gamma=3.0)

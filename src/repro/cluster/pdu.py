"""Simulated intelligent PDU (Dominion PX style).

Samples a node's instantaneous power at a fixed rate — the paper reports
"approximately 50 times/sec" — and accumulates the runtime power profile
(Figs. 3-4) plus integrated energy in joules.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.node import ReplicaNode
from repro.errors import ValidationError
from repro.sim.monitor import PeriodicSampler
from repro.util.timeseries import TimeSeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["PowerSampler"]

#: Paper's PDU rate: ~50 samples/sec.
DEFAULT_RATE_HZ = 50.0


class PowerSampler:
    """50 Hz power meter attached to one replica node."""

    def __init__(self, sim: "Simulator", node: ReplicaNode,
                 rate_hz: float = DEFAULT_RATE_HZ) -> None:
        if rate_hz <= 0:
            raise ValidationError("PDU rate must be positive")
        self.node = node
        self.rate_hz = float(rate_hz)
        self._sampler = PeriodicSampler(sim, node.power, period=1.0 / rate_hz)

    @property
    def profile(self) -> TimeSeries:
        """The power profile sampled so far (watts vs. seconds)."""
        return self._sampler.series

    def energy_joules(self) -> float:
        """Energy integrated from the sampled profile (zero-order hold)."""
        return self._sampler.series.integrate("step")

    def average_power(self) -> float:
        """Time-weighted average watts over the sampled span."""
        return self._sampler.series.mean()

    def stop(self) -> None:
        """Stop sampling (profile retained)."""
        self._sampler.stop()

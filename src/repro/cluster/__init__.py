"""Cluster/datacenter emulation: node power models, PDU sampling, pricing.

This package is the substitute for the paper's SystemG testbed: each
replica is a simulated node whose instantaneous power follows the same
linear-server + polynomial-network shape as the paper's energy cost model
(Eq. 1), sampled at 50 Hz by a simulated Dominion-PX-style PDU.
"""

from repro.cluster.power import PowerModel, SYSTEMG_POWER_MODEL
from repro.cluster.node import ReplicaNode, NodeActivity
from repro.cluster.pdu import PowerSampler
from repro.cluster.pricing import (
    ElectricityPricing,
    PAPER_PRICES,
    random_prices,
)
from repro.cluster.datacenter import (
    ReplicaSite,
    datacenter_energy,
    single_node_energy,
    apply_pue,
)

__all__ = [
    "PowerModel",
    "SYSTEMG_POWER_MODEL",
    "ReplicaNode",
    "NodeActivity",
    "PowerSampler",
    "ElectricityPricing",
    "PAPER_PRICES",
    "random_prices",
    "ReplicaSite",
    "datacenter_energy",
    "single_node_energy",
    "apply_pue",
]

"""Simulated replica node: activity state feeding the power model.

The EDR server agent moves its node between activities (idle, selecting,
transferring); NIC utilization is read live from the
:class:`~repro.net.flows.FlowManager`.  ``power()`` is the probe the PDU
samples.
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.cluster.power import PowerModel, SYSTEMG_POWER_MODEL
from repro.errors import ValidationError

__all__ = ["NodeActivity", "ReplicaNode"]


class NodeActivity(enum.Enum):
    """Coarse activity phases observed in the paper's power profiles."""

    IDLE = "idle"                 # listening for requests (the "valleys")
    SELECTING = "selecting"       # solving the distributed optimization
    TRANSFERRING = "transferring" # serving file downloads (the "peaks")
    STANDBY = "standby"           # deep low-power state (extension)
    OFF = "off"                   # crashed / powered down


#: CPU utilization by activity.  Selection keeps cores busy with local
#: solves plus (de)serialization of coordination messages; transfers cost
#: some CPU for the file-service path.
_CPU_BY_ACTIVITY = {
    NodeActivity.IDLE: 0.05,
    NodeActivity.SELECTING: 0.80,
    NodeActivity.TRANSFERRING: 0.35,
    NodeActivity.STANDBY: 0.0,
    NodeActivity.OFF: 0.0,
}


class ReplicaNode:
    """One emulated cluster node.

    Parameters
    ----------
    name: node identifier (must match the topology name).
    power_model: watts as a function of utilization.
    net_probe: callable returning NIC utilization in [0, 1] — normally
        ``lambda: flow_manager.utilization(name)``.
    """

    def __init__(self, name: str, power_model: PowerModel = SYSTEMG_POWER_MODEL,
                 net_probe: Callable[[], float] | None = None,
                 standby_w: float = 20.0) -> None:
        self.name = name
        self.power_model = power_model
        if standby_w < 0:
            raise ValidationError("standby power must be nonnegative")
        #: Deep-sleep draw (suspend-to-RAM class) — used by the standby
        #: extension; a sleeping node neither computes nor serves.
        self.standby_w = float(standby_w)
        self._net_probe = net_probe or (lambda: 0.0)
        self._activity = NodeActivity.IDLE
        #: extra CPU load stacked on top of the base activity (e.g. CDPSM's
        #: continuous consensus coordination while transferring).
        self._cpu_overlay = 0.0
        self.activity_log: list[tuple[float, NodeActivity]] = []

    # -- state -----------------------------------------------------------------
    @property
    def activity(self) -> NodeActivity:
        """Current activity phase."""
        return self._activity

    def set_activity(self, activity: NodeActivity, now: float | None = None) -> None:
        """Move to a new activity phase (logged when ``now`` is given)."""
        if not isinstance(activity, NodeActivity):
            raise ValidationError("activity must be a NodeActivity")
        self._activity = activity
        if now is not None:
            self.activity_log.append((now, activity))

    def set_cpu_overlay(self, extra: float) -> None:
        """Stack extra CPU utilization (clipped into [0, 1] at read time)."""
        if extra < 0:
            raise ValidationError("cpu overlay must be nonnegative")
        self._cpu_overlay = extra

    # -- probes -----------------------------------------------------------------
    @property
    def cpu_utilization(self) -> float:
        """CPU utilization implied by activity plus overlay, in [0, 1]."""
        return min(1.0, _CPU_BY_ACTIVITY[self._activity] + self._cpu_overlay)

    @property
    def net_utilization(self) -> float:
        """NIC utilization reported by the flow manager probe, in [0, 1]."""
        if self._activity is NodeActivity.OFF:
            return 0.0
        return min(1.0, max(0.0, float(self._net_probe())))

    def power(self) -> float:
        """Instantaneous watts (0 when off; ``standby_w`` when asleep)."""
        if self._activity is NodeActivity.OFF:
            return 0.0
        if self._activity is NodeActivity.STANDBY:
            return self.standby_w
        return self.power_model.power(self.cpu_utilization, self.net_utilization)

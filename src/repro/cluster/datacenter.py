"""Datacenter-level aggregates and the paper's node~datacenter equivalence.

Section IV-A-1 argues that for data-intensive workloads a single cluster
node's energy model has the same shape as a whole data center's: with
workload p split across N internal nodes, the linear server term is
unchanged and the polynomial network term only shrinks
(``sum p_i**g <= (sum p_i)**g``), so ``E_s >= E_d`` with equality as
``beta -> 0``.  :func:`single_node_energy` / :func:`datacenter_energy`
express both sides; the tests verify the inequality and the limit.

PUE (Sec. III-A-3) scales total facility energy but not the scheduling
decision; :func:`apply_pue` is provided for reporting only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.node import ReplicaNode
from repro.cluster.pdu import PowerSampler
from repro.errors import ValidationError
from repro.util.validation import check_nonnegative

__all__ = ["single_node_energy", "datacenter_energy", "apply_pue",
           "ReplicaSite"]


def single_node_energy(p: float, alpha: float, beta: float,
                       gamma: float = 3.0) -> float:
    """Eq. (7): ``E_s = alpha*p + beta*p**gamma`` for workload ``p``."""
    if p < 0:
        raise ValidationError("workload must be nonnegative")
    return alpha * p + beta * p ** gamma


def datacenter_energy(splits, alpha: float, beta: float,
                      gamma: float = 3.0) -> float:
    """Eq. (8): ``E_d = alpha*sum(p_i) + beta*sum(p_i**gamma)``.

    ``splits`` is the division of the total workload across the data
    center's internal nodes.
    """
    p = check_nonnegative(splits, "splits")
    return float(alpha * p.sum() + beta * np.sum(p ** gamma))


def apply_pue(it_energy_joules: float, pue: float = 1.5) -> float:
    """Total facility energy given IT energy and a PUE >= 1."""
    if pue < 1.0:
        raise ValidationError("PUE must be >= 1")
    if it_energy_joules < 0:
        raise ValidationError("energy must be nonnegative")
    return it_energy_joules * pue


@dataclass
class ReplicaSite:
    """One replica site: node + meter + regional price.

    The EDR system builds one per replica; metrics read energy from the
    meter and convert to cost at the site price.
    """

    node: ReplicaNode
    meter: PowerSampler
    price_cents_per_kwh: float
    index: int

    def __post_init__(self) -> None:
        if self.price_cents_per_kwh <= 0:
            raise ValidationError("price must be positive")

    @property
    def name(self) -> str:
        """Site/node name."""
        return self.node.name

    def energy_joules(self) -> float:
        """Metered energy so far."""
        return self.meter.energy_joules()

    def energy_cost_cents(self) -> float:
        """Metered energy converted to cents at the site price."""
        from repro.cluster.pricing import JOULES_PER_KWH
        return self.energy_joules() / JOULES_PER_KWH * self.price_cents_per_kwh

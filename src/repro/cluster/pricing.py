"""Regional electricity pricing.

The paper randomizes an integer price in [1, 20] ¢/kWh per replica to
simulate geographic price diversity, and fixes
``[1, 8, 1, 6, 1, 5, 2, 3]`` for the Fig. 6/7 case study.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ValidationError
from repro.util.validation import check_positive

__all__ = ["ElectricityPricing", "PriceSchedule", "PAPER_PRICES",
           "random_prices", "JOULES_PER_KWH"]

#: Fig. 6/7 price vector for replicas 1..8, in cents/kWh.
PAPER_PRICES: tuple[float, ...] = (1.0, 8.0, 1.0, 6.0, 1.0, 5.0, 2.0, 3.0)

JOULES_PER_KWH = 3.6e6


def random_prices(rng: np.random.Generator, n: int, lo: int = 1,
                  hi: int = 20) -> np.ndarray:
    """The paper's price generator: integer ¢/kWh uniform in [lo, hi]."""
    if n < 1:
        raise ValidationError("need at least one replica")
    if lo < 1 or hi < lo:
        raise ValidationError("require 1 <= lo <= hi")
    return rng.integers(lo, hi + 1, size=n).astype(float)


class ElectricityPricing:
    """Per-replica unit prices with joules -> cents conversion."""

    def __init__(self, prices: Sequence[float]) -> None:
        self._prices = check_positive(prices, "prices")

    @property
    def prices(self) -> np.ndarray:
        """Unit prices in cents/kWh, one per replica."""
        return self._prices

    def __len__(self) -> int:
        return len(self._prices)

    def price(self, replica_index: int) -> float:
        """Unit price of one replica in cents/kWh."""
        return float(self._prices[replica_index])

    def cost_cents(self, replica_index: int, joules: float) -> float:
        """Cost in cents of consuming ``joules`` at the replica's price."""
        if joules < 0:
            raise ValidationError("energy must be nonnegative")
        return joules / JOULES_PER_KWH * self.price(replica_index)

    def cost_vector(self, joules) -> np.ndarray:
        """Vectorized per-replica cost in cents for per-replica joules."""
        j = np.asarray(joules, dtype=float)
        if j.shape != self._prices.shape:
            raise ValidationError("joules vector length mismatch")
        if np.any(j < 0):
            raise ValidationError("energy must be nonnegative")
        return j / JOULES_PER_KWH * self._prices


class PriceSchedule:
    """Piecewise-constant per-replica electricity prices over time.

    Extension beyond the paper (its future work calls for "more
    restrictions" and commercial-cloud deployment, where time-of-use
    tariffs are the norm): prices change at given instants, EDR re-solves
    each batch at the tariff in force, and cost accounting integrates
    ``power(t) * price(t)``.

    Parameters
    ----------
    times:
        Nondecreasing segment start times; ``times[0]`` must be 0.
    price_matrix:
        ``(K, N)`` — row k holds the per-replica prices from ``times[k]``
        until ``times[k+1]`` (the last row holds forever).
    """

    def __init__(self, times, price_matrix) -> None:
        t = np.asarray(times, dtype=float)
        p = np.asarray(price_matrix, dtype=float)
        if t.ndim != 1 or t.size == 0 or t[0] != 0.0:
            raise ValidationError("times must start at 0")
        if np.any(np.diff(t) <= 0):
            raise ValidationError("times must be strictly increasing")
        if p.ndim != 2 or p.shape[0] != t.size:
            raise ValidationError("price_matrix must have one row per time")
        if np.any(p <= 0):
            raise ValidationError("prices must be positive")
        self._times = t
        self._prices = p

    @property
    def n_replicas(self) -> int:
        """Number of replicas priced by this schedule."""
        return self._prices.shape[1]

    @property
    def segment_times(self) -> np.ndarray:
        """Segment start times."""
        return self._times

    @classmethod
    def constant(cls, prices) -> "PriceSchedule":
        """A schedule that never changes (equivalent to static pricing)."""
        return cls([0.0], np.asarray(prices, dtype=float)[None, :])

    @classmethod
    def two_phase(cls, first, second, switch_at: float) -> "PriceSchedule":
        """Prices ``first`` until ``switch_at`` seconds, then ``second``."""
        if switch_at <= 0:
            raise ValidationError("switch_at must be positive")
        return cls([0.0, float(switch_at)],
                   np.stack([np.asarray(first, dtype=float),
                             np.asarray(second, dtype=float)]))

    def prices_at(self, t: float) -> np.ndarray:
        """Per-replica prices in force at time ``t``."""
        if t < 0:
            raise ValidationError("time must be nonnegative")
        idx = int(np.searchsorted(self._times, t, side="right")) - 1
        return self._prices[idx]

    def cost_cents(self, replica_index: int, power_series,
                   t_end: float) -> float:
        """Integral of ``power(t) * price(t)`` over ``[0, t_end]``, in cents.

        ``power_series`` is a :class:`~repro.util.timeseries.TimeSeries`
        of watts (zero-order hold).
        """
        if t_end < 0:
            raise ValidationError("t_end must be nonnegative")
        total = 0.0
        bounds = [t for t in self._times if t < t_end] + [t_end]
        for k in range(len(bounds) - 1):
            joules = power_series.integrate_between(bounds[k], bounds[k + 1])
            price = self.prices_at(bounds[k])[replica_index]
            total += joules / JOULES_PER_KWH * price
        return total

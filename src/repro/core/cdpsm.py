"""Consensus-based distributed projected subgradient method (Algorithm 1).

Every replica ``i`` keeps a full estimate ``X_i`` of the allocation matrix.
One iteration (paper Eq. 3):

1. *consensus*:  ``V_i = sum_j W[i, j] * X_j``  (solutions collected from
   the other replicas; uniform weights on the complete exchange graph by
   default, as EDR does);
2. *gradient*:  ``G_i`` = gradient of the replica's *local* objective
   ``E_i`` at ``V_i`` (only column ``i`` is nonzero);
3. *projection*:  ``X_i <- Proj_{P_i}[V_i - d_k * G_i]`` onto the local
   constraint set (demand rows ∩ own capacity column) via Dykstra.

Communication per iteration is ``N*(N-1)`` solution exchanges of
``C*N`` floats each — the paper's ``O(|C| * |N|^3)``.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core import kernels, model
from repro.core.consensus import is_doubly_stochastic, uniform_weights
from repro.core.params import ProblemData
from repro.core.problem import ReplicaSelectionProblem
from repro.core.projection import project_local_set
from repro.core.solution import Solution
from repro.core.stepsize import ConstantStep
from repro.errors import ValidationError
from repro.obs import NULL_RECORDER

__all__ = ["CdpsmSolver", "solve_cdpsm", "default_cdpsm_step"]


def default_cdpsm_step(data: ProblemData) -> float:
    """Problem-scaled constant step.

    Sized against the marginal cost at the *uniform-allocation operating
    point* (total demand spread over all replicas) rather than at full
    capacity: at moderate loads the capacity-point gradient overestimates
    the working gradient by orders of magnitude (the cubic term), which
    would make iterates crawl.  A step of ~10% of the demand scale per
    unit working-gradient moves real mass per iteration while the local
    projection keeps iterates feasible.
    """
    load_typ = float(data.R.sum()) / max(data.n_replicas, 1)
    load_typ = min(load_typ, float(data.B.max()))
    g_typ = float(np.max(data.u * (data.alpha + data.beta * data.gamma
                                   * load_typ ** (data.gamma - 1.0))))
    scale = float(max(data.R.max(initial=0.0), 1e-12))
    return 0.1 * scale / max(g_typ, 1e-12)


class CdpsmSolver:
    """Synchronous matrix-form execution of Algorithm 1.

    Parameters
    ----------
    problem: the instance to solve.
    weights: (N, N) doubly stochastic consensus matrix; defaults to the
        complete-graph uniform weights the paper uses.
    step: step-size schedule ``d_k``; defaults to a problem-scaled
        constant step (the paper uses constant steps).
    max_iter, tol: stopping rule — iterate until no replica's estimate
        moves more than ``tol * max(R)`` in one iteration ("until P does
        not change").
    dykstra_iter: inner iterations of the local-set projection.
    track_objective: record the objective of the consensus mean each
        iteration (the Fig. 5 curve).
    batched: run all N per-replica projections as one stacked kernel
        call per iteration (:mod:`repro.core.kernels`) instead of a
        Python loop.  Both paths compute the same iterates; the scalar
        loop is kept as the reference oracle.
    """

    method = "cdpsm"

    def __init__(self, problem: ReplicaSelectionProblem,
                 weights: np.ndarray | None = None,
                 step=None, max_iter: int = 400, tol: float = 1e-5,
                 dykstra_iter: int = 60,
                 track_objective: bool = True,
                 batched: bool = True,
                 recorder=None) -> None:
        self.problem = problem
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        data = problem.data
        n = data.n_replicas
        W = uniform_weights(n) if weights is None else np.asarray(weights, float)
        if W.shape != (n, n):
            raise ValidationError("weights must be (N, N)")
        if not is_doubly_stochastic(W, tol=1e-8):
            raise ValidationError("weights must be doubly stochastic")
        self.weights = W
        self.step = step if step is not None else ConstantStep(
            default_cdpsm_step(data))
        if max_iter < 1:
            raise ValidationError("max_iter must be >= 1")
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.dykstra_iter = int(dykstra_iter)
        self.track_objective = bool(track_objective)
        self.batched = bool(batched)
        self.converged_ = False

    def iterations(self, initial: np.ndarray | None = None):
        """Generator over consensus iterations (the runtime steps this).

        Yields ``(k, consensus_mean, change)`` after each iteration, where
        ``change`` is the max movement of any replica's estimate.  Stops
        when the estimates no longer move ("until P does not change") or
        at ``max_iter``.

        ``initial`` seeds every replica's estimate (each is projected
        into its own local set before the first consensus round) — the
        runtime passes the previous batch's projected consensus mean here
        to warm-start the solve.  ``self.converged_`` reports whether the
        stopping rule fired.
        """
        problem = self.problem
        data = problem.data
        N = data.n_replicas
        cols = np.arange(N)
        base = problem.uniform_allocation() if initial is None \
            else np.asarray(initial, dtype=float)
        if base.shape != data.shape:
            raise ValidationError("initial allocation shape mismatch")
        self.converged_ = False
        # Per-replica estimates, each projected into its own local set.
        if self.batched:
            X = kernels.project_local_sets_stacked(
                np.repeat(base[None], N, axis=0), data.R, data.mask,
                cols, data.B, max_iter=self.dykstra_iter)
        else:
            X = np.stack([
                project_local_set(base, data.R, data.mask, i,
                                  float(data.B[i]),
                                  max_iter=self.dykstra_iter)
                for i in range(N)
            ])
        tol_abs = self.tol * float(max(data.R.max(initial=0.0), 1.0))
        rec = self.recorder
        for k in range(self.max_iter):
            # Consensus: V_i = sum_j W[i, j] X_j.
            V = np.tensordot(self.weights, X, axes=(1, 0))
            d_k = self.step(k)
            if self.batched:
                stepped = kernels.cdpsm_gradient_step(data, V, d_k)
                X_new = kernels.project_local_sets_stacked(
                    stepped, data.R, data.mask, cols, data.B,
                    max_iter=self.dykstra_iter)
            else:
                X_new = np.empty_like(X)
                for i in range(N):
                    marginal = model.load_marginal_cost(
                        data, V[i].sum(axis=0))[i]
                    step_mat = V[i].copy()
                    step_mat[:, i] -= d_k * marginal * data.mask[:, i]
                    X_new[i] = project_local_set(
                        step_mat, data.R, data.mask, i, float(data.B[i]),
                        max_iter=self.dykstra_iter)
            change = float(np.max(np.abs(X_new - X)))
            X = X_new
            if rec.enabled:
                rec.event("cdpsm.iteration", k=k, change=change,
                          step=float(d_k))
            yield k, X.mean(axis=0), change
            if change < tol_abs:
                self.converged_ = True
                return

    def solve(self, initial: np.ndarray | None = None) -> Solution:
        """Run Algorithm 1; returns the repaired consensus-mean solution."""
        problem = self.problem
        problem.require_feasible()
        data = problem.data
        C, N = data.shape
        t_start = perf_counter()
        tol_abs = self.tol * float(max(data.R.max(initial=0.0), 1.0))
        rec = self.recorder
        history: list[float] = []
        residuals: list[float] = []
        messages = 0
        comm_floats = 0
        converged = False
        iterations = 0
        mean = problem.uniform_allocation()
        pending: list[np.ndarray] = []

        def flush_history() -> None:
            if pending:
                base = len(history)
                values = kernels.objective_history(data, pending, sweeps=10)
                history.extend(values)
                if rec.enabled:
                    for j, v in enumerate(values):
                        rec.sample("solver.objective", v, k=base + j)
                pending.clear()

        for k, mean, change in self.iterations(initial):
            iterations = k + 1
            messages += N * (N - 1)
            comm_floats += N * (N - 1) * C * N
            residuals.append(problem.violation(mean))
            if self.track_objective:
                if self.batched:
                    # Repair lazily in stacked chunks (same curve values,
                    # without a full scalar repair every iteration).
                    pending.append(mean)
                    if len(pending) >= 128:
                        flush_history()
                else:
                    value = problem.objective(
                        problem.repair(mean, sweeps=10))
                    history.append(value)
                    if rec.enabled:
                        rec.sample("solver.objective", value, k=k)
            if change < tol_abs:
                converged = True
        flush_history()
        final = problem.repair(mean)
        solution = Solution(
            allocation=final,
            objective=problem.objective(final),
            iterations=iterations,
            converged=converged,
            objective_history=history,
            residual_history=residuals,
            messages=messages,
            comm_floats=comm_floats,
            method=self.method,
            solve_time_s=perf_counter() - t_start,
            warm_started=initial is not None,
        )
        if rec.enabled:
            rec.event("solver.solve", method=self.method,
                      iterations=iterations, converged=converged,
                      objective=float(solution.objective),
                      messages=messages, comm_floats=comm_floats,
                      solve_time_s=solution.solve_time_s,
                      warm_started=solution.warm_started,
                      n_clients=C, n_replicas=N)
        return solution


def solve_cdpsm(problem: ReplicaSelectionProblem, *,
                aggregate: bool = False,
                warm_start: np.ndarray | None = None, recorder=None,
                **kwargs) -> Solution:
    """One-call convenience wrapper: ``solve(problem, "cdpsm", ...)``.

    All options are keyword-only and named exactly as on
    :func:`repro.core.solve` (``aggregate``, ``warm_start``, ``recorder``,
    plus any :class:`CdpsmSolver` option).  ``aggregate=True`` solves the
    exact class-space reduction (one super-client per distinct
    eligibility row; O(K*N) per iteration) and disaggregates the result —
    see :mod:`repro.core.aggregate`.
    """
    from repro.core.api import solve

    return solve(problem, "cdpsm", aggregate=aggregate,
                 warm_start=warm_start, recorder=recorder, **kwargs)

"""Solve shards: independent class-slice states for the sharded plane.

The sharded control plane splits the class-space instance (the K-row
reduction :mod:`repro.core.aggregate` produces) across independent
:class:`SolveShard`\\ s.  Each shard owns a slice of the classes — its
rows of the allocation, its own :class:`~repro.core.incremental.
IncrementalState` (carrying the slice's drift/fallback accounting and
client registry) and its own warm-start cache — and best-responds to the
*background*: the column loads every other shard contributes, held fixed
for one exchange round.  The coordinator that broadcasts backgrounds and
declares convergence lives in :mod:`repro.edr.coordinator`; this module
is deliberately runtime-free so the shard math can be tested and
process-shipped on its own.

A solve round is Jacobi with an inner Gauss–Seidel polish:

1. every row of the shard re-water-fills simultaneously against the
   round's base loads (:func:`repro.core.kernels.waterfill_rows` — the
   batched form of the incremental row subproblem),
2. the state's Gauss–Seidel refine fixes the intra-shard interactions
   the simultaneous fill ignored (rows of the *same* shard see each
   other exactly, not one round late), and
3. the new rows are damped against the previous round's rows, which
   breaks the ping-pong oscillation undamped parallel best-response is
   known for when two shards chase the same cheap column.

Because every shard responds to the *same* broadcast state, the round's
outcome is independent of the order — or the process — shards run in:
serial, threaded and process execution are bit-identical by
construction, which is what lets the runtime pick concurrency per
deployment without forfeiting reproducibility.

:func:`run_shard_round` is the process-pool entry point: a round's
payload is a dict of small ``(K_s, N)`` arrays (classes, not clients —
shipping it is cheap at any client count), the worker rebuilds the shard
from the arrays and runs the identical ``solve_round`` code path.  The
*persistent* worker fleet in :mod:`repro.core.shard_workers` goes one
step further — static geometry ships once through shared memory and a
round sends only the mutable slice — keyed off :attr:`SolveShard.
version`, which every geometry-changing operation bumps via
:meth:`SolveShard.touch`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from types import SimpleNamespace
from typing import Sequence

import numpy as np

from repro.core.incremental import IncrementalState
from repro.core.kernels import waterfill_rows
from repro.core.warmstart import WarmStartCache
from repro.errors import ValidationError

__all__ = ["ShardRound", "SolveShard", "partition_classes",
           "run_shard_round"]

#: Monotone shard-geometry version source.  Versions are unique across
#: every shard ever built in the process, so a worker-side cache keyed
#: by (shard_id, version) can never confuse a rebuilt shard (fresh
#: object, same id) with the one whose geometry it cached.
_VERSION_COUNTER = itertools.count(1)


def partition_classes(demands: np.ndarray, n_shards: int) -> np.ndarray:
    """Demand-balanced class -> shard assignment (deterministic greedy LPT).

    Classes are taken in decreasing demand order (ties by class index)
    and each lands on the currently lightest shard (ties by shard id) —
    the classic longest-processing-time heuristic, which keeps per-shard
    demand within 4/3 of balanced and, more importantly here, is a pure
    function of the demand vector so rebuilt planes repartition the same
    way.
    """
    D = np.asarray(demands, dtype=float)
    if D.ndim != 1:
        raise ValidationError("demands must be one-dimensional")
    S = int(n_shards)
    if S < 1:
        raise ValidationError("n_shards must be >= 1")
    shard_of = np.zeros(D.shape[0], dtype=int)
    totals = [0.0] * S
    for k in np.argsort(-D, kind="stable"):
        s = min(range(S), key=lambda i: (totals[i], i))
        shard_of[int(k)] = s
        totals[s] += float(D[k])
    return shard_of


def _class_slice(demands: np.ndarray, capacities: np.ndarray,
                 prices: np.ndarray, alpha: np.ndarray, beta: np.ndarray,
                 gamma: np.ndarray, mask: np.ndarray) -> SimpleNamespace:
    """A class-space instance slice, duck-typed for IncrementalState.

    Deliberately *not* a :class:`~repro.core.params.ProblemData`: a
    shard slice is routinely degenerate in ways the full-instance
    validators reject — drained classes with zero demand and no load,
    zero-capacity columns after a replica death — and the incremental
    state only reads the array attributes.
    """
    mask = np.asarray(mask, dtype=bool)
    return SimpleNamespace(
        R=np.asarray(demands, dtype=float),
        B=np.asarray(capacities, dtype=float),
        u=np.asarray(prices, dtype=float),
        alpha=np.asarray(alpha, dtype=float),
        beta=np.asarray(beta, dtype=float),
        gamma=np.asarray(gamma, dtype=float),
        mask=mask, shape=mask.shape, n_clients=mask.shape[0])


@dataclass(frozen=True)
class ShardRound:
    """Outcome of one :meth:`SolveShard.solve_round`.

    ``loads`` are the shard's own column loads after the round;
    ``fit`` is False when some class demand exceeded its headroom (the
    shard grabbed all of it and left demand unmet — the coordinator
    keeps iterating while other shards vacate capacity); ``converged``
    folds ``fit`` with the inner refine's KKT convergence.
    """

    shard: int
    loads: np.ndarray
    sweeps: int
    converged: bool
    fit: bool


class SolveShard:
    """One shard of the sharded plane: a class slice plus its solve state."""

    def __init__(self, shard_id: int, *, tokens: Sequence[bytes],
                 demands: np.ndarray, capacities: np.ndarray,
                 prices: np.ndarray, alpha: np.ndarray, beta: np.ndarray,
                 gamma: np.ndarray, mask: np.ndarray,
                 allocation: np.ndarray | None = None,
                 clients: dict[str, tuple[bytes, float]] | None = None,
                 warm_cache: WarmStartCache | None = None,
                 kkt_rtol: float = 1e-9, max_sweeps: int = 64,
                 drift_limit: float = 2.5) -> None:
        data = _class_slice(demands, capacities, prices, alpha, beta,
                            gamma, mask)
        Q0 = np.zeros(data.shape) if allocation is None \
            else np.asarray(allocation, dtype=float)
        self.shard_id = int(shard_id)
        self.state = IncrementalState(
            data, tokens, Q0, clients=clients, drift_limit=drift_limit,
            kkt_rtol=kkt_rtol, max_sweeps=max_sweeps)
        self.warm_cache = warm_cache
        self.rounds_run = 0
        self.version = next(_VERSION_COUNTER)
        self._static_cache: dict | None = None

    def touch(self) -> None:
        """Mark the shard's geometry changed: new version, caches dropped.

        Anything that alters the *static* geometry a process worker
        caches — masks, tokens, capacities, cost constants — must bump
        the version so the fleet re-ships.  Demand-only changes
        (retargets, absorbed events) use :meth:`touch_demands` instead:
        demands travel inside every round's delta, and the allocation
        rows are republished to the shared state block at the start of
        each round, so neither needs a geometry re-ship.  :meth:`adopt`
        touches nothing — the coordinator owns the shipment state.
        """
        self.version = next(_VERSION_COUNTER)
        self._static_cache = None

    def touch_demands(self) -> None:
        """Demand-only change: drop the static cache, keep the version.

        The persistent fleet ships demands in each round's delta, so a
        pure retarget keeps the worker-side geometry cache warm.  The
        static payload cache is still dropped — it holds a reference to
        the demand vector, and a *future* cold rebuild must pickle
        current values, not the ones captured at the last build.
        """
        self._static_cache = None

    # -- views ---------------------------------------------------------------
    @property
    def tokens(self) -> list[bytes]:
        """The shard's class tokens, in row order."""
        return self.state.tokens

    @property
    def loads(self) -> np.ndarray:
        """The shard's own column loads (background excluded)."""
        return self.state.loads

    @property
    def n_rows(self) -> int:
        """Class rows this shard currently owns."""
        return self.state.n_classes

    def demand(self) -> float:
        """Total demand currently assigned to the shard."""
        return float(self.state.D.sum())

    def kkt_gap(self, background: np.ndarray) -> float:
        """Worst cross-row KKT gap against ``background`` (relative)."""
        self.state.set_background(background)
        return self.state.kkt_residual()

    def demand_error(self) -> float:
        """Worst relative row-sum-vs-demand mismatch (0 when feasible)."""
        st = self.state
        if st.n_classes == 0:
            return 0.0
        err = np.abs(st.Q.sum(axis=1) - st.D)
        return float(np.max(err / np.maximum(st.D, 1.0), initial=0.0))

    # -- the exchange-round step ---------------------------------------------
    def solve_round(self, background: np.ndarray,
                    damping: float = 1.0) -> ShardRound:
        """Best-respond to ``background``: Jacobi fill, GS polish, damping.

        ``background`` is the other shards' column loads, held fixed for
        the round.  ``damping`` in (0, 1] blends the new rows with the
        previous round's (1.0 = undamped full step); rows whose demand
        changed since the previous round always take the full step, so
        damping never breaks row-sum feasibility.
        """
        st = self.state
        st.set_background(background)
        Q_prev = st.Q.copy()
        if st.n_classes == 0:
            self.rounds_run += 1
            return ShardRound(self.shard_id, st.loads.copy(), 0, True, True)
        other = np.maximum(st.loads[None, :] - st.Q, 0.0)
        base = other + st.background[None, :]
        head = np.where(st.masks,
                        np.maximum(st.B[None, :] - base, 0.0), 0.0)
        P, fits = waterfill_rows(st.u, st.alpha, st.beta, st.gamma,
                                 st.D, base, head)
        st.Q = P
        st.loads = P.sum(axis=0)
        converged, sweeps = st.refine()
        if damping < 1.0:
            ok_rows = np.abs(Q_prev.sum(axis=1) - st.D) \
                <= 1e-9 * np.maximum(st.D, 1.0)
            lam = np.where(ok_rows, float(damping), 1.0)[:, None]
            st.Q = (1.0 - lam) * Q_prev + lam * st.Q
            st.loads = st.Q.sum(axis=0)
        self.rounds_run += 1
        return ShardRound(self.shard_id, st.loads.copy(), sweeps,
                          bool(converged) and bool(fits.all()),
                          bool(fits.all()))

    def adopt(self, allocation: np.ndarray) -> None:
        """Install rows computed elsewhere (a process worker's round)."""
        st = self.state
        Q = np.asarray(allocation, dtype=float)
        if Q.shape != st.Q.shape:
            raise ValidationError("adopted allocation shape mismatch")
        st.Q = Q.copy()
        st.loads = st.Q.sum(axis=0)
        self.rounds_run += 1

    def drop_replica(self, index: int) -> None:
        """Remove a dead replica's column from the shard's feasible set."""
        st = self.state
        j = int(index)
        st.B[j] = 0.0
        st.masks[:, j] = False
        st.Q[:, j] = 0.0
        st.loads = st.Q.sum(axis=0)
        self.touch()

    # -- class migration (online re-partitioning) ----------------------------
    def extract_class(self, token: bytes) -> tuple:
        """Remove class ``token`` for migration; see ``IncrementalState``.

        Returns ``(eligibility, demand, row, clients)`` — everything the
        destination shard needs to adopt the class warm.  The row leaves
        *with* its allocation, so an extract/install pair conserves the
        plane's aggregate column loads exactly.
        """
        out = self.state.extract_class(token)
        self.touch()
        return out

    def install_class(self, token: bytes, eligibility: np.ndarray,
                      demand: float, row: np.ndarray,
                      clients: dict | None = None) -> None:
        """Adopt a class another shard extracted (warm rows included)."""
        self.state.install_class(token, eligibility, demand, row, clients)
        self.touch()

    # -- warm-start plumbing -------------------------------------------------
    def warm_seed(self, replicas: Sequence[str], prices: np.ndarray) -> bool:
        """Seed rows from the shard-local cache; True when anything hit."""
        if self.warm_cache is None:
            return False
        entry = self.warm_cache.lookup(replicas, prices)
        if entry is None:
            return False
        st = self.state
        hit = False
        for k, t in enumerate(st.tokens):
            row = entry.rows.get(t)
            cached = entry.demands.get(t, 0.0)
            D = float(st.D[k])
            if row is None or row.shape != (st.n_replicas,) \
                    or cached <= 0.0 or D <= 0.0:
                continue
            st.Q[k] = np.where(st.masks[k], np.maximum(row, 0.0), 0.0) \
                * (D / cached)
            hit = True
        if hit:
            st.loads = st.Q.sum(axis=0)
            # Rows-only write: the fleet republishes Q/loads each round,
            # so the geometry shipment stays valid.
            self.touch_demands()
        return hit

    def store_warm(self, replicas: Sequence[str], prices: np.ndarray,
                   rounds: int, converged: bool) -> None:
        """Record the shard's converged rows in its local cache."""
        if self.warm_cache is None:
            return
        st = self.state
        self.warm_cache.store(replicas, prices, list(st.tokens), st.Q,
                              st.masks, mu=st.mu(), iterations=rounds,
                              converged=converged)

    # -- process shipping ----------------------------------------------------
    def static_payload(self) -> dict:
        """The shard's static geometry, cached until :meth:`touch`.

        Holds *references*, not copies: nothing mutates these arrays
        between payload construction and pickling (events and rounds
        never interleave), and every operation that replaces them bumps
        the version and drops this cache.  One dict build per geometry
        version instead of eight array copies per round.
        """
        if self._static_cache is None:
            st = self.state
            self._static_cache = {
                "shard": self.shard_id, "tokens": list(st.tokens),
                "demands": st.D, "capacities": st.B, "prices": st.u,
                "alpha": st.alpha, "beta": st.beta, "gamma": st.gamma,
                "mask": st.masks, "kkt_rtol": st.kkt_rtol,
                "max_sweeps": st.max_sweeps,
            }
        return self._static_cache

    def round_payload(self, background: np.ndarray,
                      damping: float) -> dict:
        """A picklable snapshot for :func:`run_shard_round`.

        Class-space arrays only — ``(K_s, N)`` floats plus the tokens —
        so payload size is independent of the client count; the static
        geometry rides along from the cached snapshot, so only the
        allocation/background/damping slice is fresh per round.
        """
        payload = dict(self.static_payload())
        payload["allocation"] = self.state.Q
        payload["background"] = np.asarray(background, dtype=float)
        payload["damping"] = float(damping)
        return payload


def run_shard_round(payload: dict) -> tuple[int, np.ndarray, int, bool, bool]:
    """Process-pool worker: rebuild the shard, run one round, return rows.

    Reconstructing :class:`SolveShard` from the payload arrays and
    calling the same :meth:`~SolveShard.solve_round` guarantees the
    arithmetic is identical to the in-process path — the parent adopts
    the returned rows verbatim.
    """
    shard = SolveShard(
        payload["shard"], tokens=payload["tokens"],
        demands=payload["demands"], capacities=payload["capacities"],
        prices=payload["prices"], alpha=payload["alpha"],
        beta=payload["beta"], gamma=payload["gamma"], mask=payload["mask"],
        allocation=payload["allocation"], kkt_rtol=payload["kkt_rtol"],
        max_sweeps=payload["max_sweeps"])
    result = shard.solve_round(payload["background"], payload["damping"])
    return (payload["shard"], shard.state.Q, result.sweeps,
            result.converged, result.fit)

"""Euclidean projections used by the distributed solvers.

* :func:`project_simplex` — onto ``{x >= 0, sum x = s}`` (exact
  sort-and-threshold algorithm).
* :func:`project_capped_simplex` — onto ``{x >= 0, sum x <= cap}``.
* :func:`project_demands` — row-wise demand projection of a full
  allocation matrix (each client's row onto its masked simplex).
* :func:`project_local_set` — Dykstra's alternating projection onto a
  replica's CDPSM local constraint set ``P_n`` (demand rows intersected
  with that replica's capacity column); this realizes the paper's
  ``Proj_{P_n}[.]^+`` operator.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["project_simplex", "project_capped_simplex", "project_demands",
           "project_local_set", "support_groups"]


def project_simplex(v: np.ndarray, total: float) -> np.ndarray:
    """Project ``v`` onto ``{x >= 0, sum x = total}`` (Euclidean).

    Sort-based threshold algorithm (Held/Wolfe/Crowder): O(d log d).
    """
    v = np.asarray(v, dtype=float)
    if v.ndim != 1:
        raise ValidationError("project_simplex expects a vector")
    if total < 0:
        raise ValidationError("simplex total must be nonnegative")
    if v.size == 0:
        if total > 0:
            raise ValidationError("cannot place positive mass on empty support")
        return v.copy()
    if total == 0:
        return np.zeros_like(v)
    # Find threshold tau with sum(max(v - tau, 0)) = total.
    mu = np.sort(v)[::-1]
    cumsum = np.cumsum(mu)
    k = np.arange(1, v.size + 1)
    cond = mu - (cumsum - total) / k >= 0
    hits = np.nonzero(cond)[0]
    # cond holds at k=1 in exact arithmetic; guard the fully-degenerate
    # float case (e.g. total underflowing against max(v)).
    rho = int(hits[-1]) if hits.size else 0
    tau = (cumsum[rho] - total) / (rho + 1)
    return np.maximum(v - tau, 0.0)


def project_capped_simplex(v: np.ndarray, cap: float) -> np.ndarray:
    """Project ``v`` onto ``{x >= 0, sum x <= cap}``."""
    if cap < 0:
        raise ValidationError("cap must be nonnegative")
    v = np.asarray(v, dtype=float)
    clipped = np.maximum(v, 0.0)
    if clipped.sum() <= cap:
        return clipped
    return project_simplex(v, cap)


def _project_rows_vectorized(P: np.ndarray, R: np.ndarray) -> np.ndarray:
    """Row-wise simplex projection, all rows at once (full support).

    Vectorized form of the sort-and-threshold algorithm: one sort per row
    via a single ``np.sort`` call, thresholds found with cumulative sums —
    the hot path for CDPSM's per-iteration projections.
    """
    C, N = P.shape
    mu = np.sort(P, axis=1)[:, ::-1]
    cumsum = np.cumsum(mu, axis=1)
    k = np.arange(1, N + 1)
    cond = mu - (cumsum - R[:, None]) / k >= 0
    # Last True per row (cond holds at k=1 in exact arithmetic).
    rho = np.where(cond.any(axis=1),
                   N - 1 - np.argmax(cond[:, ::-1], axis=1), 0)
    tau = (cumsum[np.arange(C), rho] - R) / (rho + 1)
    out = np.maximum(P - tau[:, None], 0.0)
    # Rows with zero demand project to exactly zero.
    out[R == 0.0] = 0.0
    return out


def support_groups(mask: np.ndarray) -> list[tuple[np.ndarray, np.ndarray]]:
    """Group the rows of a boolean mask by identical support pattern.

    Returns ``(rows, cols)`` index pairs — one per distinct pattern —
    so masked row-wise operations can run vectorized per group instead
    of per row.  All-false patterns are included (callers decide whether
    an empty support is an error).
    """
    M = np.asarray(mask, dtype=bool)
    patterns, inverse = np.unique(M, axis=0, return_inverse=True)
    return [(np.nonzero(inverse == g)[0], np.nonzero(patterns[g])[0])
            for g in range(patterns.shape[0])]


def _check_demand_shapes(P: np.ndarray, R: np.ndarray, M: np.ndarray) -> None:
    if P.shape != M.shape or R.shape != (P.shape[0],):
        raise ValidationError("shape mismatch in project_demands")
    if np.any(R < 0):
        raise ValidationError("demands must be nonnegative")


def project_demands(allocation: np.ndarray, demands: np.ndarray,
                    mask: np.ndarray) -> np.ndarray:
    """Project each row c onto ``{x >= 0 on mask, 0 off mask, sum = R_c}``.

    Fully-eligible instances (the paper's LAN setup) take a vectorized
    all-rows path; masked rows are grouped by support pattern and each
    group is projected in one vectorized pass (latency-constrained
    instances share few distinct eligibility patterns, so this stays a
    handful of numpy calls where the old fallback looped row by row).
    """
    P = np.asarray(allocation, dtype=float)
    R = np.asarray(demands, dtype=float)
    M = np.asarray(mask, dtype=bool)
    _check_demand_shapes(P, R, M)
    if M.all():
        return _project_rows_vectorized(P, R)
    out = np.zeros_like(P)
    for rows, cols in support_groups(M):
        if cols.size == 0:
            bad = rows[R[rows] > 0]
            if bad.size:
                raise ValidationError(
                    f"client {int(bad[0])} has positive demand "
                    "but no eligible replica")
            continue
        out[np.ix_(rows, cols)] = _project_rows_vectorized(
            P[np.ix_(rows, cols)], R[rows])
    return out


def _project_demands_reference(allocation: np.ndarray, demands: np.ndarray,
                               mask: np.ndarray) -> np.ndarray:
    """Row-at-a-time reference implementation of :func:`project_demands`.

    Kept as the scalar oracle for the vectorized/grouped fast paths (the
    kernel property tests assert agreement to 1e-9); not used on any hot
    path.
    """
    P = np.asarray(allocation, dtype=float)
    R = np.asarray(demands, dtype=float)
    M = np.asarray(mask, dtype=bool)
    _check_demand_shapes(P, R, M)
    out = np.zeros_like(P)
    for c in range(P.shape[0]):
        support = M[c]
        if not support.any():
            if R[c] > 0:
                raise ValidationError(
                    f"client {c} has positive demand but no eligible replica")
            continue
        out[c, support] = project_simplex(P[c, support], float(R[c]))
    return out


def _project_column_cap(allocation: np.ndarray, column: int,
                        cap: float) -> np.ndarray:
    """Project onto ``{P : P[:, column] >= 0, sum_c P[c, column] <= cap}``.

    Other columns are untouched (the set does not constrain them).
    """
    out = np.array(allocation, dtype=float, copy=True)
    out[:, column] = project_capped_simplex(out[:, column], cap)
    return out


def project_local_set(allocation: np.ndarray, demands: np.ndarray,
                      mask: np.ndarray, column: int, cap: float,
                      max_iter: int = 1000, tol: float = 1e-8) -> np.ndarray:
    """Dykstra projection onto replica ``column``'s local set ``P_n``:

        {P : P >= 0 on mask (0 off mask),
             sum_n P[c, n] = R_c for every client c,
             sum_c P[c, column] <= cap}

    Dykstra's algorithm converges to the exact Euclidean projection onto
    the (nonempty) intersection of the two closed convex sets.  The loop
    stops when the two per-set projections agree to ``tol`` (the true
    convergence measure); the returned iterate is the *demand-side*
    projection, so client demands hold exactly and any residual capacity
    overshoot is bounded by the final discrepancy.
    """
    x = np.asarray(allocation, dtype=float).copy()
    p = np.zeros_like(x)  # correction for the demand set
    q = np.zeros_like(x)  # correction for the capacity set
    scale = float(max(np.max(np.abs(demands), initial=0.0), cap, 1.0))
    y = x
    for _ in range(max_iter):
        y = project_demands(x + p, demands, mask)
        p = x + p - y
        x = _project_column_cap(y + q, column, cap)
        q = y + q - x
        if float(np.max(np.abs(y - x))) < tol * scale:
            break
    return project_demands(x + p, demands, mask)
